//! Umbrella crate for the delta-CRDT synchronization suite.
//!
//! The workspace reproduces and extends *"Efficient Synchronization of
//! State-based CRDTs"* (Enes, Almeida, Baquero, Leitão — ICDE 2019).
//! This crate re-exports every layer so downstream users (and the
//! repository's own end-to-end tests and examples) can depend on a single
//! package:
//!
//! * [`lattice`] — join-semilattices, decompositions, codec, size models;
//! * [`types`] — the CRDT catalog with optimal δ-mutators;
//! * [`sync`] — the synchronization protocols and the type-erased
//!   [`sync::SyncEngine`] layer;
//! * [`sim`] — the deterministic round-based simulator;
//! * [`workloads`] — micro and Retwis workload generators;
//! * [`store`] — the multi-object replicated store;
//! * [`bench`] — the experiment harness regenerating the paper artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use crdt_bench as bench;
pub use crdt_lattice as lattice;
pub use crdt_sim as sim;
pub use crdt_sync as sync;
pub use crdt_types as types;
pub use crdt_workloads as workloads;
pub use delta_store as store;
