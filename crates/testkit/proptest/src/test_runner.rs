//! Deterministic RNG and run configuration.

use std::ops::Range;

/// How many generated cases each property test runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim favors fast CI. Tests
        // that want more pass an explicit config — and, matching real
        // proptest, the `PROPTEST_CASES` environment variable overrides
        // the default so CI can run robustness sweeps at a raised case
        // count without recompiling.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// SplitMix64: tiny, full-period, statistically fine for test generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary u64.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seed deterministically from a test name, so every run of a given
    /// test sees the same sequence (failures reproduce without a
    /// persistence file).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// Next full-width value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from a half-open range.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty size range");
        range.start + (self.next_u64() as usize) % (range.end - range.start)
    }
}
