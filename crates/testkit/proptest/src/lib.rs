//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to a crates registry, so this
//! in-tree shim provides the slice of proptest's surface the workspace
//! tests use: [`strategy::Strategy`] with `prop_map`, integer-range /
//! tuple / `Just` / string-pattern strategies, the `collection` module,
//! weighted [`prop_oneof!`], and the [`proptest!`] test-runner macro with
//! [`test_runner::ProptestConfig`].
//!
//! Semantics differences from real proptest, deliberately accepted:
//!
//! * generation is plain seeded pseudo-randomness — there is **no
//!   shrinking**; a failing case panics with the generated values' Debug
//!   representation via the standard assertion message instead;
//! * string "regex" strategies support only the `.{a,b}` shape the tests
//!   use (any-char repetition with a length range);
//! * every run is deterministic: the RNG is seeded from the test name, so
//!   failures reproduce without a persistence file.

#![forbid(unsafe_code)]
pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            })*
        };
    }

    arb_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as i32
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy wrapper returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (full value range for primitives).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections with a size range.

    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<T>`; see [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of `size.start..size.end` (exclusive) elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`; see [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` of at most `size.end - 1` elements (duplicates merge,
    /// exactly like real proptest's minimum-size best effort).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`; see [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// A `BTreeMap` of at most `size.end - 1` entries.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.clone());
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod prelude {
    //! The usual glob-import surface.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted choice between strategies producing the same value type.
///
/// `prop_oneof![a, b]` picks uniformly; `prop_oneof![3 => a, 1 => b]`
/// picks `a` three times as often.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Property assertion (no shrinking: equivalent to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (no shrinking: equivalent to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `body` for `ProptestConfig::cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}
