//! The [`Strategy`] trait and the combinators the workspace tests use.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// returns a finished value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a fresh strategy from each value, then draw from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discard values failing `f` (retrying a bounded number of times).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// Type-erased strategy (cheaply clonable).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> core::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}) rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// Weighted union of same-typed strategies (built by `prop_oneof!`).
#[derive(Debug, Clone)]
pub struct OneOf<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Build from `(weight, strategy)` branches.
    pub fn new(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        let total = branches.iter().map(|(w, _)| u64::from(*w)).sum();
        OneOf { branches, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.branches {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (lo + off as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// String "regex" strategy supporting the `.{a,b}` shape: a string of
/// `a..=b` characters drawn from a mixed ASCII/Unicode alphabet.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        const ALPHABET: &[char] = &[
            'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '7', '9', ' ', '-', '_', '.', ',', '/',
            '\\', '"', '\'', 'κ', 'ό', 'σ', 'μ', 'ς', 'é', '中', '🦀',
        ];
        let (lo, hi) = parse_dot_repeat(self).unwrap_or_else(|| {
            panic!("unsupported string pattern {self:?}: the shim supports only `.{{a,b}}`")
        });
        let n = lo + (rng.next_u64() as usize) % (hi - lo + 1);
        (0..n)
            .map(|_| ALPHABET[(rng.next_u64() as usize) % ALPHABET.len()])
            .collect()
    }
}

/// Parse `.{a,b}` into `(a, b)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}
