//! A counting [`GlobalAlloc`] wrapper for allocation-budget assertions.
//!
//! The wire-path refactor's headline claim — steady-state rounds perform
//! O(1) payload allocations, decoders never allocate more than the input
//! they were handed — is only a claim until something counts. This shim
//! (offline, like the rest of the testkit) wraps the [`System`]
//! allocator with three process-wide atomic counters: allocations,
//! allocated bytes, and the peak single request.
//!
//! Install it in the **binary** under measurement:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: testkit_alloc::CountingAllocator = testkit_alloc::CountingAllocator;
//!
//! let (result, stats) = testkit_alloc::measure(|| expensive());
//! assert!(stats.allocations < 100);
//! ```
//!
//! Counters are global, so concurrent measurements interfere: keep one
//! measuring test per test binary (or serialize), and remember that
//! [`measure`] also sees allocations from worker threads the closure
//! spawns — which is exactly right for the runners' phase model.
//!
//! When the allocator is *not* installed, counters simply stay at zero
//! and [`measure`] reports zeros — callers that want to distinguish
//! "cheap" from "not measured" should check [`is_installed`].

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_REQUEST: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every allocation.
///
/// `realloc` counts as one allocation of the new size (the data move is
/// the cost being tracked); `dealloc` is not counted.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAllocator;

fn record(size: usize) {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    ALLOCATED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    PEAK_REQUEST.fetch_max(size as u64, Ordering::Relaxed);
}

// SAFETY: delegates verbatim to `System`; the counter updates are
// lock-free atomics and never allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        // SAFETY: same layout contract as our caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        // SAFETY: same layout contract as our caller's.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from this allocator's `alloc` with `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size);
        // SAFETY: `ptr`/`layout` pair is our caller's obligation, passed through.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// A snapshot (or difference) of the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Heap allocations (including reallocs).
    pub allocations: u64,
    /// Total bytes requested across those allocations.
    pub allocated_bytes: u64,
    /// Largest single request seen (not differenced by [`measure`] —
    /// it is a high-water mark over the measured region).
    pub peak_request: u64,
}

/// Current absolute counter values.
pub fn snapshot() -> AllocStats {
    AllocStats {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        allocated_bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
        peak_request: PEAK_REQUEST.load(Ordering::Relaxed),
    }
}

/// Run `f`, returning its result plus the allocation activity it caused
/// (process-wide: includes threads `f` spawns, and anything else running
/// concurrently — keep measured regions exclusive).
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, AllocStats) {
    PEAK_REQUEST.store(0, Ordering::Relaxed);
    let before = snapshot();
    let value = f();
    let after = snapshot();
    (
        value,
        AllocStats {
            allocations: after.allocations - before.allocations,
            allocated_bytes: after.allocated_bytes - before.allocated_bytes,
            peak_request: after.peak_request,
        },
    )
}

/// Is the counting allocator actually installed as the global allocator
/// in this process? (Detected by allocating once and looking at the
/// counters.)
pub fn is_installed() -> bool {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let probe = vec![0u8; 32];
    std::hint::black_box(&probe);
    ALLOCATIONS.load(Ordering::Relaxed) != before
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is not installed in this test binary, so counters
    // stay flat — which is itself the contract worth pinning.
    #[test]
    fn uninstalled_counters_stay_flat() {
        let (v, stats) = measure(|| vec![1u8, 2, 3]);
        assert_eq!(v.len(), 3);
        assert_eq!(stats.allocations, 0);
        assert!(!is_installed());
    }

    #[test]
    fn record_accumulates() {
        let before = snapshot();
        record(64);
        record(128);
        let after = snapshot();
        assert_eq!(after.allocations - before.allocations, 2);
        assert_eq!(after.allocated_bytes - before.allocated_bytes, 192);
        assert!(after.peak_request >= 128);
    }
}
