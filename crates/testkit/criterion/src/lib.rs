//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Supports the surface the workspace benches use — [`Criterion`],
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups,
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BenchmarkId`] and
//! [`black_box`] — with a simple adaptive wall-clock measurement and
//! plain-text reporting instead of statistics/plots. Passing `--test`
//! (as `cargo test` does for benches) runs each benchmark once, so
//! benches double as smoke tests.

#![forbid(unsafe_code)]
use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the shim treats all variants alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timed closure.
#[derive(Debug)]
pub struct Bencher {
    /// Total time and iterations of the measured run.
    measured: Option<(Duration, u64)>,
    smoke: bool,
}

impl Bencher {
    /// Time `routine` adaptively: double the batch until the measurement
    /// window is long enough to trust the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            black_box(routine());
            self.measured = Some((Duration::ZERO, 1));
            return;
        }
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
                self.measured = Some((elapsed, iters));
                return;
            }
            iters *= 2;
        }
    }

    /// Time `routine` over inputs produced by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke {
            black_box(routine(setup()));
            self.measured = Some((Duration::ZERO, 1));
            return;
        }
        for _ in 0..3 {
            black_box(routine(setup()));
        }
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(20) || iters >= 1 << 16 {
                self.measured = Some((elapsed, iters));
                return;
            }
            iters *= 2;
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), size);
    }
}

fn report(name: &str, measured: Option<(Duration, u64)>) {
    match measured {
        Some((elapsed, iters)) if iters > 0 && !elapsed.is_zero() => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            let (value, unit) = if ns >= 1e9 {
                (ns / 1e9, "s")
            } else if ns >= 1e6 {
                (ns / 1e6, "ms")
            } else if ns >= 1e3 {
                (ns / 1e3, "µs")
            } else {
                (ns, "ns")
            };
            println!("{name:<56} {value:>10.3} {unit}/iter  ({iters} iters)");
        }
        _ => println!("{name:<56}        ok (smoke)"),
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    smoke: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        // `cargo test` invokes bench targets with `--test`; `--bench` is
        // what `cargo bench` passes. Any other free argument filters by
        // substring, mirroring criterion's CLI.
        let smoke = args.iter().any(|a| a == "--test");
        let filter = args.iter().skip(1).find(|a| !a.starts_with("--")).cloned();
        Criterion { smoke, filter }
    }
}

impl Criterion {
    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.enabled(name) {
            let mut b = Bencher {
                measured: None,
                smoke: self.smoke,
            };
            f(&mut b);
            report(name, b.measured);
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes adaptively.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim sizes adaptively.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        if self.parent.enabled(&name) {
            let mut b = Bencher {
                measured: None,
                smoke: self.parent.smoke,
            };
            f(&mut b);
            report(&name, b.measured);
        }
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        if self.parent.enabled(&name) {
            let mut b = Bencher {
                measured: None,
                smoke: self.parent.smoke,
            };
            f(&mut b, input);
            report(&name, b.measured);
        }
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
