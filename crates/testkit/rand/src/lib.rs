//! Offline, API-compatible subset of the `rand` crate.
//!
//! Provides the slice of rand 0.8's surface the workspace uses:
//! [`rngs::StdRng`] (a SplitMix64 generator — **not** the ChaCha12 of real
//! rand, but deterministic per seed, which is all the simulator requires),
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng`],
//! and [`seq::SliceRandom::shuffle`].

#![forbid(unsafe_code)]
/// Values samplable from the uniform "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range on empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "gen_range on empty range");
                    let span = (hi - lo + 1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (lo + off as i128) as $t
                }
            }
        )*
    };
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The random-generation surface.
pub trait Rng {
    /// Next full-width value (the primitive every method builds on).
    fn next_u64(&mut self) -> u64;

    /// Draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Build deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: SplitMix64. Deterministic per
    /// seed; not cryptographic (neither is the simulator's use of it).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-scramble so consecutive small seeds land far apart in
            // the sequence space.
            let mut z = seed.wrapping_add(0xc4ceb9fe1a85ec53);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng {
                state: z ^ (z >> 31),
            }
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() as usize) % self.len()])
            }
        }
    }
}
