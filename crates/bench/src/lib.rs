//! # crdt-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§V). Each `src/bin/figN_*.rs` binary reproduces one
//! artifact; this library holds the shared machinery: running the full
//! protocol suite over a workload factory, ratio computation, and aligned
//! table printing.
//!
//! Run everything (reduced scale) with:
//!
//! ```text
//! cargo run --release -p crdt-bench --bin all_experiments
//! ```
//!
//! ## Beyond the paper: the `scenarios` experiment family
//!
//! The paper's evaluation is a static 15-node topology. The `scenarios`
//! binary (module [`scenarios`]) extends the BP/RR ablation into fault
//! regimes, driving every [`crdt_sync::ProtocolKind`] through built-in
//! fault schedules and emitting machine-readable `BENCH_scenarios.json`
//! (consumed by CI's `bench-smoke` regression gate):
//!
//! | scenario | shape | what it stresses |
//! |---|---|---|
//! | `partition_heal` | cluster splits in half at ¼ of the run, heals at ¾ | staleness windows, repair traffic vs. built-in recovery |
//! | `churn` | durable crash/restart + non-durable crash/restart + a join | bootstrap cost, stale-ack/vector handling after cold restarts |
//! | `flapping_link` | one edge flaps lossy (drop+dup+reorder) three times | loss tolerance: acked/anti-entropy self-heal, delta family needs repair |
//! | `rolling_restart` | every node durably restarted, one at a time | steady-state recovery cost of operational maintenance |
//!
//! ```text
//! cargo run --release -p crdt-bench --bin scenarios -- \
//!     --scenario partition_heal --protocol all --quick
//! ```
//!
//! ## Real sockets: the `net_loopback` experiment family
//!
//! The `net_loopback` binary (module [`net_loopback`]) runs the same
//! deterministic workload through the in-process simulator **and** a
//! real-TCP `crdt_net::LoopbackCluster`, reporting both ledgers in
//! `BENCH_net.json`: model-view bytes (byte-identical between the two
//! for the raw-δ kinds), the socket ledger (frames, wire bytes), and
//! artifact-only wall-clock convergence for the free-running scheduler
//! threads. CI gates the deterministic metrics against
//! `ci/bench-baseline/BENCH_net.json`:
//!
//! ```text
//! cargo run --release -p crdt-bench --bin net_loopback -- --quick --protocol all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crdt_lattice::{SizeModel, WireEncode};
use crdt_sim::{run_dyn_experiment, run_experiment, NetworkConfig, RunMetrics, Topology, Workload};
use crdt_sync::{
    BpDelta, BpRrDelta, ClassicDelta, DeltaCrdt, DeltaCrdtSmallLog, OpBased, Protocol,
    ProtocolKind, RrDelta, Scuttlebutt, ScuttlebuttGc, StateSync,
};
use crdt_types::Crdt;

/// One protocol's results for one experiment.
#[derive(Debug, Clone)]
pub struct Run {
    /// Protocol label (matches the paper's figures).
    pub name: &'static str,
    /// Collected metrics.
    pub metrics: RunMetrics,
}

/// Which protocols to include in a suite run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// All eight protocols (Figs. 7–10).
    Full,
    /// Only delta variants + state (Fig. 1 style).
    DeltaFamily,
    /// Classic vs BP+RR (the Retwis comparison, Figs. 11–12).
    ClassicVsBpRr,
    /// BP+RR against the ∆-CRDT baseline of \[31\] (extension study):
    /// state, classic, BP+RR, ∆-CRDT (64-entry log), ∆-CRDT (4-entry log).
    DeltaCrdtStudy,
}

/// Run the protocol suite over identical replayed workloads.
///
/// `make` must build a *fresh* workload per call (deterministic per seed)
/// so each protocol sees the same operation stream.
pub fn run_suite<C, W>(
    suite: Suite,
    topology: &Topology,
    net_seed: u64,
    model: SizeModel,
    rounds: usize,
    make: impl Fn() -> W,
) -> Vec<Run>
where
    C: Crdt,
    W: Workload<C>,
{
    let net = NetworkConfig::reliable(net_seed);
    let mut runs = Vec::new();
    macro_rules! one {
        ($p:ty) => {{
            let mut w = make();
            runs.push(Run {
                name: <$p as Protocol<C>>::NAME,
                metrics: run_experiment::<C, $p>(topology.clone(), net, model, &mut w, rounds),
            });
        }};
    }
    match suite {
        Suite::Full => {
            one!(StateSync<C>);
            one!(ClassicDelta<C>);
            one!(BpDelta<C>);
            one!(RrDelta<C>);
            one!(BpRrDelta<C>);
            one!(Scuttlebutt<C>);
            one!(ScuttlebuttGc<C>);
            one!(OpBased<C>);
        }
        Suite::DeltaFamily => {
            one!(StateSync<C>);
            one!(ClassicDelta<C>);
            one!(BpDelta<C>);
            one!(RrDelta<C>);
            one!(BpRrDelta<C>);
        }
        Suite::ClassicVsBpRr => {
            one!(ClassicDelta<C>);
            one!(BpRrDelta<C>);
        }
        Suite::DeltaCrdtStudy => {
            one!(StateSync<C>);
            one!(ClassicDelta<C>);
            one!(BpRrDelta<C>);
            one!(DeltaCrdt<C>);
            one!(DeltaCrdtSmallLog<C>);
        }
    }
    runs
}

/// Run a **runtime-selected** set of protocols over identical replayed
/// workloads, through the type-erased engine layer (`DynRunner`).
///
/// The erased path produces byte-identical accounting to the generic
/// path (the engine-parity tests pin that), so [`run_suite`] and
/// `run_dyn_suite` rows are interchangeable in the figures; this variant
/// exists so binaries can accept `--protocol` flags instead of being
/// monomorphized over a fixed list.
pub fn run_dyn_suite<C, W>(
    kinds: &[ProtocolKind],
    topology: &Topology,
    net_seed: u64,
    model: SizeModel,
    rounds: usize,
    make: impl Fn() -> W,
) -> Vec<Run>
where
    C: Crdt + WireEncode + 'static,
    C::Op: WireEncode + 'static,
    W: Workload<C>,
{
    let net = NetworkConfig::reliable(net_seed);
    kinds
        .iter()
        .map(|&kind| {
            let mut w = make();
            Run {
                name: kind.name(),
                metrics: run_dyn_experiment::<C>(
                    kind,
                    topology.clone(),
                    net,
                    model,
                    &mut w,
                    rounds,
                ),
            }
        })
        .collect()
}

/// Parse every `--protocol <kind>` (repeatable, any [`ProtocolKind`]
/// spelling) from `std::env::args`; `default` when none given.
///
/// `--protocol all` selects the full suite. Invalid or missing values
/// print the accepted spellings to stderr and exit with status 2.
pub fn protocols_from_args(default: &[ProtocolKind]) -> Vec<ProtocolKind> {
    let usage_exit = |msg: &str| -> ! {
        eprintln!("error: {msg}");
        eprintln!(
            "usage: --protocol <kind> (repeatable), where <kind> is `all` or one of: {}",
            ProtocolKind::ALL.map(|k| k.id()).join(", ")
        );
        std::process::exit(2);
    };
    let args: Vec<String> = std::env::args().collect();
    let mut kinds = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--protocol" {
            let Some(value) = args.get(i + 1) else {
                usage_exit("--protocol needs a value");
            };
            if value == "all" {
                kinds.extend(ProtocolKind::ALL);
            } else {
                match value.parse() {
                    Ok(kind) => kinds.push(kind),
                    Err(e) => usage_exit(&format!("{e}")),
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    if kinds.is_empty() {
        kinds.extend_from_slice(default);
    }
    kinds
}

/// Find a run by protocol name.
pub fn find<'a>(runs: &'a [Run], name: &str) -> &'a Run {
    runs.iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("protocol {name} missing from suite"))
}

/// The pass limit for a gated regression metric:
/// `max(base × (1 + tolerance), epsilon)`.
///
/// The multiplicative rule alone misbehaves at the bottom of the range.
/// At a **zero** baseline it degenerates to `limit = 0` — a ratio-based
/// formulation divides by zero, and any non-zero current value (or
/// none, under `>=` spellings) trips the gate — yet several metrics are
/// legitimately zero (the self-healing kinds report zero repair bytes)
/// and must still be caught if they suddenly need kilobytes of repair.
/// At **tiny** baselines it forbids harmless absolute jitter: a
/// convergence-rounds baseline of 1 would fail on any +1. The absolute
/// `epsilon` is therefore a floor on the limit, sized per metric to the
/// smallest regression worth failing CI over.
pub fn gate_limit(base: f64, tolerance: f64, epsilon: f64) -> f64 {
    (base * (1.0 + tolerance)).max(epsilon)
}

/// Shared regression-gate core for `BENCH_*.json` reports.
///
/// Rows are matched by rendering each of `key_fields` (strings verbatim,
/// numbers as `{:.3}`). For every baseline row, the current report must
/// contain the row, the row must have `"converged": true`, and each
/// `(metric, epsilon)` of `gated` must satisfy
/// `current ≤ gate_limit(baseline, tolerance, epsilon)`. A metric absent
/// from the *current* row is skipped — the only such case in practice is
/// a `null` `convergence_rounds`, which the converged check already
/// reports. Improvements always pass. Returns human-readable violations.
pub fn check_regression_gate(
    current: &json::Json,
    baseline: &json::Json,
    tolerance: f64,
    key_fields: &[&str],
    gated: &[(&str, f64)],
) -> Vec<String> {
    use json::Json;
    let mut violations = Vec::new();
    let empty: &[Json] = &[];
    let rows = |doc: &Json| -> Vec<Json> {
        doc.get("results")
            .and_then(Json::as_array)
            .unwrap_or(empty)
            .to_vec()
    };
    let key = |row: &Json| -> Vec<String> {
        key_fields
            .iter()
            .map(|f| match row.get(f) {
                Some(Json::Str(s)) => s.clone(),
                Some(v) => v.as_f64().map_or_else(String::new, |n| format!("{n:.3}")),
                None => String::new(),
            })
            .collect()
    };
    let label = |row: &Json| -> String {
        key_fields
            .iter()
            .zip(key(row))
            .map(|(f, v)| format!("{f}={v}"))
            .collect::<Vec<_>>()
            .join("/")
    };
    let current_rows = rows(current);
    for base in rows(baseline) {
        let label = label(&base);
        let Some(cur) = current_rows.iter().find(|r| key(r) == key(&base)) else {
            violations.push(format!("{label}: missing from current run"));
            continue;
        };
        if cur.get("converged").and_then(Json::as_bool) != Some(true) {
            violations.push(format!("{label}: did not converge"));
            continue;
        }
        for &(metric, epsilon) in gated {
            let base_v = base.get(metric).and_then(Json::as_f64).unwrap_or(0.0);
            let Some(cur_v) = cur.get(metric).and_then(Json::as_f64) else {
                continue;
            };
            let limit = gate_limit(base_v, tolerance, epsilon);
            if cur_v > limit {
                violations.push(format!(
                    "{label}: {metric} regressed {base_v:.0} → {cur_v:.0} \
                     (limit {limit:.0} at {:.0}% tolerance)",
                    tolerance * 100.0
                ));
            }
        }
    }
    violations
}

/// The value following a `--flag` in `std::env::args`, if the flag is
/// present; exits with status 2 when the flag is given without a value.
pub fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .map(|i| match args.get(i + 1) {
            Some(v) => v.clone(),
            None => {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            }
        })
}

/// Ratio `a / b`, guarding division by zero.
pub fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        if a == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a as f64 / b as f64
    }
}

/// Scale flag: `--quick` shrinks experiments for CI; default is paper
/// scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale parameters.
    Full,
    /// Reduced parameters for smoke runs.
    Quick,
}

impl Scale {
    /// Parse from `std::env::args`.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Pick a value by scale.
    pub fn pick<T>(self, full: T, quick: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Quick => quick,
        }
    }
}

/// Print an aligned table (human-readable, plus greppable `==` title).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let headers_owned: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&headers_owned));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format a ratio for display.
pub fn fmt_ratio(r: f64) -> String {
    if r.is_infinite() {
        "inf".to_string()
    } else {
        format!("{r:.2}")
    }
}

/// Format bytes human-readably.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: &[&str] = &["B", "KB", "MB", "GB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

/// Canonical transmission-ratio rows (each protocol vs BP+RR) used by the
/// Fig. 7/8 binaries. Panics if BP+RR is absent — the figure suites always
/// include it; runtime-selected sets should use
/// [`transmission_rows_vs_best`].
pub fn transmission_ratio_rows(runs: &[Run]) -> Vec<Vec<String>> {
    transmission_rows_vs(runs, &find(runs, "delta+BP+RR").metrics)
}

/// Transmission-ratio rows against BP+RR when present, else against the
/// first run — for runtime-selected protocol sets where the baseline is
/// not guaranteed to be in the mix.
pub fn transmission_rows_vs_best(runs: &[Run]) -> Vec<Vec<String>> {
    let base = runs
        .iter()
        .find(|r| r.name == ProtocolKind::BpRr.name())
        .unwrap_or(&runs[0]);
    transmission_rows_vs(runs, &base.metrics.clone())
}

fn transmission_rows_vs(runs: &[Run], base: &RunMetrics) -> Vec<Vec<String>> {
    let (base_elems, base_bytes) = (base.total_elements(), base.total_bytes());
    runs.iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.metrics.total_elements().to_string(),
                fmt_ratio(ratio(r.metrics.total_elements(), base_elems)),
                fmt_bytes(r.metrics.total_bytes()),
                fmt_ratio(ratio(r.metrics.total_bytes(), base_bytes)),
                format!("{:.1}%", 100.0 * r.metrics.metadata_fraction()),
            ]
        })
        .collect()
}

/// Headers matching [`transmission_ratio_rows`]. The paper's transmission
/// figures compare *all* traffic — payload plus synchronization metadata —
/// which is why the bytes ratio (not the element count) is the headline
/// column: vector-based protocols pay for their digests.
pub const TRANSMISSION_HEADERS: &[&str] = &[
    "protocol",
    "elements",
    "elem ratio",
    "total bytes",
    "bytes ratio vs BP+RR",
    "metadata %",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_lattice::ReplicaId;
    use crdt_types::{GSet, GSetOp};

    fn unique_adds(n: usize, events: usize) -> impl FnMut(ReplicaId, usize) -> Vec<GSetOp<u64>> {
        move |node: ReplicaId, round: usize| {
            if round >= events {
                return Vec::new();
            }
            vec![GSetOp::Add((round * n + node.index()) as u64)]
        }
    }

    #[test]
    fn full_suite_runs_and_converges() {
        let n = 6;
        let topo = Topology::partial_mesh(n, 4);
        let runs =
            run_suite::<GSet<u64>, _>(Suite::Full, &topo, 1, SizeModel::compact(), 5, || {
                unique_adds(n, 5)
            });
        assert_eq!(runs.len(), 8);
        for r in &runs {
            assert!(r.metrics.total_messages() > 0, "{} sent nothing", r.name);
        }
        let classic = find(&runs, "delta").metrics.total_elements();
        let bprr = find(&runs, "delta+BP+RR").metrics.total_elements();
        assert!(bprr < classic);
        let rows = transmission_ratio_rows(&runs);
        assert_eq!(rows.len(), 8);
    }

    #[test]
    fn gate_limit_floors_zero_and_tiny_baselines() {
        // Zero baseline: the epsilon is the whole limit.
        assert_eq!(gate_limit(0.0, 0.25, 256.0), 256.0);
        // Tiny integer baseline (1 convergence round): the floor keeps
        // ±1 absolute jitter from failing a 25% gate.
        assert_eq!(gate_limit(1.0, 0.25, 2.0), 2.0);
        // Ordinary baselines gate multiplicatively.
        assert_eq!(gate_limit(1000.0, 0.25, 256.0), 1250.0);
    }

    #[test]
    fn ratio_and_formatting() {
        assert_eq!(ratio(10, 5), 2.0);
        assert_eq!(ratio(0, 0), 1.0);
        assert!(ratio(1, 0).is_infinite());
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KB");
        assert_eq!(fmt_ratio(1.5), "1.50");
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Full.pick(100, 5), 100);
        assert_eq!(Scale::Quick.pick(100, 5), 5);
    }
}

pub mod codec_bench;
pub mod experiments;
pub mod json;
pub mod merge_throughput;
pub mod net_loopback;
pub mod netload;
pub mod repair_scaling;
pub mod retwis_sharded;
pub mod scenarios;
