//! The `merge_throughput` experiment family: the cost of the flat dot
//! stores' hot loops — join, delta-apply, digest build, Merkle leaf
//! rehash — with **deterministic allocation counts** as the gated
//! metrics.
//!
//! The flat representation's contract is that steady-state
//! synchronization stops allocating: joining an already-covered state
//! is an allocation-free pre-scan, and re-encoding an unmutated state
//! serves the cached frame (a reference-count bump). This family pins
//! both at **zero allocations** (`epsilon = 0`: any allocation fails
//! the gate) and tracks the allocation budgets of the mutating paths.
//! Wall-clock throughput columns ride along in the report for the
//! artifact but are never gated — only allocation counts are
//! deterministic across machines.
//!
//! `BENCH_merge.json` is gated in CI against
//! `ci/bench-baseline/BENCH_merge.json`; rows whose producing binary
//! lacked the counting allocator carry `"measured": false` and are
//! dropped from both sides of the gate.

use std::time::Instant;

use crdt_lattice::{Lattice, ReplicaId, WireEncode};
use crdt_sync::digest::Digest;
use crdt_sync::MerkleTree;
use crdt_types::AWSet;

use crate::json::Json;
use crate::{print_table, Scale};

type Set = AWSet<u64>;

/// Replicas writing into the measured states.
const WRITERS: u32 = 4;
/// Elements in the small delta of the `delta_apply` case.
const DELTA_ELEMS: u64 = 16;
/// Keys rehashed by the `merkle_rehash` case.
const DIRTY_KEYS: u64 = 64;

/// One state size's measurements across every hot loop.
#[derive(Debug, Clone)]
pub struct MergeRow {
    /// Elements in each pre-built state.
    pub elements: usize,
    /// Allocations joining a disjoint same-sized state.
    pub join_fresh_allocs: u64,
    /// Join throughput, million dots/s (artifact only, never gated).
    pub join_fresh_mdots: f64,
    /// Allocations joining an already-covered state — the steady-state
    /// anti-entropy case. Must be **zero**.
    pub join_unchanged_allocs: u64,
    /// Allocations applying a small fresh delta into the big state.
    pub delta_apply_allocs: u64,
    /// Allocations of the first encode after a mutation.
    pub encode_fresh_allocs: u64,
    /// Allocations re-encoding the unmutated state — the cached-frame
    /// case. Must be **zero**.
    pub encode_cached_allocs: u64,
    /// Allocations building a §VI digest of the state.
    pub digest_allocs: u64,
    /// Digest throughput, million dots/s (artifact only).
    pub digest_mdots: f64,
    /// Allocations rehashing [`DIRTY_KEYS`] dirty Merkle leaves.
    pub merkle_rehash_allocs: u64,
    /// Merkle flush latency, nanoseconds (artifact only).
    pub merkle_flush_ns: f64,
    /// Were allocations actually counted (counting allocator installed
    /// in the producing binary)?
    pub measured: bool,
}

/// State sizes per scale.
fn sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Full => vec![1_024, 8_192, 65_536],
        Scale::Quick => vec![1_024],
    }
}

/// An `n`-element add-wins set written by [`WRITERS`] replicas starting
/// at `first_writer`, element values offset to match: disjoint writer
/// ranges give truly disjoint dot stores (same-replica states would
/// share dots and make the "fresh" join a covered no-op).
fn build_set(n: usize, first_writer: u32, offset: u64) -> Set {
    let mut s = Set::new();
    for i in 0..n as u64 {
        let writer = first_writer + (i % u64::from(WRITERS)) as u32;
        let _ = s.add(ReplicaId(writer), offset + i);
    }
    s
}

/// Million operations per second for `ops` items in `elapsed`.
fn mops(ops: u64, elapsed: std::time::Duration) -> f64 {
    ops as f64 / elapsed.as_secs_f64().max(1e-12) / 1e6
}

/// Measure every hot loop at one state size.
pub fn run_one(n: usize) -> MergeRow {
    let measured = testkit_alloc::is_installed();
    let base = build_set(n, 0, 0);

    // Fresh join: disjoint same-sized states, allocations on one run,
    // wall clock on an identically built second run.
    let mut target = base.clone();
    let other = build_set(n, WRITERS, 1 << 32);
    let (merged, join_stats) = testkit_alloc::measure(move || {
        assert!(
            target.join_assign(other),
            "disjoint join reported no change"
        );
        target
    });
    let mut timing_target = base.clone();
    let timing_other = build_set(n, WRITERS, 1 << 32);
    let start = Instant::now();
    timing_target.join_assign(timing_other);
    let join_fresh_mdots = mops(2 * n as u64, start.elapsed());

    // Covered join: the steady-state anti-entropy case. The incoming
    // clone happens outside the window; the join itself must detect
    // no-change without allocating.
    let mut steady = merged.clone();
    let covered = base.clone();
    let (steady, unchanged_stats) = testkit_alloc::measure(move || {
        assert!(!steady.join_assign(covered), "covered join reported change");
        steady
    });
    let mut merged = steady;

    // Delta apply: a small fresh delta produced by a peer that shares
    // the state's causal history.
    let mut producer = merged.clone();
    let mut delta = producer.add(ReplicaId(0), (1 << 33) | 1);
    for j in 1..DELTA_ELEMS {
        delta.join_assign(producer.add(ReplicaId(0), (1 << 33) | (1 + j)));
    }
    let (merged_back, delta_stats) = testkit_alloc::measure(move || {
        assert!(merged.join_assign(delta), "fresh delta reported no change");
        merged
    });
    let merged = merged_back;

    // Encode: first build after the mutation above, then the cached
    // re-serve (a reference-count bump, not a re-encode).
    let (frame, encode_fresh_stats) = testkit_alloc::measure(|| merged.encode_frame());
    let (frame2, encode_cached_stats) = testkit_alloc::measure(|| merged.encode_frame());
    assert_eq!(frame.as_ref(), frame2.as_ref(), "cached frame diverged");

    // Digest build (§VI repair handshake's per-object summary).
    let start = Instant::now();
    let timing_digest = Digest::of(&merged);
    let digest_elapsed = start.elapsed();
    let (digest, digest_stats) = testkit_alloc::measure(|| Digest::of(&merged));
    assert_eq!(digest.len(), timing_digest.len());
    let digest_mdots = mops(digest.len() as u64, digest_elapsed);

    // Merkle leaf rehash: a keyspace-sized tree with DIRTY_KEYS touched
    // objects, flushed through a cheap hash closure (the per-object
    // state hashing is benched by the cases above; this isolates the
    // tree's own rebuild cost).
    let mut tree: MerkleTree<u64> =
        MerkleTree::build(4, (0..n as u64).map(|k| (k, k.wrapping_mul(0x9e37_79b9))));
    let stride = (n as u64 / DIRTY_KEYS).max(1);
    for i in 0..DIRTY_KEYS {
        tree.touch((i * stride) % n as u64);
    }
    let start = Instant::now();
    let ((_root, tree), merkle_stats) = testkit_alloc::measure(move || {
        let root = tree.flush(|k| Some(k.wrapping_mul(0x9e37_79b9).rotate_left(17)));
        (root, tree)
    });
    let merkle_flush_ns = start.elapsed().as_nanos() as f64;
    assert!(!tree.has_dirty(), "flush must rehash every dirty leaf");

    MergeRow {
        elements: n,
        join_fresh_allocs: join_stats.allocations,
        join_fresh_mdots,
        join_unchanged_allocs: unchanged_stats.allocations,
        delta_apply_allocs: delta_stats.allocations,
        encode_fresh_allocs: encode_fresh_stats.allocations,
        encode_cached_allocs: encode_cached_stats.allocations,
        digest_allocs: digest_stats.allocations,
        digest_mdots,
        merkle_rehash_allocs: merkle_stats.allocations,
        merkle_flush_ns,
        measured,
    }
}

/// Run the size ladder at `scale`, printing the summary table.
pub fn run_suite(scale: Scale) -> Vec<MergeRow> {
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for n in sizes(scale) {
        let r = run_one(n);
        table.push(vec![
            r.elements.to_string(),
            r.join_fresh_allocs.to_string(),
            r.join_unchanged_allocs.to_string(),
            r.delta_apply_allocs.to_string(),
            r.encode_fresh_allocs.to_string(),
            r.encode_cached_allocs.to_string(),
            r.digest_allocs.to_string(),
            r.merkle_rehash_allocs.to_string(),
            format!("{:.1}", r.join_fresh_mdots),
            if r.measured { "yes" } else { "NO" }.to_string(),
        ]);
        rows.push(r);
    }
    print_table(
        "merge_throughput (allocations per operation; Mdots/s artifact-only)",
        &[
            "elements",
            "join fresh",
            "join unchanged",
            "delta apply",
            "encode fresh",
            "encode cached",
            "digest",
            "merkle rehash",
            "join Mdots/s",
            "measured",
        ],
        &table,
    );
    rows
}

/// The in-binary acceptance bar: steady state must not allocate.
///
/// Joining an already-covered state and re-encoding an unmutated state
/// are the per-round hot loops of a converged cluster; the flat layout
/// exists so both cost zero allocations. Only enforced when the
/// counting allocator is installed.
pub fn assert_steady_state_alloc_free(rows: &[MergeRow]) -> Result<(), String> {
    for r in rows {
        if !r.measured {
            continue;
        }
        if r.join_unchanged_allocs != 0 {
            return Err(format!(
                "{} elements: covered join allocated {} times (must be 0)",
                r.elements, r.join_unchanged_allocs
            ));
        }
        if r.encode_cached_allocs != 0 {
            return Err(format!(
                "{} elements: cached encode allocated {} times (must be 0)",
                r.elements, r.encode_cached_allocs
            ));
        }
    }
    Ok(())
}

/// Render rows as the `BENCH_merge.json` document.
pub fn report_to_json(rows: &[MergeRow], quick: bool) -> Json {
    let results = rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("elements".into(), Json::num(r.elements as u64)),
                ("join_fresh_allocs".into(), Json::num(r.join_fresh_allocs)),
                ("join_fresh_mdots".into(), Json::Num(r.join_fresh_mdots)),
                (
                    "join_unchanged_allocs".into(),
                    Json::num(r.join_unchanged_allocs),
                ),
                ("delta_apply_allocs".into(), Json::num(r.delta_apply_allocs)),
                (
                    "encode_fresh_allocs".into(),
                    Json::num(r.encode_fresh_allocs),
                ),
                (
                    "encode_cached_allocs".into(),
                    Json::num(r.encode_cached_allocs),
                ),
                ("digest_allocs".into(), Json::num(r.digest_allocs)),
                ("digest_mdots".into(), Json::Num(r.digest_mdots)),
                (
                    "merkle_rehash_allocs".into(),
                    Json::num(r.merkle_rehash_allocs),
                ),
                ("merkle_flush_ns".into(), Json::Num(r.merkle_flush_ns)),
                ("measured".into(), Json::Bool(r.measured)),
                ("converged".into(), Json::Bool(true)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::str("bench-merge/v1")),
        ("quick".into(), Json::Bool(quick)),
        ("results".into(), Json::Arr(results)),
    ])
}

/// Write the JSON report to `path`.
pub fn write_report(path: &str, rows: &[MergeRow], quick: bool) -> std::io::Result<()> {
    std::fs::write(path, report_to_json(rows, quick).pretty())
}

/// Gated metrics: allocation counts only (wall clock is never gated).
/// The two steady-state counts carry `epsilon = 0` — a zero baseline
/// with a zero floor means **any** allocation fails the gate — while
/// the mutating paths get small absolute floors per
/// [`crate::gate_limit`].
const GATED: [(&str, f64); 7] = [
    ("join_fresh_allocs", 64.0),
    ("join_unchanged_allocs", 0.0),
    ("delta_apply_allocs", 16.0),
    ("encode_fresh_allocs", 16.0),
    ("encode_cached_allocs", 0.0),
    ("digest_allocs", 64.0),
    ("merkle_rehash_allocs", 64.0),
];

/// Compare a current report to the checked-in baseline. Rows match on
/// `elements`; unmeasured rows are dropped from both sides first, so a
/// current run that stopped measuring against a measured baseline fails
/// as "missing" rather than silently passing.
pub fn check_regression(current: &Json, baseline: &Json, tolerance: f64) -> Vec<String> {
    let strip = |doc: &Json| -> Json {
        let rows = doc
            .get("results")
            .and_then(Json::as_array)
            .map(|rows| {
                rows.iter()
                    .filter(|r| r.get("measured").and_then(Json::as_bool) != Some(false))
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default();
        Json::Obj(vec![("results".into(), Json::Arr(rows))])
    };
    crate::check_regression_gate(
        &strip(current),
        &strip(baseline),
        tolerance,
        &["elements"],
        &GATED,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One quick-scale point: well-formed report, steady-state bar
    /// holds, self-compared gate passes. (The library test binary has
    /// no counting allocator, so rows carry `measured: false` and the
    /// alloc bar is vacuous here — the bin enforces it for real.)
    #[test]
    fn quick_point_reports_and_gates() {
        let rows = vec![run_one(512)];
        assert_steady_state_alloc_free(&rows).expect("steady-state bar");
        let doc = report_to_json(&rows, true);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("bench-merge/v1")
        );
        let violations = check_regression(&doc, &doc, 0.25);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
