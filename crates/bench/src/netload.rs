//! The `netload` experiment family: load generation against the
//! event-driven `crdt-net` reactor.
//!
//! Four stages, one JSON report (`BENCH_netload.json`):
//!
//! 1. **lockstep** (per protocol, *gated*) — a seeded Zipf update
//!    workload driven through a lockstep [`LoopbackCluster`]. The drain
//!    schedule makes every byte/frame metric a pure function of the
//!    seed, so model-view traffic and the socket ledger are gated
//!    against `ci/bench-baseline/BENCH_netload.json`.
//! 2. **coalesce** (*gated*) — a frozen link accumulates a backlog of
//!    same-destination batches; the thaw must fold them into a single
//!    `BatchEnvelope` frame. Frame counts and the coalescing ratio are
//!    deterministic.
//! 3. **openloop** (*artifact only*) — an open-loop client swarm
//!    (target ops/s, Zipf keys, latency measured from the scheduled
//!    send time so coordinated omission cannot hide stalls) against a
//!    live node. Wall-clock throughput and p50/p99/p999 are
//!    machine-dependent and never gated.
//! 4. **c10k** (*artifact only*, asserted in-binary) — one node
//!    holding 1,000+ concurrent client connections, every one of them
//!    served, with zero bad frames. `--require-c10k` turns a shortfall
//!    into a non-zero exit for CI.
//!
//! Baseline discipline: the checked-in baseline contains **only** the
//! deterministic lockstep and coalesce rows. [`check_regression`]
//! iterates baseline rows, so the nondeterministic stages are exempt by
//! construction — same convention as wall-clock columns elsewhere.

use std::time::{Duration, Instant};

use crdt_lattice::ReplicaId;
use crdt_net::framing::DEFAULT_MAX_FRAME_BYTES;
use crdt_net::{LoopbackCluster, NetClient, NodeConfig, NodeHandle};
use crdt_sync::ProtocolKind;
use crdt_types::{GSet, GSetOp};
use crdt_workloads::Zipf;
use delta_store::StoreConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::json::Json;
use crate::{print_table, Scale};

type Key = u64;
type Val = GSet<u64>;
type Client = NetClient<Key, Val>;

/// Scale parameters for the family.
#[derive(Debug, Clone, Copy)]
pub struct LoadShape {
    /// Lockstep cluster size.
    pub nodes: usize,
    /// Zipf key-space size (ranks).
    pub keys: usize,
    /// Zipf exponent (the paper's contention knob).
    pub zipf_s: f64,
    /// Updates per node in the lockstep stage.
    pub ops_per_node: usize,
    /// Open-loop swarm: client threads.
    pub swarm: usize,
    /// Open-loop swarm: target operations per second (all threads).
    pub target_ops: u64,
    /// Open-loop swarm: operations to schedule in total.
    pub total_ops: u64,
    /// Concurrent connections for the c10k stage.
    pub connections: usize,
}

impl LoadShape {
    /// The shape for `scale`.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Full => LoadShape {
                nodes: 3,
                keys: 32,
                zipf_s: 1.0,
                ops_per_node: 48,
                swarm: 8,
                target_ops: 2_000,
                total_ops: 4_000,
                connections: 1_200,
            },
            Scale::Quick => LoadShape {
                nodes: 3,
                keys: 16,
                zipf_s: 1.0,
                ops_per_node: 24,
                swarm: 4,
                target_ops: 1_000,
                total_ops: 1_000,
                connections: 1_100,
            },
        }
    }
}

/// The seeded Zipf update stream for the lockstep stage: deterministic
/// per `(seed, node)`, element values globally unique so every op grows
/// the lattice.
fn lockstep_ops(shape: &LoadShape) -> Vec<(usize, Key, GSetOp<u64>)> {
    let zipf = Zipf::new(shape.keys, shape.zipf_s);
    let mut ops = Vec::new();
    for node in 0..shape.nodes {
        let mut rng = StdRng::seed_from_u64(0xBEEF + node as u64);
        for i in 0..shape.ops_per_node {
            let key = zipf.sample(&mut rng) as u64;
            ops.push((node, key, GSetOp::Add((node as u64) << 32 | i as u64)));
        }
    }
    ops
}

/// One protocol's lockstep measurements (all deterministic, gated).
#[derive(Debug, Clone)]
pub struct LockstepOutcome {
    /// Which protocol ran.
    pub protocol: ProtocolKind,
    /// Did the cluster converge?
    pub converged: bool,
    /// Lockstep rounds to convergence.
    pub rounds: usize,
    /// Model view: batches shipped.
    pub messages: u64,
    /// Model view: payload bytes.
    pub payload_bytes: u64,
    /// Model view: metadata bytes.
    pub metadata_bytes: u64,
    /// Socket ledger: frames written.
    pub frames: u64,
    /// Socket ledger: wire bytes written.
    pub wire_bytes: u64,
    /// Backpressure stall transitions across the cluster.
    pub stalls: u64,
    /// Frames eliminated by write-side coalescing (0 in lockstep: the
    /// eager flush keeps queues empty — pinned by the baseline).
    pub coalesced: u64,
    /// Wall-clock ops/s through the socket clients (artifact only).
    pub ops_per_sec: u64,
    /// Node 0's full metrics exposition at convergence (artifact only —
    /// written out by `--metrics-out`).
    pub metrics: String,
}

/// Run the lockstep stage for one protocol.
pub fn run_lockstep(kind: ProtocolKind, shape: &LoadShape) -> LockstepOutcome {
    let ops = lockstep_ops(shape);
    let cfg = NodeConfig::new(StoreConfig::new(kind), shape.nodes);
    let mut net: LoopbackCluster<Key, Val> =
        LoopbackCluster::full_mesh(shape.nodes, cfg).expect("spawn loopback cluster");
    let start = Instant::now();
    for (node, key, op) in &ops {
        net.update(*node, *key, op);
    }
    let report = net.run_until_converged(48);
    let elapsed = start.elapsed();
    let stats = net.stats();
    let wire = net.wire_totals();
    let probes = net.probes();
    let stalls: u64 = probes.iter().map(|p| p.stall_events).sum();
    let coalesced: u64 = probes.iter().map(|p| p.coalesced_frames).sum();
    let metrics = net.node(0).obs().registry.exposition();
    LockstepOutcome {
        protocol: kind,
        converged: report.converged,
        rounds: report.rounds,
        messages: stats.messages,
        payload_bytes: stats.payload_bytes,
        metadata_bytes: stats.metadata_bytes,
        frames: wire.frames,
        wire_bytes: wire.bytes,
        stalls,
        coalesced,
        ops_per_sec: (ops.len() as f64 / elapsed.as_secs_f64().max(1e-9)) as u64,
        metrics,
    }
}

/// Render the per-protocol lockstep metric expositions as one text
/// artifact: a `=== <protocol> ===` header per row, exposition lines
/// below.
pub fn metrics_artifact(report: &NetloadReport) -> String {
    let mut out = String::new();
    for o in &report.lockstep {
        out.push_str(&format!("=== {} (node 0, lockstep) ===\n", o.protocol));
        out.push_str(&o.metrics);
        out.push('\n');
    }
    out
}

/// Coalescing stage measurements (all deterministic, gated).
#[derive(Debug, Clone)]
pub struct CoalesceOutcome {
    /// Batches parked on the frozen link before the thaw.
    pub backlog: u64,
    /// Frames actually written at the thaw.
    pub frames_flushed: u64,
    /// Frames eliminated by folding (`backlog - frames_flushed`).
    pub coalesced: u64,
    /// Wire bytes written at the thaw.
    pub wire_bytes: u64,
    /// Did the receiver converge on the folded traffic?
    pub converged: bool,
}

/// Freeze a link, accumulate a same-destination backlog, thaw: the
/// write queue must fold the backlog into a single batch frame and the
/// receiver must still absorb everything.
pub fn run_coalesce() -> CoalesceOutcome {
    const BACKLOG: u64 = 6;
    let cfg = NodeConfig::new(StoreConfig::new(ProtocolKind::BpRr), 2);
    let mut net: LoopbackCluster<Key, Val> =
        LoopbackCluster::full_mesh(2, cfg).expect("spawn pair");
    // Quiesce the pair so the frozen-window traffic is the whole ledger
    // delta.
    net.sync_round();
    let before = net.node(0).probe_local();
    net.freeze_link(0, 1);
    for i in 0..BACKLOG {
        net.update(0, 7, &GSetOp::Add(1_000 + i));
        net.node(0).sync_now();
    }
    net.thaw_link(0, 1);
    let report = net.run_until_converged(8);
    let after = net.node(0).probe_local();
    let frames_flushed = after.frames_sent - before.frames_sent;
    CoalesceOutcome {
        backlog: BACKLOG,
        frames_flushed,
        coalesced: after.coalesced_frames - before.coalesced_frames,
        wire_bytes: after.wire_bytes_sent - before.wire_bytes_sent,
        converged: report.converged,
    }
}

/// Open-loop swarm measurements (wall-clock, artifact only).
#[derive(Debug, Clone)]
pub struct OpenLoopOutcome {
    /// Client threads.
    pub swarm: usize,
    /// Target operations per second.
    pub target_ops: u64,
    /// Operations completed.
    pub completed: u64,
    /// Operations that failed (any error is a red flag).
    pub errors: u64,
    /// Achieved operations per second.
    pub achieved_ops: u64,
    /// Latency percentiles in microseconds, from the *scheduled* send
    /// time (open-loop: a stalled server inflates these, as it should).
    pub p50_us: u64,
    /// 99th percentile latency (µs).
    pub p99_us: u64,
    /// 99.9th percentile latency (µs).
    pub p999_us: u64,
    /// Backpressure stall transitions observed at the node.
    pub stalls: u64,
}

/// Drive an open-loop update/get swarm against one live node.
pub fn run_openloop(shape: &LoadShape) -> OpenLoopOutcome {
    let node: NodeHandle<Key, Val> = NodeHandle::spawn(
        ReplicaId(0),
        NodeConfig::new(StoreConfig::new(ProtocolKind::BpRr), 1),
    )
    .expect("spawn node");
    let addr = node.addr();
    let swarm = shape.swarm.max(1);
    let per_thread = (shape.total_ops / swarm as u64).max(1);
    let interval = Duration::from_secs_f64(swarm as f64 / shape.target_ops as f64);
    let start = Instant::now() + Duration::from_millis(5);
    let deadline = start + Duration::from_secs(30);

    let workers: Vec<_> = (0..swarm)
        .map(|t| {
            let keys = shape.keys;
            let zipf_s = shape.zipf_s;
            std::thread::spawn(move || -> (u64, u64, Vec<u64>) {
                let zipf = Zipf::new(keys, zipf_s);
                let mut rng = StdRng::seed_from_u64(0xF00D + t as u64);
                let mut client: Client = match NetClient::connect(addr, DEFAULT_MAX_FRAME_BYTES) {
                    Ok(c) => c,
                    Err(_) => return (0, per_thread, Vec::new()),
                };
                let mut latencies = Vec::with_capacity(per_thread as usize);
                let (mut done, mut errors) = (0u64, 0u64);
                for i in 0..per_thread {
                    // Open-loop: op i is *scheduled*, not paced by the
                    // previous reply.
                    let scheduled =
                        start + interval * (i as u32) + interval / swarm as u32 * t as u32;
                    while Instant::now() < scheduled {
                        std::thread::sleep(Duration::from_micros(50));
                    }
                    if Instant::now() > deadline {
                        errors += per_thread - i;
                        break;
                    }
                    let key = zipf.sample(&mut rng) as u64;
                    let ok = if i % 4 == 3 {
                        client.get(key).is_ok()
                    } else {
                        client
                            .update(key, &GSetOp::Add((t as u64) << 32 | i))
                            .is_ok()
                    };
                    if ok {
                        done += 1;
                        latencies.push(scheduled.elapsed().as_micros() as u64);
                    } else {
                        errors += 1;
                    }
                }
                (done, errors, latencies)
            })
        })
        .collect();

    let mut latencies: Vec<u64> = Vec::new();
    let (mut completed, mut errors) = (0u64, 0u64);
    for w in workers {
        let (done, errs, lats) = w.join().expect("swarm thread panicked");
        completed += done;
        errors += errs;
        latencies.extend(lats);
    }
    let elapsed = start.elapsed();
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len());
        latencies[idx - 1]
    };
    let stalls = node.probe_local().stall_events;
    node.shutdown_untyped();
    OpenLoopOutcome {
        swarm,
        target_ops: shape.target_ops,
        completed,
        errors,
        achieved_ops: (completed as f64 / elapsed.as_secs_f64().max(1e-9)) as u64,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        p999_us: pct(0.999),
        stalls,
    }
}

/// C10K stage measurements.
#[derive(Debug, Clone)]
pub struct C10kOutcome {
    /// Connections requested.
    pub target: usize,
    /// Connections concurrently live at the node at the high-water
    /// check (all clients open).
    pub concurrent: u64,
    /// Requests served across all connections.
    pub served: u64,
    /// Client-side failures (connect or request).
    pub errors: u64,
    /// Undecodable frames at the node (must be 0).
    pub bad_frames: u64,
    /// Wall-clock of the whole stage, artifact only.
    pub wall_ms: u64,
}

/// Hold `shape.connections` concurrent clients against one node, serve
/// a request on every one, and read back the node's high-water
/// connection count.
pub fn run_c10k(shape: &LoadShape) -> C10kOutcome {
    let node: NodeHandle<Key, Val> = NodeHandle::spawn(
        ReplicaId(0),
        NodeConfig::new(StoreConfig::new(ProtocolKind::BpRr), 1),
    )
    .expect("spawn node");
    node.update(1, &GSetOp::Add(42));
    let start = Instant::now();
    let mut clients: Vec<Client> = Vec::with_capacity(shape.connections);
    let mut errors = 0u64;
    for _ in 0..shape.connections {
        match NetClient::connect(node.addr(), DEFAULT_MAX_FRAME_BYTES) {
            Ok(c) => clients.push(c),
            Err(_) => errors += 1,
        }
    }
    // Every connection proves liveness with one served request.
    let mut served = 0u64;
    for c in clients.iter_mut() {
        match c.get(1) {
            Ok(Some(_)) => served += 1,
            _ => errors += 1,
        }
    }
    // High-water mark while every client is still open.
    let concurrent = node.live_connections();
    let bad_frames = node.probe_local().bad_frames;
    drop(clients);
    let wall_ms = start.elapsed().as_millis() as u64;
    node.shutdown_untyped();
    C10kOutcome {
        target: shape.connections,
        concurrent,
        served,
        errors,
        bad_frames,
        wall_ms,
    }
}

/// Everything one `netload` run produces.
#[derive(Debug, Clone)]
pub struct NetloadReport {
    /// Per-protocol lockstep outcomes (gated).
    pub lockstep: Vec<LockstepOutcome>,
    /// The coalescing outcome (gated).
    pub coalesce: CoalesceOutcome,
    /// The open-loop swarm outcome (artifact).
    pub openloop: OpenLoopOutcome,
    /// The c10k outcome (artifact + in-binary assertion).
    pub c10k: C10kOutcome,
}

/// Run the whole family, printing progress tables.
pub fn run_family(scale: Scale, kinds: &[ProtocolKind], shape: &LoadShape) -> NetloadReport {
    let lockstep: Vec<LockstepOutcome> = kinds.iter().map(|&k| run_lockstep(k, shape)).collect();
    print_table(
        &format!(
            "netload lockstep ({} nodes, {} zipf({}) ops/node)",
            shape.nodes, shape.ops_per_node, shape.zipf_s
        ),
        &[
            "protocol", "rounds", "messages", "bytes", "frames", "wire B", "ops/s",
        ],
        &lockstep
            .iter()
            .map(|o| {
                vec![
                    o.protocol.name().to_string(),
                    if o.converged {
                        o.rounds.to_string()
                    } else {
                        "NO".to_string()
                    },
                    o.messages.to_string(),
                    (o.payload_bytes + o.metadata_bytes).to_string(),
                    o.frames.to_string(),
                    o.wire_bytes.to_string(),
                    o.ops_per_sec.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let coalesce = run_coalesce();
    println!(
        "\ncoalesce: {} queued batches -> {} frames at thaw ({} folded, {} wire B, ratio {:.2})",
        coalesce.backlog,
        coalesce.frames_flushed,
        coalesce.coalesced,
        coalesce.wire_bytes,
        coalesce.backlog as f64 / coalesce.frames_flushed.max(1) as f64,
    );

    let openloop = run_openloop(shape);
    println!(
        "openloop: {} threads @ {} ops/s target -> {} ops/s achieved ({} ops, {} errors), \
         p50 {} µs / p99 {} µs / p999 {} µs, {} stalls",
        openloop.swarm,
        openloop.target_ops,
        openloop.achieved_ops,
        openloop.completed,
        openloop.errors,
        openloop.p50_us,
        openloop.p99_us,
        openloop.p999_us,
        openloop.stalls,
    );

    let c10k = run_c10k(shape);
    println!(
        "c10k: {}/{} concurrent connections, {} served, {} errors, {} bad frames, {} ms",
        c10k.concurrent, c10k.target, c10k.served, c10k.errors, c10k.bad_frames, c10k.wall_ms,
    );
    let _ = scale;
    NetloadReport {
        lockstep,
        coalesce,
        openloop,
        c10k,
    }
}

/// Render the report as the `BENCH_netload.json` document. Rows are
/// keyed `(protocol, stage)`; only `lockstep` and `coalesce` rows carry
/// gated metrics.
pub fn report_to_json(report: &NetloadReport, quick: bool) -> Json {
    let mut rows: Vec<Json> = report
        .lockstep
        .iter()
        .map(|o| {
            Json::Obj(vec![
                ("protocol".into(), Json::str(o.protocol.id())),
                ("stage".into(), Json::str("lockstep")),
                ("converged".into(), Json::Bool(o.converged)),
                ("rounds".into(), Json::num(o.rounds as u64)),
                ("messages".into(), Json::num(o.messages)),
                ("payload_bytes".into(), Json::num(o.payload_bytes)),
                ("metadata_bytes".into(), Json::num(o.metadata_bytes)),
                (
                    "total_bytes".into(),
                    Json::num(o.payload_bytes + o.metadata_bytes),
                ),
                ("frames".into(), Json::num(o.frames)),
                ("wire_bytes".into(), Json::num(o.wire_bytes)),
                ("stalls".into(), Json::num(o.stalls)),
                ("coalesced_frames".into(), Json::num(o.coalesced)),
                // Wall-clock throughput rides along, never gated.
                ("ops_per_sec".into(), Json::num(o.ops_per_sec)),
            ])
        })
        .collect();
    let c = &report.coalesce;
    rows.push(Json::Obj(vec![
        ("protocol".into(), Json::str("bp_rr")),
        ("stage".into(), Json::str("coalesce")),
        ("converged".into(), Json::Bool(c.converged)),
        ("backlog".into(), Json::num(c.backlog)),
        ("frames".into(), Json::num(c.frames_flushed)),
        ("coalesced_frames".into(), Json::num(c.coalesced)),
        ("wire_bytes".into(), Json::num(c.wire_bytes)),
        (
            "coalesce_ratio".into(),
            Json::Num(c.backlog as f64 / c.frames_flushed.max(1) as f64),
        ),
    ]));
    let o = &report.openloop;
    rows.push(Json::Obj(vec![
        ("protocol".into(), Json::str("bp_rr")),
        ("stage".into(), Json::str("openloop")),
        ("converged".into(), Json::Bool(o.errors == 0)),
        ("swarm".into(), Json::num(o.swarm as u64)),
        ("target_ops_per_sec".into(), Json::num(o.target_ops)),
        ("completed".into(), Json::num(o.completed)),
        ("errors".into(), Json::num(o.errors)),
        ("achieved_ops_per_sec".into(), Json::num(o.achieved_ops)),
        ("p50_us".into(), Json::num(o.p50_us)),
        ("p99_us".into(), Json::num(o.p99_us)),
        ("p999_us".into(), Json::num(o.p999_us)),
        ("stalls".into(), Json::num(o.stalls)),
    ]));
    let k = &report.c10k;
    rows.push(Json::Obj(vec![
        ("protocol".into(), Json::str("bp_rr")),
        ("stage".into(), Json::str("c10k")),
        (
            "converged".into(),
            Json::Bool(k.errors == 0 && k.bad_frames == 0),
        ),
        ("target_connections".into(), Json::num(k.target as u64)),
        ("concurrent_connections".into(), Json::num(k.concurrent)),
        ("served".into(), Json::num(k.served)),
        ("errors".into(), Json::num(k.errors)),
        ("bad_frames".into(), Json::num(k.bad_frames)),
        ("wall_ms".into(), Json::num(k.wall_ms)),
    ]));
    Json::Obj(vec![
        ("schema".into(), Json::str("bench-netload/v1")),
        ("quick".into(), Json::Bool(quick)),
        ("results".into(), Json::Arr(rows)),
    ])
}

/// Strip the report down to its deterministic rows — what belongs in
/// `ci/bench-baseline/BENCH_netload.json`. Baseline rows drive the
/// gate, so keeping wall-clock stages out of the file is what exempts
/// them.
pub fn baseline_json(report: &NetloadReport, quick: bool) -> Json {
    let full = report_to_json(report, quick);
    let rows: Vec<Json> = full
        .get("results")
        .and_then(Json::as_array)
        .unwrap_or(&[])
        .iter()
        .filter(|r| {
            matches!(
                r.get("stage").and_then(Json::as_str),
                Some("lockstep") | Some("coalesce")
            )
        })
        .cloned()
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::str("bench-netload/v1")),
        ("quick".into(), Json::Bool(quick)),
        ("results".into(), Json::Arr(rows)),
    ])
}

/// Compare a current report against the checked-in baseline. Rows match
/// on `(protocol, stage)`; gated metrics are the deterministic
/// byte/frame/coalescing ones, with the shared [`crate::gate_limit`]
/// epsilons (byte metrics floor 256 B, counts floor 8, rounds floor 2).
/// `stalls` and `coalesced_frames` are gated too: lockstep traffic must
/// stay stall-free and un-coalesced (the eager flush keeps queues
/// empty), and the coalesce stage must keep folding its backlog.
pub fn check_regression(current: &Json, baseline: &Json, tolerance: f64) -> Vec<String> {
    crate::check_regression_gate(
        current,
        baseline,
        tolerance,
        &["protocol", "stage"],
        &[
            ("messages", 8.0),
            ("payload_bytes", 256.0),
            ("metadata_bytes", 256.0),
            ("total_bytes", 256.0),
            ("frames", 2.0),
            ("wire_bytes", 256.0),
            ("rounds", 2.0),
            ("stalls", 0.0),
            ("coalesced_frames", 8.0),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny end-to-end pass: deterministic stages produce the pinned
    /// numbers, the JSON is well-formed, and a self-compared gate holds.
    #[test]
    fn deterministic_stages_pin_their_metrics() {
        let shape = LoadShape {
            nodes: 3,
            keys: 8,
            zipf_s: 1.0,
            ops_per_node: 12,
            swarm: 2,
            target_ops: 400,
            total_ops: 100,
            connections: 64,
        };
        let a = run_lockstep(ProtocolKind::BpRr, &shape);
        let b = run_lockstep(ProtocolKind::BpRr, &shape);
        assert!(a.converged && b.converged);
        assert_eq!(
            (
                a.messages,
                a.payload_bytes,
                a.metadata_bytes,
                a.frames,
                a.wire_bytes
            ),
            (
                b.messages,
                b.payload_bytes,
                b.metadata_bytes,
                b.frames,
                b.wire_bytes
            ),
            "lockstep stage must be deterministic run to run"
        );
        assert_eq!(a.stalls, 0, "lockstep never fills the inbox");
        assert_eq!(a.coalesced, 0, "eager flush leaves nothing to fold");

        let c = run_coalesce();
        assert!(c.converged);
        assert_eq!(c.frames_flushed, 1, "backlog must fold into one frame");
        assert_eq!(c.coalesced, c.backlog - 1);

        let report = NetloadReport {
            lockstep: vec![a],
            coalesce: c,
            openloop: run_openloop(&shape),
            c10k: run_c10k(&shape),
        };
        assert_eq!(report.c10k.errors, 0);
        assert_eq!(report.c10k.concurrent, shape.connections as u64);
        let doc = report_to_json(&report, true);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("bench-netload/v1")
        );
        let baseline = baseline_json(&report, true);
        assert_eq!(
            baseline
                .get("results")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2),
            "baseline keeps only the deterministic rows"
        );
        let violations = check_regression(&doc, &baseline, 0.25);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
