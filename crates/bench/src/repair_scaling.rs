//! The `repair_scaling` experiment family: how pairwise anti-entropy
//! cost scales with the **number of diverged objects**, not the
//! keyspace size.
//!
//! The paper's §VI digest repair exchanges one digest per object either
//! side holds — O(keyspace) metadata even when a single object
//! diverged. The Merkle-descent path (`crdt_sync::merkle`) localizes
//! the divergence first: O(fanout · depth · diverged) descent frames,
//! then the same §VI handshake scoped to the diverged keys.
//!
//! For each divergence size (1 object, 10 objects, 1%, 50% of the
//! keyspace) this family builds a freshly diverged 2-replica pair twice
//! and repairs one with each path, reporting both ledgers side by side:
//! descent frame/byte breakdown (control vs leaf), full repair stats,
//! and the per-object digest path's cost for the identical divergence.
//! The bin asserts the headline in-process: for small divergence the
//! descent must undercut the sweep by 4×, and its cost must grow
//! sublinearly in the keyspace (per-repair bytes bounded by the
//! divergence, not the object count). `BENCH_repair.json` is gated in
//! CI against `ci/bench-baseline/BENCH_repair.json`.

use crdt_sync::{diff_keys, ProtocolKind};
use crdt_types::{GSet, GSetOp};
use delta_store::{Cluster, StoreConfig};

use crate::json::Json;
use crate::{print_table, Scale};

type Key = u64;
type Val = GSet<u32>;

/// One divergence size's measurements, both repair paths.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// Synchronization protocol under repair.
    pub protocol: ProtocolKind,
    /// Objects in the keyspace (both replicas, pre-divergence).
    pub keyspace: usize,
    /// Objects diverged before repair.
    pub diverged: usize,
    /// Merkle descent: rounds of tree-walking frames.
    pub descent_rounds: u64,
    /// Merkle descent: frames exchanged (root + child + leaf).
    pub descent_frames: u64,
    /// Merkle descent: encoded bytes of root/child frames.
    pub control_bytes: u64,
    /// Merkle descent: encoded bytes of leaf-bucket frames.
    pub leaf_bytes: u64,
    /// Merkle path: total messages (descent + scoped handshake).
    pub merkle_messages: u64,
    /// Merkle path: metadata bytes (descent frames + scoped digests).
    pub merkle_metadata_bytes: u64,
    /// Merkle path: payload bytes (the shipped irreducibles).
    pub merkle_payload_bytes: u64,
    /// Per-object digest path: total messages.
    pub digest_messages: u64,
    /// Per-object digest path: metadata bytes (a digest per object).
    pub digest_metadata_bytes: u64,
    /// Per-object digest path: payload bytes.
    pub digest_payload_bytes: u64,
    /// Did both repaired pairs converge?
    pub converged: bool,
}

/// Keyspace size per scale. Quick stays past
/// `crdt_sync::MERKLE_REPAIR_THRESHOLD` but CI-fast; full is the
/// paper-adjacent 30K-object keyspace.
fn keyspace(scale: Scale) -> usize {
    match scale {
        Scale::Full => 30_000,
        Scale::Quick => 2_000,
    }
}

/// The divergence ladder: absolute (1, 10) then relative (1%, 50%).
fn divergence_ladder(n: usize) -> Vec<usize> {
    let mut d = vec![1, 10, n / 100, n / 2];
    d.retain(|&x| x >= 1 && x <= n);
    d.dedup();
    d
}

/// Build a converged 2-replica pair over `n` objects, then diverge
/// `d` of them (spread across the key range, both directions).
fn diverged_pair(n: usize, d: usize) -> Cluster<Key, Val> {
    let mut c: Cluster<Key, Val> = Cluster::full_mesh(2, StoreConfig::new(ProtocolKind::BpRr));
    for k in 0..n as u64 {
        c.update(0, k, &GSetOp::Add(k as u32));
    }
    c.run_until_converged(4).expect_converged("seed keyspace");
    c.partition(&[0]);
    let stride = (n / d).max(1) as u64;
    for i in 0..d as u64 {
        let key = (i * stride) % n as u64;
        c.update((i % 2) as usize, key, &GSetOp::Add(1_000_000 + i as u32));
    }
    c.sync_round(); // δ-buffers drain into the severed link
    c.heal();
    c
}

/// Measure one divergence size with both repair paths.
pub fn run_one(scale: Scale, d: usize) -> RepairOutcome {
    let n = keyspace(scale);

    // Per-object digest sweep on its own diverged pair.
    let mut digest = diverged_pair(n, d);
    let digest_stats = digest.digest_repair(0, 1);
    let digest_ok = digest.run_until_converged(4).converged;

    // Merkle path on an identically diverged pair. The descent is
    // measured standalone first (it is read-only), so the report can
    // break its cost into control vs leaf bytes.
    let mut merkle = diverged_pair(n, d);
    let tree0 = merkle.replica_mut(0).merkle().clone();
    let (diff, descent) = diff_keys(&tree0, merkle.replica_mut(1).merkle());
    assert_eq!(
        diff.len(),
        d,
        "descent must localize exactly the diverged objects"
    );
    let merkle_stats = merkle.merkle_repair(0, 1);
    let merkle_ok = merkle.run_until_converged(4).converged;

    RepairOutcome {
        protocol: ProtocolKind::BpRr,
        keyspace: n,
        diverged: d,
        descent_rounds: descent.rounds,
        descent_frames: descent.frames,
        control_bytes: descent.control_bytes,
        leaf_bytes: descent.leaf_bytes,
        merkle_messages: u64::from(merkle_stats.messages),
        merkle_metadata_bytes: merkle_stats.metadata_bytes,
        merkle_payload_bytes: merkle_stats.payload_bytes,
        digest_messages: u64::from(digest_stats.messages),
        digest_metadata_bytes: digest_stats.metadata_bytes,
        digest_payload_bytes: digest_stats.payload_bytes,
        converged: digest_ok && merkle_ok,
    }
}

/// Run the ladder at `scale`, printing the comparison table.
pub fn run_suite(scale: Scale) -> Vec<RepairOutcome> {
    let n = keyspace(scale);
    let mut outcomes = Vec::new();
    let mut rows = Vec::new();
    for d in divergence_ladder(n) {
        let o = run_one(scale, d);
        rows.push(vec![
            o.diverged.to_string(),
            o.descent_rounds.to_string(),
            o.descent_frames.to_string(),
            (o.control_bytes + o.leaf_bytes).to_string(),
            o.merkle_metadata_bytes.to_string(),
            o.digest_metadata_bytes.to_string(),
            format!(
                "{:.1}×",
                o.digest_metadata_bytes as f64 / o.merkle_metadata_bytes.max(1) as f64
            ),
            if o.converged { "yes" } else { "NO" }.to_string(),
        ]);
        outcomes.push(o);
    }
    print_table(
        &format!("repair_scaling ({n} objects, 2 replicas, bp_rr)"),
        &[
            "diverged",
            "rounds",
            "frames",
            "descent B",
            "merkle meta B",
            "digest meta B",
            "saving",
            "ok",
        ],
        &rows,
    );
    outcomes
}

/// The in-binary acceptance bar: localization must actually pay off.
///
/// * Every pair converged under both paths.
/// * For divergence at or below 1% of the keyspace, the Merkle path's
///   metadata undercuts the per-object sweep at least 4×.
/// * Sublinearity in the keyspace: metadata per repair is bounded by
///   the divergence (descent frames + scoped digests), not the object
///   count — pinned as merkle metadata ≤ digest metadata / 4 even
///   though the digest cost is Θ(keyspace).
pub fn assert_sublinear(outcomes: &[RepairOutcome]) -> Result<(), String> {
    for o in outcomes {
        if !o.converged {
            return Err(format!(
                "{} diverged objects: repair did not converge",
                o.diverged
            ));
        }
        if o.diverged * 100 <= o.keyspace && o.merkle_metadata_bytes * 4 > o.digest_metadata_bytes {
            return Err(format!(
                "{} of {} diverged: merkle metadata {} B not 4× under digest {} B",
                o.diverged, o.keyspace, o.merkle_metadata_bytes, o.digest_metadata_bytes
            ));
        }
    }
    Ok(())
}

/// Render outcomes as the `BENCH_repair.json` document.
pub fn report_to_json(outcomes: &[RepairOutcome], quick: bool) -> Json {
    let results = outcomes
        .iter()
        .map(|o| {
            Json::Obj(vec![
                ("protocol".into(), Json::str(o.protocol.id())),
                ("keyspace".into(), Json::num(o.keyspace as u64)),
                ("diverged".into(), Json::num(o.diverged as u64)),
                ("converged".into(), Json::Bool(o.converged)),
                ("descent_rounds".into(), Json::num(o.descent_rounds)),
                ("descent_frames".into(), Json::num(o.descent_frames)),
                ("control_bytes".into(), Json::num(o.control_bytes)),
                ("leaf_bytes".into(), Json::num(o.leaf_bytes)),
                ("merkle_messages".into(), Json::num(o.merkle_messages)),
                (
                    "merkle_metadata_bytes".into(),
                    Json::num(o.merkle_metadata_bytes),
                ),
                (
                    "merkle_payload_bytes".into(),
                    Json::num(o.merkle_payload_bytes),
                ),
                ("digest_messages".into(), Json::num(o.digest_messages)),
                (
                    "digest_metadata_bytes".into(),
                    Json::num(o.digest_metadata_bytes),
                ),
                (
                    "digest_payload_bytes".into(),
                    Json::num(o.digest_payload_bytes),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::str("bench-repair/v1")),
        ("quick".into(), Json::Bool(quick)),
        ("results".into(), Json::Arr(results)),
    ])
}

/// Write the JSON report to `path`.
pub fn write_report(path: &str, outcomes: &[RepairOutcome], quick: bool) -> std::io::Result<()> {
    std::fs::write(path, report_to_json(outcomes, quick).pretty())
}

/// Compare a current report against a checked-in baseline.
///
/// Rows match on `(keyspace, diverged)`. Every gated metric is
/// deterministic (lockstep in-process repair); floors per
/// [`crate::gate_limit`]: byte metrics 256 B, frame/message counts 8.
pub fn check_regression(current: &Json, baseline: &Json, tolerance: f64) -> Vec<String> {
    crate::check_regression_gate(
        current,
        baseline,
        tolerance,
        &["keyspace", "diverged"],
        &[
            ("descent_frames", 8.0),
            ("control_bytes", 256.0),
            ("leaf_bytes", 256.0),
            ("merkle_messages", 8.0),
            ("merkle_metadata_bytes", 256.0),
            ("merkle_payload_bytes", 256.0),
            ("digest_messages", 8.0),
            ("digest_metadata_bytes", 256.0),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One small quick-scale point: well-formed report, sublinearity
    /// bar holds, self-compared gate passes.
    #[test]
    fn quick_point_reports_and_gates() {
        let outcomes = vec![run_one(Scale::Quick, 1), run_one(Scale::Quick, 10)];
        assert_sublinear(&outcomes).expect("sublinearity bar");
        let doc = report_to_json(&outcomes, true);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("bench-repair/v1")
        );
        let violations = check_regression(&doc, &doc, 0.25);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
