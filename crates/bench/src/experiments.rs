//! One function per paper artifact (figure/table). The `src/bin/*`
//! binaries are thin wrappers; `all_experiments` runs everything at
//! reduced scale. EXPERIMENTS.md records paper-vs-measured for each.

use crdt_lattice::SizeModel;
use crdt_sim::{run_experiment, NetworkConfig, RunMetrics, ShardedDeltaRunner, Topology};
use crdt_sync::{AckedDeltaSync, DeltaConfig, OpBased, Scuttlebutt, ScuttlebuttGc};
use crdt_types::GSet as GSetCrdt;
use crdt_types::{GCounter, GSet};
use crdt_workloads::{
    GCounterWorkload, GMapCrdt, GMapWorkload, GSetWorkload, RetwisConfig, RetwisTrace,
    RetwisWorkload, Timeline, UserId, Wall, TABLE1,
};

use crate::{
    find, fmt_bytes, fmt_ratio, print_table, ratio, run_suite, transmission_ratio_rows, Run, Scale,
    Suite, TRANSMISSION_HEADERS,
};

const MODEL: SizeModel = SizeModel::compact();

fn mesh(scale: Scale) -> Topology {
    Topology::partial_mesh(scale.pick(15, 8), 4)
}

fn tree(scale: Scale) -> Topology {
    Topology::binary_tree(scale.pick(15, 7))
}

fn events(scale: Scale) -> usize {
    scale.pick(100, 10)
}

// ---------------------------------------------------------------------------
// Figure 1 — motivation: classic delta ≈ state-based, with CPU overhead
// ---------------------------------------------------------------------------

/// Fig. 1: 15-node partial mesh replicating an always-growing set.
/// Left plot: elements sent over time; right plot: CPU ratio vs
/// state-based.
pub fn fig1(scale: Scale) {
    let topo = mesh(scale);
    let n = topo.len();
    let rounds = events(scale);
    let runs = run_suite::<GSet<u64>, _>(Suite::DeltaFamily, &topo, 1, MODEL, rounds, || {
        GSetWorkload::with_events(n, rounds)
    });

    let state = find(&runs, "state");
    let classic = find(&runs, "delta");

    // Left plot: cumulative elements over time, sampled at 10 points.
    let series = |m: &RunMetrics| m.cumulative_elements();
    let s_state = series(&state.metrics);
    let s_classic = series(&classic.metrics);
    let points = 10.min(s_state.len());
    let mut rows = Vec::new();
    for p in 1..=points {
        let idx = p * s_state.len() / points - 1;
        rows.push(vec![
            format!("{}", idx + 1),
            s_state[idx].to_string(),
            s_classic
                .get(idx)
                .copied()
                .unwrap_or(*s_classic.last().unwrap())
                .to_string(),
        ]);
    }
    print_table(
        "Fig. 1 (left): cumulative elements sent, always-growing GSet, 15-node mesh",
        &["round", "state-based", "classic delta"],
        &rows,
    );

    // Right plot: CPU processing ratio w.r.t. state-based.
    let cpu_rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                fmt_ratio(ratio(
                    r.metrics.total_cpu_nanos(),
                    state.metrics.total_cpu_nanos(),
                )),
            ]
        })
        .collect();
    print_table(
        "Fig. 1 (right): CPU processing ratio w.r.t. state-based",
        &["protocol", "cpu ratio"],
        &cpu_rows,
    );

    let anomaly = ratio(
        classic.metrics.total_elements(),
        state.metrics.total_elements(),
    );
    println!(
        "\nshape check: classic-delta/state transmission ratio = {} (paper: ≈ 1, \"no better than state-based\")",
        fmt_ratio(anomaly)
    );
}

// ---------------------------------------------------------------------------
// Figure 7 — GSet & GCounter transmission, tree + mesh
// ---------------------------------------------------------------------------

/// Fig. 7: transmission of GSet and GCounter w.r.t. delta-based BP+RR on
/// tree and mesh topologies, all eight protocols.
pub fn fig7(scale: Scale) {
    for (topo_name, topo) in [("tree", tree(scale)), ("mesh", mesh(scale))] {
        let n = topo.len();
        let rounds = events(scale);

        let runs = run_suite::<GSet<u64>, _>(Suite::Full, &topo, 1, MODEL, rounds, || {
            GSetWorkload::with_events(n, rounds)
        });
        print_table(
            &format!("Fig. 7: GSet transmission, {topo_name} ({n} nodes)"),
            TRANSMISSION_HEADERS,
            &transmission_ratio_rows(&runs),
        );

        let runs = run_suite::<GCounter, _>(Suite::Full, &topo, 1, MODEL, rounds, || {
            GCounterWorkload::with_events(rounds)
        });
        print_table(
            &format!("Fig. 7: GCounter transmission, {topo_name} ({n} nodes)"),
            TRANSMISSION_HEADERS,
            &transmission_ratio_rows(&runs),
        );
    }
}

// ---------------------------------------------------------------------------
// Figure 8 — GMap K% transmission
// ---------------------------------------------------------------------------

/// Fig. 8: transmission of GMap 10%, 30%, 60% and 100% — tree and mesh.
pub fn fig8(scale: Scale) {
    let total_keys = scale.pick(1000, 100);
    for (topo_name, topo) in [("tree", tree(scale)), ("mesh", mesh(scale))] {
        let n = topo.len();
        let rounds = events(scale);
        for percent in [10, 30, 60, 100] {
            let runs = run_suite::<GMapCrdt, _>(Suite::Full, &topo, 1, MODEL, rounds, || {
                GMapWorkload::custom(n, percent, total_keys, rounds)
            });
            print_table(
                &format!("Fig. 8: GMap {percent}% transmission, {topo_name} ({n} nodes, {total_keys} keys)"),
                TRANSMISSION_HEADERS,
                &transmission_ratio_rows(&runs),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Figure 9 — metadata scaling with system size
// ---------------------------------------------------------------------------

/// Fig. 9: metadata per node vs number of nodes (20 B node ids), GSet on a
/// degree-4 mesh, plus the analytic model (Scuttlebutt `NP`,
/// Scuttlebutt-GC `N²P`, op-based `NPU`, delta-based `P`).
pub fn fig9(scale: Scale) {
    let model = SizeModel::paper_metadata();
    let sizes: &[usize] = &[8, 16, 24, 32];
    let rounds = scale.pick(30, 6);
    let degree = 4usize;

    let mut rows = Vec::new();
    for &n in sizes {
        let topo = Topology::partial_mesh(n, degree);
        let net = NetworkConfig::reliable(1);

        macro_rules! meta_per_node {
            ($p:ty) => {{
                let mut w = GSetWorkload::with_events(n, rounds);
                let m = run_experiment::<GSet<u64>, $p>(topo.clone(), net, model, &mut w, rounds);
                m.total_metadata_bytes() / n as u64
            }};
        }

        let sb = meta_per_node!(Scuttlebutt<GSet<u64>>);
        let sbgc = meta_per_node!(ScuttlebuttGc<GSet<u64>>);
        let ob = meta_per_node!(OpBased<GSet<u64>>);
        let delta = meta_per_node!(AckedDeltaSync<GSet<u64>>);
        rows.push(vec![
            n.to_string(),
            fmt_bytes(sb),
            fmt_bytes(sbgc),
            fmt_bytes(ob),
            fmt_bytes(delta),
        ]);
    }
    print_table(
        "Fig. 9: measured metadata per node over the run (20 B ids, degree-4 mesh, GSet)",
        &[
            "nodes",
            "scuttlebutt",
            "scuttlebutt-gc",
            "op-based",
            "delta (acked)",
        ],
        &rows,
    );

    // Analytic per-synchronization cost model from §V-B2.
    let entry = model.vector_entry_bytes();
    let u = 1u64; // one pending update per node per round in this workload
    let analytic: Vec<Vec<String>> = sizes
        .iter()
        .map(|&n| {
            let (n64, p) = (n as u64, degree as u64);
            vec![
                n.to_string(),
                fmt_bytes(n64 * p * entry),
                fmt_bytes(n64 * n64 * p * entry),
                fmt_bytes(n64 * p * u * entry),
                fmt_bytes(p * model.seq_bytes),
            ]
        })
        .collect();
    print_table(
        "Fig. 9 (model): per-sync metadata — NP / N²P / NPU / P vector entries",
        &[
            "nodes",
            "scuttlebutt",
            "scuttlebutt-gc",
            "op-based",
            "delta",
        ],
        &analytic,
    );

    // The §V-B2 headline: metadata share at the largest size.
    let n = *sizes.last().unwrap();
    let topo = Topology::partial_mesh(n, degree);
    let net = NetworkConfig::reliable(1);
    macro_rules! meta_frac {
        ($p:ty) => {{
            let mut w = GSetWorkload::with_events(n, rounds);
            let m = run_experiment::<GSet<u64>, $p>(topo.clone(), net, model, &mut w, rounds);
            m.metadata_fraction() * 100.0
        }};
    }
    println!(
        "\nmetadata as % of transmission at {n} nodes (paper: 75% / 99% / 97% vs 7.7%):\n  \
         scuttlebutt {:.1}%  scuttlebutt-gc {:.1}%  op-based {:.1}%  delta(acked) {:.1}%",
        meta_frac!(Scuttlebutt<GSet<u64>>),
        meta_frac!(ScuttlebuttGc<GSet<u64>>),
        meta_frac!(OpBased<GSet<u64>>),
        meta_frac!(AckedDeltaSync<GSet<u64>>)
    );
}

// ---------------------------------------------------------------------------
// Figure 10 — memory footprint
// ---------------------------------------------------------------------------

/// Fig. 10: average memory ratio w.r.t. BP+RR for GCounter, GSet,
/// GMap 10% and GMap 100% — mesh topology.
pub fn fig10(scale: Scale) {
    let topo = mesh(scale);
    let n = topo.len();
    let rounds = events(scale);
    let total_keys = scale.pick(1000, 100);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut add_rows = |workload: &str, runs: &[Run]| {
        let base = find(runs, "delta+BP+RR")
            .metrics
            .avg_memory_elements_per_node();
        for r in runs {
            let mine = r.metrics.avg_memory_elements_per_node();
            rows.push(vec![
                workload.to_string(),
                r.name.to_string(),
                format!("{mine:.1}"),
                format!("{:.2}", if base > 0.0 { mine / base } else { 1.0 }),
            ]);
        }
    };

    let runs = run_suite::<GCounter, _>(Suite::Full, &topo, 1, MODEL, rounds, || {
        GCounterWorkload::with_events(rounds)
    });
    add_rows("GCounter", &runs);

    let runs = run_suite::<GSet<u64>, _>(Suite::Full, &topo, 1, MODEL, rounds, || {
        GSetWorkload::with_events(n, rounds)
    });
    add_rows("GSet", &runs);

    for percent in [10, 100] {
        let runs = run_suite::<GMapCrdt, _>(Suite::Full, &topo, 1, MODEL, rounds, || {
            GMapWorkload::custom(n, percent, total_keys, rounds)
        });
        add_rows(&format!("GMap {percent}%"), &runs);
    }

    print_table(
        "Fig. 10: average memory (elements/node/round) and ratio w.r.t. BP+RR — mesh",
        &[
            "workload",
            "protocol",
            "avg elements/node",
            "ratio vs BP+RR",
        ],
        &rows,
    );
}

// ---------------------------------------------------------------------------
// Figures 11 & 12 — Retwis
// ---------------------------------------------------------------------------

/// One Zipf point of the Retwis sweep.
#[derive(Debug, Clone)]
pub struct ZipfPoint {
    /// Zipf coefficient.
    pub zipf: f64,
    /// Classic delta metrics.
    pub classic: RunMetrics,
    /// BP+RR metrics.
    pub bprr: RunMetrics,
}

/// Run one delta configuration over a Retwis trace: three sharded
/// runners (followers / walls / timelines), one per object family, with
/// per-object δ-buffers — the granularity the paper deploys (one CRDT per
/// object, 30 K objects).
fn run_retwis_config(trace: &RetwisTrace, topo: &Topology, cfg: DeltaConfig) -> RunMetrics {
    let slack = topo.diameter() * 4 + 16;
    let mut followers: ShardedDeltaRunner<UserId, GSetCrdt<UserId>> =
        ShardedDeltaRunner::new(topo.clone(), cfg, MODEL);
    let mut walls: ShardedDeltaRunner<UserId, Wall> =
        ShardedDeltaRunner::new(topo.clone(), cfg, MODEL);
    let mut timelines: ShardedDeltaRunner<UserId, Timeline> =
        ShardedDeltaRunner::new(topo.clone(), cfg, MODEL);

    for round in &trace.rounds {
        let f: Vec<_> = round.iter().map(|n| n.followers.clone()).collect();
        let w: Vec<_> = round.iter().map(|n| n.walls.clone()).collect();
        let t: Vec<_> = round.iter().map(|n| n.timelines.clone()).collect();
        followers.step(&f);
        walls.step(&w);
        timelines.step(&t);
    }
    followers
        .run_to_convergence(slack)
        .expect("followers converge");
    walls.run_to_convergence(slack).expect("walls converge");
    timelines
        .run_to_convergence(slack)
        .expect("timelines converge");

    followers
        .into_metrics()
        .merged(&walls.into_metrics())
        .merged(&timelines.into_metrics())
}

/// Run the §V-C Retwis sweep: classic vs BP+RR across Zipf coefficients,
/// per-object synchronization.
pub fn run_retwis_sweep(scale: Scale) -> Vec<ZipfPoint> {
    let topo = Topology::partial_mesh(scale.pick(50, 10), 4);
    let rounds = scale.pick(30, 8);
    let cfg_base = RetwisConfig {
        n_users: scale.pick(10_000, 300),
        ops_per_node_per_round: scale.pick(4, 2),
        max_fanout: scale.pick(50, 10),
        seed: 42,
        zipf: 0.0, // overwritten per point
    };

    [0.5, 0.75, 1.0, 1.25, 1.5]
        .into_iter()
        .map(|zipf| {
            let cfg = RetwisConfig { zipf, ..cfg_base };
            let trace = RetwisTrace::generate(cfg, topo.len(), rounds);
            ZipfPoint {
                zipf,
                classic: run_retwis_config(&trace, &topo, DeltaConfig::CLASSIC),
                bprr: run_retwis_config(&trace, &topo, DeltaConfig::BP_RR),
            }
        })
        .collect()
}

/// Fig. 11: Retwis transmission bandwidth (top) and average memory
/// (bottom) per node, classic vs BP+RR, first/second half of the run.
pub fn fig11(scale: Scale) {
    let points = run_retwis_sweep(scale);
    fig11_from(&points);
}

/// Render Fig. 11 from a precomputed sweep (shared with
/// `all_experiments`).
pub fn fig11_from(points: &[ZipfPoint]) {
    let mut tx_rows = Vec::new();
    let mut mem_rows = Vec::new();
    for p in points {
        let n = p.classic.n_nodes as u64;
        let halves = |m: &RunMetrics| {
            let mid = m.rounds.len() / 2;
            (m.slice(0..mid), m.slice(mid..m.rounds.len()))
        };
        let (c1, c2) = halves(&p.classic);
        let (b1, b2) = halves(&p.bprr);
        let per_node_round = |m: &RunMetrics| m.total_bytes() / (m.rounds.len().max(1) as u64) / n;
        tx_rows.push(vec![
            format!("{:.2}", p.zipf),
            fmt_bytes(per_node_round(&c1)),
            fmt_bytes(per_node_round(&b1)),
            fmt_bytes(per_node_round(&c2)),
            fmt_bytes(per_node_round(&b2)),
        ]);
        mem_rows.push(vec![
            format!("{:.2}", p.zipf),
            fmt_bytes(c1.avg_memory_bytes_per_node() as u64),
            fmt_bytes(b1.avg_memory_bytes_per_node() as u64),
            fmt_bytes(c2.avg_memory_bytes_per_node() as u64),
            fmt_bytes(b2.avg_memory_bytes_per_node() as u64),
        ]);
    }
    print_table(
        "Fig. 11 (top): Retwis transmission per node per round — first and second half",
        &[
            "zipf",
            "classic (1st)",
            "BP+RR (1st)",
            "classic (2nd)",
            "BP+RR (2nd)",
        ],
        &tx_rows,
    );
    print_table(
        "Fig. 11 (bottom): Retwis average memory per node — first and second half",
        &[
            "zipf",
            "classic (1st)",
            "BP+RR (1st)",
            "classic (2nd)",
            "BP+RR (2nd)",
        ],
        &mem_rows,
    );
}

/// Fig. 12: CPU overhead of classic delta w.r.t. BP+RR per Zipf
/// coefficient.
pub fn fig12(scale: Scale) {
    let points = run_retwis_sweep(scale);
    fig12_from(&points);
}

/// Render Fig. 12 from a precomputed sweep.
pub fn fig12_from(points: &[ZipfPoint]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let r = ratio(p.classic.total_cpu_nanos(), p.bprr.total_cpu_nanos());
            vec![
                format!("{:.2}", p.zipf),
                format!("{:.1} ms", p.classic.total_cpu_nanos() as f64 / 1e6),
                format!("{:.1} ms", p.bprr.total_cpu_nanos() as f64 / 1e6),
                format!("{:.2}x (overhead {:.1}x)", r, r - 1.0),
            ]
        })
        .collect();
    print_table(
        "Fig. 12: CPU time of classic delta vs BP+RR (Retwis; paper overheads: 0.4x/5.5x/7.9x at zipf 1/1.25/1.5)",
        &["zipf", "classic cpu", "BP+RR cpu", "classic/BP+RR"],
        &rows,
    );
}

// ---------------------------------------------------------------------------
// Tables I & II
// ---------------------------------------------------------------------------

/// Table I: micro-benchmark descriptions, printed from the workload
/// registry (so documentation cannot drift from the code).
pub fn table1() {
    let rows: Vec<Vec<String>> = TABLE1
        .iter()
        .map(|w| {
            vec![
                w.crdt.to_string(),
                w.periodic_event.to_string(),
                w.measurement.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table I: description of micro-benchmarks",
        &["Type", "Periodic event", "Measurement"],
        &rows,
    );
}

/// Table II: Retwis workload characterization, measured over a generated
/// trace.
pub fn table2(scale: Scale) {
    let mut w = RetwisWorkload::new(RetwisConfig {
        n_users: scale.pick(10_000, 500),
        zipf: 1.0,
        ops_per_node_per_round: scale.pick(100_000, 5_000),
        max_fanout: 50,
        seed: 7,
    });
    // Generate one big batch.
    let _ops = crdt_sim::Workload::<crdt_workloads::RetwisStore>::ops(
        &mut w,
        crdt_lattice::ReplicaId(0),
        0,
    );
    let s = w.stats;
    let rows = vec![
        vec![
            "Follow".to_string(),
            "1".to_string(),
            format!("{:.1}%", s.share(s.follows)),
            "15%".to_string(),
        ],
        vec![
            "Post Tweet".to_string(),
            format!(
                "1 + #Followers (measured avg {:.2})",
                s.avg_updates_per_post()
            ),
            format!("{:.1}%", s.share(s.posts)),
            "35%".to_string(),
        ],
        vec![
            "Timeline".to_string(),
            "0".to_string(),
            format!("{:.1}%", s.share(s.timeline_reads)),
            "50%".to_string(),
        ],
    ];
    print_table(
        "Table II: Retwis workload characterization (measured vs paper)",
        &["Operation", "#Updates", "measured %", "paper %"],
        &rows,
    );
}

// ---------------------------------------------------------------------------
// Runtime protocol selection (engine layer)
// ---------------------------------------------------------------------------

/// Transmission/memory comparison for a **runtime-chosen** protocol set:
/// the `protocol_select` binary's engine, also reused by
/// `all_experiments`. Unlike the `fig*` functions (monomorphized per
/// protocol), every run here goes through `Box<dyn SyncEngine>` over
/// encoded [`crdt_sync::WireEnvelope`]s — the deployment path.
pub fn protocol_select(scale: Scale, kinds: &[crdt_sync::ProtocolKind]) {
    for (topo_name, topo) in [("tree", tree(scale)), ("mesh", mesh(scale))] {
        let n = topo.len();
        let rounds = events(scale);
        let runs = crate::run_dyn_suite::<GSet<u64>, _>(kinds, &topo, 1, MODEL, rounds, || {
            GSetWorkload::with_events(n, rounds)
        });
        print_table(
            &format!(
                "Runtime-selected protocols (dyn engine): GSet transmission, {topo_name} ({n} nodes)"
            ),
            TRANSMISSION_HEADERS,
            &crate::transmission_rows_vs_best(&runs),
        );
    }
}

// ---------------------------------------------------------------------------
// Extension: BP/RR ablation across topology classes
// ---------------------------------------------------------------------------

/// Beyond the paper: isolate each optimization's contribution as the
/// topology moves from acyclic (line/tree/star) through one cycle (ring)
/// to dense cycles (mesh, full mesh). The paper's Fig. 7 samples two
/// points of this spectrum; the sweep makes the mechanism visible — BP's
/// savings track the *back-edge* count, RR's track path redundancy.
pub fn ablation_topologies(scale: Scale) {
    let n = scale.pick(15, 9);
    let rounds = scale.pick(60, 10);
    let topologies = [
        Topology::line(n),
        Topology::binary_tree(n),
        Topology::star(n),
        Topology::ring(n),
        Topology::partial_mesh(n, 4),
        Topology::full_mesh(n),
    ];
    let mut rows = Vec::new();
    for topo in topologies {
        let runs = run_suite::<GSet<u64>, _>(Suite::DeltaFamily, &topo, 1, MODEL, rounds, || {
            GSetWorkload::with_events(n, rounds)
        });
        let classic = find(&runs, "delta").metrics.total_elements();
        let bp = find(&runs, "delta+BP").metrics.total_elements();
        let rr = find(&runs, "delta+RR").metrics.total_elements();
        let bprr = find(&runs, "delta+BP+RR").metrics.total_elements();
        let gain = |x: u64| {
            if classic == 0 {
                0.0
            } else {
                100.0 * (classic - x) as f64 / classic as f64
            }
        };
        rows.push(vec![
            topo.name().to_string(),
            if topo.has_cycle() { "yes" } else { "no" }.to_string(),
            classic.to_string(),
            format!("{:.1}%", gain(bp)),
            format!("{:.1}%", gain(rr)),
            format!("{:.1}%", gain(bprr)),
        ]);
    }
    print_table(
        "Ablation (extension): transmission saved vs classic delta, per optimization",
        &[
            "topology",
            "cycles",
            "classic elems",
            "BP saves",
            "RR saves",
            "BP+RR saves",
        ],
        &rows,
    );
    println!(
        "\nreading guide: acyclic graphs (line/tree/star) are fully repaired by BP alone;\n\
         as cycle density grows, BP's share collapses and RR carries the win — the\n\
         mechanism behind the paper's tree-vs-mesh split in Fig. 7."
    );
}

// ---------------------------------------------------------------------------
// Extension: ∆-CRDT baseline study
// ---------------------------------------------------------------------------

/// Beyond the paper: measure the ∆-CRDT approach its §VI cites as related
/// work \[31\] — a versioned delta log with acknowledgments that falls
/// back to full-state transmission once the log is garbage collected.
///
/// Two capacities bracket the trade-off: a 64-entry log rarely falls
/// back (delta-quality transmission, but the log is retained in memory
/// until acked rather than cleared every round like Algorithm 1), and a
/// 4-entry log demonstrates the degradation to state-based behaviour the
/// paper's related-work section predicts.
pub fn ext_deltacrdt(scale: Scale) {
    for (topo_name, topo) in [("tree", tree(scale)), ("mesh", mesh(scale))] {
        let n = topo.len();
        let rounds = events(scale);
        let runs =
            run_suite::<GSet<u64>, _>(Suite::DeltaCrdtStudy, &topo, 1, MODEL, rounds, || {
                GSetWorkload::with_events(n, rounds)
            });
        print_table(
            &format!("Extension: ∆-CRDT baseline, GSet transmission, {topo_name} ({n} nodes)"),
            TRANSMISSION_HEADERS,
            &transmission_ratio_rows(&runs),
        );
        // Memory: the delta log is retained until acked, so ∆-CRDT pays a
        // standing buffer where BP+RR clears per round.
        let base = find(&runs, "delta+BP+RR")
            .metrics
            .avg_memory_bytes_per_node();
        let rows: Vec<Vec<String>> = runs
            .iter()
            .map(|r| {
                let mem = r.metrics.avg_memory_bytes_per_node();
                vec![
                    r.name.to_string(),
                    fmt_bytes(mem as u64),
                    format!("{:.2}", if base > 0.0 { mem / base } else { 1.0 }),
                ]
            })
            .collect();
        print_table(
            &format!("Extension: ∆-CRDT baseline, avg memory/node, {topo_name}"),
            &["protocol", "avg memory", "ratio vs BP+RR"],
            &rows,
        );
    }
    println!(
        "\nreading guide: with a roomy log, ∆-CRDT transmission approaches BP+RR on\n\
         trees (acks prevent re-sends) but keeps a standing memory cost; the 4-entry\n\
         log degrades towards state-based transmission exactly as §VI predicts."
    );
}
