//! Wire-codec throughput and allocation-discipline report
//! (`BENCH_codec.json`).
//!
//! ```text
//! cargo run --release -p crdt-bench --bin codec_throughput -- --quick \
//!     --out BENCH_codec.json \
//!     --baseline ci/bench-baseline/BENCH_codec.json --tolerance 0.25
//! ```
//!
//! Flags:
//!
//! * `--quick` — CI scale (smaller batch shapes, fewer repetitions; the
//!   allocation metrics are per-frame/per-round and scale-independent).
//! * `--out <path>` — where to write the JSON report (default
//!   `BENCH_codec.json`).
//! * `--baseline <path>` / `--tolerance <t>` — regression-gate the
//!   deterministic metrics (frame layout bytes, decode allocations,
//!   corrupt-input allocation budget, allocations per sharded-runner
//!   round); violations exit with status 1. Throughput (MB/s) is wall
//!   clock and never gated.
//!
//! This binary installs [`testkit_alloc::CountingAllocator`] as the
//! global allocator so the allocation metrics are real measurements.

use crdt_bench::codec_bench::{check_regression, print_report, run_codec_throughput, write_report};
use crdt_bench::{flag_value, json::Json, Scale};

#[global_allocator]
static ALLOC: testkit_alloc::CountingAllocator = testkit_alloc::CountingAllocator;

fn main() {
    let scale = Scale::from_args();
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_codec.json".to_string());
    let tolerance: f64 = flag_value("--tolerance")
        .map(|t| {
            t.parse().unwrap_or_else(|_| {
                eprintln!("error: --tolerance must be a number, got {t:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.25);

    let report = run_codec_throughput(scale);
    print_report(&report);
    write_report(&out_path, &report, scale == Scale::Quick)
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!(
        "\nwrote {out_path} ({} frame rows, {} runner rows)",
        report.frames.len(),
        report.runner.len()
    );

    if let Some(baseline_path) = flag_value("--baseline") {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {baseline_path}: {e}"));
        let baseline =
            Json::parse(&text).unwrap_or_else(|e| panic!("parsing baseline {baseline_path}: {e}"));
        let current = crdt_bench::codec_bench::report_to_json(&report, scale == Scale::Quick);
        let violations = check_regression(&current, &baseline, tolerance);
        if violations.is_empty() {
            println!(
                "regression gate vs {baseline_path}: OK ({:.0}% tolerance)",
                tolerance * 100.0
            );
        } else {
            eprintln!("regression gate vs {baseline_path}: FAILED");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
