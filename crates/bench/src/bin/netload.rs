//! Open-loop load generation against the event-driven `crdt-net`
//! reactor, with a machine-readable report.
//!
//! ```text
//! cargo run --release -p crdt-bench --bin netload -- --quick --protocol all
//! cargo run --release -p crdt-bench --bin netload -- \
//!     --quick --protocol all --require-c10k \
//!     --out smoke-logs/BENCH_netload_smoke.json \
//!     --baseline ci/bench-baseline/BENCH_netload.json --tolerance 0.25
//! ```
//!
//! Flags:
//!
//! * `--protocol <kind>` (repeatable; `all`) — protocols for the gated
//!   lockstep stage.
//! * `--quick` — CI scale (smaller swarm and op counts; the c10k stage
//!   still holds 1,000+ connections).
//! * `--connections <n>` — override the c10k connection count.
//! * `--out <path>` — JSON report path (default `BENCH_netload.json`).
//! * `--metrics-out <path>` — also write node 0's full metrics
//!   exposition per lockstep protocol as a text artifact; never gated.
//! * `--emit-baseline <path>` — additionally write the
//!   deterministic-rows-only baseline document (what gets checked in
//!   under `ci/bench-baseline/`).
//! * `--baseline <path>` / `--tolerance <t>` — gate the deterministic
//!   rows against a checked-in baseline; violations exit 1.
//! * `--require-c10k` — fail (exit 1) unless ≥ 1,000 connections were
//!   concurrently live with zero errors and zero bad frames.
//!
//! The bin always enforces the cheap invariants: every lockstep
//! protocol converges, the coalesce stage folds its backlog, and the
//! open-loop swarm completes without errors.

use crdt_bench::netload::{
    baseline_json, check_regression, metrics_artifact, report_to_json, run_family, LoadShape,
};
use crdt_bench::{flag_value, json::Json, protocols_from_args, Scale};
use crdt_sync::ProtocolKind;

fn main() {
    let scale = Scale::from_args();
    let kinds = protocols_from_args(&ProtocolKind::ALL);
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_netload.json".to_string());
    let tolerance: f64 = flag_value("--tolerance")
        .map(|t| {
            t.parse().unwrap_or_else(|_| {
                eprintln!("error: --tolerance must be a number, got {t:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.25);
    let mut shape = LoadShape::new(scale);
    if let Some(n) = flag_value("--connections") {
        shape.connections = n.parse().unwrap_or_else(|_| {
            eprintln!("error: --connections must be a number, got {n:?}");
            std::process::exit(2);
        });
    }

    let report = run_family(scale, &kinds, &shape);
    let doc = report_to_json(&report, scale == Scale::Quick);
    std::fs::write(&out_path, doc.pretty()).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path}");
    if let Some(metrics_path) = flag_value("--metrics-out") {
        std::fs::write(&metrics_path, metrics_artifact(&report))
            .unwrap_or_else(|e| panic!("writing {metrics_path}: {e}"));
        println!("wrote {metrics_path}");
    }
    if let Some(path) = flag_value("--emit-baseline") {
        std::fs::write(
            &path,
            baseline_json(&report, scale == Scale::Quick).pretty(),
        )
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path} (deterministic rows only)");
    }

    // Cheap invariants, enforced unconditionally.
    let mut failed = false;
    for o in &report.lockstep {
        if !o.converged {
            eprintln!("FAIL: {} lockstep stage did not converge", o.protocol);
            failed = true;
        }
    }
    if report.coalesce.coalesced == 0 {
        eprintln!(
            "FAIL: thawing a {}-frame backlog folded nothing",
            report.coalesce.backlog
        );
        failed = true;
    }
    if report.openloop.errors > 0 {
        eprintln!(
            "FAIL: open-loop swarm hit {} errors",
            report.openloop.errors
        );
        failed = true;
    }

    if std::env::args().any(|a| a == "--require-c10k") {
        let k = &report.c10k;
        if k.concurrent < 1_000 || k.errors > 0 || k.bad_frames > 0 {
            eprintln!(
                "FAIL: c10k bar not met — {} concurrent (need ≥ 1000), {} errors, {} bad frames",
                k.concurrent, k.errors, k.bad_frames
            );
            failed = true;
        }
    }

    if let Some(baseline_path) = flag_value("--baseline") {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {baseline_path}: {e}"));
        let baseline =
            Json::parse(&text).unwrap_or_else(|e| panic!("parsing baseline {baseline_path}: {e}"));
        let violations = check_regression(&doc, &baseline, tolerance);
        if violations.is_empty() {
            println!(
                "regression gate vs {baseline_path}: OK ({:.0}% tolerance)",
                tolerance * 100.0
            );
        } else {
            eprintln!("regression gate vs {baseline_path}: FAILED");
            for v in &violations {
                eprintln!("  {v}");
            }
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
