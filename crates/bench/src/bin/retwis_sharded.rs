//! Retwis at the paper's per-object granularity on the unified sharded
//! runner, with a machine-readable report.
//!
//! ```text
//! cargo run --release -p crdt-bench --bin retwis_sharded -- --quick \
//!     --protocol classic --protocol bp_rr --threads 1 --threads 4
//! cargo run --release -p crdt-bench --bin retwis_sharded -- \
//!     --zipf 0.5 --zipf 1.0 --zipf 1.5 \
//!     --out BENCH_retwis_sharded.json \
//!     --baseline ci/bench-baseline/BENCH_retwis_sharded.json --tolerance 0.25
//! ```
//!
//! Flags:
//!
//! * `--protocol <kind>` (repeatable; `all`) — which
//!   [`crdt_sync::ProtocolKind`]s to run (default: `classic`, `bp_rr` —
//!   the Fig. 11/12 comparison).
//! * `--zipf <s>` (repeatable) — Zipf coefficients (default 0.5, 1.0,
//!   1.5, the paper's range).
//! * `--threads <n>` (repeatable) — worker threads (default 1, 4, 8).
//! * `--quick` — CI scale (10 nodes, 300 users, 8 rounds) instead of
//!   paper scale (50 nodes, 10 000 users → 30 K objects, 30 rounds).
//! * `--out <path>` — where to write the JSON report
//!   (default `BENCH_retwis_sharded.json`).
//! * `--baseline <path>` / `--tolerance <t>` — regression-gate the
//!   deterministic metrics (bytes, elements, frames, envelopes) against
//!   a checked-in report; violations exit with status 1. Timing fields
//!   are artifacts, never gated.

use crdt_bench::retwis_sharded::{
    check_regression, print_report, run_retwis_sharded, threads_from_args, write_report,
    zipfs_from_args,
};
use crdt_bench::{flag_value, json::Json, protocols_from_args, Scale};
use crdt_sync::ProtocolKind;

fn main() {
    let scale = Scale::from_args();
    let kinds = protocols_from_args(&[ProtocolKind::Classic, ProtocolKind::BpRr]);
    let zipfs = zipfs_from_args(&[0.5, 1.0, 1.5]);
    let threads = threads_from_args(&[1, 4, 8]);
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_retwis_sharded.json".to_string());
    let tolerance: f64 = flag_value("--tolerance")
        .map(|t| {
            t.parse().unwrap_or_else(|_| {
                eprintln!("error: --tolerance must be a number, got {t:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.25);

    let rows = run_retwis_sharded(scale, &kinds, &zipfs, &threads);
    print_report(&rows);
    write_report(&out_path, &rows, scale == Scale::Quick)
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path} ({} rows)", rows.len());

    if let Some(never) = rows.iter().find(|r| !r.converged) {
        eprintln!(
            "FAIL: {} did not converge (zipf {}, threads {})",
            never.protocol, never.zipf, never.threads
        );
        std::process::exit(1);
    }

    if let Some(baseline_path) = flag_value("--baseline") {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {baseline_path}: {e}"));
        let baseline =
            Json::parse(&text).unwrap_or_else(|e| panic!("parsing baseline {baseline_path}: {e}"));
        let current = crdt_bench::retwis_sharded::report_to_json(&rows, scale == Scale::Quick);
        let violations = check_regression(&current, &baseline, tolerance);
        if violations.is_empty() {
            println!(
                "regression gate vs {baseline_path}: OK ({:.0}% tolerance)",
                tolerance * 100.0
            );
        } else {
            eprintln!("regression gate vs {baseline_path}: FAILED");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
