//! Regenerates Table II by measuring a generated Retwis trace. Pass
//! `--quick` for a smaller trace.

fn main() {
    crdt_bench::experiments::table2(crdt_bench::Scale::from_args());
}
