//! Fault & churn scenario experiments with a machine-readable report.
//!
//! ```text
//! cargo run --release -p crdt-bench --bin scenarios -- \
//!     --scenario partition_heal --protocol all --quick
//! cargo run --release -p crdt-bench --bin scenarios -- \
//!     --scenario all --protocol bp_rr --protocol scuttlebutt \
//!     --out BENCH_scenarios.json \
//!     --baseline ci/bench-baseline/BENCH_scenarios.json --tolerance 0.25
//! ```
//!
//! Flags:
//!
//! * `--scenario <name>` (repeatable; `all`) — which fault schedules to
//!   run: `partition_heal`, `churn`, `flapping_link`, `rolling_restart`.
//! * `--protocol <kind>` (repeatable; `all`) — which
//!   [`crdt_sync::ProtocolKind`]s to drive through them.
//! * `--quick` — CI scale (6 nodes, 12 rounds) instead of paper scale.
//! * `--out <path>` — where to write the JSON report
//!   (default `BENCH_scenarios.json`).
//! * `--baseline <path>` — compare against a checked-in report; any
//!   gated metric more than `--tolerance` (default `0.25` = 25%) worse
//!   exits with status 1, listing the violations.

use crdt_bench::scenarios::{
    check_regression, run_scenario_suite, scenarios_from_args, write_report,
};
use crdt_bench::{flag_value, json::Json, protocols_from_args, Scale};
use crdt_sync::ProtocolKind;

fn main() {
    let scale = Scale::from_args();
    let scenarios = scenarios_from_args(&["partition_heal"]);
    let kinds = protocols_from_args(&ProtocolKind::ALL);
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_scenarios.json".to_string());
    let tolerance: f64 = flag_value("--tolerance")
        .map(|t| {
            t.parse().unwrap_or_else(|_| {
                eprintln!("error: --tolerance must be a number, got {t:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.25);

    let outcomes = run_scenario_suite(scale, &scenarios, &kinds);
    write_report(&out_path, &outcomes, scale == Scale::Quick)
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path} ({} rows)", outcomes.len());

    if let Some(never) = outcomes.iter().find(|o| !o.converged) {
        eprintln!(
            "FAIL: {} did not re-converge under `{}`",
            never.protocol, never.scenario
        );
        std::process::exit(1);
    }

    if let Some(baseline_path) = flag_value("--baseline") {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {baseline_path}: {e}"));
        let baseline =
            Json::parse(&text).unwrap_or_else(|e| panic!("parsing baseline {baseline_path}: {e}"));
        let current = crdt_bench::scenarios::report_to_json(&outcomes, scale == Scale::Quick);
        let violations = check_regression(&current, &baseline, tolerance);
        if violations.is_empty() {
            println!(
                "regression gate vs {baseline_path}: OK ({:.0}% tolerance)",
                tolerance * 100.0
            );
        } else {
            eprintln!("regression gate vs {baseline_path}: FAILED");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
