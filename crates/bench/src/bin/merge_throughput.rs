//! Flat dot-store hot-loop benchmarks with a machine-readable report.
//!
//! ```text
//! cargo run --release -p crdt-bench --bin merge_throughput -- --quick
//! cargo run --release -p crdt-bench --bin merge_throughput -- \
//!     --out BENCH_merge.json \
//!     --baseline ci/bench-baseline/BENCH_merge.json --tolerance 0.25
//! ```
//!
//! Flags:
//!
//! * `--quick` — CI scale (one 1 024-element size point) instead of the
//!   full 1 K/8 K/64 K ladder.
//! * `--out <path>` — where to write the JSON report
//!   (default `BENCH_merge.json`).
//! * `--baseline <path>` — compare against a checked-in report; any
//!   gated allocation count more than `--tolerance` (default `0.25`)
//!   worse exits with status 1, listing the violations.
//!
//! Before any gate, the bin enforces the flat layout's reason to exist:
//! joining an already-covered state and re-encoding an unmutated state
//! — the steady-state loops of a converged cluster — must perform
//! **zero** allocations.

use crdt_bench::merge_throughput::{
    assert_steady_state_alloc_free, check_regression, run_suite, write_report,
};
use crdt_bench::{flag_value, json::Json, Scale};

#[global_allocator]
static ALLOC: testkit_alloc::CountingAllocator = testkit_alloc::CountingAllocator;

fn main() {
    let scale = Scale::from_args();
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_merge.json".to_string());
    let tolerance: f64 = flag_value("--tolerance")
        .map(|t| {
            t.parse().unwrap_or_else(|_| {
                eprintln!("error: --tolerance must be a number, got {t:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.25);

    let rows = run_suite(scale);
    write_report(&out_path, &rows, scale == Scale::Quick)
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path} ({} rows)", rows.len());

    if let Err(violation) = assert_steady_state_alloc_free(&rows) {
        eprintln!("FAIL: {violation}");
        std::process::exit(1);
    }

    if let Some(baseline_path) = flag_value("--baseline") {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {baseline_path}: {e}"));
        let baseline =
            Json::parse(&text).unwrap_or_else(|e| panic!("parsing baseline {baseline_path}: {e}"));
        let current = crdt_bench::merge_throughput::report_to_json(&rows, scale == Scale::Quick);
        let violations = check_regression(&current, &baseline, tolerance);
        if violations.is_empty() {
            println!(
                "regression gate vs {baseline_path}: OK ({:.0}% tolerance)",
                tolerance * 100.0
            );
        } else {
            eprintln!("regression gate vs {baseline_path}: FAILED");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
