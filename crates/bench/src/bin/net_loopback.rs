//! Real-socket loopback cluster experiments with a machine-readable
//! report.
//!
//! ```text
//! cargo run --release -p crdt-bench --bin net_loopback -- --quick --protocol all
//! cargo run --release -p crdt-bench --bin net_loopback -- \
//!     --protocol bp_rr --protocol scuttlebutt \
//!     --out BENCH_net.json \
//!     --baseline ci/bench-baseline/BENCH_net.json --tolerance 0.25
//! ```
//!
//! Flags:
//!
//! * `--protocol <kind>` (repeatable; `all`) — which
//!   [`crdt_sync::ProtocolKind`]s to run over real sockets.
//! * `--quick` — CI scale (3 nodes) instead of paper-adjacent scale
//!   (5 nodes).
//! * `--out <path>` — where to write the JSON report
//!   (default `BENCH_net.json`).
//! * `--metrics-out <path>` — also write node 0's full metrics
//!   exposition (one `=== <protocol> ===` block per selected kind) as a
//!   text artifact; never gated.
//! * `--baseline <path>` — compare against a checked-in report; any
//!   gated byte/frame metric more than `--tolerance` (default `0.25`)
//!   worse exits with status 1, listing the violations.
//!
//! The bin itself enforces the liveness bar: every selected kind must
//! converge — lockstep *and* free-running within the 10 s deadline — or
//! the run exits 1. Raw-δ kinds must additionally match the in-process
//! simulator's accounting exactly (`sim_parity`).

use crdt_bench::net_loopback::{check_regression, metrics_artifact, run_suite, write_report};
use crdt_bench::{flag_value, json::Json, protocols_from_args, Scale};
use crdt_sync::ProtocolKind;

fn main() {
    let scale = Scale::from_args();
    let kinds = protocols_from_args(&ProtocolKind::ALL);
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_net.json".to_string());
    let tolerance: f64 = flag_value("--tolerance")
        .map(|t| {
            t.parse().unwrap_or_else(|_| {
                eprintln!("error: --tolerance must be a number, got {t:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.25);

    let outcomes = run_suite(scale, &kinds);
    write_report(&out_path, &outcomes, scale == Scale::Quick)
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path} ({} rows)", outcomes.len());
    if let Some(metrics_path) = flag_value("--metrics-out") {
        std::fs::write(&metrics_path, metrics_artifact(&outcomes))
            .unwrap_or_else(|e| panic!("writing {metrics_path}: {e}"));
        println!("wrote {metrics_path}");
    }

    for o in &outcomes {
        if !o.converged {
            eprintln!(
                "FAIL: {} did not converge over sockets (lockstep)",
                o.protocol
            );
            std::process::exit(1);
        }
        if !o.freerun_converged {
            eprintln!(
                "FAIL: {} did not converge free-running within the deadline",
                o.protocol
            );
            std::process::exit(1);
        }
        if o.protocol.accepts_raw_delta() && !o.sim_parity {
            eprintln!(
                "FAIL: {} socket accounting diverged from the simulator's (δ-kinds must be exact)",
                o.protocol
            );
            std::process::exit(1);
        }
    }

    if let Some(baseline_path) = flag_value("--baseline") {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {baseline_path}: {e}"));
        let baseline =
            Json::parse(&text).unwrap_or_else(|e| panic!("parsing baseline {baseline_path}: {e}"));
        let current = crdt_bench::net_loopback::report_to_json(&outcomes, scale == Scale::Quick);
        let violations = check_regression(&current, &baseline, tolerance);
        if violations.is_empty() {
            println!(
                "regression gate vs {baseline_path}: OK ({:.0}% tolerance)",
                tolerance * 100.0
            );
        } else {
            eprintln!("regression gate vs {baseline_path}: FAILED");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
