//! Runtime protocol selection over the type-erased engine layer.
//!
//! ```text
//! cargo run --release -p crdt-bench --bin protocol_select -- \
//!     --protocol bp_rr --protocol scuttlebutt --protocol state
//! cargo run --release -p crdt-bench --bin protocol_select -- --protocol all --quick
//! ```
//!
//! Accepts any [`crdt_sync::ProtocolKind`] spelling (`bp_rr`,
//! `delta+BP+RR`, `scuttlebutt-gc`, …); defaults to classic vs BP+RR vs
//! state. Every run goes through `Box<dyn SyncEngine>` with encoded
//! envelope payloads — the deployment path, not the monomorphized
//! experiment path.

use crdt_sync::ProtocolKind;

fn main() {
    let kinds = crdt_bench::protocols_from_args(&[
        ProtocolKind::Classic,
        ProtocolKind::BpRr,
        ProtocolKind::State,
    ]);
    crdt_bench::experiments::protocol_select(crdt_bench::Scale::from_args(), &kinds);
}
