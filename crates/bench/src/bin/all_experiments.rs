//! Runs every experiment. Defaults to reduced scale; pass `--full` for
//! paper-scale parameters everywhere.

use crdt_bench::experiments;
use crdt_bench::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    println!("running all experiments at {scale:?} scale\n");
    experiments::table1();
    experiments::table2(scale);
    experiments::fig1(scale);
    experiments::fig7(scale);
    experiments::fig8(scale);
    experiments::fig9(scale);
    experiments::fig10(scale);
    experiments::ablation_topologies(scale);
    experiments::ext_deltacrdt(scale);
    let points = experiments::run_retwis_sweep(scale);
    experiments::fig11_from(&points);
    experiments::fig12_from(&points);
    println!("\nall experiments done.");
}
