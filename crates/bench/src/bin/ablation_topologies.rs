//! Extension experiment: BP/RR contribution across topology classes.
//! Pass `--quick` for a reduced-scale smoke run.

fn main() {
    crdt_bench::experiments::ablation_topologies(crdt_bench::Scale::from_args());
}
