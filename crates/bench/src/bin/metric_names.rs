//! Enumerate every metric name the workspace can register, one per
//! line, sorted — the golden at `ci/metric-names.txt` is a diff against
//! this output, so renaming or dropping a metric (or registering a new
//! one without updating the golden) fails CI instead of silently
//! breaking dashboards and parsers downstream.
//!
//! ```text
//! cargo run --release -p crdt-bench --bin metric_names
//! cargo run ... --bin metric_names | diff -u ci/metric-names.txt -
//! ```

use crdt_obs::Registry;
use crdt_sync::{EngineMetrics, MerkleRepairMetrics};
use delta_store::StoreMetrics;

fn main() {
    let reg = Registry::new();
    let _ = EngineMetrics::register(&reg);
    let _ = MerkleRepairMetrics::register(&reg);
    let _ = StoreMetrics::register(&reg);
    crdt_net::register_net_metrics(&reg);
    crdt_sim::register_runner_metrics(&reg);
    for name in reg.names() {
        println!("{name}");
    }
}
