//! Regenerates the paper artifact; see EXPERIMENTS.md. Pass `--quick`
//! for a reduced-scale smoke run.

fn main() {
    crdt_bench::experiments::fig12(crdt_bench::Scale::from_args());
}
