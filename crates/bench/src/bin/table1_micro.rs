//! Regenerates Table I from the workload registry.

fn main() {
    crdt_bench::experiments::table1();
}
