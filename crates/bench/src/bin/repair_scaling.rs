//! Anti-entropy repair-scaling experiments with a machine-readable
//! report.
//!
//! ```text
//! cargo run --release -p crdt-bench --bin repair_scaling -- --quick
//! cargo run --release -p crdt-bench --bin repair_scaling -- \
//!     --out BENCH_repair.json \
//!     --baseline ci/bench-baseline/BENCH_repair.json --tolerance 0.25
//! ```
//!
//! Flags:
//!
//! * `--quick` — CI scale (2 000-object keyspace) instead of the
//!   paper-adjacent 30 000-object keyspace.
//! * `--out <path>` — where to write the JSON report
//!   (default `BENCH_repair.json`).
//! * `--baseline <path>` — compare against a checked-in report; any
//!   gated frame/byte metric more than `--tolerance` (default `0.25`)
//!   worse exits with status 1, listing the violations.
//!
//! The bin enforces the subsystem's reason to exist before any gate:
//! every repaired pair must converge, and for divergence ≤ 1% of the
//! keyspace the Merkle descent's metadata must undercut the per-object
//! digest sweep at least 4× — repair cost must track the divergence,
//! not the keyspace.

use crdt_bench::repair_scaling::{assert_sublinear, check_regression, run_suite, write_report};
use crdt_bench::{flag_value, json::Json, Scale};

fn main() {
    let scale = Scale::from_args();
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_repair.json".to_string());
    let tolerance: f64 = flag_value("--tolerance")
        .map(|t| {
            t.parse().unwrap_or_else(|_| {
                eprintln!("error: --tolerance must be a number, got {t:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.25);

    let outcomes = run_suite(scale);
    write_report(&out_path, &outcomes, scale == Scale::Quick)
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path} ({} rows)", outcomes.len());

    if let Err(violation) = assert_sublinear(&outcomes) {
        eprintln!("FAIL: {violation}");
        std::process::exit(1);
    }

    if let Some(baseline_path) = flag_value("--baseline") {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {baseline_path}: {e}"));
        let baseline =
            Json::parse(&text).unwrap_or_else(|e| panic!("parsing baseline {baseline_path}: {e}"));
        let current = crdt_bench::repair_scaling::report_to_json(&outcomes, scale == Scale::Quick);
        let violations = check_regression(&current, &baseline, tolerance);
        if violations.is_empty() {
            println!(
                "regression gate vs {baseline_path}: OK ({:.0}% tolerance)",
                tolerance * 100.0
            );
        } else {
            eprintln!("regression gate vs {baseline_path}: FAILED");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
