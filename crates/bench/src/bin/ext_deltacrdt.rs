//! Extension experiment: the ∆-CRDT baseline of the paper's §VI (\[31\])
//! against delta-based BP+RR. Pass `--quick` for a reduced-scale run.

fn main() {
    crdt_bench::experiments::ext_deltacrdt(crdt_bench::Scale::from_args());
}
