//! The `net_loopback` experiment family: real-socket clusters measured
//! against the simulator's accounting.
//!
//! For every selected [`ProtocolKind`] this family runs the **same
//! deterministic workload** twice:
//!
//! 1. in the in-process [`delta_store::Cluster`] (the simulator whose
//!    accounting reproduces the paper's transmission metrics), and
//! 2. in a lockstep [`crdt_net::LoopbackCluster`] — N real TCP nodes on
//!    ephemeral `127.0.0.1` ports, every batch crossing an actual
//!    socket;
//!
//! and reports both ledgers side by side: the model-view
//! [`delta_store::TrafficStats`] (which for the raw-δ kinds must come
//! out **byte-identical** between the two — `sim_parity` in the report)
//! plus the socket ledger (frames, wire bytes with length prefixes) that
//! only the real transport has. A free-running pass (scheduler threads,
//! no external driving) rides along for wall-clock convergence, which is
//! machine-dependent and therefore never gated — the CI gate covers the
//! deterministic byte/frame metrics via `BENCH_net.json` against
//! `ci/bench-baseline/BENCH_net.json`.

use std::time::{Duration, Instant};

use crdt_net::{LoopbackCluster, NodeConfig};
use crdt_sync::ProtocolKind;
use crdt_types::{GSet, GSetOp};
use delta_store::{Cluster, StoreConfig};

use crate::json::Json;
use crate::{print_table, Scale};

type Key = String;
type Val = GSet<u64>;

/// One protocol's measurements over the loopback cluster.
#[derive(Debug, Clone)]
pub struct NetOutcome {
    /// Which protocol ran.
    pub protocol: ProtocolKind,
    /// Cluster size.
    pub nodes: usize,
    /// Did the lockstep socket cluster converge?
    pub converged: bool,
    /// Lockstep rounds to convergence.
    pub rounds: usize,
    /// Socket cluster: batches shipped (model view).
    pub messages: u64,
    /// Socket cluster: payload elements shipped.
    pub payload_elements: u64,
    /// Socket cluster: payload bytes (model view).
    pub payload_bytes: u64,
    /// Socket cluster: metadata bytes (model view).
    pub metadata_bytes: u64,
    /// Socket cluster: frames written to TCP.
    pub frames: u64,
    /// Socket cluster: wire bytes written (payloads + prefixes).
    pub wire_bytes: u64,
    /// Simulator total bytes for the identical workload/topology.
    pub sim_total_bytes: u64,
    /// Did the socket accounting equal the simulator's exactly?
    /// (Required for raw-δ kinds; informational otherwise.)
    pub sim_parity: bool,
    /// Wall-clock of the lockstep run (workload + rounds), artifact
    /// only.
    pub lockstep_ms: u64,
    /// Wall-clock for the free-running schedulers to converge, artifact
    /// only.
    pub freerun_ms: u64,
    /// Did the free-running pass converge within its deadline?
    pub freerun_converged: bool,
    /// Node 0's full metrics exposition at the end of the lockstep
    /// stage (artifact only — written out by `--metrics-out`).
    pub metrics: String,
}

/// Scale parameters: `(nodes, max lockstep rounds, free-run deadline)`.
fn shape(scale: Scale) -> (usize, usize, Duration) {
    match scale {
        Scale::Full => (5, 32, Duration::from_secs(10)),
        Scale::Quick => (3, 24, Duration::from_secs(10)),
    }
}

/// The deterministic workload both transports replay: every node
/// updates every key with node-distinct elements.
fn workload(n: usize) -> Vec<(usize, Key, GSetOp<u64>)> {
    let keys = ["alpha", "beta", "gamma", "delta"];
    let mut ops = Vec::new();
    for node in 0..n {
        for (k, key) in keys.iter().enumerate() {
            for rep in 0..3u64 {
                ops.push((
                    node,
                    key.to_string(),
                    GSetOp::Add((node as u64) * 1000 + (k as u64) * 10 + rep),
                ));
            }
        }
    }
    ops
}

/// Run one protocol at `scale`, both transports.
pub fn run_one(kind: ProtocolKind, scale: Scale) -> NetOutcome {
    let (n, max_rounds, freerun_deadline) = shape(scale);
    let ops = workload(n);

    // Simulator reference.
    let mut sim: Cluster<Key, Val> = Cluster::full_mesh(n, StoreConfig::new(kind));
    for (node, key, op) in &ops {
        sim.update(*node, key.clone(), op);
    }
    sim.run_until_converged(max_rounds);
    let sim_stats = sim.stats();

    // Lockstep socket cluster.
    let start = Instant::now();
    let cfg = NodeConfig::new(StoreConfig::new(kind), n);
    let mut net: LoopbackCluster<Key, Val> =
        LoopbackCluster::full_mesh(n, cfg).expect("spawn loopback cluster");
    for (node, key, op) in &ops {
        net.update(*node, key.clone(), op);
    }
    let report = net.run_until_converged(max_rounds);
    let lockstep_ms = start.elapsed().as_millis() as u64;
    let stats = net.stats();
    let wire = net.wire_totals();
    let metrics = net.node(0).obs().registry.exposition();
    drop(net);

    // Free-running pass: scheduler threads, wall-clock to convergence.
    let start = Instant::now();
    let cfg = NodeConfig::new(StoreConfig::new(kind), n).with_scheduler(Duration::from_millis(2));
    let mut free: LoopbackCluster<Key, Val> =
        LoopbackCluster::full_mesh(n, cfg).expect("spawn free-running cluster");
    for (node, key, op) in &ops {
        free.update(*node, key.clone(), op);
    }
    let free_report = free.await_convergence(freerun_deadline);
    let freerun_ms = start.elapsed().as_millis() as u64;
    drop(free);

    NetOutcome {
        protocol: kind,
        nodes: n,
        converged: report.converged,
        rounds: report.rounds,
        messages: stats.messages,
        payload_elements: stats.payload_elements,
        payload_bytes: stats.payload_bytes,
        metadata_bytes: stats.metadata_bytes,
        frames: wire.frames,
        wire_bytes: wire.bytes,
        sim_total_bytes: sim_stats.total_bytes(),
        sim_parity: stats == sim_stats,
        lockstep_ms,
        freerun_ms,
        freerun_converged: free_report.converged,
        metrics,
    }
}

/// Render the per-protocol metric expositions as one text artifact:
/// a `=== <protocol> ===` header per outcome, exposition lines below.
pub fn metrics_artifact(outcomes: &[NetOutcome]) -> String {
    let mut out = String::new();
    for o in outcomes {
        out.push_str(&format!("=== {} (node 0, lockstep) ===\n", o.protocol));
        out.push_str(&o.metrics);
        out.push('\n');
    }
    out
}

/// Run the family for `kinds`, printing the comparison table.
pub fn run_suite(scale: Scale, kinds: &[ProtocolKind]) -> Vec<NetOutcome> {
    let (n, _, _) = shape(scale);
    let mut outcomes = Vec::new();
    let mut rows = Vec::new();
    for &kind in kinds {
        let o = run_one(kind, scale);
        rows.push(vec![
            o.protocol.name().to_string(),
            if o.converged {
                o.rounds.to_string()
            } else {
                "NO".to_string()
            },
            (o.payload_bytes + o.metadata_bytes).to_string(),
            o.sim_total_bytes.to_string(),
            if o.sim_parity { "exact" } else { "≈" }.to_string(),
            o.frames.to_string(),
            o.wire_bytes.to_string(),
            o.lockstep_ms.to_string(),
            format!(
                "{}{}",
                o.freerun_ms,
                if o.freerun_converged { "" } else { " (!)" }
            ),
        ]);
        outcomes.push(o);
    }
    print_table(
        &format!("net_loopback ({n} real-socket nodes, full mesh)"),
        &[
            "protocol",
            "rounds",
            "net bytes",
            "sim bytes",
            "parity",
            "frames",
            "wire B",
            "lockstep ms",
            "freerun ms",
        ],
        &rows,
    );
    outcomes
}

/// Render outcomes as the `BENCH_net.json` document.
pub fn report_to_json(outcomes: &[NetOutcome], quick: bool) -> Json {
    let results = outcomes
        .iter()
        .map(|o| {
            Json::Obj(vec![
                ("protocol".into(), Json::str(o.protocol.id())),
                ("protocol_name".into(), Json::str(o.protocol.name())),
                ("nodes".into(), Json::num(o.nodes as u64)),
                ("converged".into(), Json::Bool(o.converged)),
                ("rounds".into(), Json::num(o.rounds as u64)),
                ("messages".into(), Json::num(o.messages)),
                ("payload_elements".into(), Json::num(o.payload_elements)),
                ("payload_bytes".into(), Json::num(o.payload_bytes)),
                ("metadata_bytes".into(), Json::num(o.metadata_bytes)),
                (
                    "total_bytes".into(),
                    Json::num(o.payload_bytes + o.metadata_bytes),
                ),
                ("frames".into(), Json::num(o.frames)),
                ("wire_bytes".into(), Json::num(o.wire_bytes)),
                ("sim_total_bytes".into(), Json::num(o.sim_total_bytes)),
                ("sim_parity".into(), Json::Bool(o.sim_parity)),
                // Wall-clock rides along as an artifact; never gated.
                ("lockstep_ms".into(), Json::num(o.lockstep_ms)),
                ("freerun_ms".into(), Json::num(o.freerun_ms)),
                ("freerun_converged".into(), Json::Bool(o.freerun_converged)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::str("bench-net/v1")),
        ("quick".into(), Json::Bool(quick)),
        ("results".into(), Json::Arr(results)),
    ])
}

/// Write the JSON report to `path`.
pub fn write_report(path: &str, outcomes: &[NetOutcome], quick: bool) -> std::io::Result<()> {
    std::fs::write(path, report_to_json(outcomes, quick).pretty())
}

/// Compare a current report against a checked-in baseline.
///
/// Rows match on `(protocol, nodes)`. Gated metrics are the
/// deterministic ones — model-view bytes and the socket ledger (the
/// lockstep drain makes both reproducible run to run); wall-clock
/// columns are artifacts and never gated. Epsilons per
/// [`crate::gate_limit`]: byte metrics get a 256 B floor, frame/message
/// counts a floor of 8, rounds a floor of 2.
pub fn check_regression(current: &Json, baseline: &Json, tolerance: f64) -> Vec<String> {
    crate::check_regression_gate(
        current,
        baseline,
        tolerance,
        &["protocol", "nodes"],
        &[
            ("messages", 8.0),
            ("payload_bytes", 256.0),
            ("metadata_bytes", 256.0),
            ("total_bytes", 256.0),
            ("frames", 8.0),
            ("wire_bytes", 256.0),
            ("rounds", 2.0),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quick-scale smoke over one δ-kind and one push-pull kind: the
    /// report is well-formed, δ accounting matches the simulator, and a
    /// self-compared gate passes.
    #[test]
    fn quick_suite_reports_and_gates() {
        let outcomes = run_suite(
            Scale::Quick,
            &[ProtocolKind::BpRr, ProtocolKind::Scuttlebutt],
        );
        assert!(outcomes.iter().all(|o| o.converged));
        let bp_rr = &outcomes[0];
        assert!(
            bp_rr.sim_parity,
            "δ-kind socket accounting must equal the simulator's"
        );
        assert!(bp_rr.frames > 0 && bp_rr.wire_bytes > bp_rr.frames * 4);
        let doc = report_to_json(&outcomes, true);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("bench-net/v1")
        );
        let violations = check_regression(&doc, &doc, 0.25);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
