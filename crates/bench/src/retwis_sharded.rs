//! The `retwis_sharded` experiment family: the paper's Retwis granularity
//! (§V-C — per-object δ-buffers over up to 30 K independent objects) on
//! the unified [`ShardedEngineRunner`]: any protocol, thread-parallel,
//! with per-destination envelope batching.
//!
//! For every `(protocol, zipf, threads)` point the suite replays the same
//! deterministic [`RetwisTrace`] through three family runners (follower
//! sets / walls / timelines — objects never interact, so this equals one
//! deployment hosting all of them) and records:
//!
//! * **bytes/round** — the Fig. 11 transmission quantity, per protocol;
//! * **batch amortization** — per-object envelopes per wire frame: the
//!   frame count is O(links) per round, *independent of object count*,
//!   which is what makes the granularity deployable;
//! * **speedup vs sequential** — critical-path time at `threads = 1`
//!   over critical-path time at `threads = t` (comparable by
//!   construction: both are per-phase busiest-worker sums, never a
//!   wall-clock quantity against a cross-thread total).
//!
//! Deterministic metrics (bytes, elements, frames, envelopes) are gated
//! against `ci/bench-baseline/BENCH_retwis_sharded.json`; timing fields
//! ride along in the JSON as artifacts and are never gated.

use crdt_lattice::SizeModel;
use crdt_sim::{RunMetrics, ShardedEngineRunner, Topology};
use crdt_sync::ProtocolKind;
use crdt_types::GSet;
use crdt_workloads::{RetwisConfig, RetwisTrace, Timeline, UserId, Wall};

use crate::json::Json;
use crate::{fmt_bytes, fmt_ratio, print_table, Scale};

/// One `(protocol, zipf, threads)` measurement.
#[derive(Debug, Clone)]
pub struct ShardedRow {
    /// Protocol driven through the trace.
    pub protocol: ProtocolKind,
    /// Zipf coefficient of the workload.
    pub zipf: f64,
    /// Worker threads.
    pub threads: usize,
    /// Distinct objects hosted per node at the end of the run (all three
    /// families).
    pub objects: usize,
    /// Directed links in the topology (the frame-count bound per sync
    /// wave per family).
    pub links: usize,
    /// Workload rounds replayed.
    pub rounds: usize,
    /// Rounds in the metric series: workload rounds plus the idle
    /// convergence tail. The per-round averages divide by *this*, so the
    /// row's fields stay mutually consistent
    /// (`bytes_per_round_per_node = total_bytes / metric_rounds / nodes`).
    pub metric_rounds: usize,
    /// Total transmission (payload + metadata model bytes).
    pub total_bytes: u64,
    /// Total transmitted lattice elements.
    pub total_elements: u64,
    /// Batched wire frames shipped.
    pub frames: u64,
    /// Per-object protocol envelopes (pre-batching).
    pub envelopes: u64,
    /// `envelopes / frames`.
    pub amortization: f64,
    /// Transmission per node per metric round (workload + convergence
    /// tail — see [`ShardedRow::metric_rounds`]).
    pub bytes_per_round_per_node: u64,
    /// Summed protocol work (nanoseconds; wall-clock, artifact only).
    pub cpu_nanos: u64,
    /// Critical-path time (nanoseconds; wall-clock, artifact only).
    pub critical_path_nanos: u64,
    /// Driver overhead drawing/routing ops (nanoseconds, artifact only).
    pub workload_nanos: u64,
    /// `critical_path(baseline) / critical_path(this row)` for the same
    /// (protocol, zipf), where the baseline is the `threads == 1` row
    /// when measured (regardless of `--threads` order), else the lowest
    /// thread count; 1.0 for the baseline row itself.
    pub speedup_vs_seq: f64,
    /// Did every family converge?
    pub converged: bool,
}

/// `ops[round][node]` keyed operations for one object family `C`.
type FamilyTrace<C> = Vec<Vec<Vec<(UserId, <C as crdt_types::Crdt>::Op)>>>;

/// The trace regrouped by object family: `ops[round][node]` per family —
/// built once per trace and replayed by every `(protocol, threads)`
/// point.
struct FamilyOps {
    followers: FamilyTrace<GSet<UserId>>,
    walls: FamilyTrace<Wall>,
    timelines: FamilyTrace<Timeline>,
}

impl FamilyOps {
    fn split(trace: &RetwisTrace) -> Self {
        FamilyOps {
            followers: trace
                .rounds
                .iter()
                .map(|round| round.iter().map(|n| n.followers.clone()).collect())
                .collect(),
            walls: trace
                .rounds
                .iter()
                .map(|round| round.iter().map(|n| n.walls.clone()).collect())
                .collect(),
            timelines: trace
                .rounds
                .iter()
                .map(|round| round.iter().map(|n| n.timelines.clone()).collect())
                .collect(),
        }
    }
}

/// Replay the regrouped trace under `kind` with `threads` workers;
/// returns the merged family metrics, objects per node, and convergence.
fn run_point(
    kind: ProtocolKind,
    ops: &FamilyOps,
    topo: &Topology,
    threads: usize,
) -> (RunMetrics, usize, bool) {
    const MODEL: SizeModel = SizeModel::compact();
    let slack = topo.diameter() * 4 + 16;
    let mut followers: ShardedEngineRunner<UserId, GSet<UserId>> =
        ShardedEngineRunner::new(kind, topo.clone(), MODEL, threads);
    let mut walls: ShardedEngineRunner<UserId, Wall> =
        ShardedEngineRunner::new(kind, topo.clone(), MODEL, threads);
    let mut timelines: ShardedEngineRunner<UserId, Timeline> =
        ShardedEngineRunner::new(kind, topo.clone(), MODEL, threads);

    followers.run_rounds(&ops.followers);
    walls.run_rounds(&ops.walls);
    timelines.run_rounds(&ops.timelines);
    let converged = followers.run_to_convergence(slack).is_some()
        & walls.run_to_convergence(slack).is_some()
        & timelines.run_to_convergence(slack).is_some();
    let node0 = crdt_lattice::ReplicaId(0);
    let objects =
        followers.objects_at(node0) + walls.objects_at(node0) + timelines.objects_at(node0);
    let metrics = followers
        .into_metrics()
        .merged(&walls.into_metrics())
        .merged(&timelines.into_metrics());
    (metrics, objects, converged)
}

/// Run the sweep: `kinds` × `zipfs` × `threads_list` over one
/// deterministic trace per zipf point. Scale: quick = 10 nodes / 300
/// users / 8 rounds; full = 50 nodes / 10 000 users (30 K objects) / 30
/// rounds.
pub fn run_retwis_sharded(
    scale: Scale,
    kinds: &[ProtocolKind],
    zipfs: &[f64],
    threads_list: &[usize],
) -> Vec<ShardedRow> {
    let topo = Topology::partial_mesh(scale.pick(50, 10), 4);
    let rounds = scale.pick(30, 8);
    let cfg_base = RetwisConfig {
        n_users: scale.pick(10_000, 300),
        ops_per_node_per_round: scale.pick(4, 2),
        max_fanout: scale.pick(50, 10),
        seed: 42,
        zipf: 0.0, // overwritten per point
    };
    let links = 2 * topo.edge_count();

    let mut rows = Vec::new();
    for &zipf in zipfs {
        let trace = RetwisTrace::generate(RetwisConfig { zipf, ..cfg_base }, topo.len(), rounds);
        let ops = FamilyOps::split(&trace);
        for &kind in kinds {
            let mut group = Vec::with_capacity(threads_list.len());
            for &threads in threads_list {
                let (metrics, objects, converged) = run_point(kind, &ops, &topo, threads);
                let critical = metrics.total_critical_path_nanos().max(1);
                group.push(ShardedRow {
                    protocol: kind,
                    zipf,
                    threads,
                    objects,
                    links,
                    rounds,
                    metric_rounds: metrics.rounds.len(),
                    total_bytes: metrics.total_bytes(),
                    total_elements: metrics.total_elements(),
                    frames: metrics.total_messages(),
                    envelopes: metrics.total_envelopes(),
                    amortization: metrics.batch_amortization(),
                    bytes_per_round_per_node: metrics.total_bytes()
                        / (metrics.rounds.len().max(1) as u64)
                        / (topo.len() as u64),
                    cpu_nanos: metrics.total_cpu_nanos(),
                    critical_path_nanos: critical,
                    workload_nanos: metrics.total_workload_nanos(),
                    speedup_vs_seq: 1.0, // filled in below, once the group is complete
                    converged,
                });
            }
            // The sequential baseline is the `threads == 1` run when
            // present (whatever its position in `--threads` order),
            // else the lowest thread count measured.
            let baseline = group
                .iter()
                .find(|r| r.threads == 1)
                .or_else(|| group.iter().min_by_key(|r| r.threads))
                .map(|r| r.critical_path_nanos)
                .unwrap_or(1);
            for row in &mut group {
                row.speedup_vs_seq = baseline as f64 / row.critical_path_nanos as f64;
            }
            rows.extend(group);
        }
    }
    rows
}

/// Print the sweep as one table per zipf point.
pub fn print_report(rows: &[ShardedRow]) {
    let mut zipfs: Vec<f64> = rows.iter().map(|r| r.zipf).collect();
    zipfs.dedup();
    for &zipf in &zipfs {
        let table: Vec<Vec<String>> = rows
            .iter()
            .filter(|r| r.zipf == zipf)
            .map(|r| {
                vec![
                    r.protocol.name().to_string(),
                    r.threads.to_string(),
                    r.objects.to_string(),
                    fmt_bytes(r.bytes_per_round_per_node),
                    r.frames.to_string(),
                    fmt_ratio(r.amortization),
                    fmt_ratio(r.speedup_vs_seq),
                    if r.converged { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("retwis_sharded (zipf {zipf:.2}): per-object engines, batched frames"),
            &[
                "protocol",
                "threads",
                "objects/node",
                "bytes/round/node",
                "frames",
                "amortization",
                "speedup vs seq",
                "converged",
            ],
            &table,
        );
    }
}

/// Render rows as the `BENCH_retwis_sharded.json` document.
pub fn report_to_json(rows: &[ShardedRow], quick: bool) -> Json {
    let results = rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("protocol".into(), Json::str(r.protocol.id())),
                ("protocol_name".into(), Json::str(r.protocol.name())),
                ("zipf".into(), Json::Num(r.zipf)),
                ("threads".into(), Json::num(r.threads as u64)),
                ("objects".into(), Json::num(r.objects as u64)),
                ("links".into(), Json::num(r.links as u64)),
                ("rounds".into(), Json::num(r.rounds as u64)),
                ("metric_rounds".into(), Json::num(r.metric_rounds as u64)),
                ("total_bytes".into(), Json::num(r.total_bytes)),
                ("total_elements".into(), Json::num(r.total_elements)),
                ("frames".into(), Json::num(r.frames)),
                ("envelopes".into(), Json::num(r.envelopes)),
                ("amortization".into(), Json::Num(r.amortization)),
                (
                    "bytes_per_round_per_node".into(),
                    Json::num(r.bytes_per_round_per_node),
                ),
                ("cpu_nanos".into(), Json::num(r.cpu_nanos)),
                (
                    "critical_path_nanos".into(),
                    Json::num(r.critical_path_nanos),
                ),
                ("workload_nanos".into(), Json::num(r.workload_nanos)),
                ("speedup_vs_seq".into(), Json::Num(r.speedup_vs_seq)),
                ("converged".into(), Json::Bool(r.converged)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::str("bench-retwis-sharded/v1")),
        ("quick".into(), Json::Bool(quick)),
        ("results".into(), Json::Arr(results)),
    ])
}

/// Write the JSON report to `path`.
pub fn write_report(path: &str, rows: &[ShardedRow], quick: bool) -> std::io::Result<()> {
    std::fs::write(path, report_to_json(rows, quick).pretty())
}

/// Gated metrics with their absolute limit floors (see
/// [`crate::gate_limit`]). Only deterministic quantities — the timing
/// fields are wall-clock and never gated.
const GATED: [(&str, f64); 4] = [
    ("total_bytes", 256.0),
    ("total_elements", 16.0),
    ("frames", 4.0),
    ("envelopes", 16.0),
];

/// Compare a current report against a checked-in baseline: every
/// baseline `(protocol, zipf, threads)` row must exist, have converged,
/// and keep each [`GATED`] metric within `(1 + tolerance)×` of the
/// baseline, floored by the metric's absolute epsilon (zero and tiny
/// baselines — see [`crate::gate_limit`]). Improvements always pass.
/// Returns violations.
pub fn check_regression(current: &Json, baseline: &Json, tolerance: f64) -> Vec<String> {
    crate::check_regression_gate(
        current,
        baseline,
        tolerance,
        &["protocol", "zipf", "threads"],
        &GATED,
    )
}

/// Parse repeatable `--threads <n>` flags; `default` when none given.
pub fn threads_from_args(default: &[usize]) -> Vec<usize> {
    numeric_flags("--threads", default, |v| v.parse::<usize>().ok())
}

/// Parse repeatable `--zipf <s>` flags; `default` when none given.
pub fn zipfs_from_args(default: &[f64]) -> Vec<f64> {
    numeric_flags("--zipf", default, |v| v.parse::<f64>().ok())
}

fn numeric_flags<T: Copy>(name: &str, default: &[T], parse: impl Fn(&str) -> Option<T>) -> Vec<T> {
    let args: Vec<String> = std::env::args().collect();
    let mut values = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == name {
            let parsed = args.get(i + 1).and_then(|v| parse(v));
            let Some(v) = parsed else {
                eprintln!("error: {name} needs a numeric value");
                std::process::exit(2);
            };
            values.push(v);
            i += 2;
        } else {
            i += 1;
        }
    }
    if values.is_empty() {
        values.extend_from_slice(default);
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_rows() -> Vec<ShardedRow> {
        run_retwis_sharded(
            Scale::Quick,
            &[ProtocolKind::Classic, ProtocolKind::BpRr],
            &[1.0],
            &[1, 4],
        )
    }

    #[test]
    fn frames_are_bounded_by_links_not_objects() {
        let rows = tiny_rows();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.converged, "{:?}", r.protocol);
            assert!(r.objects > 50, "sharded granularity: many objects");
            // Three family runners, ≤ 1 frame per directed link per
            // family per sync wave; δ-kinds have exactly one wave per
            // round, and the row reports the actual metric rounds
            // (workload + convergence tail) — so the whole run stays at
            // links-scale, nowhere near objects-scale.
            assert!(
                r.frames <= 3 * r.links as u64 * r.metric_rounds as u64,
                "{}: {} frames exceeds the O(links) bound",
                r.protocol,
                r.frames
            );
            assert!(
                r.amortization > 1.5,
                "{}: batching must amortize ({} envelopes / {} frames)",
                r.protocol,
                r.envelopes,
                r.frames
            );
        }
    }

    #[test]
    fn accounting_is_thread_invariant_and_classic_loses() {
        let rows = tiny_rows();
        let find = |kind: ProtocolKind, threads: usize| {
            rows.iter()
                .find(|r| r.protocol == kind && r.threads == threads)
                .unwrap()
        };
        for kind in [ProtocolKind::Classic, ProtocolKind::BpRr] {
            let (t1, t4) = (find(kind, 1), find(kind, 4));
            assert_eq!(t1.total_bytes, t4.total_bytes, "{kind}");
            assert_eq!(t1.frames, t4.frames, "{kind}");
            assert_eq!(t1.envelopes, t4.envelopes, "{kind}");
            assert!((t1.speedup_vs_seq - 1.0).abs() < 1e-12, "{kind}");
        }
        // Zipf 1.0 contention: classic must transmit more than BP+RR.
        assert!(
            find(ProtocolKind::Classic, 1).total_bytes > find(ProtocolKind::BpRr, 1).total_bytes,
            "the Retwis separation must survive the unified runner"
        );
    }

    #[test]
    fn report_roundtrips_and_gates() {
        let rows = tiny_rows();
        let json = report_to_json(&rows, true);
        let back = Json::parse(&json.pretty()).unwrap();
        assert_eq!(
            back.get("schema").unwrap().as_str(),
            Some("bench-retwis-sharded/v1")
        );
        assert!(check_regression(&back, &json, 0.25).is_empty());

        // A doubled-bytes current run fails; a missing row fails.
        let mut worse = rows.clone();
        worse[0].total_bytes *= 2;
        worse.remove(1);
        let current = report_to_json(&worse, true);
        let violations = check_regression(&current, &json, 0.25);
        assert!(violations.iter().any(|v| v.contains("total_bytes")));
        assert!(violations.iter().any(|v| v.contains("missing")));
    }
}
