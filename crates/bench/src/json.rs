//! A minimal JSON value, writer, and parser.
//!
//! The workspace builds offline (no registry, no serde), but the bench
//! harness must emit machine-readable artifacts (`BENCH_*.json`) and read
//! back checked-in baselines for CI regression gating. This module is the
//! smallest honest implementation of both directions: objects preserve
//! insertion order (stable diffs), numbers are `f64` (every metric here
//! fits losslessly below 2⁵³), strings escape the JSON control set.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (integers up to 2⁵³ round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value truncated to `u64`, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor for an unsigned metric.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Convenience constructor for a string field.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parse a JSON document.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Render with 2-space indentation and a trailing newline — the
    /// `BENCH_*.json` artifact format.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_bench_document() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("bench-scenarios/v1")),
            ("quick".into(), Json::Bool(true)),
            (
                "results".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("scenario".into(), Json::str("partition_heal")),
                    ("total_bytes".into(), Json::num(123_456)),
                    ("converged".into(), Json::Bool(true)),
                    ("convergence_rounds".into(), Json::Null),
                ])]),
            ),
        ]);
        let text = doc.pretty();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, doc);
        let row = &back.get("results").unwrap().as_array().unwrap()[0];
        assert_eq!(row.get("total_bytes").unwrap().as_u64(), Some(123_456));
        assert_eq!(
            row.get("scenario").unwrap().as_str(),
            Some("partition_heal")
        );
        assert_eq!(row.get("convergence_rounds"), Some(&Json::Null));
    }

    #[test]
    fn escapes_and_unescapes() {
        let v = Json::str("a \"b\"\n\\c\td");
        let text = v.pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_nested_and_rejects_garbage() {
        let v = Json::parse(r#"{"a": [1, 2.5, -3, {"b": null}], "c": false}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("c").unwrap().as_bool(), Some(false));
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("[1] extra").is_err());
        assert!(Json::parse("\"\\u00e9\"").unwrap().as_str() == Some("é"));
    }

    #[test]
    fn integers_render_without_exponents() {
        assert_eq!(
            Json::num(9_007_199_254_740_992).pretty().trim(),
            "9007199254740992"
        );
        assert_eq!(Json::num(0).pretty().trim(), "0");
    }
}
