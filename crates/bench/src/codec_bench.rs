//! The `codec_throughput` experiment family: how fast — and with how
//! few allocations — the wire codec moves batched envelope frames.
//!
//! The paper's whole argument is that synchronization cost is what
//! crosses the wire; the simulator must therefore spend its CPU on
//! protocol work, not on re-vectoring payloads. This family measures the
//! encode/decode hot path at Retwis-like batch shapes and pins the
//! zero-copy/pooling refactor's two claims:
//!
//! * **throughput** — encode and decode MB/s for batch frames (wall
//!   clock: reported as artifacts, never gated);
//! * **allocation discipline** — heap allocations per decoded frame for
//!   the copying path ([`WireEncode::from_bytes`]) versus the shared
//!   path ([`BatchEnvelope::decode_shared`]), allocations per
//!   steady-state `ShardedEngineRunner` round, and the worst-case
//!   allocated-bytes-to-input ratio over corrupted frames (deterministic:
//!   gated against `ci/bench-baseline/BENCH_codec.json`).
//!
//! Allocation metrics require the measuring **binary** to install
//! [`testkit_alloc::CountingAllocator`]; the `codec_throughput` bin
//! does. When it is absent (e.g. this library's unit tests) they report
//! zero and are skipped by the gate (`"measured": false`).

use std::time::Instant;

use crdt_lattice::{ReplicaId, SizeModel, WireEncode};
use crdt_sim::{ShardedEngineRunner, Topology};
use crdt_sync::{BatchEnvelope, Bytes, ProtocolKind, WireAccounting, WireEnvelope};
use crdt_types::{GSet, GSetOp};

use crate::json::Json;
use crate::{fmt_ratio, print_table, Scale};

/// One measured batch shape.
#[derive(Debug, Clone)]
pub struct CodecRow {
    /// Objects (entries) per batch frame.
    pub entries: usize,
    /// Lattice elements per entry payload.
    pub elems_per_entry: usize,
    /// Encoded frame length in bytes (deterministic).
    pub frame_bytes: u64,
    /// Encode throughput, MB/s (wall clock, artifact only).
    pub encode_mbps: f64,
    /// Copying-decode throughput, MB/s (wall clock, artifact only).
    pub decode_mbps: f64,
    /// Zero-copy decode throughput, MB/s (wall clock, artifact only).
    pub decode_shared_mbps: f64,
    /// Heap allocations for one copying decode of the frame.
    pub decode_allocs: u64,
    /// Heap allocations for one zero-copy decode of the frame.
    pub decode_shared_allocs: u64,
    /// Worst allocated-bytes / input-length ratio over a sweep of
    /// corrupted variants of this frame (the robustness budget).
    pub corrupt_alloc_ratio: f64,
    /// Were the allocation metrics actually measured (counting allocator
    /// installed)?
    pub measured: bool,
}

/// Steady-state allocation behavior of the sharded runner.
#[derive(Debug, Clone)]
pub struct RunnerAllocRow {
    /// Distinct objects per node.
    pub objects: usize,
    /// Heap allocations in one idle (converged, no ops) round.
    pub idle_round_allocs: u64,
    /// Heap allocations in one active round (4 ops per node).
    pub active_round_allocs: u64,
    /// Were the allocation metrics actually measured?
    pub measured: bool,
}

/// The whole report.
#[derive(Debug, Clone)]
pub struct CodecReport {
    /// Per-batch-shape codec measurements.
    pub frames: Vec<CodecRow>,
    /// Per-keyspace-size runner measurements.
    pub runner: Vec<RunnerAllocRow>,
}

fn batch(entries: usize, elems_per_entry: usize) -> BatchEnvelope<u32> {
    let mut out: BatchEnvelope<u32> = BatchEnvelope::new();
    for k in 0..entries {
        let payload =
            GSet::from_iter((0..elems_per_entry).map(|e| (k * elems_per_entry + e) as u64))
                .to_bytes();
        out.push(
            k as u32,
            WireEnvelope {
                from: ReplicaId(0),
                to: ReplicaId(1),
                kind: ProtocolKind::BpRr,
                accounting: WireAccounting {
                    payload_elements: elems_per_entry as u64,
                    payload_bytes: 8 * elems_per_entry as u64,
                    metadata_bytes: 0,
                    encoded_bytes: payload.len() as u64,
                },
                payload: payload.into(),
            },
        );
    }
    out
}

fn mbps(bytes_total: u64, elapsed_nanos: u128) -> f64 {
    if elapsed_nanos == 0 {
        return f64::INFINITY;
    }
    (bytes_total as f64 / (1024.0 * 1024.0)) / (elapsed_nanos as f64 / 1e9)
}

/// Stamp a maximal varint at `pos` — the length-field corruption.
fn corrupt_at(frame: &[u8], pos: usize) -> Vec<u8> {
    let mut bad = frame.to_vec();
    for (i, b) in [0xffu8, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f]
        .into_iter()
        .enumerate()
    {
        if pos + i < bad.len() {
            bad[pos + i] = b;
        }
    }
    bad
}

fn measure_frame(entries: usize, elems_per_entry: usize, reps: usize) -> CodecRow {
    let proto = batch(entries, elems_per_entry);
    let frame_vec = proto.to_bytes();
    let frame_bytes = frame_vec.len() as u64;
    let frame = Bytes::copy_from_slice(&frame_vec);
    let measured = testkit_alloc::is_installed();

    // Throughput (wall clock).
    let t0 = Instant::now();
    let mut scratch = Vec::new();
    for _ in 0..reps {
        scratch.clear();
        proto.encode(&mut scratch);
        std::hint::black_box(&scratch);
    }
    let encode_mbps = mbps(frame_bytes * reps as u64, t0.elapsed().as_nanos());

    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(BatchEnvelope::<u32>::from_bytes(&frame_vec).expect("valid frame"));
    }
    let decode_mbps = mbps(frame_bytes * reps as u64, t0.elapsed().as_nanos());

    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(BatchEnvelope::<u32>::decode_shared(&frame).expect("valid frame"));
    }
    let decode_shared_mbps = mbps(frame_bytes * reps as u64, t0.elapsed().as_nanos());

    // Allocation discipline (deterministic).
    let (_, copying) =
        testkit_alloc::measure(|| BatchEnvelope::<u32>::from_bytes(&frame_vec).expect("valid"));
    let (_, shared) =
        testkit_alloc::measure(|| BatchEnvelope::<u32>::decode_shared(&frame).expect("valid"));

    // Robustness budget: corrupt every 7th position (plus truncations)
    // and track the worst allocated-bytes-to-input ratio.
    let mut worst = 0.0f64;
    for pos in (0..frame_vec.len()).step_by(7) {
        let bad = corrupt_at(&frame_vec, pos);
        let (_, stats) = testkit_alloc::measure(|| {
            std::hint::black_box(BatchEnvelope::<u32>::from_bytes(&bad).ok());
        });
        worst = worst.max(stats.allocated_bytes as f64 / bad.len().max(1) as f64);
        let cut = &frame_vec[..pos];
        let (_, stats) = testkit_alloc::measure(|| {
            std::hint::black_box(BatchEnvelope::<u32>::from_bytes(cut).ok());
        });
        worst = worst.max(stats.allocated_bytes as f64 / cut.len().max(1) as f64);
    }

    CodecRow {
        entries,
        elems_per_entry,
        frame_bytes,
        encode_mbps,
        decode_mbps,
        decode_shared_mbps,
        decode_allocs: copying.allocations,
        decode_shared_allocs: shared.allocations,
        corrupt_alloc_ratio: worst,
        measured,
    }
}

fn measure_runner(objects: usize) -> RunnerAllocRow {
    type R = ShardedEngineRunner<u32, GSet<u64>>;
    let nodes = 4;
    let mut r: R = ShardedEngineRunner::new(
        ProtocolKind::BpRr,
        Topology::full_mesh(nodes),
        SizeModel::compact(),
        2,
    );
    // Populate the keyspace and converge.
    let seed_ops: Vec<Vec<(u32, GSetOp<u64>)>> = (0..nodes)
        .map(|n| {
            (0..objects)
                .map(|k| (k as u32, GSetOp::Add((n * objects + k) as u64)))
                .collect()
        })
        .collect();
    r.step(&seed_ops);
    r.run_to_convergence(32).expect("codec bench converges");
    let idle: Vec<Vec<(u32, GSetOp<u64>)>> = vec![Vec::new(); nodes];
    // Warm the pools and thread plumbing before measuring.
    r.step(&idle);
    let (_, idle_stats) = testkit_alloc::measure(|| r.step(&idle));
    let active: Vec<Vec<(u32, GSetOp<u64>)>> = (0..nodes)
        .map(|n| {
            (0..4u32)
                .map(|k| (k, GSetOp::Add(1_000_000 + (n as u64) * 10 + u64::from(k))))
                .collect()
        })
        .collect();
    r.step(&active); // warm the active path too (buffers, batch maps)
    let (_, active_stats) = testkit_alloc::measure(|| r.step(&active));
    RunnerAllocRow {
        objects,
        idle_round_allocs: idle_stats.allocations,
        active_round_allocs: active_stats.allocations,
        measured: testkit_alloc::is_installed(),
    }
}

/// Run the family. Quick scale shrinks the batch shapes and repetitions
/// for CI; the allocation metrics are scale-independent by construction
/// (they measure single frames and single rounds).
pub fn run_codec_throughput(scale: Scale) -> CodecReport {
    let reps = scale.pick(2_000, 200);
    let shapes: &[(usize, usize)] = &[(16, 4), (256, 4), (scale.pick(4096, 1024), 2)];
    let frames = shapes
        .iter()
        .map(|&(entries, elems)| measure_frame(entries, elems, reps))
        .collect();
    let runner = [64, scale.pick(4096, 1024)]
        .into_iter()
        .map(measure_runner)
        .collect();
    CodecReport { frames, runner }
}

/// Print the report as tables.
pub fn print_report(report: &CodecReport) {
    let rows: Vec<Vec<String>> = report
        .frames
        .iter()
        .map(|r| {
            vec![
                r.entries.to_string(),
                r.elems_per_entry.to_string(),
                r.frame_bytes.to_string(),
                format!("{:.0}", r.encode_mbps),
                format!("{:.0}", r.decode_mbps),
                format!("{:.0}", r.decode_shared_mbps),
                r.decode_allocs.to_string(),
                r.decode_shared_allocs.to_string(),
                fmt_ratio(r.corrupt_alloc_ratio),
            ]
        })
        .collect();
    print_table(
        "codec_throughput: batch frames",
        &[
            "entries",
            "elems/entry",
            "frame B",
            "enc MB/s",
            "dec MB/s",
            "dec(shared) MB/s",
            "dec allocs",
            "shared allocs",
            "corrupt alloc ratio",
        ],
        &rows,
    );
    let rows: Vec<Vec<String>> = report
        .runner
        .iter()
        .map(|r| {
            vec![
                r.objects.to_string(),
                r.idle_round_allocs.to_string(),
                r.active_round_allocs.to_string(),
                if r.measured { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "codec_throughput: sharded runner allocations per round",
        &[
            "objects/node",
            "idle-round allocs",
            "active-round allocs",
            "measured",
        ],
        &rows,
    );
}

/// Render the `BENCH_codec.json` document. Rows whose allocation
/// metrics were not actually measured (no counting allocator in this
/// binary) carry `"measured": false`; [`check_regression`] drops them
/// before gating.
pub fn report_to_json(report: &CodecReport, quick: bool) -> Json {
    let frames = report
        .frames
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("row".into(), Json::str("frame")),
                ("entries".into(), Json::num(r.entries as u64)),
                (
                    "elems_per_entry".into(),
                    Json::num(r.elems_per_entry as u64),
                ),
                ("frame_bytes".into(), Json::num(r.frame_bytes)),
                ("encode_mbps".into(), Json::Num(r.encode_mbps)),
                ("decode_mbps".into(), Json::Num(r.decode_mbps)),
                ("decode_shared_mbps".into(), Json::Num(r.decode_shared_mbps)),
                ("decode_allocs".into(), Json::num(r.decode_allocs)),
                (
                    "decode_shared_allocs".into(),
                    Json::num(r.decode_shared_allocs),
                ),
                (
                    "corrupt_alloc_ratio".into(),
                    Json::Num(r.corrupt_alloc_ratio),
                ),
                ("measured".into(), Json::Bool(r.measured)),
                ("converged".into(), Json::Bool(true)),
            ])
        })
        .collect::<Vec<_>>();
    let runner = report
        .runner
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("row".into(), Json::str("runner")),
                ("entries".into(), Json::num(r.objects as u64)),
                ("elems_per_entry".into(), Json::num(0)),
                ("idle_round_allocs".into(), Json::num(r.idle_round_allocs)),
                (
                    "active_round_allocs".into(),
                    Json::num(r.active_round_allocs),
                ),
                ("measured".into(), Json::Bool(r.measured)),
                ("converged".into(), Json::Bool(true)),
            ])
        })
        .collect::<Vec<_>>();
    Json::Obj(vec![
        ("schema".into(), Json::str("bench-codec/v1")),
        ("quick".into(), Json::Bool(quick)),
        (
            "results".into(),
            Json::Arr(frames.into_iter().chain(runner).collect()),
        ),
    ])
}

/// Write the JSON report to `path`.
pub fn write_report(path: &str, report: &CodecReport, quick: bool) -> std::io::Result<()> {
    std::fs::write(path, report_to_json(report, quick).pretty())
}

/// Gated metrics and their absolute floors (see [`crate::gate_limit`]):
/// only deterministic quantities — frame layout size, allocation counts,
/// and the corrupt-input allocation budget. Throughput (MB/s) is wall
/// clock and never gated.
const GATED: [(&str, f64); 6] = [
    ("frame_bytes", 64.0),
    ("decode_allocs", 8.0),
    ("decode_shared_allocs", 8.0),
    ("corrupt_alloc_ratio", 8.0),
    ("idle_round_allocs", 64.0),
    ("active_round_allocs", 64.0),
];

/// Compare a current report to the checked-in baseline. Rows match on
/// `(row, entries, elems_per_entry)`; unmeasured rows (no counting
/// allocator in the producing binary) are dropped from both sides
/// before gating. A *current* run that stopped measuring against a
/// measured baseline therefore fails as "missing" — which is the right
/// failure: the gate must not silently go blind.
pub fn check_regression(current: &Json, baseline: &Json, tolerance: f64) -> Vec<String> {
    let strip = |doc: &Json| -> Json {
        let rows = doc
            .get("results")
            .and_then(Json::as_array)
            .map(|rows| {
                rows.iter()
                    .filter(|r| r.get("measured").and_then(Json::as_bool) != Some(false))
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default();
        Json::Obj(vec![("results".into(), Json::Arr(rows))])
    };
    crate::check_regression_gate(
        &strip(current),
        &strip(baseline),
        tolerance,
        &["row", "entries", "elems_per_entry"],
        &GATED,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_and_gates() {
        // Unit tests run without the counting allocator: allocation
        // metrics are zero and flagged unmeasured, but the report shape,
        // JSON round-trip and gate plumbing are all exercised.
        let report = run_codec_throughput(Scale::Quick);
        assert_eq!(report.frames.len(), 3);
        assert!(report.frames.iter().all(|r| r.frame_bytes > 0));
        let json = report_to_json(&report, true);
        let back = Json::parse(&json.pretty()).unwrap();
        assert_eq!(back.get("schema").unwrap().as_str(), Some("bench-codec/v1"));
        assert!(check_regression(&back, &json, 0.25).is_empty());
    }

    #[test]
    fn gate_flags_regressions_on_measured_rows() {
        let mk = |allocs: u64| {
            Json::Obj(vec![(
                "results".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("row".into(), Json::str("frame")),
                    ("entries".into(), Json::num(16)),
                    ("elems_per_entry".into(), Json::num(4)),
                    ("frame_bytes".into(), Json::num(1000)),
                    ("decode_allocs".into(), Json::num(allocs)),
                    ("measured".into(), Json::Bool(true)),
                    ("converged".into(), Json::Bool(true)),
                ])]),
            )])
        };
        let violations = check_regression(&mk(400), &mk(100), 0.25);
        assert!(violations.iter().any(|v| v.contains("decode_allocs")));
        assert!(check_regression(&mk(100), &mk(100), 0.25).is_empty());
    }

    #[test]
    fn unmeasured_rows_are_not_gated() {
        let unmeasured = Json::Obj(vec![(
            "results".into(),
            Json::Arr(vec![Json::Obj(vec![
                ("row".into(), Json::str("frame")),
                ("entries".into(), Json::num(16)),
                ("elems_per_entry".into(), Json::num(4)),
                ("decode_allocs".into(), Json::num(0)),
                ("measured".into(), Json::Bool(false)),
                ("converged".into(), Json::Bool(true)),
            ])]),
        )]);
        // Baseline has a measured row; current (unmeasured) must not be
        // compared against it — nor counted as missing.
        assert!(check_regression(&unmeasured, &unmeasured, 0.25).is_empty());
    }
}
