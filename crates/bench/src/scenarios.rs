//! The `scenarios` experiment family: the BP/RR ablation extended into
//! fault regimes the paper never measured.
//!
//! Each scenario (see the table in the crate docs) drives every requested
//! [`ProtocolKind`] through the same fault schedule on the paper's
//! partial-mesh topology with the unique-adds GSet workload, and records
//! a [`ScenarioOutcome`] per protocol: convergence rounds, bytes to
//! re-converge, out-of-band repair traffic, staleness windows. Results
//! are printed as tables and emitted as `BENCH_scenarios.json`
//! ([`write_report`]); [`check_regression`] gates CI against a checked-in
//! baseline.
//!
//! Everything here is **deterministic** — seeded RNG, round-based clock —
//! so the JSON is machine-comparable across runs and machines, which is
//! what makes a checked-in baseline meaningful (wall-clock benchmarks
//! like `engine_overhead` are uploaded as artifacts instead of gated).

use crdt_lattice::{ReplicaId, SizeModel};
use crdt_sim::{run_scenario, NetworkConfig, ScenarioOutcome, ScenarioSchedule, Topology};
use crdt_sync::ProtocolKind;
use crdt_types::{GSet, GSetOp};

use crate::json::Json;
use crate::{fmt_bytes, print_table, Scale};

/// Scenario names accepted by `--scenario` (plus `all`).
pub const SCENARIO_NAMES: [&str; 4] = ScenarioSchedule::BUILTIN_NAMES;

/// Parse every `--scenario <name>` flag (repeatable; `all` selects the
/// whole suite); `default` when none given. Unknown names print the
/// accepted set and exit with status 2.
pub fn scenarios_from_args(default: &[&str]) -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--scenario" {
            let Some(value) = args.get(i + 1) else {
                eprintln!("error: --scenario needs a value");
                std::process::exit(2);
            };
            if value == "all" {
                names.extend(SCENARIO_NAMES.iter().map(|s| s.to_string()));
            } else if SCENARIO_NAMES.contains(&value.as_str()) {
                names.push(value.clone());
            } else {
                eprintln!(
                    "error: unknown scenario {value:?} (expected `all` or one of: {})",
                    SCENARIO_NAMES.join(", ")
                );
                std::process::exit(2);
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    if names.is_empty() {
        names.extend(default.iter().map(|s| s.to_string()));
    }
    names
}

/// Run `scenarios` × `kinds` at `scale`, printing one table per scenario.
pub fn run_scenario_suite(
    scale: Scale,
    scenarios: &[String],
    kinds: &[ProtocolKind],
) -> Vec<ScenarioOutcome> {
    let n = scale.pick(15, 6);
    let rounds = scale.pick(60, 12);
    let mut outcomes = Vec::new();
    for name in scenarios {
        let schedule =
            ScenarioSchedule::builtin(name, n, rounds).expect("scenario names are pre-validated");
        let mut rows = Vec::new();
        for &kind in kinds {
            // A fresh deterministic workload per protocol: every kind
            // sees the identical operation stream.
            let mut workload = |node: ReplicaId, round: usize| -> Vec<GSetOp<u64>> {
                vec![GSetOp::Add((round * 64 + node.index()) as u64)]
            };
            let outcome = run_scenario::<GSet<u64>>(
                kind,
                Topology::partial_mesh(n, 4),
                &schedule,
                NetworkConfig::reliable(1),
                SizeModel::compact(),
                &mut workload,
            );
            rows.push(vec![
                kind.name().to_string(),
                outcome
                    .convergence_rounds
                    .map_or("NEVER".to_string(), |r| r.to_string()),
                fmt_bytes(outcome.total_bytes),
                fmt_bytes(outcome.bytes_to_reconverge),
                fmt_bytes(outcome.repair_bytes),
                outcome.staleness_rounds.to_string(),
                outcome.max_staleness_window.to_string(),
                outcome.undeliverable.to_string(),
            ]);
            outcomes.push(outcome);
        }
        print_table(
            &format!("Scenario `{name}` ({n} nodes, {rounds} rounds, mesh deg 4)"),
            &[
                "protocol",
                "conv rounds",
                "total bytes",
                "reconverge bytes",
                "repair bytes",
                "stale rounds",
                "max window",
                "dropped",
            ],
            &rows,
        );
    }
    outcomes
}

/// Render outcomes as the `BENCH_scenarios.json` document.
pub fn report_to_json(outcomes: &[ScenarioOutcome], quick: bool) -> Json {
    let results = outcomes
        .iter()
        .map(|o| {
            Json::Obj(vec![
                ("scenario".into(), Json::str(o.scenario.clone())),
                ("protocol".into(), Json::str(o.protocol.id())),
                ("protocol_name".into(), Json::str(o.protocol.name())),
                (
                    "workload_rounds".into(),
                    Json::num(o.workload_rounds as u64),
                ),
                ("converged".into(), Json::Bool(o.converged)),
                (
                    "convergence_rounds".into(),
                    o.convergence_rounds
                        .map_or(Json::Null, |r| Json::num(r as u64)),
                ),
                ("total_bytes".into(), Json::num(o.total_bytes)),
                ("total_elements".into(), Json::num(o.total_elements)),
                ("total_messages".into(), Json::num(o.total_messages)),
                (
                    "bytes_to_reconverge".into(),
                    Json::num(o.bytes_to_reconverge),
                ),
                ("repair_messages".into(), Json::num(o.repair_messages)),
                ("repair_elements".into(), Json::num(o.repair_elements)),
                ("repair_bytes".into(), Json::num(o.repair_bytes)),
                ("undeliverable".into(), Json::num(o.undeliverable)),
                (
                    "staleness_rounds".into(),
                    Json::num(o.staleness_rounds as u64),
                ),
                (
                    "max_staleness_window".into(),
                    Json::num(o.max_staleness_window as u64),
                ),
                ("final_nodes".into(), Json::num(o.final_nodes as u64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::str("bench-scenarios/v1")),
        ("quick".into(), Json::Bool(quick)),
        ("results".into(), Json::Arr(results)),
    ])
}

/// Write the JSON report to `path`.
pub fn write_report(path: &str, outcomes: &[ScenarioOutcome], quick: bool) -> std::io::Result<()> {
    std::fs::write(path, report_to_json(outcomes, quick).pretty())
}

/// Compare a current report against a checked-in baseline.
///
/// For every `(scenario, protocol)` row of the baseline, the current run
/// must (a) exist, (b) have converged, and (c) keep the gated metrics —
/// `total_bytes`, `bytes_to_reconverge`, `repair_bytes`, and
/// `convergence_rounds` — within `(1 + tolerance)×` of the baseline,
/// floored by a per-metric absolute epsilon (see [`crate::gate_limit`]):
/// zero baselines would otherwise flag any non-zero current value — or,
/// in ratio form, divide by zero — and several metrics are legitimately
/// zero (the self-healing kinds report zero repair bytes; full-mesh
/// scenarios converge in zero extra rounds), while tiny integer
/// baselines (1 convergence round) would fail on harmless ±1 jitter.
/// Improvements always pass; returns the list of violations.
pub fn check_regression(current: &Json, baseline: &Json, tolerance: f64) -> Vec<String> {
    crate::check_regression_gate(
        current,
        baseline,
        tolerance,
        &["scenario", "protocol"],
        &[
            ("total_bytes", 256.0),
            ("bytes_to_reconverge", 256.0),
            ("repair_bytes", 256.0),
            ("convergence_rounds", 2.0),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_outcomes() -> Vec<ScenarioOutcome> {
        run_scenario_suite(
            Scale::Quick,
            &["partition_heal".to_string()],
            &[ProtocolKind::BpRr, ProtocolKind::Scuttlebutt],
        )
    }

    #[test]
    fn suite_runs_and_reports() {
        let outcomes = quick_outcomes();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.converged));
        let json = report_to_json(&outcomes, true);
        let text = json.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(
            back.get("schema").unwrap().as_str(),
            Some("bench-scenarios/v1")
        );
        assert_eq!(back.get("results").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let outcomes = quick_outcomes();
        let json = report_to_json(&outcomes, true);
        assert!(check_regression(&json, &json, 0.25).is_empty());
    }

    #[test]
    fn regressions_and_missing_rows_fail_the_gate() {
        let outcomes = quick_outcomes();
        let baseline = report_to_json(&outcomes, true);
        // Current run with total_bytes inflated 2× on the first row, and
        // the second row deleted.
        let mut rows = baseline
            .get("results")
            .unwrap()
            .as_array()
            .unwrap()
            .to_vec();
        rows.truncate(1);
        if let Json::Obj(fields) = &mut rows[0] {
            for (k, v) in fields.iter_mut() {
                if k == "total_bytes" {
                    let doubled = v.as_f64().unwrap() * 2.0;
                    *v = Json::Num(doubled);
                }
            }
        }
        let current = Json::Obj(vec![
            ("schema".into(), Json::str("bench-scenarios/v1")),
            ("quick".into(), Json::Bool(true)),
            ("results".into(), Json::Arr(rows)),
        ]);
        let violations = check_regression(&current, &baseline, 0.25);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("total_bytes")));
        assert!(violations.iter().any(|v| v.contains("missing")));
    }

    #[test]
    fn zero_baselines_gate_on_the_absolute_epsilon() {
        // Scuttlebutt self-heals a partition: its baseline repair_bytes
        // is genuinely 0. The multiplicative rule degenerates there
        // (`0 × (1 + t) = 0` flags any jitter; a ratio divides by zero),
        // so zero baselines use the defined absolute epsilon instead.
        let outcomes = quick_outcomes();
        let sb = outcomes
            .iter()
            .find(|o| o.protocol == ProtocolKind::Scuttlebutt)
            .unwrap();
        assert_eq!(sb.repair_bytes, 0, "precondition: self-healing baseline");
        let baseline = report_to_json(&outcomes, true);

        // Within the epsilon: passes.
        let mut nudged = outcomes.clone();
        nudged
            .iter_mut()
            .find(|o| o.protocol == ProtocolKind::Scuttlebutt)
            .unwrap()
            .repair_bytes = 200;
        let current = report_to_json(&nudged, true);
        assert!(
            check_regression(&current, &baseline, 0.25).is_empty(),
            "≤ epsilon over a zero baseline is not a regression"
        );

        // Beyond the epsilon: a real regression, caught.
        nudged
            .iter_mut()
            .find(|o| o.protocol == ProtocolKind::Scuttlebutt)
            .unwrap()
            .repair_bytes = 10_000;
        let current = report_to_json(&nudged, true);
        let violations = check_regression(&current, &baseline, 0.25);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("repair_bytes"), "{violations:?}");
    }

    #[test]
    fn improvements_pass_the_gate() {
        let outcomes = quick_outcomes();
        let current = report_to_json(&outcomes, true);
        // A baseline that was strictly worse.
        let mut worse = outcomes.clone();
        for o in &mut worse {
            o.total_bytes *= 3;
            o.bytes_to_reconverge *= 3;
        }
        let baseline = report_to_json(&worse, true);
        assert!(check_regression(&current, &baseline, 0.25).is_empty());
    }
}
