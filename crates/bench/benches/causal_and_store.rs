//! Criterion micro-benchmarks for the causal (dot-store) types, the wire
//! codec, and the multi-object store — the cost model behind running the
//! paper's synchronization on removable data types at store granularity.
//!
//! Groups:
//!
//! * `causal_ops/*` — mutator + optimal-delta cost for AWSet, ORMap and
//!   RWSet at growing state sizes (the δ-mutator is `Δ(m(x), x)`
//!   specialized, so this prices the paper's §III-B machinery on causal
//!   state);
//! * `causal_delta/*` — `Δ(a, b)` extraction between diverged causal
//!   states (the RR hot path);
//! * `codec/*` — encode/decode of lattice states vs their analytic size;
//! * `store_round/*` — one multi-object sync round, classic vs BP+RR.

use crdt_lattice::{Decompose, MapLattice, Max, ReplicaId, WireEncode};
use crdt_sync::ProtocolKind;
use crdt_types::AWSetOp;
use crdt_types::{AWSet, ORMap, RWSet};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use delta_store::{Cluster, StoreConfig};

const A: ReplicaId = ReplicaId(0);
const B: ReplicaId = ReplicaId(1);

fn awset(n: u64) -> AWSet<u64> {
    let mut s = AWSet::new();
    for e in 0..n {
        let _ = s.add(ReplicaId((e % 4) as u32), e);
        if e % 3 == 0 {
            let _ = s.remove(&(e / 2));
        }
    }
    s
}

fn ormap(n: u64) -> ORMap<u64, u64> {
    let mut m = ORMap::new();
    for k in 0..n {
        let _ = m.put(ReplicaId((k % 4) as u32), k % (n / 2).max(1), k);
    }
    m
}

fn bench_causal_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("causal_ops");
    for &n in &[64u64, 512, 2048] {
        let set = awset(n);
        g.bench_with_input(BenchmarkId::new("awset_add", n), &n, |b, _| {
            b.iter_batched(
                || set.clone(),
                |mut s| black_box(s.add(A, u64::MAX)),
                criterion::BatchSize::SmallInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("awset_remove", n), &n, |b, _| {
            b.iter_batched(
                || set.clone(),
                |mut s| black_box(s.remove(&(n / 2))),
                criterion::BatchSize::SmallInput,
            )
        });
        let map = ormap(n);
        g.bench_with_input(BenchmarkId::new("ormap_put", n), &n, |b, _| {
            b.iter_batched(
                || map.clone(),
                |mut m| black_box(m.put(A, 0, u64::MAX)),
                criterion::BatchSize::SmallInput,
            )
        });
        let mut rw = RWSet::new();
        for e in 0..n {
            let _ = rw.add(ReplicaId((e % 4) as u32), e);
        }
        g.bench_with_input(BenchmarkId::new("rwset_remove", n), &n, |b, _| {
            b.iter_batched(
                || rw.clone(),
                |mut s| black_box(s.remove(B, n / 2)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_causal_delta(c: &mut Criterion) {
    let mut g = c.benchmark_group("causal_delta");
    for &n in &[64u64, 512, 2048] {
        // Two replicas that share a prefix and then diverge by ~n/8 events.
        let shared = awset(n);
        let mut ahead = shared.clone();
        for e in 0..(n / 8).max(1) {
            let _ = ahead.add(B, n * 2 + e);
        }
        g.bench_with_input(BenchmarkId::new("awset_delta", n), &n, |b, _| {
            b.iter(|| black_box(ahead.delta(black_box(&shared))))
        });
        g.bench_with_input(BenchmarkId::new("awset_decompose_count", n), &n, |b, _| {
            b.iter(|| black_box(ahead.irreducible_count()))
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    for &n in &[16u32, 256, 4096] {
        let state: MapLattice<ReplicaId, Max<u64>> = (0..n)
            .map(|i| (ReplicaId(i), Max::new(u64::from(i) * 7919)))
            .collect();
        g.bench_with_input(BenchmarkId::new("encode_gcounter", n), &n, |b, _| {
            b.iter(|| black_box(state.to_bytes()))
        });
        let bytes = state.to_bytes();
        g.bench_with_input(BenchmarkId::new("decode_gcounter", n), &n, |b, _| {
            b.iter(|| {
                black_box(MapLattice::<ReplicaId, Max<u64>>::from_bytes(black_box(&bytes)).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_store_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_round");
    for &objects in &[16u64, 128] {
        for (label, cfg) in [
            ("classic", StoreConfig::new(ProtocolKind::Classic)),
            ("bp_rr", StoreConfig::default()),
        ] {
            g.bench_with_input(BenchmarkId::new(label, objects), &objects, |b, &objects| {
                b.iter_batched(
                    || {
                        // 4 replicas, ring; every object hot on every replica.
                        let neighbors: Vec<Vec<ReplicaId>> = (0..4usize)
                            .map(|i| {
                                vec![ReplicaId::from((i + 1) % 4), ReplicaId::from((i + 3) % 4)]
                            })
                            .collect();
                        let mut cl: Cluster<u64, AWSet<u64>> =
                            Cluster::with_neighbors(neighbors, cfg);
                        for k in 0..objects {
                            for r in 0..4usize {
                                cl.update(
                                    r,
                                    k,
                                    &AWSetOp::Add(ReplicaId::from(r), k * 10 + r as u64),
                                );
                            }
                        }
                        cl
                    },
                    |mut cl| {
                        cl.sync_round();
                        black_box(cl.stats())
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_causal_ops,
    bench_causal_delta,
    bench_codec,
    bench_store_round
);
criterion_main!(benches);
