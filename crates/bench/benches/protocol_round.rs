//! Criterion benchmark: cost of one full simulation round per protocol on
//! the paper's 15-node mesh (GSet unique-adds workload).
//!
//! The relative per-round costs are the simulator-level counterpart of
//! Fig. 12's CPU comparison: classic delta's rounds get slower as its
//! δ-groups snowball; BP+RR rounds stay flat.

use crdt_lattice::{ReplicaId, SizeModel};
use crdt_sim::{NetworkConfig, Runner, Topology};
use crdt_sync::{BpRrDelta, ClassicDelta, OpBased, Protocol, Scuttlebutt, StateSync};
use crdt_types::{GSet, GSetOp};
use criterion::{criterion_group, criterion_main, Criterion};

const N: usize = 15;

fn workload() -> impl FnMut(ReplicaId, usize) -> Vec<GSetOp<u64>> {
    |node: ReplicaId, round: usize| vec![GSetOp::Add((round * N + node.index()) as u64)]
}

fn bench_round<P: Protocol<GSet<u64>>>(c: &mut Criterion, label: &str) {
    c.bench_function(&format!("round/{label}"), |b| {
        b.iter_batched(
            || {
                // Warm the system up for 10 rounds so buffers/states carry
                // realistic content, then measure one more round.
                let mut runner: Runner<GSet<u64>, P> = Runner::new(
                    Topology::partial_mesh(N, 4),
                    NetworkConfig::reliable(1),
                    SizeModel::compact(),
                );
                runner.run(&mut workload(), 10);
                runner
            },
            |mut runner| {
                runner.step(&mut workload_at(10));
                runner
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

/// Workload shifted to a fixed round index (the measured round).
fn workload_at(round: usize) -> impl FnMut(ReplicaId, usize) -> Vec<GSetOp<u64>> {
    move |node: ReplicaId, _| vec![GSetOp::Add((round * N + node.index()) as u64)]
}

fn benches(c: &mut Criterion) {
    bench_round::<StateSync<GSet<u64>>>(c, "state");
    bench_round::<ClassicDelta<GSet<u64>>>(c, "classic_delta");
    bench_round::<BpRrDelta<GSet<u64>>>(c, "bp_rr_delta");
    bench_round::<Scuttlebutt<GSet<u64>>>(c, "scuttlebutt");
    bench_round::<OpBased<GSet<u64>>>(c, "op_based");
}

criterion_group!(protocol_round, benches);
criterion_main!(protocol_round);
