//! Criterion micro-benchmarks for the lattice core: join, order test,
//! decomposition and optimal-delta computation across the catalog's
//! compositions and a range of state sizes.
//!
//! These are the primitive costs behind the paper's CPU study (Fig. 12):
//! classic delta-based pays join/inflation-check cost on *whole* received
//! δ-groups, while RR pays one `Δ` extraction — the `delta/*` group here
//! prices that extraction.

use crdt_lattice::{Bottom, Decompose, Lattice, MapLattice, Max, ReplicaId, SetLattice};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

type GCounterShape = MapLattice<ReplicaId, Max<u64>>;

fn gset(n: u64, offset: u64) -> SetLattice<u64> {
    (0..n).map(|i| i * 2 + offset).collect()
}

fn gcounter(n: u32, bump: u64) -> GCounterShape {
    (0..n)
        .map(|i| (ReplicaId(i), Max::new(u64::from(i) + bump)))
        .collect()
}

fn bench_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("join");
    for &n in &[16u64, 256, 4096] {
        let a = gset(n, 0);
        let b = gset(n, 1);
        g.bench_with_input(BenchmarkId::new("gset_union", n), &n, |bench, _| {
            bench.iter(|| black_box(a.clone()).join(black_box(b.clone())))
        });
        let ca = gcounter(n as u32, 0);
        let cb = gcounter(n as u32, 5);
        g.bench_with_input(
            BenchmarkId::new("gcounter_pointwise_max", n),
            &n,
            |bench, _| bench.iter(|| black_box(ca.clone()).join(black_box(cb.clone()))),
        );
    }
    g.finish();
}

fn bench_leq(c: &mut Criterion) {
    let mut g = c.benchmark_group("leq");
    for &n in &[16u64, 256, 4096] {
        let small = gset(n / 2, 0);
        let big = gset(n, 0);
        g.bench_with_input(BenchmarkId::new("gset_subset", n), &n, |bench, _| {
            bench.iter(|| black_box(&small).leq(black_box(&big)))
        });
    }
    g.finish();
}

fn bench_decompose(c: &mut Criterion) {
    let mut g = c.benchmark_group("decompose");
    for &n in &[16u64, 256, 4096] {
        let s = gset(n, 0);
        g.bench_with_input(BenchmarkId::new("gset", n), &n, |bench, _| {
            bench.iter(|| {
                let mut count = 0u64;
                black_box(&s).for_each_irreducible(&mut |y| {
                    count += u64::from(!y.is_bottom());
                });
                count
            })
        });
        let m = gcounter(n as u32, 0);
        g.bench_with_input(BenchmarkId::new("gcounter", n), &n, |bench, _| {
            bench.iter(|| black_box(&m).decompose().len())
        });
    }
    g.finish();
}

fn bench_delta(c: &mut Criterion) {
    let mut g = c.benchmark_group("delta");
    for &n in &[16u64, 256, 4096] {
        // 10% divergence: the common synchronization case.
        let a = gset(n, 0);
        let b = gset(n - n / 10, 0);
        g.bench_with_input(BenchmarkId::new("gset_10pct_new", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).delta(black_box(&b)))
        });
        // Fully redundant: the RR fast path that drops a δ-group.
        g.bench_with_input(
            BenchmarkId::new("gset_fully_redundant", n),
            &n,
            |bench, _| bench.iter(|| black_box(&a).delta(black_box(&a))),
        );
        let ca = gcounter(n as u32, 5);
        let cb = gcounter(n as u32, 0);
        g.bench_with_input(BenchmarkId::new("gcounter_all_newer", n), &n, |bench, _| {
            bench.iter(|| black_box(&ca).delta(black_box(&cb)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_join, bench_leq, bench_decompose, bench_delta);
criterion_main!(benches);
