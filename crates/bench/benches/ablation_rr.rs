//! Ablation: the receive-path design choice behind the RR optimization.
//!
//! Classic delta-based synchronization checks `d ⋢ x` (an order test) and
//! then buffers the *whole* received δ-group; RR computes `Δ(d, x)` and
//! buffers only the extraction. The extraction looks more expensive per
//! call — this bench quantifies by how much — but Fig. 12 shows classic
//! losing overall because it later joins and re-transmits the redundant
//! bulk it buffered. Both effects are measured here:
//!
//! * `receive/*` — one receive-path call, varying the redundant fraction;
//! * `amplification/*` — the downstream cost: joining the buffered groups
//!   into the next outgoing δ-group.

use crdt_lattice::{Decompose, Lattice, ReplicaId, SetLattice};
use crdt_sync::{DeltaConfig, DeltaMsg, DeltaSync};
use crdt_types::{GSet, GSetOp};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// Local state of `n` elements plus a received group of `n/4` elements of
/// which `redundant_pct`% are already known.
fn scenario(n: u64, redundant_pct: u64) -> (GSet<u64>, GSet<u64>) {
    let state: GSet<u64> = (0..n).collect();
    let group_size = (n / 4).max(4);
    let redundant = group_size * redundant_pct / 100;
    let group: GSet<u64> = (0..redundant)
        .map(|i| i * 4 % n) // already present
        .chain((0..group_size - redundant).map(|i| n + i)) // novel
        .collect();
    (state, group)
}

fn bench_receive(c: &mut Criterion) {
    let mut g = c.benchmark_group("receive");
    for &pct in &[0u64, 50, 90, 100] {
        let (state, group) = scenario(4096, pct);

        g.bench_with_input(
            BenchmarkId::new("classic_inflation_check", pct),
            &pct,
            |b, _| {
                b.iter_batched(
                    || {
                        let mut p =
                            DeltaSync::<GSet<u64>>::with_config(ReplicaId(0), DeltaConfig::CLASSIC);
                        seed(&mut p, &state);
                        p
                    },
                    |mut p| {
                        p.receive(ReplicaId(1), DeltaMsg(group.clone()));
                        p
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );

        g.bench_with_input(
            BenchmarkId::new("rr_delta_extraction", pct),
            &pct,
            |b, _| {
                b.iter_batched(
                    || {
                        let mut p =
                            DeltaSync::<GSet<u64>>::with_config(ReplicaId(0), DeltaConfig::BP_RR);
                        seed(&mut p, &state);
                        p
                    },
                    |mut p| {
                        p.receive(ReplicaId(1), DeltaMsg(group.clone()));
                        p
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    g.finish();
}

fn seed(p: &mut DeltaSync<GSet<u64>>, state: &GSet<u64>) {
    for e in state.iter() {
        p.local_op(&GSetOp::Add(*e));
    }
    // Clear the warm-up buffer so only the measured receive populates it.
    let mut sink = Vec::new();
    p.sync_step(&[], &mut sink);
}

/// Downstream amplification: the δ-group a node sends is the join of its
/// buffer. Classic buffers whole groups (large joins); RR buffers
/// extractions (small joins).
fn bench_amplification(c: &mut Criterion) {
    let mut g = c.benchmark_group("amplification");
    for &pct in &[50u64, 90] {
        for (label, cfg) in [
            ("classic", DeltaConfig::CLASSIC),
            ("bp_rr", DeltaConfig::BP_RR),
        ] {
            let (state, group) = scenario(4096, pct);
            g.bench_with_input(BenchmarkId::new(label, pct), &pct, |b, _| {
                b.iter_batched(
                    || {
                        let mut p = DeltaSync::<GSet<u64>>::with_config(ReplicaId(0), cfg);
                        seed(&mut p, &state);
                        // Receive 4 overlapping groups (one per mesh
                        // neighbor).
                        for i in 0..4u32 {
                            p.receive(ReplicaId(1 + i), DeltaMsg(group.clone()));
                        }
                        p
                    },
                    |mut p| {
                        let mut out = Vec::new();
                        p.sync_step(&[ReplicaId(9)], &mut out);
                        out
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

/// Baseline: the raw lattice operations the two paths reduce to.
fn bench_primitives(c: &mut Criterion) {
    let (state, group) = scenario(4096, 90);
    let s: SetLattice<u64> = state.iter().copied().collect();
    let d: SetLattice<u64> = group.iter().copied().collect();
    c.bench_function("primitive/leq", |b| {
        b.iter(|| black_box(&d).leq(black_box(&s)))
    });
    c.bench_function("primitive/delta", |b| {
        b.iter(|| black_box(&d).delta(black_box(&s)))
    });
    c.bench_function("primitive/join", |b| {
        b.iter(|| black_box(s.clone()).join(black_box(d.clone())))
    });
}

criterion_group!(
    ablation_rr,
    bench_receive,
    bench_amplification,
    bench_primitives
);
criterion_main!(ablation_rr);
