//! Cost of the type-erasure boundary, tracked so the engine layer's
//! overhead stays visible in the perf trajectory:
//!
//! * `envelope/*` — [`WireEnvelope`] encode/decode around δ-group
//!   payloads of growing size (the per-message serialization the erased
//!   path adds over in-process message passing);
//! * `dispatch/*` — one local op + sync + receive cycle through the
//!   monomorphized [`Protocol`] API vs the same cycle through
//!   `Box<dyn SyncEngine>` (dyn dispatch + op/message codec);
//! * `round/*` — a full simulator round at protocol level: generic
//!   `Runner` vs `DynRunner` on identical workloads.

use crdt_lattice::{ReplicaId, SizeModel, WireEncode};
use crdt_sim::{DynRunner, NetworkConfig, Runner, Topology};
use crdt_sync::{
    build_engine, BpRrDelta, DeltaMsg, OpBytes, Params, Protocol, ProtocolKind, WireEnvelope,
};
use crdt_types::{GSet, GSetOp};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

const A: ReplicaId = ReplicaId(0);
const B: ReplicaId = ReplicaId(1);

fn delta_envelope(n: u64) -> WireEnvelope {
    let params = Params::new(2);
    let mut engine = build_engine::<GSet<u64>>(ProtocolKind::BpRr, A, &params);
    for e in 0..n {
        engine.on_op(&OpBytes::encode(&GSetOp::Add(e))).unwrap();
    }
    engine.on_sync(&[B]).pop().expect("one δ-group")
}

fn bench_envelope_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("envelope");
    for &n in &[8u64, 64, 512] {
        let env = delta_envelope(n);
        g.bench_with_input(BenchmarkId::new("encode", n), &env, |b, env| {
            b.iter(|| black_box(env.to_bytes()))
        });
        let bytes = env.to_bytes();
        g.bench_with_input(BenchmarkId::new("decode", n), &bytes, |b, bytes| {
            b.iter(|| black_box(WireEnvelope::from_bytes(black_box(bytes)).unwrap()))
        });
        // Baseline: the payload alone, without the envelope frame.
        let payload = env.payload.clone();
        g.bench_with_input(
            BenchmarkId::new("decode_payload_only", n),
            &payload,
            |b, p| b.iter(|| black_box(DeltaMsg::<GSet<u64>>::from_bytes(black_box(p)).unwrap())),
        );
    }
    g.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch");
    let params = Params::new(2);

    // Monomorphized: op + sync + receive, all in-process values.
    g.bench_function("generic_op_sync_recv", |b| {
        let mut a: BpRrDelta<GSet<u64>> = Protocol::new(A, &params);
        let mut t: BpRrDelta<GSet<u64>> = Protocol::new(B, &params);
        let mut e = 0u64;
        let mut out = Vec::new();
        b.iter(|| {
            e += 1;
            a.on_op(&GSetOp::Add(e));
            a.on_sync(&[B], &mut out);
            for (_, msg) in out.drain(..) {
                t.on_msg(A, msg, &mut Vec::new());
            }
        })
    });

    // Erased: identical cycle through OpBytes + envelopes.
    g.bench_function("erased_op_sync_recv", |b| {
        let mut a = build_engine::<GSet<u64>>(ProtocolKind::BpRr, A, &params);
        let mut t = build_engine::<GSet<u64>>(ProtocolKind::BpRr, B, &params);
        let mut e = 0u64;
        b.iter(|| {
            e += 1;
            a.on_op(&OpBytes::encode(&GSetOp::Add(e))).unwrap();
            for env in a.on_sync(&[B]) {
                t.on_msg(env).unwrap();
            }
        })
    });
    g.finish();
}

fn bench_full_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("round");
    let n = 8;
    for &rounds in &[4usize, 16] {
        g.bench_with_input(
            BenchmarkId::new("generic_bp_rr", rounds),
            &rounds,
            |b, &rounds| {
                b.iter_batched(
                    || Topology::partial_mesh(n, 4),
                    |topo| {
                        let mut r: Runner<GSet<u64>, BpRrDelta<GSet<u64>>> =
                            Runner::new(topo, NetworkConfig::reliable(1), SizeModel::compact());
                        let mut w = |node: ReplicaId, round: usize| {
                            vec![GSetOp::Add((round * n + node.index()) as u64)]
                        };
                        r.run(&mut w, rounds);
                        black_box(r.metrics().total_elements())
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        g.bench_with_input(
            BenchmarkId::new("erased_bp_rr", rounds),
            &rounds,
            |b, &rounds| {
                b.iter_batched(
                    || Topology::partial_mesh(n, 4),
                    |topo| {
                        let mut r: DynRunner<GSet<u64>> = DynRunner::new(
                            ProtocolKind::BpRr,
                            topo,
                            NetworkConfig::reliable(1),
                            SizeModel::compact(),
                        );
                        let mut w = |node: ReplicaId, round: usize| {
                            vec![GSetOp::Add((round * n + node.index()) as u64)]
                        };
                        r.run(&mut w, rounds);
                        black_box(r.metrics().total_elements())
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group!(
    engine_overhead,
    bench_envelope_codec,
    bench_dispatch,
    bench_full_round
);
criterion_main!(engine_overhead);
