//! The wire message of the store: one batch of per-object δ-groups.

use crdt_lattice::{CodecError, SizeModel, Sizeable, StateSize, WireEncode};
use crdt_sync::Measured;

/// A synchronization batch: for each object key, the δ-group destined for
/// one neighbor. Objects with nothing new are simply absent.
#[derive(Debug, Clone)]
pub struct StoreMsg<K, C> {
    /// `(object key, δ-group)` pairs.
    pub entries: Vec<(K, C)>,
}

impl<K, C> StoreMsg<K, C> {
    /// An empty batch.
    pub fn new() -> Self {
        StoreMsg { entries: Vec::new() }
    }

    /// Number of objects in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Does the batch carry nothing?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<K, C> Default for StoreMsg<K, C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Sizeable, C: StateSize> Measured for StoreMsg<K, C> {
    fn payload_elements(&self) -> u64 {
        self.entries.iter().map(|(_, d)| d.count_elements()).sum()
    }

    fn payload_bytes(&self, model: &SizeModel) -> u64 {
        self.entries.iter().map(|(_, d)| d.size_bytes(model)).sum()
    }

    /// Object keys are addressing metadata, exactly like the per-object
    /// identifiers of the paper's Retwis measurements.
    fn metadata_bytes(&self, model: &SizeModel) -> u64 {
        self.entries.iter().map(|(k, _)| k.payload_bytes(model)).sum()
    }
}

impl<K: WireEncode, C: WireEncode> WireEncode for StoreMsg<K, C> {
    fn encode(&self, out: &mut Vec<u8>) {
        crdt_lattice::codec::put_uvarint(out, self.entries.len() as u64);
        for (k, d) in &self.entries {
            k.encode(out);
            d.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::decode(input)?;
        if len > input.len() {
            return Err(CodecError::UnexpectedEnd);
        }
        let mut entries = Vec::with_capacity(len);
        for _ in 0..len {
            let k = K::decode(input)?;
            let d = C::decode(input)?;
            entries.push((k, d));
        }
        Ok(StoreMsg { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_types::GSet;

    #[test]
    fn accounting_splits_payload_and_keys() {
        let model = SizeModel::compact();
        let msg = StoreMsg {
            entries: vec![
                ("k1".to_string(), GSet::from_iter([1u64, 2])),
                ("key-2".to_string(), GSet::from_iter([3u64])),
            ],
        };
        assert_eq!(msg.len(), 2);
        assert_eq!(msg.payload_elements(), 3);
        assert_eq!(msg.payload_bytes(&model), 3 * 8);
        assert_eq!(msg.metadata_bytes(&model), 2 + 5);
    }

    #[test]
    fn batch_roundtrips_through_bytes() {
        let msg = StoreMsg {
            entries: vec![
                ("k1".to_string(), GSet::from_iter([1u64, 2])),
                ("key-2".to_string(), GSet::from_iter([3u64])),
            ],
        };
        let frame = msg.to_bytes();
        let back = StoreMsg::<String, GSet<u64>>::from_bytes(&frame).unwrap();
        assert_eq!(back.entries, msg.entries);
        // The frame stays within the analytic accounting plus framing.
        let model = SizeModel::compact();
        use crdt_sync::Measured;
        assert!((frame.len() as u64) <= msg.total_bytes(&model) + 9);
    }

    #[test]
    fn empty_batch() {
        let msg: StoreMsg<u8, GSet<u8>> = StoreMsg::new();
        assert!(msg.is_empty());
        assert_eq!(msg.payload_elements(), 0);
    }
}
