//! The wire message of the store: one batch of per-object engine
//! envelopes.

use crdt_lattice::{CodecError, SizeModel, Sizeable, WireEncode};
use crdt_sync::{Measured, WireEnvelope};

/// A synchronization batch: for each object key, the [`WireEnvelope`] its
/// engine produced for one neighbor. Objects with nothing new are simply
/// absent.
///
/// The envelope payloads are already encoded bytes, so a batch serializes
/// to a frame with no further per-protocol knowledge — the store layer is
/// protocol-agnostic end to end.
#[derive(Debug, Clone)]
pub struct StoreMsg<K> {
    /// `(object key, envelope)` pairs.
    pub entries: Vec<(K, WireEnvelope)>,
}

impl<K> StoreMsg<K> {
    /// An empty batch.
    pub fn new() -> Self {
        StoreMsg {
            entries: Vec::new(),
        }
    }

    /// Number of objects in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Does the batch carry nothing?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<K> Default for StoreMsg<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Sizeable> Measured for StoreMsg<K> {
    fn payload_elements(&self) -> u64 {
        self.entries
            .iter()
            .map(|(_, e)| e.accounting.payload_elements)
            .sum()
    }

    fn payload_bytes(&self, _model: &SizeModel) -> u64 {
        self.entries
            .iter()
            .map(|(_, e)| e.accounting.payload_bytes)
            .sum()
    }

    /// Object keys are addressing metadata (exactly like the per-object
    /// identifiers of the paper's Retwis measurements), on top of whatever
    /// protocol metadata the envelopes carry.
    fn metadata_bytes(&self, model: &SizeModel) -> u64 {
        self.entries
            .iter()
            .map(|(k, e)| k.payload_bytes(model) + e.accounting.metadata_bytes)
            .sum()
    }
}

/// A batch is one replica talking to one neighbor under one configured
/// protocol, so `from`/`to`/`kind` are identical across its envelopes.
/// The frame encodes them **once** (after the count, when non-empty),
/// then `(key, payload, accounting)` per entry — ~10 B per object saved
/// at the paper's 30 K-object Retwis granularity versus re-encoding the
/// full envelope each time.
impl<K: WireEncode> WireEncode for StoreMsg<K> {
    fn encode(&self, out: &mut Vec<u8>) {
        crdt_lattice::codec::put_uvarint(out, self.entries.len() as u64);
        let Some((_, first)) = self.entries.first() else {
            return;
        };
        debug_assert!(
            self.entries
                .iter()
                .all(|(_, e)| (e.from, e.to, e.kind) == (first.from, first.to, first.kind)),
            "a StoreMsg batch spans one (from, to, kind) route"
        );
        first.from.encode(out);
        first.to.encode(out);
        first.kind.encode(out);
        for (k, e) in &self.entries {
            k.encode(out);
            e.payload.len().encode(out);
            out.extend_from_slice(&e.payload);
            e.accounting.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::decode(input)?;
        if len > input.len() {
            return Err(CodecError::UnexpectedEnd);
        }
        if len == 0 {
            return Ok(StoreMsg::new());
        }
        let from = crdt_lattice::ReplicaId::decode(input)?;
        let to = crdt_lattice::ReplicaId::decode(input)?;
        let kind = crdt_sync::ProtocolKind::decode(input)?;
        let mut entries = Vec::with_capacity(len);
        for _ in 0..len {
            let k = K::decode(input)?;
            let payload_len = usize::decode(input)?;
            if input.len() < payload_len {
                return Err(CodecError::UnexpectedEnd);
            }
            let (payload, rest) = input.split_at(payload_len);
            *input = rest;
            let accounting = crdt_sync::WireAccounting::decode(input)?;
            entries.push((
                k,
                WireEnvelope {
                    from,
                    to,
                    kind,
                    payload: payload.to_vec(),
                    accounting,
                },
            ));
        }
        Ok(StoreMsg { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_lattice::ReplicaId;
    use crdt_sync::{ProtocolKind, WireAccounting};
    use crdt_types::GSet;

    fn envelope(elements: u64, payload: Vec<u8>) -> WireEnvelope {
        let encoded = payload.len() as u64;
        WireEnvelope {
            from: ReplicaId(0),
            to: ReplicaId(1),
            kind: ProtocolKind::BpRr,
            payload,
            accounting: WireAccounting {
                payload_elements: elements,
                payload_bytes: elements * 8,
                metadata_bytes: 0,
                encoded_bytes: encoded,
            },
        }
    }

    #[test]
    fn accounting_splits_payload_and_keys() {
        let model = SizeModel::compact();
        let msg = StoreMsg {
            entries: vec![
                ("k1".to_string(), envelope(2, vec![1, 2])),
                ("key-2".to_string(), envelope(1, vec![3])),
            ],
        };
        assert_eq!(msg.len(), 2);
        assert_eq!(msg.payload_elements(), 3);
        assert_eq!(msg.payload_bytes(&model), 3 * 8);
        assert_eq!(msg.metadata_bytes(&model), 2 + 5);
    }

    #[test]
    fn batch_roundtrips_through_bytes() {
        use crdt_lattice::WireEncode as _;
        let inner = GSet::from_iter([1u64, 2]).to_bytes();
        let msg = StoreMsg {
            entries: vec![
                ("k1".to_string(), envelope(2, inner)),
                (
                    "key-2".to_string(),
                    envelope(1, GSet::from_iter([3u64]).to_bytes()),
                ),
            ],
        };
        let frame = msg.to_bytes();
        let back = StoreMsg::<String>::from_bytes(&frame).unwrap();
        assert_eq!(back.len(), msg.len());
        for ((k1, e1), (k2, e2)) in back.entries.iter().zip(&msg.entries) {
            assert_eq!(k1, k2);
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn empty_batch() {
        let msg: StoreMsg<u8> = StoreMsg::new();
        assert!(msg.is_empty());
        assert_eq!(msg.payload_elements(), 0);
    }
}
