//! The wire message of the store: one batch of per-object engine
//! envelopes.
//!
//! The frame itself — [`crdt_sync::BatchEnvelope`] — lives in `crdt-sync`
//! so every sharded deployment (this store's [`crate::Transport`],
//! `crdt-sim`'s `ShardedEngineRunner`) ships the identical per-destination
//! batched format: the envelope payloads are already encoded bytes, so a
//! batch serializes with no further per-protocol knowledge, and the store
//! layer stays protocol-agnostic end to end.

pub use crdt_sync::BatchEnvelope;

/// A synchronization batch: for each object key, the
/// [`crdt_sync::WireEnvelope`] its engine produced for one neighbor.
/// Objects with nothing new are simply absent.
pub type StoreMsg<K> = BatchEnvelope<K>;

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_lattice::{ReplicaId, SizeModel};
    use crdt_sync::{Measured, ProtocolKind, WireAccounting, WireEnvelope};
    use crdt_types::GSet;

    fn envelope(elements: u64, payload: Vec<u8>) -> WireEnvelope {
        let encoded = payload.len() as u64;
        WireEnvelope {
            from: ReplicaId(0),
            to: ReplicaId(1),
            kind: ProtocolKind::BpRr,
            payload: payload.into(),
            accounting: WireAccounting {
                payload_elements: elements,
                payload_bytes: elements * 8,
                metadata_bytes: 0,
                encoded_bytes: encoded,
            },
        }
    }

    #[test]
    fn accounting_splits_payload_and_keys() {
        let model = SizeModel::compact();
        let msg = StoreMsg {
            entries: vec![
                ("k1".to_string(), envelope(2, vec![1, 2])),
                ("key-2".to_string(), envelope(1, vec![3])),
            ],
        };
        assert_eq!(msg.len(), 2);
        assert_eq!(msg.payload_elements(), 3);
        assert_eq!(msg.payload_bytes(&model), 3 * 8);
        assert_eq!(msg.metadata_bytes(&model), 2 + 5);
    }

    #[test]
    fn batch_roundtrips_through_bytes() {
        use crdt_lattice::WireEncode as _;
        let inner = GSet::from_iter([1u64, 2]).to_bytes();
        let msg = StoreMsg {
            entries: vec![
                ("k1".to_string(), envelope(2, inner)),
                (
                    "key-2".to_string(),
                    envelope(1, GSet::from_iter([3u64]).to_bytes()),
                ),
            ],
        };
        let frame = msg.to_bytes();
        let back = StoreMsg::<String>::from_bytes(&frame).unwrap();
        assert_eq!(back.len(), msg.len());
        for ((k1, e1), (k2, e2)) in back.entries.iter().zip(&msg.entries) {
            assert_eq!(k1, k2);
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn empty_batch() {
        let msg: StoreMsg<u8> = StoreMsg::new();
        assert!(msg.is_empty());
        assert_eq!(msg.payload_elements(), 0);
        assert!(msg.route().is_none());
    }

    #[test]
    fn route_reads_the_shared_header() {
        let mut msg: StoreMsg<&str> = StoreMsg::new();
        msg.push("k", envelope(1, vec![9]));
        assert_eq!(
            msg.route(),
            Some((ReplicaId(0), ReplicaId(1), ProtocolKind::BpRr))
        );
    }
}
