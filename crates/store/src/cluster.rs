//! A set of store replicas wired through a transport.

use core::fmt;
use std::collections::BTreeSet;
use std::hash::Hash;

use crdt_lattice::{ReplicaId, Sizeable, WireEncode};
use crdt_sync::digest::{digest_repair_deltas, PairSyncStats};
use crdt_sync::{diff_keys, Params, MERKLE_REPAIR_THRESHOLD};
use crdt_types::Crdt;

use crate::metrics::TrafficStats;
use crate::replica::{StoreConfig, StoreReplica};
use crate::transport::{LoopbackTransport, Transport};

/// A cluster of [`StoreReplica`]s over a neighbor graph and a
/// [`Transport`], running whichever [`crdt_sync::ProtocolKind`] the
/// [`StoreConfig`] selects — the protocol is a deploy-time value, not a
/// type parameter.
///
/// The cluster drives rounds exactly like the paper's deployments: every
/// replica runs one synchronization step (shipping per-object envelope
/// batches to its neighbors), then absorbs everything the transport
/// delivered. Push-pull protocols' replies re-enter the transport and
/// complete over subsequent rounds. Traffic is accounted in
/// [`TrafficStats`].
#[derive(Debug)]
pub struct Cluster<K: Ord, C, T = LoopbackTransport<K>> {
    replicas: Vec<StoreReplica<K, C>>,
    neighbors: Vec<Vec<ReplicaId>>,
    /// Crashed replicas: excluded from rounds and convergence; traffic
    /// addressed to them is discarded.
    down: Vec<bool>,
    transport: T,
    stats: TrafficStats,
    cfg: StoreConfig,
}

/// The diagnostic outcome of [`Cluster::run_until_converged`]: enough to
/// tell from a CI log *why* a scenario failed, not just that it did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// Did every live replica agree on every live object?
    pub converged: bool,
    /// Synchronization rounds executed.
    pub rounds: usize,
    /// Batches still in the transport when the run stopped.
    pub in_flight: usize,
    /// Live replicas disagreeing with the reference (the first live
    /// replica), as `(replica index, number of divergent objects)`.
    pub divergent: Vec<(usize, usize)>,
}

impl ConvergenceReport {
    /// `Some(rounds)` when converged — the drop-in for the old
    /// `Option<usize>` shape.
    pub fn ok(&self) -> Option<usize> {
        self.converged.then_some(self.rounds)
    }

    /// The rounds taken; panics with the full report when convergence
    /// was not reached.
    #[track_caller]
    pub fn expect_converged(&self, context: &str) -> usize {
        assert!(self.converged, "{context}: {self}");
        self.rounds
    }
}

impl fmt::Display for ConvergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.converged {
            return write!(f, "converged after {} rounds", self.rounds);
        }
        write!(
            f,
            "NOT converged after {} rounds ({} batches in flight; divergent replicas:",
            self.rounds, self.in_flight
        )?;
        for (replica, objects) in &self.divergent {
            write!(f, " #{replica}×{objects}")?;
        }
        f.write_str(")")
    }
}

impl<K, C> Cluster<K, C, LoopbackTransport<K>>
where
    K: Ord + Clone + Sizeable + Hash,
    C: Crdt + WireEncode + Send + 'static,
    C::Op: WireEncode + Send + 'static,
{
    /// A fully connected cluster of `n` replicas over the in-memory
    /// transport.
    pub fn full_mesh(n: usize, cfg: StoreConfig) -> Self {
        let neighbors = (0..n)
            .map(|i| (0..n).filter(|j| *j != i).map(ReplicaId::from).collect())
            .collect();
        Self::with_neighbors(neighbors, cfg)
    }

    /// A cluster with an explicit neighbor graph (entry `i` lists the
    /// replicas `i` pushes to), over the in-memory transport.
    pub fn with_neighbors(neighbors: Vec<Vec<ReplicaId>>, cfg: StoreConfig) -> Self {
        let n = neighbors.len();
        Self::with_transport(neighbors, cfg, LoopbackTransport::new(n))
    }

    /// Partition the cluster: sever every link between `group` and the
    /// rest, in both directions.
    pub fn partition(&mut self, group: &[usize]) {
        let in_group: BTreeSet<usize> = group.iter().copied().collect();
        let n = self.replicas.len();
        for i in 0..n {
            for j in 0..n {
                if i != j && in_group.contains(&i) != in_group.contains(&j) {
                    self.transport.sever(ReplicaId::from(i), ReplicaId::from(j));
                }
            }
        }
    }

    /// Heal every severed link.
    pub fn heal(&mut self) {
        self.transport.heal_all();
    }
}

impl<K, C, T> Cluster<K, C, T>
where
    K: Ord + Clone + Sizeable + Hash,
    C: Crdt + WireEncode + Send + 'static,
    C::Op: WireEncode + Send + 'static,
    T: Transport<K>,
{
    /// A cluster over a custom transport.
    pub fn with_transport(neighbors: Vec<Vec<ReplicaId>>, cfg: StoreConfig, transport: T) -> Self {
        let n = neighbors.len();
        Cluster {
            replicas: (0..n)
                .map(|i| StoreReplica::with_params(ReplicaId::from(i), cfg, Params::new(n)))
                .collect(),
            neighbors,
            down: vec![false; n],
            transport,
            stats: TrafficStats::default(),
            cfg,
        }
    }

    /// The configuration in effect (including the runtime-selected
    /// protocol).
    pub fn config(&self) -> StoreConfig {
        self.cfg
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Is the cluster empty?
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Read access to replica `i`.
    pub fn replica(&self, i: usize) -> &StoreReplica<K, C> {
        &self.replicas[i]
    }

    /// Mutable access to replica `i`.
    pub fn replica_mut(&mut self, i: usize) -> &mut StoreReplica<K, C> {
        &mut self.replicas[i]
    }

    /// Apply `op` at replica `i` to the object at `key`.
    pub fn update(&mut self, i: usize, key: K, op: &C::Op) {
        self.replicas[i].update(key, op);
    }

    /// Cumulative traffic statistics.
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }

    /// One synchronization round: every replica runs its sync step, then
    /// everything delivered is absorbed **to quiescence** — replies
    /// (push-pull protocols) re-enter the transport and are themselves
    /// delivered until nothing is in flight, so a Scuttlebutt
    /// digest/reply/final exchange completes within the round, exactly
    /// like the paper's experiment loop.
    pub fn sync_round(&mut self) {
        let model = self.cfg.model;
        for (i, replica) in self.replicas.iter_mut().enumerate() {
            if self.down[i] {
                continue;
            }
            let from = ReplicaId::from(i);
            for (to, msg) in replica.sync_step(&self.neighbors[i]) {
                self.stats.record(&msg, &model);
                self.transport.send(from, to, msg);
            }
        }
        while self.transport.in_flight() > 0 {
            for i in 0..self.replicas.len() {
                let at = ReplicaId::from(i);
                if self.down[i] {
                    // A crashed process is not there to receive: whatever
                    // the transport delivers to it is lost.
                    self.transport.poll(at);
                    continue;
                }
                for (_, msg) in self.transport.poll(at) {
                    // Every replica of this cluster was built from the same
                    // StoreConfig and the transport moves values, so
                    // mismatch/corruption cannot occur here; real
                    // byte-transport deployments handle the Err arm.
                    let replies = self.replicas[i]
                        .absorb(msg)
                        .expect("uniform in-process cluster cannot produce decode errors");
                    for (reply_to, reply) in replies {
                        self.stats.record(&reply, &model);
                        self.transport.send(at, reply_to, reply);
                    }
                }
            }
        }
    }

    /// Is replica `i` currently up?
    pub fn is_alive(&self, i: usize) -> bool {
        !self.down[i]
    }

    /// Crash replica `i`: it drops out of rounds and convergence checks,
    /// and traffic addressed to it is discarded. `durable: false` also
    /// wipes its objects — a later [`Cluster::restart`] starts from `⊥`.
    pub fn crash(&mut self, i: usize, durable: bool) {
        self.down[i] = true;
        if !durable {
            self.replicas[i].reset();
        }
    }

    /// Bring a crashed replica back. With `bootstrap = Some(peer)` the
    /// pair exchange per-object snapshots in both directions (state plus
    /// protocol recovery metadata) — required after a non-durable crash,
    /// and after any crash for the delta family, whose peers cleared
    /// their δ-buffers into the void while the replica was down.
    pub fn restart(&mut self, i: usize, bootstrap: Option<usize>) {
        self.down[i] = false;
        if let Some(peer) = bootstrap {
            self.bootstrap_pair(i, peer);
        }
    }

    /// Bidirectional per-object snapshot exchange between two live
    /// replicas (out-of-band state transfer).
    pub fn bootstrap_pair(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "bootstrap needs two distinct replicas");
        let (lo, hi) = (a.min(b), a.max(b));
        let (left, right) = self.replicas.split_at_mut(hi);
        left[lo].bootstrap_from(&right[0]);
        right[0].bootstrap_from(&left[lo]);
    }

    /// A new replica joins the cluster, pushing to `links` (which start
    /// pushing back), bootstrapped from `bootstrap` when given. Returns
    /// the joiner's index.
    pub fn join(&mut self, links: Vec<ReplicaId>, bootstrap: Option<usize>) -> usize {
        assert!(!links.is_empty(), "a joining replica needs neighbors");
        let i = self.replicas.len();
        let id = ReplicaId::from(i);
        for &peer in &links {
            assert!(peer.index() < i, "link to unknown replica {peer}");
            self.neighbors[peer.index()].push(id);
        }
        self.neighbors.push(links);
        self.down.push(false);
        self.transport.add_node();
        let n = self.replicas.len() + 1;
        // Existing replicas must learn the new size before the joiner is
        // heard from (Scuttlebutt-GC safe-delete safety).
        for replica in &mut self.replicas {
            replica.set_system_size(n);
        }
        self.replicas
            .push(StoreReplica::with_params(id, self.cfg, Params::new(n)));
        if let Some(peer) = bootstrap {
            self.bootstrap_pair(i, peer);
        }
        i
    }

    /// Have all live replicas converged on every object?
    ///
    /// Objects still at `⊥` are ignored: a no-op update (e.g. removing an
    /// element from an empty set) creates the key locally but produces no
    /// delta, so peers legitimately never hear of it.
    pub fn converged(&self) -> bool {
        self.divergence().is_empty()
    }

    /// Live replicas disagreeing with the first live replica, as
    /// `(replica index, divergent object count)`.
    fn divergence(&self) -> Vec<(usize, usize)> {
        let live = |r: &StoreReplica<K, C>| {
            r.iter()
                .filter(|(_, x)| !x.is_bottom())
                .map(|(k, x)| (k.clone(), x.clone()))
                .collect::<Vec<_>>()
        };
        let Some(reference) = (0..self.replicas.len()).find(|i| !self.down[*i]) else {
            return Vec::new();
        };
        let base = live(&self.replicas[reference]);
        let mut out = Vec::new();
        for i in reference + 1..self.replicas.len() {
            if self.down[i] {
                continue;
            }
            let mine = live(&self.replicas[i]);
            let differing = base
                .iter()
                .filter(|(k, x)| mine.iter().find(|(mk, _)| mk == k).map(|(_, mx)| mx) != Some(x))
                .count()
                + mine
                    .iter()
                    .filter(|(k, _)| !base.iter().any(|(bk, _)| bk == k))
                    .count();
            if differing > 0 {
                out.push((i, differing));
            }
        }
        out
    }

    /// Run sync rounds until convergence (or `max_rounds`), reporting
    /// what happened either way — on timeout the report names the
    /// divergent replicas and their object counts, so a failed CI
    /// scenario is debuggable from its log.
    pub fn run_until_converged(&mut self, max_rounds: usize) -> ConvergenceReport {
        let mut rounds = max_rounds;
        for round in 0..max_rounds {
            if self.converged() && self.transport.in_flight() == 0 {
                rounds = round;
                break;
            }
            self.sync_round();
        }
        ConvergenceReport {
            converged: self.converged() && self.transport.in_flight() == 0,
            rounds,
            in_flight: self.transport.in_flight(),
            divergent: self.divergence(),
        }
    }

    /// Digest-driven pairwise repair between replicas `a` and `b` (the
    /// paper's §VI, \[30\]): for every object either side holds, exchange
    /// digests and ship only the join-irreducibles the other side is
    /// missing — never full states. Repaired deltas enter the ordinary
    /// receive path, so they continue to propagate to other replicas.
    ///
    /// Use after healing a partition whose duration exceeded what the
    /// cleared δ-buffers can replay.
    ///
    /// # Panics
    ///
    /// If the configured protocol does not exchange bare δ-groups
    /// ([`crdt_sync::ProtocolKind::accepts_raw_delta`]): the anti-entropy
    /// and op-based kinds carry their own recovery metadata and neither
    /// need nor accept digest injection.
    pub fn digest_repair(&mut self, a: usize, b: usize) -> PairSyncStats {
        assert_ne!(a, b, "repair needs two distinct replicas");
        assert!(
            self.cfg.protocol.accepts_raw_delta(),
            "digest repair applies to delta-family/state protocols; {} manages its own recovery",
            self.cfg.protocol
        );
        let keys: BTreeSet<K> = self.replicas[a]
            .keys()
            .chain(self.replicas[b].keys())
            .cloned()
            .collect();
        let mut total = PairSyncStats::default();
        self.repair_keys(a, b, keys, &mut total);
        total
    }

    /// Run the per-object digest protocol over exactly `keys`, folding
    /// traffic into `total` and injecting each side's missing delta.
    fn repair_keys(
        &mut self,
        a: usize,
        b: usize,
        keys: impl IntoIterator<Item = K>,
        total: &mut PairSyncStats,
    ) {
        let model = self.cfg.model;
        let id_a = self.replicas[a].id();
        let id_b = self.replicas[b].id();
        for key in keys {
            // Run the 3-message protocol by reference to obtain the stats
            // and each side's missing delta…
            let (delta_for_a, delta_for_b, stats) = {
                let bottom = C::bottom();
                let xa = self.replicas[a].get(key.clone()).unwrap_or(&bottom);
                let xb = self.replicas[b].get(key.clone()).unwrap_or(&bottom);
                digest_repair_deltas(xa, xb, &model)
            };
            total.messages += stats.messages;
            total.payload_elements += stats.payload_elements;
            total.payload_bytes += stats.payload_bytes;
            total.metadata_bytes += stats.metadata_bytes;
            // …then feed each through the ordinary receive path (RR
            // extraction + buffering for propagation).
            if !delta_for_a.is_bottom() {
                self.replicas[a].inject_delta(key.clone(), id_b, delta_for_a);
            }
            if !delta_for_b.is_bottom() {
                self.replicas[b].inject_delta(key, id_a, delta_for_b);
            }
        }
    }
}

impl<K, C, T> Cluster<K, C, T>
where
    K: Ord + Clone + Sizeable + Hash + WireEncode,
    C: Crdt + WireEncode + Send + 'static,
    C::Op: WireEncode + Send + 'static,
    T: Transport<K>,
{
    /// Merkle-descent pairwise repair: localize divergence with a
    /// keyspace tree descent (O(log n · diverged) control frames), then
    /// run the §VI per-object digest protocol over **only** the diverged
    /// keys. Keyspaces below [`MERKLE_REPAIR_THRESHOLD`] delegate to
    /// [`Cluster::digest_repair`] unchanged — per-object digests are
    /// already cheap there and their accounting stays byte-identical.
    ///
    /// Descent traffic is folded into the returned stats: frames count as
    /// messages, encoded frame bytes as metadata.
    ///
    /// # Panics
    ///
    /// Like [`Cluster::digest_repair`], if the configured protocol does
    /// not accept bare δ-groups.
    pub fn merkle_repair(&mut self, a: usize, b: usize) -> PairSyncStats {
        assert_ne!(a, b, "repair needs two distinct replicas");
        assert!(
            self.cfg.protocol.accepts_raw_delta(),
            "digest repair applies to delta-family/state protocols; {} manages its own recovery",
            self.cfg.protocol
        );
        if self.replicas[a].len().max(self.replicas[b].len()) < MERKLE_REPAIR_THRESHOLD {
            return self.digest_repair(a, b);
        }
        let mut total = PairSyncStats::default();
        let diverged: BTreeSet<K> = {
            let (lo, hi) = (a.min(b), a.max(b));
            let (left, right) = self.replicas.split_at_mut(hi);
            let (keys, descent) = diff_keys(left[lo].merkle(), right[0].merkle());
            total.messages += descent.frames as u32;
            total.metadata_bytes += descent.total_bytes();
            keys
        };
        self.repair_keys(a, b, diverged, &mut total);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_sync::ProtocolKind;
    use crdt_types::{GSet, GSetOp};

    type Cl = Cluster<&'static str, GSet<u32>>;

    #[test]
    fn full_mesh_converges_in_one_round() {
        let mut c: Cl = Cluster::full_mesh(4, StoreConfig::default());
        c.update(0, "x", &GSetOp::Add(1));
        c.update(3, "y", &GSetOp::Add(2));
        c.sync_round();
        assert!(c.converged());
        assert!(c.replica(2).get("x").unwrap().contains(&1));
        assert!(c.replica(1).get("y").unwrap().contains(&2));
    }

    #[test]
    fn line_graph_needs_diameter_rounds() {
        // 0 – 1 – 2 – 3 line.
        let neighbors = vec![
            vec![ReplicaId(1)],
            vec![ReplicaId(0), ReplicaId(2)],
            vec![ReplicaId(1), ReplicaId(3)],
            vec![ReplicaId(2)],
        ];
        let mut c: Cl = Cluster::with_neighbors(neighbors, StoreConfig::default());
        c.update(0, "x", &GSetOp::Add(1));
        c.sync_round();
        assert!(c.replica(1).get("x").is_some());
        assert!(c.replica(3).get("x").is_none(), "3 hops away");
        let rounds = c.run_until_converged(16).expect_converged("converges");
        assert!(rounds >= 2, "needed more than the first round");
        assert!(c.replica(3).get("x").unwrap().contains(&1));
    }

    #[test]
    fn traffic_is_accounted() {
        let mut c: Cl = Cluster::full_mesh(3, StoreConfig::default());
        c.update(0, "x", &GSetOp::Add(1));
        c.sync_round();
        let stats = c.stats();
        assert!(stats.messages >= 2, "replica 0 pushed to both neighbors");
        assert!(stats.payload_elements >= 2);
        assert!(stats.total_bytes() > 0);
    }

    #[test]
    fn partition_blocks_then_heal_repairs() {
        let mut c: Cl = Cluster::full_mesh(4, StoreConfig::default());
        c.partition(&[0, 1]);
        c.update(0, "left", &GSetOp::Add(1));
        c.update(2, "right", &GSetOp::Add(2));
        for _ in 0..4 {
            c.sync_round();
        }
        // Sides converged internally but not across the cut.
        assert!(c.replica(1).get("left").is_some());
        assert!(c.replica(1).get("right").is_none());
        assert!(!c.converged());
        // Heal. δ-buffers were cleared during the partition (their sends
        // were dropped), so ordinary rounds cannot repair: digest repair
        // across the cut restores convergence.
        c.heal();
        let stats = c.digest_repair(1, 2);
        assert!(stats.payload_elements > 0);
        // Repaired deltas propagate onward through normal rounds.
        c.run_until_converged(8)
            .expect_converged("converges after repair");
        assert!(c.replica(3).get("left").unwrap().contains(&1));
        assert!(c.replica(0).get("right").unwrap().contains(&2));
    }

    #[test]
    fn digest_repair_ships_only_differences() {
        let mut c: Cl = Cluster::full_mesh(2, StoreConfig::default());
        // Build a large shared object…
        for e in 0..100 {
            c.update(0, "big", &GSetOp::Add(e));
        }
        c.run_until_converged(4).expect_converged("converges");
        // …then diverge by one element on each side, without syncing.
        c.replicas[0].update("big", &GSetOp::Add(1000));
        c.replicas[1].update("big", &GSetOp::Add(2000));
        // Clear the pending buffers by severing both directions and
        // syncing into the void.
        c.transport.sever(ReplicaId(0), ReplicaId(1));
        c.transport.sever(ReplicaId(1), ReplicaId(0));
        c.sync_round();
        c.heal();
        let stats = c.digest_repair(0, 1);
        assert_eq!(
            stats.payload_elements, 2,
            "only the two divergent elements ship — not the 100 shared"
        );
        assert!(c.converged());
    }

    #[test]
    fn scuttlebutt_cluster_converges_via_reply_routing() {
        // The protocol is a runtime value: the same Cluster code drives
        // anti-entropy push-pull, with replies crossing the transport.
        let mut c: Cl = Cluster::full_mesh(3, StoreConfig::new(ProtocolKind::Scuttlebutt));
        c.update(0, "x", &GSetOp::Add(1));
        c.update(2, "y", &GSetOp::Add(9));
        c.run_until_converged(16)
            .expect_converged("anti-entropy converges");
        // The digest/reply/final exchange crossed the transport: more
        // batches than the two digests alone.
        assert!(c.stats().messages > 2);
        assert!(c.replica(1).get("x").unwrap().contains(&1));
        assert!(c.replica(0).get("y").unwrap().contains(&9));
    }

    #[test]
    fn every_raw_delta_kind_runs_the_store() {
        for kind in [
            ProtocolKind::Classic,
            ProtocolKind::Bp,
            ProtocolKind::Rr,
            ProtocolKind::BpRr,
            ProtocolKind::State,
        ] {
            let mut c: Cl = Cluster::full_mesh(3, StoreConfig::new(kind));
            c.update(0, "x", &GSetOp::Add(1));
            c.update(1, "x", &GSetOp::Add(2));
            c.run_until_converged(16)
                .expect_converged(&format!("{kind} store"));
            assert_eq!(c.replica(2).get("x").unwrap().len(), 2, "{kind}");
        }
    }

    #[test]
    fn crash_restart_with_bootstrap_reconverges() {
        for durable in [true, false] {
            let mut c: Cl = Cluster::full_mesh(4, StoreConfig::default());
            c.update(0, "x", &GSetOp::Add(1));
            c.run_until_converged(4).expect_converged("warm-up");
            c.crash(3, durable);
            assert!(!c.is_alive(3));
            // Progress while #3 is down: its peers' δ-buffers drain into
            // the void.
            c.update(1, "x", &GSetOp::Add(2));
            c.sync_round();
            c.sync_round();
            assert!(c.converged(), "live replicas agree without #3");
            c.restart(3, Some(0));
            assert!(c.is_alive(3));
            c.run_until_converged(8)
                .expect_converged(&format!("durable={durable}"));
            assert_eq!(c.replica(3).get("x").unwrap().len(), 2, "{durable}");
        }
    }

    #[test]
    fn join_bootstraps_and_participates() {
        let mut c: Cl = Cluster::full_mesh(3, StoreConfig::default());
        for e in 0..5 {
            c.update(0, "history", &GSetOp::Add(e));
        }
        c.run_until_converged(4).expect_converged("pre-join");
        let joined = c.join(vec![ReplicaId(0), ReplicaId(2)], Some(1));
        assert_eq!(joined, 3);
        assert_eq!(c.len(), 4);
        // The joiner got the history by bootstrap, not gossip.
        assert_eq!(c.replica(joined).get("history").unwrap().len(), 5);
        // And it participates in ordinary rounds both ways.
        c.update(joined, "history", &GSetOp::Add(100));
        c.run_until_converged(8).expect_converged("post-join");
        assert!(c.replica(1).get("history").unwrap().contains(&100));
    }

    #[test]
    fn timeout_report_names_divergent_replicas() {
        let mut c: Cl = Cluster::full_mesh(4, StoreConfig::default());
        c.partition(&[0, 1]);
        c.update(0, "left", &GSetOp::Add(1));
        c.update(2, "right", &GSetOp::Add(2));
        let report = c.run_until_converged(4);
        assert!(!report.converged);
        assert!(report.ok().is_none());
        assert!(
            !report.divergent.is_empty(),
            "the cut must be visible: {report}"
        );
        let rendered = report.to_string();
        assert!(rendered.contains("NOT converged"), "{rendered}");
    }

    #[test]
    #[should_panic(expected = "digest repair applies")]
    fn digest_repair_rejects_anti_entropy_kinds() {
        let mut c: Cl = Cluster::full_mesh(2, StoreConfig::new(ProtocolKind::Scuttlebutt));
        c.update(0, "x", &GSetOp::Add(1));
        let _ = c.digest_repair(0, 1);
    }

    /// Converge a 2-replica keyspace of `n` objects, then diverge three
    /// keys across a cut (draining the δ-buffers into the void) and heal.
    fn diverged_pair(n: u64) -> Cluster<u64, GSet<u32>> {
        let mut c: Cluster<u64, GSet<u32>> = Cluster::full_mesh(2, StoreConfig::default());
        for k in 0..n {
            c.update(0, k, &GSetOp::Add(k as u32));
        }
        c.run_until_converged(4).expect_converged("warm-up");
        c.partition(&[0]);
        c.update(0, 5, &GSetOp::Add(1_000));
        c.update(1, 6, &GSetOp::Add(2_000));
        c.update(1, 7, &GSetOp::Add(3_000));
        c.sync_round();
        c.heal();
        c
    }

    #[test]
    fn merkle_repair_localizes_divergence_on_large_keyspaces() {
        let mut c = diverged_pair(200);
        let stats = c.merkle_repair(0, 1);
        assert!(c.converged(), "tree descent + targeted digests converge");
        assert_eq!(
            stats.payload_elements, 3,
            "only the three diverged elements ship"
        );
        // A per-object sweep would run the 3-message §VI protocol over
        // all 200 objects; the descent localizes to 3 keys first.
        assert!(
            stats.messages < 200,
            "{} messages must undercut the 600 of a full sweep",
            stats.messages
        );
    }

    #[test]
    fn merkle_repair_delegates_below_threshold() {
        // Two identically diverged small keyspaces: below the threshold
        // the merkle path is the per-object digest path, byte for byte.
        let mut via_digest = diverged_pair(10);
        let mut via_merkle = diverged_pair(10);
        let d = via_digest.digest_repair(0, 1);
        let m = via_merkle.merkle_repair(0, 1);
        assert_eq!(d, m);
        assert!(via_merkle.converged());
    }

    #[test]
    fn merkle_repair_matches_digest_repair_final_state() {
        let mut via_digest = diverged_pair(200);
        let mut via_merkle = diverged_pair(200);
        via_digest.digest_repair(0, 1);
        via_merkle.merkle_repair(0, 1);
        assert!(via_digest.converged() && via_merkle.converged());
        for k in 0..200u64 {
            assert_eq!(
                via_digest.replica(0).get(k),
                via_merkle.replica(0).get(k),
                "key {k}"
            );
        }
    }

    #[test]
    fn compaction_prunes_acked_buffers_without_breaking_convergence() {
        let cfg = StoreConfig::new(ProtocolKind::Acked);
        let mut c: Cluster<u64, GSet<u32>> = Cluster::full_mesh(3, cfg);
        for k in 0..20u64 {
            c.update(0, k, &GSetOp::Add(k as u32));
        }
        c.run_until_converged(8).expect_converged("acked converges");
        // Everything is acked by both peers: the stability frontier
        // covers every buffered entry.
        let pruned: u64 = (0..3).map(|i| c.replica_mut(i).compact()).sum();
        assert!(pruned > 0, "acked buffers were compacted");
        // Compaction never touches lattice state; progress continues.
        c.update(1, 3, &GSetOp::Add(9_999));
        c.run_until_converged(8).expect_converged("post-compaction");
        assert!(c.replica(2).get(3).unwrap().contains(&9_999));
    }

    /// Repairing two replicas that have never held an object is a
    /// no-op: zero frames, zero bytes — the union of keys is empty, so
    /// the handshake never starts. Same for the Merkle path, which
    /// delegates below the threshold.
    #[test]
    fn digest_repair_on_an_empty_keyspace_is_free() {
        let mut c: Cluster<u64, GSet<u32>> = Cluster::full_mesh(2, StoreConfig::default());
        assert_eq!(c.digest_repair(0, 1), PairSyncStats::default());
        assert_eq!(c.merkle_repair(0, 1), PairSyncStats::default());
    }

    /// A single-object keyspace where only one side holds the object:
    /// repair transfers it once, and a second repair ships nothing.
    #[test]
    fn digest_repair_of_a_single_object_is_one_way_then_idempotent() {
        let mut c: Cluster<u64, GSet<u32>> = Cluster::full_mesh(2, StoreConfig::default());
        c.partition(&[0]);
        c.update(0, 42, &GSetOp::Add(7));
        c.sync_round(); // δ-buffer drains into the severed link
        c.heal();
        let stats = c.digest_repair(0, 1);
        assert_eq!(stats.messages, 3, "one 3-frame handshake for one key");
        assert_eq!(stats.payload_elements, 1);
        assert_eq!(c.replica(1).get(42), c.replica(0).get(42));
        // Idempotence: a converged pair exchanges digests only.
        let again = c.digest_repair(0, 1);
        assert_eq!(again.payload_elements, 0);
        assert_eq!(again.payload_bytes, 0);
    }

    /// Compaction between the digest computation and the delta exchange
    /// must not change what repair ships: pruning is restricted to
    /// causally *stable* metadata, never lattice state, so digests
    /// taken before a `compact()` still describe the state after it.
    #[test]
    fn repair_agrees_across_a_mid_handshake_compaction() {
        let mut before = diverged_pair(80);
        let stats_before = before.digest_repair(0, 1);
        let mut after = diverged_pair(80);
        // Compact both replicas *after* divergence, i.e. at the moment
        // a concurrent compaction pass could interleave with a repair
        // handshake's frames.
        after.replica_mut(0).compact();
        after.replica_mut(1).compact();
        let stats_after = after.digest_repair(0, 1);
        assert_eq!(
            stats_before, stats_after,
            "compaction changed what repair shipped"
        );
        for k in 0..80u64 {
            assert_eq!(before.replica(0).get(k), after.replica(0).get(k));
            assert_eq!(after.replica(0).get(k), after.replica(1).get(k));
        }
    }
}
