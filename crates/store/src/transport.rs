//! The message-passing boundary between replicas.

use std::collections::VecDeque;

use crdt_lattice::ReplicaId;

use crate::message::StoreMsg;

/// Moves [`StoreMsg`] batches between replicas.
///
/// Implementations may reorder and duplicate freely (state-based CRDT
/// messages are join-idempotent) but must not drop messages, because
/// Algorithm 1 clears δ-buffers at each sync step. A dropping transport
/// needs the digest repair path ([`crate::Cluster::digest_repair`]) to
/// restore convergence.
pub trait Transport<K, C> {
    /// Enqueue a batch from `from` to `to`.
    fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: StoreMsg<K, C>);

    /// Drain every batch waiting at `at`, in delivery order.
    fn poll(&mut self, at: ReplicaId) -> Vec<(ReplicaId, StoreMsg<K, C>)>;

    /// Are any messages still in flight (to any replica)?
    fn in_flight(&self) -> usize;
}

/// In-memory transport: one FIFO queue per recipient. Supports severing
/// individual directed links, for partition testing.
#[derive(Debug)]
pub struct LoopbackTransport<K, C> {
    queues: Vec<VecDeque<(ReplicaId, StoreMsg<K, C>)>>,
    /// `severed[from][to]` — messages on this directed link are dropped.
    severed: Vec<Vec<bool>>,
    dropped: u64,
}

impl<K, C> LoopbackTransport<K, C> {
    /// A transport connecting `n` replicas.
    pub fn new(n: usize) -> Self {
        LoopbackTransport {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            severed: vec![vec![false; n]; n],
            dropped: 0,
        }
    }

    /// Sever the directed link `from → to` (messages silently dropped).
    pub fn sever(&mut self, from: ReplicaId, to: ReplicaId) {
        self.severed[from.index()][to.index()] = true;
    }

    /// Restore the directed link `from → to`.
    pub fn heal(&mut self, from: ReplicaId, to: ReplicaId) {
        self.severed[from.index()][to.index()] = false;
    }

    /// Restore every link.
    pub fn heal_all(&mut self) {
        for row in &mut self.severed {
            row.fill(false);
        }
    }

    /// Messages dropped on severed links so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<K, C> Transport<K, C> for LoopbackTransport<K, C> {
    fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: StoreMsg<K, C>) {
        if self.severed[from.index()][to.index()] {
            self.dropped += 1;
            return;
        }
        self.queues[to.index()].push_back((from, msg));
    }

    fn poll(&mut self, at: ReplicaId) -> Vec<(ReplicaId, StoreMsg<K, C>)> {
        self.queues[at.index()].drain(..).collect()
    }

    fn in_flight(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_types::GSet;

    type Msg = StoreMsg<&'static str, GSet<u8>>;

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    fn msg() -> Msg {
        StoreMsg { entries: vec![("x", GSet::from_iter([1]))] }
    }

    #[test]
    fn fifo_per_recipient() {
        let mut t: LoopbackTransport<&str, GSet<u8>> = LoopbackTransport::new(2);
        t.send(A, B, StoreMsg { entries: vec![("first", GSet::from_iter([1]))] });
        t.send(A, B, StoreMsg { entries: vec![("second", GSet::from_iter([2]))] });
        assert_eq!(t.in_flight(), 2);
        let got = t.poll(B);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1.entries[0].0, "first");
        assert_eq!(got[1].1.entries[0].0, "second");
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn severed_links_drop_silently() {
        let mut t: LoopbackTransport<&str, GSet<u8>> = LoopbackTransport::new(2);
        t.sever(A, B);
        t.send(A, B, msg());
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.dropped(), 1);
        // The reverse direction still works.
        t.send(B, A, msg());
        assert_eq!(t.poll(A).len(), 1);
        t.heal(A, B);
        t.send(A, B, msg());
        assert_eq!(t.poll(B).len(), 1);
    }
}
