//! The message-passing boundary between replicas.

use std::collections::VecDeque;

use crdt_lattice::ReplicaId;

use crate::message::StoreMsg;

/// Moves [`StoreMsg`] batches between replicas.
///
/// Implementations may reorder and duplicate freely (state-based CRDT
/// messages are join-idempotent) but must not drop messages when the
/// configured protocol assumes reliable channels (every kind except the
/// acked variant). A dropping transport needs either the acked protocol
/// or the digest repair path ([`crate::Cluster::digest_repair`]) to
/// restore convergence.
///
/// The batch type is protocol-agnostic: entries carry encoded
/// [`crdt_sync::WireEnvelope`]s, so one transport implementation serves
/// every [`crdt_sync::ProtocolKind`].
pub trait Transport<K> {
    /// Enqueue a batch from `from` to `to`.
    fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: StoreMsg<K>);

    /// Drain every batch waiting at `at`, in delivery order.
    fn poll(&mut self, at: ReplicaId) -> Vec<(ReplicaId, StoreMsg<K>)>;

    /// Are any messages still in flight (to any replica)?
    fn in_flight(&self) -> usize;

    /// Extend the transport by one endpoint (a replica joining the
    /// cluster); the new endpoint's id is the previous replica count.
    fn add_node(&mut self);
}

/// In-memory transport: one FIFO queue per recipient. Supports severing
/// individual directed links, for partition testing.
#[derive(Debug)]
pub struct LoopbackTransport<K> {
    queues: Vec<VecDeque<(ReplicaId, StoreMsg<K>)>>,
    /// `severed[from][to]` — messages on this directed link are dropped.
    severed: Vec<Vec<bool>>,
    dropped: u64,
}

impl<K> LoopbackTransport<K> {
    /// A transport connecting `n` replicas.
    pub fn new(n: usize) -> Self {
        LoopbackTransport {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            severed: vec![vec![false; n]; n],
            dropped: 0,
        }
    }

    /// Sever the directed link `from → to` (messages silently dropped).
    pub fn sever(&mut self, from: ReplicaId, to: ReplicaId) {
        self.severed[from.index()][to.index()] = true;
    }

    /// Restore the directed link `from → to`.
    pub fn heal(&mut self, from: ReplicaId, to: ReplicaId) {
        self.severed[from.index()][to.index()] = false;
    }

    /// Restore every link.
    pub fn heal_all(&mut self) {
        for row in &mut self.severed {
            row.fill(false);
        }
    }

    /// Messages dropped on severed links so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<K> Transport<K> for LoopbackTransport<K> {
    fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: StoreMsg<K>) {
        if self.severed[from.index()][to.index()] {
            self.dropped += 1;
            return;
        }
        self.queues[to.index()].push_back((from, msg));
    }

    fn poll(&mut self, at: ReplicaId) -> Vec<(ReplicaId, StoreMsg<K>)> {
        self.queues[at.index()].drain(..).collect()
    }

    fn in_flight(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn add_node(&mut self) {
        let n = self.queues.len() + 1;
        self.queues.push(VecDeque::new());
        for row in &mut self.severed {
            row.push(false);
        }
        self.severed.push(vec![false; n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_lattice::WireEncode;
    use crdt_sync::{ProtocolKind, WireAccounting, WireEnvelope};
    use crdt_types::GSet;

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    fn msg(key: &'static str) -> StoreMsg<&'static str> {
        let payload = GSet::from_iter([1u8]).to_bytes();
        StoreMsg {
            entries: vec![(
                key,
                WireEnvelope {
                    from: A,
                    to: B,
                    kind: ProtocolKind::BpRr,
                    accounting: WireAccounting {
                        payload_elements: 1,
                        payload_bytes: 1,
                        metadata_bytes: 0,
                        encoded_bytes: payload.len() as u64,
                    },
                    payload: payload.into(),
                },
            )],
        }
    }

    #[test]
    fn fifo_per_recipient() {
        let mut t: LoopbackTransport<&str> = LoopbackTransport::new(2);
        t.send(A, B, msg("first"));
        t.send(A, B, msg("second"));
        assert_eq!(t.in_flight(), 2);
        let got = t.poll(B);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1.entries[0].0, "first");
        assert_eq!(got[1].1.entries[0].0, "second");
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn severed_links_drop_silently() {
        let mut t: LoopbackTransport<&str> = LoopbackTransport::new(2);
        t.sever(A, B);
        t.send(A, B, msg("x"));
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.dropped(), 1);
        // The reverse direction still works.
        t.send(B, A, msg("x"));
        assert_eq!(t.poll(A).len(), 1);
        t.heal(A, B);
        t.send(A, B, msg("x"));
        assert_eq!(t.poll(B).len(), 1);
    }
}
