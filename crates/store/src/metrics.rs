//! Traffic accounting for the cluster.

use crdt_lattice::SizeModel;
use crdt_sync::Measured;

/// Cumulative transmission statistics, in the paper's units: messages,
/// payload elements (join-irreducibles), payload bytes, and metadata
/// bytes (object keys, digests, protocol vectors).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Batches sent.
    pub messages: u64,
    /// Lattice elements of CRDT payload shipped.
    pub payload_elements: u64,
    /// Bytes of CRDT payload shipped.
    pub payload_bytes: u64,
    /// Bytes of addressing/synchronization metadata shipped.
    pub metadata_bytes: u64,
}

impl TrafficStats {
    /// Account one outgoing batch (anything [`Measured`]).
    pub fn record<M: Measured>(&mut self, msg: &M, model: &SizeModel) {
        self.messages += 1;
        self.payload_elements += msg.payload_elements();
        self.payload_bytes += msg.payload_bytes(model);
        self.metadata_bytes += msg.metadata_bytes(model);
    }

    /// Total bytes (payload + metadata).
    pub fn total_bytes(&self) -> u64 {
        self.payload_bytes + self.metadata_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::StoreMsg;
    use crdt_lattice::{ReplicaId, WireEncode};
    use crdt_sync::{ProtocolKind, WireAccounting, WireEnvelope};
    use crdt_types::GSet;

    #[test]
    fn record_accumulates() {
        let model = SizeModel::compact();
        let mut stats = TrafficStats::default();
        let payload = GSet::from_iter([1u64, 2]).to_bytes();
        let msg = StoreMsg {
            entries: vec![(
                1u8,
                WireEnvelope {
                    from: ReplicaId(0),
                    to: ReplicaId(1),
                    kind: ProtocolKind::BpRr,
                    accounting: WireAccounting {
                        payload_elements: 2,
                        payload_bytes: 16,
                        metadata_bytes: 0,
                        encoded_bytes: payload.len() as u64,
                    },
                    payload: payload.into(),
                },
            )],
        };
        stats.record(&msg, &model);
        stats.record(&msg, &model);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.payload_elements, 4);
        assert_eq!(stats.payload_bytes, 4 * 8);
        assert_eq!(stats.metadata_bytes, 2);
        assert_eq!(stats.total_bytes(), 34);
    }
}
