//! One replica of the multi-object store.

use std::collections::BTreeMap;
use std::hash::Hash;
use std::marker::PhantomData;

use crdt_lattice::{ReplicaId, SizeModel, Sizeable, WireEncode};
use crdt_sync::{
    build_engine_send_with_model, BufferPool, DeltaMsg, EngineError, EngineMetrics, Measured,
    MemoryUsage, MerkleTree, OpBytes, Params, ProtocolKind, SyncEngine, WireAccounting,
    WireEnvelope,
};
use crdt_types::Crdt;

use crate::message::StoreMsg;

/// Store-wide configuration.
///
/// The protocol is a **runtime value**: one store binary serves any of
/// the paper's synchronization strategies, selected per deployment (e.g.
/// from a `--protocol bp_rr` flag via [`ProtocolKind::from_str`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Which synchronization protocol every object runs. Defaults to
    /// BP+RR (the paper's best variant); set [`ProtocolKind::Classic`] to
    /// reproduce the anomaly of Fig. 1, or any other kind to compare
    /// baselines through the same store API.
    pub protocol: ProtocolKind,
    /// Byte model used for traffic/memory accounting.
    pub model: SizeModel,
}

impl StoreConfig {
    /// Configuration running `protocol` under the compact byte model.
    pub fn new(protocol: ProtocolKind) -> Self {
        StoreConfig {
            protocol,
            model: SizeModel::compact(),
        }
    }

    /// Override the accounting byte model.
    pub fn with_model(mut self, model: SizeModel) -> Self {
        self.model = model;
        self
    }
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self::new(ProtocolKind::BpRr)
    }
}

/// Registry-backed cells a replica (and its per-object engines) bump.
/// One set per node; obtain via [`StoreMetrics::register`] and attach
/// with [`StoreReplica::set_obs`].
#[derive(Clone, Debug)]
pub struct StoreMetrics {
    /// `store.objects` — live objects (keys) in the replica.
    pub objects: crdt_obs::Gauge,
    /// `store.sync.steps` — synchronization steps run.
    pub sync_steps: crdt_obs::Counter,
    /// `store.compact.reclaimed` — metadata entries reclaimed by
    /// compaction across all object engines.
    pub compact_reclaimed: crdt_obs::Counter,
    /// Cells the object engines bump (`engine.*`).
    pub engine: EngineMetrics,
}

impl StoreMetrics {
    /// Register (or look up) the store cells in `reg`.
    pub fn register(reg: &crdt_obs::Registry) -> Self {
        StoreMetrics {
            objects: crdt_obs::register_gauge!(
                reg,
                "store.objects",
                "live objects (keys) in the replica"
            ),
            sync_steps: crdt_obs::register_counter!(
                reg,
                "store.sync.steps",
                "synchronization steps run"
            ),
            compact_reclaimed: crdt_obs::register_counter!(
                reg,
                "store.compact.reclaimed",
                "metadata entries reclaimed by compaction"
            ),
            engine: EngineMetrics::register(reg),
        }
    }
}

/// One replica of a keyspace of CRDT objects, each object synchronized by
/// its own engine of the configured [`ProtocolKind`].
///
/// Objects are created lazily: updating (or receiving an envelope for) an
/// unknown key instantiates it at `⊥`, so new objects propagate through
/// ordinary synchronization with no naming service.
///
/// The object engines are type-erased ([`SyncEngine`]); the replica keeps
/// the CRDT type `C` only at its *API boundary* — typed operations in,
/// typed state out (via checked downcasts).
///
/// Engines are boxed as `dyn SyncEngine + Send` (via
/// [`build_engine_send_with_model`]), so a whole replica moves across
/// threads: the in-process [`crate::Cluster`] drives it single-threaded,
/// while `crdt-net`'s TCP node runtime parks one behind a mutex shared
/// by its scheduler and socket-reader threads.
#[derive(Debug)]
pub struct StoreReplica<K: Ord, C> {
    id: ReplicaId,
    cfg: StoreConfig,
    params: Params,
    objects: BTreeMap<K, Box<dyn SyncEngine + Send>>,
    /// Recycled encode scratch shared by every object engine at this
    /// replica: a sync step's (or absorb's reply) payloads land in
    /// pooled buffers reused round after round.
    pool: BufferPool,
    /// Keyspace Merkle tree, maintained incrementally: every mutation
    /// path marks the touched key dirty; [`StoreReplica::merkle`]
    /// flushes dirty leaf paths against the live engine state hashes.
    merkle: MerkleTree<K>,
    /// Registry-backed cells, attached via [`StoreReplica::set_obs`];
    /// `None` (the default) costs one branch per step.
    obs: Option<StoreMetrics>,
    _crdt: PhantomData<fn() -> C>,
}

impl<K, C> StoreReplica<K, C>
where
    K: Ord + Clone + Sizeable + Hash,
    C: Crdt + WireEncode + Send + 'static,
    C::Op: WireEncode + Send + 'static,
{
    /// Create replica `id` with the system size **unknown**
    /// (`n_nodes = usize::MAX`); use [`StoreReplica::with_params`] when
    /// the size is known (as [`crate::Cluster`] does).
    ///
    /// Unknown size is the *safe* default for every protocol: the only
    /// consumer of `n_nodes` is Scuttlebutt-GC's safe-delete rule, which
    /// under `usize::MAX` simply never prunes (plain-Scuttlebutt
    /// behavior) instead of wrongly pruning deltas no peer has seen —
    /// which a small default like `1` would cause, silently breaking
    /// convergence.
    pub fn new(id: ReplicaId, cfg: StoreConfig) -> Self {
        Self::with_params(id, cfg, Params::new(usize::MAX))
    }

    /// Create replica `id` with explicit system parameters.
    pub fn with_params(id: ReplicaId, cfg: StoreConfig, params: Params) -> Self {
        StoreReplica {
            id,
            cfg,
            params,
            objects: BTreeMap::new(),
            pool: BufferPool::new(),
            merkle: MerkleTree::default(),
            obs: None,
            _crdt: PhantomData,
        }
    }

    /// Attach registry-backed cells: the replica registers its
    /// `store.*` / `engine.*` names in `reg` and every existing and
    /// future object engine bumps the shared cells.
    pub fn set_obs(&mut self, reg: &crdt_obs::Registry) {
        let metrics = StoreMetrics::register(reg);
        for engine in self.objects.values_mut() {
            engine.set_metrics(&metrics.engine);
        }
        metrics.objects.set(self.objects.len() as u64);
        self.obs = Some(metrics);
    }

    /// This replica's identifier (also the id operations act under).
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The configuration in effect.
    pub fn config(&self) -> StoreConfig {
        self.cfg
    }

    /// The engine at `key` in `objects`, created lazily at `⊥`. An
    /// associated fn over the map (not `&mut self`) so callers can hold
    /// `self.pool` mutably at the same time.
    fn engine_at<'a>(
        objects: &'a mut BTreeMap<K, Box<dyn SyncEngine + Send>>,
        key: K,
        id: ReplicaId,
        cfg: StoreConfig,
        params: &Params,
        obs: &Option<StoreMetrics>,
    ) -> &'a mut Box<dyn SyncEngine + Send> {
        objects.entry(key).or_insert_with(|| {
            let mut engine = build_engine_send_with_model::<C>(cfg.protocol, id, params, cfg.model);
            if let Some(m) = obs {
                engine.set_metrics(&m.engine);
                m.objects.add(1);
            }
            engine
        })
    }

    fn engine(&mut self, key: K) -> &mut Box<dyn SyncEngine + Send> {
        Self::engine_at(
            &mut self.objects,
            key,
            self.id,
            self.cfg,
            &self.params,
            &self.obs,
        )
    }

    fn typed_state(engine: &dyn SyncEngine) -> &C {
        engine
            .state_any()
            .downcast_ref::<C>()
            .expect("store engines are always built over the replica's CRDT type")
    }

    /// Apply `op` to the object at `key`, creating it at `⊥` first if
    /// unknown. The resulting delta (or log entry, op record, … — per
    /// protocol) is buffered for the next sync round.
    pub fn update(&mut self, key: K, op: &C::Op) {
        let bytes = OpBytes::encode(op);
        self.merkle.touch(key.clone());
        self.engine(key)
            .on_op(&bytes)
            .expect("engine rejected its own CRDT's op encoding");
    }

    /// The object's lattice state, if the key exists.
    pub fn get(&self, key: K) -> Option<&C> {
        self.objects
            .get(&key)
            .map(|e| Self::typed_state(e.as_ref()))
    }

    /// The object's query value, if the key exists.
    pub fn value(&self, key: K) -> Option<C::Value> {
        self.get(key).map(Crdt::value)
    }

    /// All live keys, in order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.objects.keys()
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Does the replica hold no objects?
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterate `(key, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &C)> {
        self.objects
            .iter()
            .map(|(k, e)| (k, Self::typed_state(e.as_ref())))
    }

    /// Run one synchronization step (per object): per neighbor, batch
    /// every object's envelope into one [`StoreMsg`].
    ///
    /// For the delta family this is Algorithm 1 lines 9–13 — buffers are
    /// cleared, so messages must not be dropped (pair with the acked
    /// protocol or digest repair for lossy links). Anti-entropy kinds
    /// (Scuttlebutt) emit digests here and complete their exchange through
    /// the replies returned by [`StoreReplica::absorb`].
    pub fn sync_step(&mut self, neighbors: &[ReplicaId]) -> Vec<(ReplicaId, StoreMsg<K>)> {
        if let Some(m) = &self.obs {
            m.sync_steps.inc();
        }
        let mut batches: BTreeMap<ReplicaId, StoreMsg<K>> = BTreeMap::new();
        for (key, engine) in self.objects.iter_mut() {
            for env in engine.on_sync_pooled(neighbors, &mut self.pool) {
                batches
                    .entry(env.to)
                    .or_default()
                    .entries
                    .push((key.clone(), env));
            }
        }
        batches.into_iter().filter(|(_, b)| !b.is_empty()).collect()
    }

    /// Absorb a batch (per object), creating unknown objects at `⊥`.
    /// Returns reply batches (push-pull protocols answer digests; the
    /// delta family replies with nothing).
    ///
    /// # Errors
    ///
    /// Batches can arrive from real peers over a byte transport, so
    /// malformed payloads and mismatched protocols are runtime
    /// conditions, not bugs: an envelope of a different
    /// [`ProtocolKind`] (peer misconfiguration) or an undecodable
    /// payload (corruption) returns [`EngineError`] instead of
    /// panicking. Entries before the bad one are already applied —
    /// harmless, since CRDT deltas are idempotent and a retransmitted
    /// batch re-applies cleanly.
    pub fn absorb(
        &mut self,
        msg: StoreMsg<K>,
    ) -> Result<Vec<(ReplicaId, StoreMsg<K>)>, EngineError> {
        let mut batches: BTreeMap<ReplicaId, StoreMsg<K>> = BTreeMap::new();
        for (key, env) in msg.entries {
            self.merkle.touch(key.clone());
            let engine = Self::engine_at(
                &mut self.objects,
                key.clone(),
                self.id,
                self.cfg,
                &self.params,
                &self.obs,
            );
            let replies = engine.on_msg_pooled(env, &mut self.pool)?;
            for reply in replies {
                batches
                    .entry(reply.to)
                    .or_default()
                    .entries
                    .push((key.clone(), reply));
            }
        }
        Ok(batches.into_iter().filter(|(_, b)| !b.is_empty()).collect())
    }

    /// The cluster grew (or shrank) to `n_nodes` replicas: update the
    /// construction parameters for future objects and notify every
    /// existing engine (Scuttlebutt-GC's safe-delete rule depends on the
    /// system size; see [`crdt_sync::SyncEngine::set_system_size`]).
    pub fn set_system_size(&mut self, n_nodes: usize) {
        self.params.n_nodes = n_nodes;
        for engine in self.objects.values_mut() {
            engine.set_system_size(n_nodes);
        }
    }

    /// Discard every object — the state loss of a **non-durable crash**.
    /// Pair with [`StoreReplica::bootstrap_from`] to rejoin from a live
    /// peer.
    pub fn reset(&mut self) {
        self.objects.clear();
        self.merkle.clear();
        if let Some(m) = &self.obs {
            m.objects.set(0);
        }
    }

    /// Out-of-band state transfer: for every object `source` holds,
    /// bootstrap the local engine (created at `⊥` if unknown) from the
    /// peer's — snapshot state plus protocol recovery metadata travel
    /// together (see [`crdt_sync::SyncEngine::bootstrap_from`]). Returns
    /// the number of lattice elements shipped.
    ///
    /// Both replicas must run the same [`StoreConfig`] protocol — the
    /// invariant [`crate::Cluster`] maintains by construction.
    pub fn bootstrap_from(&mut self, source: &StoreReplica<K, C>) -> u64 {
        let mut elements = 0;
        for (key, engine) in &source.objects {
            self.merkle.touch(key.clone());
            let acc = self
                .engine(key.clone())
                .bootstrap_from(engine.as_ref())
                .expect("uniform store cluster cannot mismatch protocols");
            elements += acc.payload_elements;
        }
        elements
    }

    /// Memory snapshot summed over all objects (CRDT state + per-object
    /// synchronization buffers), plus key storage as metadata.
    pub fn memory(&self) -> MemoryUsage {
        let mut total = MemoryUsage::default();
        for engine in self.objects.values() {
            let m = engine.memory();
            total.crdt_elements += m.crdt_elements;
            total.crdt_bytes += m.crdt_bytes;
            total.meta_elements += m.meta_elements;
            total.meta_bytes += m.meta_bytes;
        }
        // Key storage is metadata too.
        total.meta_bytes += self
            .objects
            .keys()
            .map(|k| k.payload_bytes(&self.cfg.model))
            .sum::<u64>();
        total
    }

    /// The keyspace Merkle tree, flushed to current: keys touched since
    /// the last call are rehashed against the live engine states (a key
    /// whose engine vanished — [`StoreReplica::reset`] — drops out).
    /// `&mut self` because flushing is deferred maintenance; the flush
    /// cost is O(touched · depth), not O(keyspace).
    pub fn merkle(&mut self) -> &MerkleTree<K> {
        let objects = &self.objects;
        self.merkle
            .flush(|k| objects.get(k).map(|e| e.state_hash()));
        &self.merkle
    }

    /// Prune causally stable synchronization metadata in every object
    /// engine (δ-buffer entries every peer acked, op-buffer entries every
    /// replica has seen, anti-entropy knowledge below the stability
    /// frontier — see [`crdt_sync::SyncEngine::compact`]). Never changes
    /// lattice state, so convergence and the Merkle tree are unaffected.
    /// Returns the number of entries pruned.
    pub fn compact(&mut self) -> u64 {
        let reclaimed = self.objects.values_mut().map(|e| e.compact()).sum();
        if let Some(m) = &self.obs {
            m.compact_reclaimed.add(reclaimed);
        }
        reclaimed
    }

    /// Feed a repaired delta into the object at `key` through the
    /// ordinary receive path, as if `from` had sent it — so RR extraction
    /// applies and the novelty is re-buffered for onward propagation.
    ///
    /// Only meaningful for kinds whose wire message is a bare δ-group
    /// ([`ProtocolKind::accepts_raw_delta`]); callers must check first,
    /// as the digest-repair paths do ([`crate::Cluster::digest_repair`]
    /// in process, `crdt-net`'s repair handshake over sockets).
    ///
    /// # Panics
    ///
    /// If the configured protocol rejects raw δ-group payloads.
    pub fn inject_delta(&mut self, key: K, from: ReplicaId, delta: C) {
        self.merkle.touch(key.clone());
        let kind = self.cfg.protocol;
        debug_assert!(kind.accepts_raw_delta());
        let msg = DeltaMsg(delta);
        let payload = msg.to_bytes();
        let model = self.cfg.model;
        let accounting = WireAccounting {
            payload_elements: msg.payload_elements(),
            payload_bytes: msg.payload_bytes(&model),
            metadata_bytes: msg.metadata_bytes(&model),
            encoded_bytes: payload.len() as u64,
        };
        let to = self.id;
        let env = WireEnvelope {
            from,
            to,
            kind,
            payload: payload.into(),
            accounting,
        };
        let replies = Self::engine_at(
            &mut self.objects,
            key,
            self.id,
            self.cfg,
            &self.params,
            &self.obs,
        )
        .on_msg_pooled(env, &mut self.pool)
        .expect("raw delta injection matches the configured protocol");
        debug_assert!(replies.is_empty(), "delta-family kinds never reply");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_lattice::Lattice;
    use crdt_types::{GSet, GSetOp};

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    fn replica(id: ReplicaId) -> StoreReplica<&'static str, GSet<u32>> {
        StoreReplica::new(id, StoreConfig::default())
    }

    #[test]
    fn update_creates_objects_lazily() {
        let mut r = replica(A);
        assert!(r.is_empty());
        r.update("x", &GSetOp::Add(1));
        r.update("y", &GSetOp::Add(2));
        assert_eq!(r.len(), 2);
        assert!(r.get("x").unwrap().contains(&1));
        assert!(r.value("z").is_none());
    }

    #[test]
    fn sync_batches_all_objects_per_neighbor() {
        let mut r = replica(A);
        r.update("x", &GSetOp::Add(1));
        r.update("y", &GSetOp::Add(2));
        let batches = r.sync_step(&[B]);
        assert_eq!(batches.len(), 1);
        let (to, msg) = &batches[0];
        assert_eq!(*to, B);
        assert_eq!(msg.len(), 2, "both objects in one batch");
        // Buffers cleared: next step ships nothing.
        assert!(r.sync_step(&[B]).is_empty());
    }

    #[test]
    fn absorb_creates_unknown_objects() {
        let mut a = replica(A);
        let mut b = replica(B);
        a.update("new-object", &GSetOp::Add(7));
        for (to, msg) in a.sync_step(&[B]) {
            assert_eq!(to, B);
            assert!(
                b.absorb(msg).unwrap().is_empty(),
                "delta family: no replies"
            );
        }
        assert!(b.get("new-object").unwrap().contains(&7));
    }

    #[test]
    fn rr_extracts_only_novelty_per_object() {
        let mut a = replica(A);
        let mut b = replica(B);
        // Both already know {1} under "x".
        a.update("x", &GSetOp::Add(1));
        for (_, msg) in a.sync_step(&[B]) {
            b.absorb(msg).unwrap();
        }
        // B adds 2; A concurrently adds 3. B's batch to A contains {2}
        // only (its buffer was consumed), and when A's {1,3}-era buffer
        // arrives at B, RR strips the known part.
        b.update("x", &GSetOp::Add(2));
        a.update("x", &GSetOp::Add(3));
        for (_, msg) in b.sync_step(&[A]) {
            a.absorb(msg).unwrap();
        }
        let batches = a.sync_step(&[B]);
        let total: u64 = batches.iter().map(|(_, m)| m.payload_elements()).sum();
        // BP keeps B's own {2} out of the reply; only {3} ships.
        assert_eq!(total, 1);
        for (_, msg) in batches {
            b.absorb(msg).unwrap();
        }
        assert_eq!(a.get("x"), b.get("x"));
        assert_eq!(a.get("x").unwrap().len(), 3);
    }

    #[test]
    fn memory_sums_objects_and_keys() {
        let mut r = replica(A);
        r.update("x", &GSetOp::Add(1));
        r.update("y", &GSetOp::Add(2));
        let m = r.memory();
        assert_eq!(m.crdt_elements, 2);
        assert_eq!(m.meta_elements, 2, "δ-buffers hold the two deltas");
        assert!(m.meta_bytes >= 2, "keys counted as metadata");
    }

    #[test]
    fn classic_config_buffers_whole_received_groups() {
        let classic = StoreConfig::new(ProtocolKind::Classic);
        let mut a: StoreReplica<&str, GSet<u32>> = StoreReplica::new(A, classic);
        let mut b: StoreReplica<&str, GSet<u32>> = StoreReplica::new(B, classic);
        a.update("x", &GSetOp::Add(1));
        // A received group that inflates: classic buffers all of it.
        b.update("x", &GSetOp::Add(1));
        b.update("x", &GSetOp::Add(2));
        b.update("x", &GSetOp::Add(3));
        for (_, msg) in b.sync_step(&[A]) {
            a.absorb(msg).unwrap();
        }
        let m = a.memory();
        assert_eq!(m.meta_elements, 1 + 3, "local delta + whole group");
    }

    #[test]
    fn scuttlebutt_store_replicates_via_push_pull() {
        // The generalized store runs anti-entropy kinds end to end: the
        // digest goes out in sync_step, the payload comes back through
        // absorb's reply batches.
        let cfg = StoreConfig::new(ProtocolKind::Scuttlebutt);
        let params = Params::new(2);
        let mut a: StoreReplica<&str, GSet<u32>> = StoreReplica::with_params(A, cfg, params);
        let mut b: StoreReplica<&str, GSet<u32>> = StoreReplica::with_params(B, cfg, params);
        b.update("x", &GSetOp::Add(9));

        // B initiates (it holds the only object): digest → A replies with
        // its (empty) missing set and clock → B's final ships {9} to A.
        let mut to_a = b.sync_step(&[A]);
        assert_eq!(to_a.len(), 1);
        let replies = a.absorb(to_a.pop().unwrap().1).unwrap();
        assert_eq!(replies.len(), 1, "A answers the digest");
        for (_, msg) in replies {
            for (_, finals) in b.absorb(msg).unwrap() {
                a.absorb(finals).unwrap();
            }
        }
        assert!(a.get("x").unwrap().contains(&9));
    }

    #[test]
    fn independent_objects_do_not_cross_talk() {
        let mut a = replica(A);
        let mut b = replica(B);
        a.update("x", &GSetOp::Add(1));
        b.update("y", &GSetOp::Add(2));
        for (_, msg) in a.sync_step(&[B]) {
            b.absorb(msg).unwrap();
        }
        for (_, msg) in b.sync_step(&[A]) {
            a.absorb(msg).unwrap();
        }
        assert_eq!(a.get("x").unwrap().len(), 1);
        assert_eq!(a.get("y").unwrap().len(), 1);
        assert_eq!(a.get("x"), b.get("x"));
        assert_eq!(a.get("y"), b.get("y"));
        // The two objects never merged.
        assert!(
            a.get("x")
                .unwrap()
                .clone()
                .join(a.get("y").unwrap().clone())
                .len()
                == 2
        );
    }
}
