//! One replica of the multi-object store.

use std::collections::BTreeMap;

use crdt_lattice::{ReplicaId, SizeModel, Sizeable};
use crdt_sync::{DeltaConfig, DeltaMsg, DeltaSync, MemoryUsage};
use crdt_types::Crdt;

use crate::message::StoreMsg;

/// Store-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Which of the paper's optimizations each object's synchronizer
    /// runs with. Defaults to BP+RR (the paper's best variant); set to
    /// [`DeltaConfig::CLASSIC`] to reproduce the anomaly of Fig. 1.
    pub delta: DeltaConfig,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { delta: DeltaConfig::BP_RR }
    }
}

/// One replica of a keyspace of CRDT objects, each object synchronized by
/// its own Algorithm-1 instance.
///
/// Objects are created lazily: updating (or receiving a δ-group for) an
/// unknown key instantiates it at `⊥`, so new objects propagate through
/// ordinary synchronization with no naming service.
#[derive(Debug, Clone)]
pub struct StoreReplica<K: Ord, C> {
    id: ReplicaId,
    cfg: StoreConfig,
    objects: BTreeMap<K, DeltaSync<C>>,
}

impl<K: Ord + Clone + Sizeable, C: Crdt> StoreReplica<K, C> {
    /// Create replica `id`.
    pub fn new(id: ReplicaId, cfg: StoreConfig) -> Self {
        StoreReplica { id, cfg, objects: BTreeMap::new() }
    }

    /// This replica's identifier (also the id operations act under).
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Apply `op` to the object at `key`, creating it at `⊥` first if
    /// unknown. The optimal delta is buffered for the next sync round.
    pub fn update(&mut self, key: K, op: &C::Op) {
        let id = self.id;
        let cfg = self.cfg;
        self.objects
            .entry(key)
            .or_insert_with(|| DeltaSync::with_config(id, cfg.delta))
            .local_op(op);
    }

    /// The object's lattice state, if the key exists.
    pub fn get(&self, key: K) -> Option<&C>
    where
        K: Ord,
    {
        self.objects.get(&key).map(|o| o.state_ref())
    }

    /// The object's query value, if the key exists.
    pub fn value(&self, key: K) -> Option<C::Value> {
        self.objects.get(&key).map(|o| o.state_ref().value())
    }

    /// All live keys, in order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.objects.keys()
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Does the replica hold no objects?
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterate `(key, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &C)> {
        self.objects.iter().map(|(k, o)| (k, o.state_ref()))
    }

    /// Run one synchronization step (Algorithm 1 lines 9–13, per object):
    /// per neighbor, batch every object's δ-group into one [`StoreMsg`].
    /// Buffers are cleared, so messages must not be dropped (pair with an
    /// acked variant or digest repair for lossy links).
    pub fn sync_step(&mut self, neighbors: &[ReplicaId]) -> Vec<(ReplicaId, StoreMsg<K, C>)> {
        let mut batches: BTreeMap<ReplicaId, StoreMsg<K, C>> = BTreeMap::new();
        let mut out = Vec::new();
        for (key, obj) in self.objects.iter_mut() {
            obj.sync_step(neighbors, &mut out);
            for (to, DeltaMsg(d)) in out.drain(..) {
                batches.entry(to).or_default().entries.push((key.clone(), d));
            }
        }
        batches.into_iter().filter(|(_, b)| !b.is_empty()).collect()
    }

    /// Absorb a batch from `from` (Algorithm 1 lines 14–17, per object).
    pub fn absorb(&mut self, from: ReplicaId, msg: StoreMsg<K, C>) {
        let id = self.id;
        let cfg = self.cfg;
        for (key, delta) in msg.entries {
            self.objects
                .entry(key)
                .or_insert_with(|| DeltaSync::with_config(id, cfg.delta))
                .receive(from, DeltaMsg(delta));
        }
    }

    /// Memory snapshot summed over all objects (CRDT state + δ-buffers).
    pub fn memory(&self, model: &SizeModel) -> MemoryUsage {
        let mut total = MemoryUsage::default();
        for obj in self.objects.values() {
            let m = obj.memory_usage(model);
            total.crdt_elements += m.crdt_elements;
            total.crdt_bytes += m.crdt_bytes;
            total.meta_elements += m.meta_elements;
            total.meta_bytes += m.meta_bytes;
        }
        // Key storage is metadata too.
        total.meta_bytes += self
            .objects
            .keys()
            .map(|k| k.payload_bytes(model))
            .sum::<u64>();
        total
    }

    /// Direct access to one object's synchronizer (tests, repair).
    pub(crate) fn object_mut(&mut self, key: K) -> &mut DeltaSync<C> {
        let id = self.id;
        let cfg = self.cfg;
        self.objects
            .entry(key)
            .or_insert_with(|| DeltaSync::with_config(id, cfg.delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_lattice::Lattice;
    use crdt_types::{GSet, GSetOp};

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    fn replica(id: ReplicaId) -> StoreReplica<&'static str, GSet<u32>> {
        StoreReplica::new(id, StoreConfig::default())
    }

    #[test]
    fn update_creates_objects_lazily() {
        let mut r = replica(A);
        assert!(r.is_empty());
        r.update("x", &GSetOp::Add(1));
        r.update("y", &GSetOp::Add(2));
        assert_eq!(r.len(), 2);
        assert!(r.get("x").unwrap().contains(&1));
        assert!(r.value("z").is_none());
    }

    #[test]
    fn sync_batches_all_objects_per_neighbor() {
        let mut r = replica(A);
        r.update("x", &GSetOp::Add(1));
        r.update("y", &GSetOp::Add(2));
        let batches = r.sync_step(&[B]);
        assert_eq!(batches.len(), 1);
        let (to, msg) = &batches[0];
        assert_eq!(*to, B);
        assert_eq!(msg.len(), 2, "both objects in one batch");
        // Buffers cleared: next step ships nothing.
        assert!(r.sync_step(&[B]).is_empty());
    }

    #[test]
    fn absorb_creates_unknown_objects() {
        let mut a = replica(A);
        let mut b = replica(B);
        a.update("new-object", &GSetOp::Add(7));
        for (to, msg) in a.sync_step(&[B]) {
            assert_eq!(to, B);
            b.absorb(A, msg);
        }
        assert!(b.get("new-object").unwrap().contains(&7));
    }

    #[test]
    fn rr_extracts_only_novelty_per_object() {
        let mut a = replica(A);
        let mut b = replica(B);
        // Both already know {1} under "x".
        a.update("x", &GSetOp::Add(1));
        for (_, msg) in a.sync_step(&[B]) {
            b.absorb(A, msg);
        }
        // B adds 2; A concurrently adds 3. B's batch to A contains {2}
        // only (its buffer was consumed), and when A's {1,3}-era buffer
        // arrives at B, RR strips the known part.
        b.update("x", &GSetOp::Add(2));
        a.update("x", &GSetOp::Add(3));
        for (_, msg) in b.sync_step(&[A]) {
            a.absorb(B, msg);
        }
        let batches = a.sync_step(&[B]);
        let total: u64 = batches
            .iter()
            .map(|(_, m)| crdt_sync::Measured::payload_elements(m))
            .sum();
        // BP keeps B's own {2} out of the reply; only {3} ships.
        assert_eq!(total, 1);
        for (_, msg) in batches {
            b.absorb(A, msg);
        }
        assert_eq!(a.get("x"), b.get("x"));
        assert_eq!(a.get("x").unwrap().len(), 3);
    }

    #[test]
    fn memory_sums_objects_and_keys() {
        let model = SizeModel::compact();
        let mut r = replica(A);
        r.update("x", &GSetOp::Add(1));
        r.update("y", &GSetOp::Add(2));
        let m = r.memory(&model);
        assert_eq!(m.crdt_elements, 2);
        assert_eq!(m.meta_elements, 2, "δ-buffers hold the two deltas");
        assert!(m.meta_bytes >= 2, "keys counted as metadata");
    }

    #[test]
    fn classic_config_buffers_whole_received_groups() {
        let classic = StoreConfig { delta: DeltaConfig::CLASSIC };
        let mut a: StoreReplica<&str, GSet<u32>> = StoreReplica::new(A, classic);
        a.update("x", &GSetOp::Add(1));
        // A received group that inflates: classic buffers all of it.
        a.absorb(
            B,
            StoreMsg { entries: vec![("x", GSet::from_iter([1, 2, 3]))] },
        );
        let m = a.memory(&SizeModel::compact());
        assert_eq!(m.meta_elements, 1 + 3, "local delta + whole group");
    }

    #[test]
    fn independent_objects_do_not_cross_talk() {
        let mut a = replica(A);
        let mut b = replica(B);
        a.update("x", &GSetOp::Add(1));
        b.update("y", &GSetOp::Add(2));
        for (_, msg) in a.sync_step(&[B]) {
            b.absorb(A, msg);
        }
        for (_, msg) in b.sync_step(&[A]) {
            a.absorb(B, msg);
        }
        assert_eq!(a.get("x").unwrap().len(), 1);
        assert_eq!(a.get("y").unwrap().len(), 1);
        assert_eq!(a.get("x"), b.get("x"));
        assert_eq!(a.get("y"), b.get("y"));
        // The two objects never merged.
        assert!(a.get("x").unwrap().clone().join(a.get("y").unwrap().clone()).len() == 2);
    }
}
