//! # delta-store
//!
//! A **multi-object replicated store** over runtime-selectable
//! synchronization — the library layer a downstream system would embed,
//! as opposed to the experiment harness in `crdt-sim`.
//!
//! Each replica ([`StoreReplica`]) holds a keyspace of independent CRDT
//! objects, every object synchronized by its own type-erased engine
//! ([`crdt_sync::SyncEngine`]) of the [`crdt_sync::ProtocolKind`] the
//! [`StoreConfig`] selects — BP+RR by default (the paper's proposal), or
//! any baseline (`classic`, `state`, `scuttlebutt`, …) for comparison,
//! chosen at **runtime** (e.g. from a `--protocol` flag), not compiled
//! per protocol. Synchronization batches all objects' envelopes per
//! neighbor into a single [`StoreMsg`], the granularity the paper's
//! Retwis deployment uses (§V-C: 30 K objects, per-object δ-buffers);
//! envelope payloads are real encoded bytes, so batches serialize for
//! any byte transport.
//!
//! On top of the replica sit:
//!
//! * [`Transport`] — the pluggable message-passing boundary, with the
//!   in-memory [`LoopbackTransport`] for tests and single-process use;
//! * [`Cluster`] — a set of replicas wired through a transport over an
//!   arbitrary neighbor graph, with link-level partitions, traffic
//!   accounting ([`TrafficStats`]), and **digest-driven pairwise repair**
//!   (the \[30\] protocol of the paper's §VI) for reconciling after
//!   partitions without full state exchange. Membership is dynamic:
//!   replicas crash (durably or with state loss), restart with a
//!   bootstrap exchange, and [`Cluster::join`] mid-run with a
//!   state-transfer from a live peer; convergence runs report a
//!   diagnostic [`ConvergenceReport`] instead of a bare option.
//!
//! ## Quickstart
//!
//! ```
//! use crdt_lattice::ReplicaId;
//! use crdt_types::{AWSet, AWSetOp};
//! use delta_store::{Cluster, StoreConfig};
//!
//! // Three replicas of a keyspace of add-wins sets, fully connected,
//! // running the protocol named at runtime.
//! let cfg = StoreConfig::new("bp_rr".parse().unwrap());
//! let mut cluster: Cluster<&str, AWSet<String>> = Cluster::full_mesh(3, cfg);
//!
//! // Replica 0 builds a shopping cart; replica 2 builds another.
//! cluster.update(0, "cart:alice", &AWSetOp::Add(ReplicaId(0), "oat milk".into()));
//! cluster.update(2, "cart:bob", &AWSetOp::Add(ReplicaId(2), "espresso".into()));
//!
//! // One synchronization round ships only the deltas.
//! cluster.sync_round();
//!
//! // Every replica now sees both objects.
//! assert!(cluster.replica(1).get("cart:alice").unwrap().contains(&"oat milk".into()));
//! assert!(cluster.replica(0).get("cart:bob").unwrap().contains(&"espresso".into()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod message;
mod metrics;
mod replica;
mod transport;

pub use cluster::{Cluster, ConvergenceReport};
pub use message::StoreMsg;
pub use metrics::TrafficStats;
pub use replica::{StoreConfig, StoreMetrics, StoreReplica};
pub use transport::{LoopbackTransport, Transport};
