//! The compaction acceptance test: under steady-state churn, causal-
//! stability compaction bounds synchronization metadata — and therefore
//! per-epoch allocation cost — at a constant, while the identical
//! workload without `compact()` grows without bound.
//!
//! The vehicle is plain Scuttlebutt with [`Params::compaction`]: every
//! update buffers a dot-tagged delta, and nothing prunes the store
//! except an explicit `compact()` pass over the stability frontier
//! (the GC variant prunes eagerly; the plain variant is where the
//! scheduler-driven `compact()` carries the whole burden).
//!
//! The counting allocator is process-wide, so this binary holds exactly
//! one measuring test.

use crdt_lattice::ReplicaId;
use crdt_sync::{Params, ProtocolKind};
use crdt_types::{GSet, GSetOp};
use delta_store::{StoreConfig, StoreReplica};

#[global_allocator]
static ALLOC: testkit_alloc::CountingAllocator = testkit_alloc::CountingAllocator;

const A: ReplicaId = ReplicaId(0);
const B: ReplicaId = ReplicaId(1);
const KEYS: u64 = 16;

type R = StoreReplica<u64, GSet<u64>>;

fn pair() -> (R, R) {
    let cfg = StoreConfig::new(ProtocolKind::Scuttlebutt);
    let params = Params::new(2).compaction();
    (
        StoreReplica::with_params(A, cfg, params),
        StoreReplica::with_params(B, cfg, params),
    )
}

/// Run the push-pull exchange to quiescence, both directions.
fn converge(a: &mut R, b: &mut R) {
    let mut queue: Vec<_> = a
        .sync_step(&[B])
        .into_iter()
        .chain(b.sync_step(&[A]))
        .collect();
    while let Some((to, msg)) = queue.pop() {
        let replies = if to == A {
            a.absorb(msg)
        } else {
            b.absorb(msg)
        };
        queue.extend(replies.expect("same-protocol batch"));
    }
}

/// One churn epoch: both replicas update every key with fresh elements,
/// then the pair converges.
fn epoch(a: &mut R, b: &mut R, e: u64) {
    for k in 0..KEYS {
        a.update(k, &GSetOp::Add(e * 10_000 + k));
        b.update(k, &GSetOp::Add(e * 10_000 + 5_000 + k));
    }
    converge(a, b);
}

#[test]
fn compaction_bounds_steady_state_memory_and_allocations() {
    assert!(
        testkit_alloc::is_installed(),
        "the counting allocator must be this binary's global allocator"
    );

    // Two pairs under the identical workload; only one ever compacts.
    let (mut ca, mut cb) = pair();
    let (mut ua, mut ub) = pair();

    let warmup = 8;
    for e in 0..warmup {
        epoch(&mut ca, &mut cb, e);
        ca.compact();
        cb.compact();
        epoch(&mut ua, &mut ub, e);
    }
    let meta_early = ca.memory().meta_bytes;
    let (_, alloc_early) = testkit_alloc::measure(|| {
        epoch(&mut ca, &mut cb, warmup);
        ca.compact() + cb.compact()
    });
    epoch(&mut ua, &mut ub, warmup);

    let late = 48;
    for e in (warmup + 1)..late {
        epoch(&mut ca, &mut cb, e);
        ca.compact();
        cb.compact();
        epoch(&mut ua, &mut ub, e);
    }
    let (pruned_late, alloc_late) = testkit_alloc::measure(|| {
        epoch(&mut ca, &mut cb, late);
        ca.compact() + cb.compact()
    });
    epoch(&mut ua, &mut ub, late);
    let meta_late = ca.memory().meta_bytes;

    // Compaction keeps pruning (the frontier advances every epoch) and
    // holds metadata flat: epoch 48's footprint matches epoch 8's.
    assert!(pruned_late > 0, "steady churn keeps the frontier moving");
    assert!(
        meta_late <= meta_early * 2,
        "compacted metadata grew {meta_early} B -> {meta_late} B over 40 epochs"
    );

    // The identical workload without compact() accretes every epoch's
    // deltas: the gap to the compacted twin is the retained history.
    let meta_uncompacted = ua.memory().meta_bytes;
    assert!(
        meta_uncompacted >= meta_late * 4,
        "uncompacted twin held {meta_uncompacted} B vs {meta_late} B compacted — \
         expected the retained history to dominate"
    );

    // Per-epoch allocation cost is flat too: epoch 48 allocates like
    // epoch 8 (2× slack for container growth), because sync scans and
    // clones only the live store, which compaction keeps constant.
    assert!(
        alloc_late.allocated_bytes <= alloc_early.allocated_bytes * 2 + 4096,
        "per-epoch allocations grew {} B -> {} B over 40 epochs",
        alloc_early.allocated_bytes,
        alloc_late.allocated_bytes,
    );

    // Compaction never touches lattice state: both pairs agree on every
    // object, with or without pruning.
    for k in 0..KEYS {
        assert_eq!(ca.get(k), cb.get(k), "compacted pair diverged at {k}");
        assert_eq!(ca.get(k), ua.get(k), "compaction changed state at {k}");
    }
}
