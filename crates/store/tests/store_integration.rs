//! End-to-end tests of the replicated store: realistic multi-object
//! workloads, partitions with digest repair, and property-based
//! convergence over random graphs.

use crdt_lattice::ReplicaId;
use crdt_sync::ProtocolKind;
use crdt_types::{AWSet, AWSetOp, ORMap, ORMapOp, RWSet, RWSetOp};
use delta_store::{Cluster, StoreConfig, TrafficStats};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

fn ring_with_chords(n: usize) -> Vec<Vec<ReplicaId>> {
    (0..n)
        .map(|i| {
            let mut ns = vec![
                ReplicaId::from((i + 1) % n),
                ReplicaId::from((i + n - 1) % n),
            ];
            if n > 4 {
                ns.push(ReplicaId::from((i + n / 2) % n));
            }
            ns.sort_unstable_by_key(|r| r.index());
            ns.dedup();
            ns
        })
        .collect()
}

#[test]
fn shopping_carts_across_a_ring() {
    let n = 6;
    let mut cluster: Cluster<String, AWSet<String>> =
        Cluster::with_neighbors(ring_with_chords(n), StoreConfig::default());

    // Each replica serves one user's cart; carts are independent objects.
    let items = ["bread", "milk", "eggs", "tea", "rice", "jam"];
    for (i, item) in items.iter().enumerate() {
        cluster.update(
            i,
            format!("cart:user{i}"),
            &AWSetOp::Add(ReplicaId::from(i), item.to_string()),
        );
    }
    // User 0's cart is edited from two replicas concurrently.
    cluster.update(
        3,
        "cart:user0".to_string(),
        &AWSetOp::Add(ReplicaId(3), "coffee".to_string()),
    );

    cluster
        .run_until_converged(16)
        .expect_converged("cluster converges");
    let cart0 = cluster
        .replica(5)
        .get("cart:user0".to_string())
        .expect("replicated");
    assert!(cart0.contains(&"bread".to_string()) && cart0.contains(&"coffee".to_string()));
    assert_eq!(cluster.replica(0).len(), n, "all carts everywhere");
}

#[test]
fn removal_semantics_survive_the_store_path() {
    // The store must preserve add-wins (AWSet) and remove-wins (RWSet)
    // outcomes for the same concurrent schedule, including RR extraction.
    let mut aw: Cluster<&str, AWSet<u8>> = Cluster::full_mesh(2, StoreConfig::default());
    aw.update(0, "s", &AWSetOp::Add(ReplicaId(0), 1));
    aw.run_until_converged(4).expect_converged("converges");
    aw.update(0, "s", &AWSetOp::Remove(1));
    aw.update(1, "s", &AWSetOp::Add(ReplicaId(1), 1));
    aw.run_until_converged(8).expect_converged("converges");
    assert!(aw.replica(0).get("s").unwrap().contains(&1), "add wins");

    let mut rw: Cluster<&str, RWSet<u8>> = Cluster::full_mesh(2, StoreConfig::default());
    rw.update(0, "s", &RWSetOp::Add(ReplicaId(0), 1));
    rw.run_until_converged(4).expect_converged("converges");
    rw.update(0, "s", &RWSetOp::Remove(ReplicaId(0), 1));
    rw.update(1, "s", &RWSetOp::Add(ReplicaId(1), 1));
    rw.run_until_converged(8).expect_converged("converges");
    assert!(!rw.replica(0).get("s").unwrap().contains(&1), "remove wins");
}

#[test]
fn ormap_user_profiles_with_partition_and_repair() {
    let n = 5;
    let mut cluster: Cluster<String, ORMap<String, String>> =
        Cluster::full_mesh(n, StoreConfig::default());

    cluster.update(
        0,
        "profile:ada".to_string(),
        &ORMapOp::Put(ReplicaId(0), "city".to_string(), "London".to_string()),
    );
    cluster
        .run_until_converged(8)
        .expect_converged("initial convergence");

    // Partition {0,1} | {2,3,4}; both sides keep writing.
    cluster.partition(&[0, 1]);
    cluster.update(
        1,
        "profile:ada".to_string(),
        &ORMapOp::Put(ReplicaId(1), "city".to_string(), "Cambridge".to_string()),
    );
    cluster.update(
        3,
        "profile:ada".to_string(),
        &ORMapOp::Put(ReplicaId(3), "lang".to_string(), "Rust".to_string()),
    );
    for _ in 0..3 {
        cluster.sync_round(); // cross-cut sends are dropped; buffers drain
    }
    assert!(!cluster.converged());

    // Heal + digest repair across the former cut, then normal gossip.
    cluster.heal();
    let stats = cluster.digest_repair(0, 4);
    assert!(stats.payload_elements > 0);
    cluster
        .run_until_converged(8)
        .expect_converged("converges after repair");

    let profile = cluster.replica(2).get("profile:ada".to_string()).unwrap();
    assert_eq!(
        profile.get(&"city".to_string()),
        vec![&"Cambridge".to_string()]
    );
    assert_eq!(profile.get(&"lang".to_string()), vec![&"Rust".to_string()]);
}

#[test]
fn classic_config_ships_more_than_bp_rr() {
    // The paper's headline claim, observable through the store API: under
    // contention, classic delta-based transmits far more than BP+RR.
    fn run(cfg: StoreConfig) -> TrafficStats {
        let n = 6;
        let mut cluster: Cluster<&str, AWSet<u64>> =
            Cluster::with_neighbors(ring_with_chords(n), cfg);
        for round in 0..10u64 {
            for i in 0..n {
                cluster.update(
                    i,
                    "hot-object",
                    &AWSetOp::Add(ReplicaId::from(i), round * n as u64 + i as u64),
                );
            }
            cluster.sync_round();
        }
        cluster
            .run_until_converged(32)
            .expect_converged("converges");
        cluster.stats()
    }
    let classic = run(StoreConfig::new(ProtocolKind::Classic));
    let bprr = run(StoreConfig::default());
    assert!(
        classic.payload_elements > 2 * bprr.payload_elements,
        "classic {} should far exceed BP+RR {}",
        classic.payload_elements,
        bprr.payload_elements
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random multi-object updates at random replicas over a chorded ring
    /// converge, and the final state of each object equals the join of
    /// every delta produced for it.
    #[test]
    fn random_workload_converges(
        updates in pvec((0usize..5, 0u8..4, 0u16..64), 1..40),
        remove_every in 3usize..6,
    ) {
        let n = 5;
        let mut cluster: Cluster<u8, AWSet<u16>> =
            Cluster::with_neighbors(ring_with_chords(n), StoreConfig::default());
        let mut reference: std::collections::BTreeMap<u8, AWSet<u16>> = Default::default();

        for (step, (replica, key, elem)) in updates.iter().enumerate() {
            let op = if step % remove_every == 0 {
                AWSetOp::Remove(*elem)
            } else {
                AWSetOp::Add(ReplicaId::from(*replica), *elem)
            };
            cluster.update(*replica, *key, &op);
            if step % 3 == 0 {
                cluster.sync_round();
            }
        }
        prop_assert!(cluster.run_until_converged(64).ok().is_some(), "must converge");

        // Reference: replica 0 is canonical after convergence. Objects
        // still at ⊥ (a no-op remove created the key locally but shipped
        // nothing) are excluded from the comparison.
        use crdt_lattice::Bottom;
        for key in cluster.replica(0).keys() {
            let state = cluster.replica(0).get(*key).unwrap().clone();
            if !state.is_bottom() {
                reference.insert(*key, state);
            }
        }
        for i in 1..n {
            for (k, x) in cluster.replica(i).iter() {
                if x.is_bottom() {
                    continue;
                }
                let r = reference.get(k).expect("live keyspace agrees everywhere");
                prop_assert_eq!(r, x);
            }
        }
    }

    /// Convergence is preserved by an arbitrary mid-run partition of the
    /// cluster, provided digest repair bridges the cut afterwards.
    #[test]
    fn partition_repair_always_restores_convergence(
        updates in pvec((0usize..4, 0u8..3, 0u16..32), 1..24),
        cut in 1usize..3,
    ) {
        let n = 4;
        let mut cluster: Cluster<u8, AWSet<u16>> =
            Cluster::full_mesh(n, StoreConfig::default());
        let group: Vec<usize> = (0..cut).collect();
        cluster.partition(&group);
        for (replica, key, elem) in &updates {
            cluster.update(*replica, *key, &AWSetOp::Add(ReplicaId::from(*replica), *elem));
            cluster.sync_round();
        }
        cluster.heal();
        // Repair across the former cut (one pair suffices: gossip spreads).
        cluster.digest_repair(0, n - 1);
        prop_assert!(cluster.run_until_converged(64).ok().is_some());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Compaction is invisible to convergence, for **every**
    /// `ProtocolKind`: a run that compacts at an arbitrary point (and
    /// again right before repair) ends in exactly the states of an
    /// identical run that never compacts. The δ-family kinds cross a
    /// partition and need digest repair to recover — the repair must
    /// work identically against compacted replicas; the history-keeping
    /// kinds (scuttlebutt, op-based, acked) recover through their own
    /// metadata, which compaction may only prune once causally stable.
    #[test]
    fn repair_after_compaction_matches_uncompacted_run(
        updates in pvec((0usize..3, 0u8..4, 0u16..32), 1..20),
        compact_at in 0usize..20,
    ) {
        use crdt_types::{GSet, GSetOp};
        for kind in crdt_sync::ProtocolKind::ALL {
            // Op-based's causal-broadcast middleware assumes reliable
            // channels: `on_sync` marks every neighbor as having seen a
            // shipped op and prunes accordingly, so an op dropped by a
            // partition is never re-sent (the paper's §V-B model; the
            // sim's partition violates its channel assumption). Every
            // other kind either re-ships from retained metadata or is
            // bridged by digest repair below.
            let partition_tolerant = kind != crdt_sync::ProtocolKind::OpBased;
            let run = |compact: bool| {
                let n = 3;
                let mut c: Cluster<u8, GSet<u16>> =
                    Cluster::full_mesh(n, StoreConfig::new(kind));
                if partition_tolerant {
                    c.partition(&[0]);
                }
                for (step, (replica, key, elem)) in updates.iter().enumerate() {
                    c.update(*replica, *key, &GSetOp::Add(*elem));
                    if step % 2 == 0 {
                        c.sync_round();
                    }
                    if compact && step == compact_at {
                        for i in 0..n {
                            c.replica_mut(i).compact();
                        }
                    }
                }
                if partition_tolerant {
                    c.heal();
                }
                if compact {
                    for i in 0..n {
                        c.replica_mut(i).compact();
                    }
                }
                if kind.accepts_raw_delta() {
                    // δ-buffers drained into the cut; only repair can
                    // bridge it for these kinds.
                    c.digest_repair(0, n - 1);
                }
                c.run_until_converged(64).expect_converged(&format!("{kind}"));
                c
            };
            let plain = run(false);
            let compacted = run(true);
            for key in plain.replica(0).keys() {
                prop_assert_eq!(
                    plain.replica(0).get(*key),
                    compacted.replica(0).get(*key),
                    "{}: compaction changed the converged state of {}",
                    kind,
                    key
                );
            }
        }
    }
}
