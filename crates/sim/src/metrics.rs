//! Measurement infrastructure mirroring the paper's evaluation (§V):
//! transmission (elements + payload/metadata bytes), memory footprint
//! sampled per round, and CPU time spent in protocol processing.

use crdt_sync::MemoryUsage;

/// Per-worker phase timings → `(summed work, critical path)`: the sum
/// over all per-node entries, and the busiest thread-chunk's sum under
/// contiguous `threads`-way chunking (the chunking both parallel runners
/// use).
pub(crate) fn phase_split(nanos: &[u64], threads: usize) -> (u64, u64) {
    let chunk = nanos.len().div_ceil(threads).max(1);
    let critical = nanos
        .chunks(chunk)
        .map(|c| c.iter().sum::<u64>())
        .max()
        .unwrap_or(0);
    (nanos.iter().sum(), critical)
}

/// Measurements for one synchronization round.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundMetrics {
    /// Messages handed to the fabric. Batching runners
    /// (`ShardedEngineRunner`) count one per wire frame — O(links) —
    /// while [`RoundMetrics::envelopes`] keeps counting per-object
    /// protocol envelopes.
    pub messages: u64,
    /// Per-object protocol envelopes produced this round, *before* any
    /// per-destination batching. For unbatched runners this equals
    /// [`RoundMetrics::messages`]; `envelopes / messages` is the
    /// batch-amortization ratio.
    pub envelopes: u64,
    /// Lattice elements of CRDT payload transmitted (Table I's unit).
    pub payload_elements: u64,
    /// Payload bytes transmitted.
    pub payload_bytes: u64,
    /// Metadata bytes transmitted (digests, vectors, dots, acks).
    pub metadata_bytes: u64,
    /// Sum of per-node memory snapshots at the end of the round.
    pub memory: MemoryUsage,
    /// Nanoseconds spent inside protocol callbacks this round, **summed
    /// over all nodes/threads** — total work, the Fig. 12 quantity.
    pub cpu_nanos: u64,
    /// Nanoseconds on the round's critical path: per phase, the busiest
    /// worker's time; summed over phases. For sequential runners this
    /// equals [`RoundMetrics::cpu_nanos`] (one worker does everything),
    /// so parallel speedup is `seq.critical_path / par.critical_path` —
    /// never a ratio of a wall-clock quantity to a summed one.
    pub critical_path_nanos: u64,
    /// Nanoseconds spent drawing and routing workload operations —
    /// driver overhead, deliberately kept *out* of `cpu_nanos` so
    /// per-round protocol CPU is comparable across runners.
    pub workload_nanos: u64,
}

impl RoundMetrics {
    /// Total bytes on the wire this round.
    pub fn total_bytes(&self) -> u64 {
        self.payload_bytes + self.metadata_bytes
    }

    fn absorb(&mut self, other: &RoundMetrics) {
        self.messages += other.messages;
        self.envelopes += other.envelopes;
        self.payload_elements += other.payload_elements;
        self.payload_bytes += other.payload_bytes;
        self.metadata_bytes += other.metadata_bytes;
        self.cpu_nanos += other.cpu_nanos;
        self.critical_path_nanos += other.critical_path_nanos;
        self.workload_nanos += other.workload_nanos;
    }
}

/// Measurements for a whole run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Per-round series (Fig. 1's x-axis).
    pub rounds: Vec<RoundMetrics>,
    /// Number of nodes (for per-node averages).
    pub n_nodes: usize,
}

impl RunMetrics {
    /// Start a run over `n_nodes` replicas.
    pub fn new(n_nodes: usize) -> Self {
        RunMetrics {
            rounds: Vec::new(),
            n_nodes,
        }
    }

    /// Append a finished round.
    pub fn push_round(&mut self, round: RoundMetrics) {
        self.rounds.push(round);
    }

    /// Aggregate totals over all rounds (memory is averaged, not summed).
    pub fn totals(&self) -> RoundMetrics {
        let mut t = RoundMetrics::default();
        for r in &self.rounds {
            t.absorb(r);
        }
        t.memory = self.avg_memory();
        t
    }

    /// Total transmitted elements.
    pub fn total_elements(&self) -> u64 {
        self.rounds.iter().map(|r| r.payload_elements).sum()
    }

    /// Total payload bytes.
    pub fn total_payload_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.payload_bytes).sum()
    }

    /// Total metadata bytes.
    pub fn total_metadata_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.metadata_bytes).sum()
    }

    /// Total bytes (payload + metadata).
    pub fn total_bytes(&self) -> u64 {
        self.total_payload_bytes() + self.total_metadata_bytes()
    }

    /// Total messages.
    pub fn total_messages(&self) -> u64 {
        self.rounds.iter().map(|r| r.messages).sum()
    }

    /// Total protocol CPU time (work summed over all nodes/threads).
    pub fn total_cpu_nanos(&self) -> u64 {
        self.rounds.iter().map(|r| r.cpu_nanos).sum()
    }

    /// Total critical-path time (per phase, the busiest worker). The
    /// denominator/numerator for parallel speedup comparisons.
    pub fn total_critical_path_nanos(&self) -> u64 {
        self.rounds.iter().map(|r| r.critical_path_nanos).sum()
    }

    /// Total time spent drawing/routing workload operations (driver
    /// overhead, excluded from protocol CPU).
    pub fn total_workload_nanos(&self) -> u64 {
        self.rounds.iter().map(|r| r.workload_nanos).sum()
    }

    /// Total per-object protocol envelopes (pre-batching).
    pub fn total_envelopes(&self) -> u64 {
        self.rounds.iter().map(|r| r.envelopes).sum()
    }

    /// Envelopes per wire frame — how much per-destination batching
    /// amortizes (1.0 for unbatched runners).
    pub fn batch_amortization(&self) -> f64 {
        let messages = self.total_messages();
        if messages == 0 {
            1.0
        } else {
            self.total_envelopes() as f64 / messages as f64
        }
    }

    /// Metadata as a fraction of all transmitted bytes (§V-B2: "75%, 99%,
    /// and 97% … while the overhead of delta-based synchronization is only
    /// 7.7%").
    pub fn metadata_fraction(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            self.total_metadata_bytes() as f64 / total as f64
        }
    }

    /// Memory usage averaged over rounds (the Fig. 10 metric), summed over
    /// nodes.
    pub fn avg_memory(&self) -> MemoryUsage {
        if self.rounds.is_empty() {
            return MemoryUsage::default();
        }
        let n = self.rounds.len() as u64;
        let mut m = MemoryUsage::default();
        for r in &self.rounds {
            m.crdt_elements += r.memory.crdt_elements;
            m.crdt_bytes += r.memory.crdt_bytes;
            m.meta_elements += r.memory.meta_elements;
            m.meta_bytes += r.memory.meta_bytes;
        }
        MemoryUsage {
            crdt_elements: m.crdt_elements / n,
            crdt_bytes: m.crdt_bytes / n,
            meta_elements: m.meta_elements / n,
            meta_bytes: m.meta_bytes / n,
        }
    }

    /// Average total memory elements per node per round.
    pub fn avg_memory_elements_per_node(&self) -> f64 {
        let m = self.avg_memory();
        m.total_elements() as f64 / self.n_nodes.max(1) as f64
    }

    /// Average total memory bytes per node per round.
    pub fn avg_memory_bytes_per_node(&self) -> f64 {
        let m = self.avg_memory();
        m.total_bytes() as f64 / self.n_nodes.max(1) as f64
    }

    /// Cumulative payload-element series (the Fig. 1 left plot).
    pub fn cumulative_elements(&self) -> Vec<u64> {
        let mut acc = 0;
        self.rounds
            .iter()
            .map(|r| {
                acc += r.payload_elements;
                acc
            })
            .collect()
    }

    /// Pointwise sum with another run (same deployment hosting both
    /// object families); shorter runs are padded with empty rounds.
    pub fn merged(&self, other: &RunMetrics) -> RunMetrics {
        let len = self.rounds.len().max(other.rounds.len());
        let mut rounds = Vec::with_capacity(len);
        for i in 0..len {
            let mut r = self.rounds.get(i).copied().unwrap_or_default();
            if let Some(o) = other.rounds.get(i) {
                r.messages += o.messages;
                r.envelopes += o.envelopes;
                r.payload_elements += o.payload_elements;
                r.payload_bytes += o.payload_bytes;
                r.metadata_bytes += o.metadata_bytes;
                r.cpu_nanos += o.cpu_nanos;
                r.critical_path_nanos += o.critical_path_nanos;
                r.workload_nanos += o.workload_nanos;
                r.memory.crdt_elements += o.memory.crdt_elements;
                r.memory.crdt_bytes += o.memory.crdt_bytes;
                r.memory.meta_elements += o.memory.meta_elements;
                r.memory.meta_bytes += o.memory.meta_bytes;
            }
            rounds.push(r);
        }
        RunMetrics {
            rounds,
            n_nodes: self.n_nodes.max(other.n_nodes),
        }
    }

    /// Restrict to a sub-range of rounds (Fig. 11 reports first and second
    /// halves separately).
    pub fn slice(&self, range: std::ops::Range<usize>) -> RunMetrics {
        RunMetrics {
            rounds: self.rounds[range].to_vec(),
            n_nodes: self.n_nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(elements: u64, payload: u64, meta: u64) -> RoundMetrics {
        RoundMetrics {
            messages: 1,
            envelopes: 3,
            payload_elements: elements,
            payload_bytes: payload,
            metadata_bytes: meta,
            memory: MemoryUsage {
                crdt_elements: elements,
                crdt_bytes: payload,
                meta_elements: 0,
                meta_bytes: meta,
            },
            cpu_nanos: 10,
            critical_path_nanos: 4,
            workload_nanos: 2,
        }
    }

    #[test]
    fn totals_accumulate() {
        let mut m = RunMetrics::new(2);
        m.push_round(round(3, 24, 8));
        m.push_round(round(5, 40, 8));
        assert_eq!(m.total_elements(), 8);
        assert_eq!(m.total_payload_bytes(), 64);
        assert_eq!(m.total_metadata_bytes(), 16);
        assert_eq!(m.total_bytes(), 80);
        assert_eq!(m.total_messages(), 2);
        assert_eq!(m.total_cpu_nanos(), 20);
        assert_eq!(m.total_critical_path_nanos(), 8);
        assert_eq!(m.total_workload_nanos(), 4);
        assert_eq!(m.total_envelopes(), 6);
        assert!((m.batch_amortization() - 3.0).abs() < 1e-12);
        assert_eq!(RunMetrics::new(1).batch_amortization(), 1.0);
    }

    #[test]
    fn metadata_fraction() {
        let mut m = RunMetrics::new(1);
        m.push_round(round(0, 25, 75));
        assert!((m.metadata_fraction() - 0.75).abs() < 1e-9);
        assert_eq!(RunMetrics::new(1).metadata_fraction(), 0.0);
    }

    #[test]
    fn memory_is_averaged_over_rounds() {
        let mut m = RunMetrics::new(2);
        m.push_round(round(2, 16, 0));
        m.push_round(round(4, 32, 0));
        let avg = m.avg_memory();
        assert_eq!(avg.crdt_elements, 3);
        assert_eq!(avg.crdt_bytes, 24);
        assert_eq!(m.avg_memory_elements_per_node(), 1.5);
    }

    #[test]
    fn cumulative_series() {
        let mut m = RunMetrics::new(1);
        m.push_round(round(1, 0, 0));
        m.push_round(round(2, 0, 0));
        m.push_round(round(3, 0, 0));
        assert_eq!(m.cumulative_elements(), vec![1, 3, 6]);
    }

    #[test]
    fn slicing_halves() {
        let mut m = RunMetrics::new(1);
        for i in 0..10 {
            m.push_round(round(i, 0, 0));
        }
        let first = m.slice(0..5);
        let second = m.slice(5..10);
        assert_eq!(first.total_elements(), 1 + 2 + 3 + 4);
        assert_eq!(second.total_elements(), 5 + 6 + 7 + 8 + 9);
    }
}
