//! Per-object ("sharded") delta synchronization — the granularity the
//! paper's Retwis experiment actually runs at (§V-C).
//!
//! The Retwis deployment replicates "30K CRDT objects overall": each
//! object is an *independent* delta-CRDT with its own δ-buffer, and
//! Algorithm 1's inflation/extraction check applies per object. That
//! granularity is load-bearing for Fig. 11: at low contention most
//! received δ-groups concern an object the receiver already has fully, so
//! even classic's naive `d ⋢ x` check drops them — "the simple and naive
//! inflation check in line 16 suffices". At high contention (Zipf ≥ 1)
//! hot objects receive concurrent updates between rounds, every received
//! group carries some novelty, classic re-buffers *whole* groups, and its
//! bandwidth snowballs — while BP+RR extracts only `Δ(d, x)` per object.
//!
//! (Composing all objects into one store lattice — tempting, and supported
//! elsewhere in this workspace — would erase exactly this effect: every
//! message would mix all objects and always inflate.)

use std::collections::BTreeMap;
use std::time::Instant;

use crdt_lattice::{ReplicaId, SizeModel, Sizeable};
use crdt_sync::{DeltaConfig, DeltaMsg, DeltaSync, Measured};
use crdt_types::Crdt;

use crate::metrics::{RoundMetrics, RunMetrics};
use crate::topology::Topology;

/// A keyed operation: which object, and what to do to it.
pub type KeyedOp<K, C> = (K, <C as Crdt>::Op);

/// Runs one family of same-typed objects (e.g. "all follower sets") under
/// delta-based synchronization with per-object δ-buffers.
///
/// Heterogeneous systems (Retwis has three object families) run one
/// runner per family over a shared trace: objects never interact, so this
/// is exactly equivalent to one deployment hosting all of them, and the
/// metrics add up.
#[derive(Debug)]
pub struct ShardedDeltaRunner<K: Ord, C: Crdt> {
    topology: Topology,
    cfg: DeltaConfig,
    model: SizeModel,
    /// Per node: object key → that object's protocol instance.
    nodes: Vec<BTreeMap<K, DeltaSync<C>>>,
    metrics: RunMetrics,
}

impl<K, C> ShardedDeltaRunner<K, C>
where
    K: Ord + Clone + core::fmt::Debug + Sizeable,
    C: Crdt,
{
    /// Build a runner over `topology` with the given optimizations.
    pub fn new(topology: Topology, cfg: DeltaConfig, model: SizeModel) -> Self {
        let n = topology.len();
        ShardedDeltaRunner {
            topology,
            cfg,
            model,
            nodes: (0..n).map(|_| BTreeMap::new()).collect(),
            metrics: RunMetrics::new(n),
        }
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Consume, returning the metrics.
    pub fn into_metrics(self) -> RunMetrics {
        self.metrics
    }

    fn shard(&mut self, node: usize, key: &K) -> &mut DeltaSync<C> {
        let id = ReplicaId::from(node);
        self.nodes[node]
            .entry(key.clone())
            .or_insert_with(|| DeltaSync::with_config(id, self.cfg))
    }

    /// Run one round: apply this round's keyed ops, then synchronize every
    /// dirty object with every neighbor (messages delivered immediately —
    /// delta protocols never reply).
    pub fn step(&mut self, ops_per_node: &[Vec<KeyedOp<K, C>>]) {
        assert_eq!(
            ops_per_node.len(),
            self.nodes.len(),
            "ops per node mismatch"
        );
        let mut rm = RoundMetrics::default();

        // Phase 1: local operations, routed to their object. Routing
        // (shard lookup/creation) is driver work and metered as
        // `workload_nanos`; only the protocol callback itself counts as
        // protocol CPU — otherwise this runner's per-round CPU is
        // inflated relative to every other runner, which time `on_op`
        // alone.
        for (node, ops) in ops_per_node.iter().enumerate() {
            for (key, op) in ops {
                let t_route = Instant::now();
                let shard = self.shard(node, key);
                rm.workload_nanos += t_route.elapsed().as_nanos() as u64;
                let t0 = Instant::now();
                shard.local_op(op);
                rm.cpu_nanos += t0.elapsed().as_nanos() as u64;
            }
        }

        // Phase 2: per-object synchronization step at every node.
        let mut deliveries: Vec<(usize, ReplicaId, K, DeltaMsg<C>)> = Vec::new();
        for node in 0..self.nodes.len() {
            let node_id = ReplicaId::from(node);
            let neighbors = self.topology.neighbors(node_id).to_vec();
            let t0 = Instant::now();
            let mut out = Vec::new();
            for (key, shard) in self.nodes[node].iter_mut() {
                if shard.buffer().is_empty() {
                    continue;
                }
                shard.sync_step(&neighbors, &mut out);
                for (to, msg) in out.drain(..) {
                    rm.messages += 1;
                    rm.envelopes += 1;
                    rm.payload_elements += msg.payload_elements();
                    rm.payload_bytes += msg.payload_bytes(&self.model);
                    // The object key rides along as per-group metadata.
                    rm.metadata_bytes += key.payload_bytes(&self.model);
                    deliveries.push((to.index(), node_id, key.clone(), msg));
                }
            }
            rm.cpu_nanos += t0.elapsed().as_nanos() as u64;
        }

        // Phase 3: deliver (routing metered apart, as in phase 1).
        for (to, from, key, msg) in deliveries {
            let t_route = Instant::now();
            let shard = self.shard(to, &key);
            rm.workload_nanos += t_route.elapsed().as_nanos() as u64;
            let t0 = Instant::now();
            shard.receive(from, msg);
            rm.cpu_nanos += t0.elapsed().as_nanos() as u64;
        }

        // Phase 4: memory snapshot.
        for node in &self.nodes {
            for (key, shard) in node {
                let m = shard.memory_usage(&self.model);
                rm.memory.crdt_elements += m.crdt_elements;
                rm.memory.crdt_bytes += m.crdt_bytes + key.payload_bytes(&self.model);
                rm.memory.meta_elements += m.meta_elements;
                rm.memory.meta_bytes += m.meta_bytes;
            }
        }

        // One worker did everything: the critical path is the total work.
        rm.critical_path_nanos = rm.cpu_nanos;
        self.metrics.push_round(rm);
    }

    /// Are all replicas of every object identical?
    pub fn converged(&self) -> bool {
        let reference = &self.nodes[0];
        self.nodes.iter().skip(1).all(|node| {
            // Key sets and states must match (missing key = ⊥ ≠ non-⊥).
            node.len() == reference.len()
                && node
                    .iter()
                    .zip(reference.iter())
                    .all(|((k1, s1), (k2, s2))| k1 == k2 && s1.state_ref() == s2.state_ref())
        })
    }

    /// Keep synchronizing without new ops until convergence (or give up
    /// after `max_rounds`). Returns rounds taken.
    pub fn run_to_convergence(&mut self, max_rounds: usize) -> Option<usize> {
        let idle: Vec<Vec<KeyedOp<K, C>>> = vec![Vec::new(); self.nodes.len()];
        for extra in 0..=max_rounds {
            if self.converged() {
                return Some(extra);
            }
            self.step(&idle);
        }
        None
    }

    /// A node's replica of one object, if it exists.
    pub fn object_state(&self, node: ReplicaId, key: &K) -> Option<&C> {
        self.nodes[node.index()].get(key).map(DeltaSync::state_ref)
    }

    /// Number of distinct objects hosted at `node`.
    pub fn objects_at(&self, node: ReplicaId) -> usize {
        self.nodes[node.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_types::{GSet, GSetOp};

    type R = ShardedDeltaRunner<u32, GSet<u64>>;

    fn keyed(n_nodes: usize, per_node: &[(usize, u32, u64)]) -> Vec<Vec<KeyedOp<u32, GSet<u64>>>> {
        let mut out = vec![Vec::new(); n_nodes];
        for &(node, key, elem) in per_node {
            out[node].push((key, GSetOp::Add(elem)));
        }
        out
    }

    #[test]
    fn objects_sync_independently() {
        let topo = Topology::line(3);
        let mut r = R::new(topo, DeltaConfig::BP_RR, SizeModel::compact());
        // Node 0 updates object 1; node 2 updates object 2.
        r.step(&keyed(3, &[(0, 1, 100), (2, 2, 200)]));
        let extra = r.run_to_convergence(10).expect("converges");
        assert!(extra >= 1);
        assert_eq!(r.object_state(ReplicaId(1), &1).unwrap().len(), 1);
        assert_eq!(r.object_state(ReplicaId(1), &2).unwrap().len(), 1);
        assert_eq!(r.objects_at(ReplicaId(0)), 2);
    }

    #[test]
    fn classic_drops_redundant_cold_objects() {
        // One object updated at one node, propagating through a cycle:
        // classic's inflation check drops the second-path copy, so per
        // object granularity keeps classic near-optimal at low contention.
        let topo = Topology::ring(4);
        let mut classic = R::new(topo.clone(), DeltaConfig::CLASSIC, SizeModel::compact());
        let mut bprr = R::new(topo, DeltaConfig::BP_RR, SizeModel::compact());
        let trace = keyed(4, &[(0, 7, 1)]);
        classic.step(&trace);
        bprr.step(&trace);
        classic.run_to_convergence(10).unwrap();
        bprr.run_to_convergence(10).unwrap();
        let (c, b) = (
            classic.metrics().total_elements(),
            bprr.metrics().total_elements(),
        );
        // A single uncontended update: classic ≈ BP+RR (within 2x).
        assert!(c <= b * 2, "classic {c} vs bp+rr {b}");
    }

    #[test]
    fn classic_snowballs_on_hot_objects() {
        // All nodes update the SAME object every round on a cyclic mesh:
        // the paper's high-contention regime. Classic must transmit far
        // more than BP+RR.
        let topo = Topology::partial_mesh(8, 4);
        let run = |cfg: DeltaConfig| {
            let mut r = R::new(topo.clone(), cfg, SizeModel::compact());
            for round in 0..12u64 {
                let ops: Vec<Vec<KeyedOp<u32, GSet<u64>>>> = (0..8)
                    .map(|node| vec![(1u32, GSetOp::Add(round * 8 + node))])
                    .collect();
                r.step(&ops);
            }
            r.run_to_convergence(40).expect("converges");
            r.into_metrics().total_elements()
        };
        let classic = run(DeltaConfig::CLASSIC);
        let bprr = run(DeltaConfig::BP_RR);
        assert!(
            classic > bprr * 3,
            "hot object must separate classic ({classic}) from BP+RR ({bprr})"
        );
    }

    #[test]
    fn memory_counts_all_shards() {
        let topo = Topology::line(2);
        let mut r = R::new(topo, DeltaConfig::CLASSIC, SizeModel::compact());
        r.step(&keyed(2, &[(0, 1, 10), (0, 2, 20)]));
        let m = &r.metrics().rounds[0].memory;
        assert!(m.crdt_elements >= 2);
        assert!(m.meta_elements >= 2, "both deltas buffered");
    }
}
