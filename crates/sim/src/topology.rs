//! Network topologies (paper, Fig. 6).
//!
//! The evaluation uses two 15-node topologies: a **partial mesh** where
//! each node has 4 neighbors (cycles ⇒ redundant delivery paths ⇒ the RR
//! optimization matters) and a **tree** with 3 neighbors per inner node
//! (acyclic ⇒ BP alone suffices). This module builds those plus the usual
//! suspects for tests and extensions.

use crdt_lattice::ReplicaId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// An undirected connected graph over replicas `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    name: String,
    adj: Vec<Vec<ReplicaId>>,
}

impl Topology {
    fn from_edges(name: impl Into<String>, n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a != b, "self-loop {a}");
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            let (ra, rb) = (ReplicaId::from(a), ReplicaId::from(b));
            if !adj[a].contains(&rb) {
                adj[a].push(rb);
                adj[b].push(ra);
            }
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        Topology {
            name: name.into(),
            adj,
        }
    }

    /// Every node connected to every other node.
    pub fn full_mesh(n: usize) -> Self {
        let edges: Vec<_> = (0..n)
            .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
            .collect();
        Self::from_edges(format!("full-mesh({n})"), n, &edges)
    }

    /// The paper's partial mesh: a circulant graph where node `i` links to
    /// `i ± 1, …, i ± degree/2` (mod n). With `degree = 4` and `n = 15`
    /// this is the left topology of Fig. 6: 4 neighbors per node, plenty
    /// of cycles.
    pub fn partial_mesh(n: usize, degree: usize) -> Self {
        assert!(
            degree.is_multiple_of(2),
            "circulant mesh needs an even degree"
        );
        assert!(degree / 2 < n, "degree too large for {n} nodes");
        let mut edges = Vec::new();
        for a in 0..n {
            for d in 1..=degree / 2 {
                edges.push((a, (a + d) % n));
            }
        }
        Self::from_edges(format!("mesh({n},deg{degree})"), n, &edges)
    }

    /// The paper's tree: a complete binary tree — the root has 2
    /// neighbors, inner nodes 3, leaves 1 (right topology of Fig. 6).
    pub fn binary_tree(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 1..n {
            edges.push(((a - 1) / 2, a));
        }
        Self::from_edges(format!("tree({n})"), n, &edges)
    }

    /// A simple cycle.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs ≥ 3 nodes");
        let edges: Vec<_> = (0..n).map(|a| (a, (a + 1) % n)).collect();
        Self::from_edges(format!("ring({n})"), n, &edges)
    }

    /// A path graph.
    pub fn line(n: usize) -> Self {
        let edges: Vec<_> = (1..n).map(|a| (a - 1, a)).collect();
        Self::from_edges(format!("line({n})"), n, &edges)
    }

    /// A hub-and-spoke star centered on node 0.
    pub fn star(n: usize) -> Self {
        let edges: Vec<_> = (1..n).map(|a| (0, a)).collect();
        Self::from_edges(format!("star({n})"), n, &edges)
    }

    /// A random connected graph: a random spanning tree plus `extra`
    /// random edges (deterministic for a given seed).
    pub fn random_connected(n: usize, extra: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut edges = Vec::new();
        for i in 1..n {
            let parent = order[rng.gen_range(0..i)];
            edges.push((order[i], parent));
        }
        let mut added = 0;
        let mut guard = 0;
        while added < extra && guard < extra * 20 + 100 {
            guard += 1;
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
                edges.push((a, b));
                added += 1;
            }
        }
        Self::from_edges(format!("random({n},+{extra},seed{seed})"), n, &edges)
    }

    /// Grow the graph by one node linked to `links`, returning the new
    /// node's id — the structural half of a mid-run **join** (the
    /// membership half lives in [`DynamicTopology`]).
    ///
    /// # Panics
    ///
    /// If `links` is empty (the joiner would be unreachable) or names an
    /// unknown node.
    pub fn add_node(&mut self, links: &[ReplicaId]) -> ReplicaId {
        assert!(!links.is_empty(), "a joining node needs at least one link");
        let new = ReplicaId::from(self.adj.len());
        self.adj.push(Vec::new());
        for &peer in links {
            assert!(peer.index() < new.index(), "link to unknown node {peer}");
            if !self.adj[new.index()].contains(&peer) {
                self.adj[new.index()].push(peer);
                self.adj[peer.index()].push(new);
                self.adj[peer.index()].sort_unstable();
            }
        }
        self.adj[new.index()].sort_unstable();
        new
    }

    /// Human-readable topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Is the topology empty?
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        (0..self.adj.len()).map(ReplicaId::from)
    }

    /// Sorted neighbor list of `node`.
    pub fn neighbors(&self, node: ReplicaId) -> &[ReplicaId] {
        &self.adj[node.index()]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: ReplicaId) -> usize {
        self.adj[node.index()].len()
    }

    /// Total undirected edge count.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Is the graph connected? (Required for convergence.)
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(a) = stack.pop() {
            for &b in &self.adj[a] {
                if !seen[b.index()] {
                    seen[b.index()] = true;
                    stack.push(b.index());
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// Does the graph contain a cycle? (Determines whether BP alone
    /// suffices — §V-B.)
    pub fn has_cycle(&self) -> bool {
        // For a connected undirected graph: cycle ⇔ |E| ≥ |V|.
        self.edge_count() >= self.adj.len()
    }

    /// Graph diameter (longest shortest path), via BFS from every node.
    pub fn diameter(&self) -> usize {
        let n = self.adj.len();
        let mut best = 0;
        for start in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(a) = queue.pop_front() {
                for &b in &self.adj[a] {
                    if dist[b.index()] == usize::MAX {
                        dist[b.index()] = dist[a] + 1;
                        queue.push_back(b.index());
                    }
                }
            }
            best = best.max(
                dist.into_iter()
                    .filter(|d| *d != usize::MAX)
                    .max()
                    .unwrap_or(0),
            );
        }
        best
    }
}

/// A [`Topology`] with **mutable membership**: which nodes are alive, and
/// which partition side each node currently sits on.
///
/// The base graph stays the source of truth for *links*; this wrapper
/// answers the time-varying questions a fault scenario asks — is this
/// node up, can a message cross this edge right now, who are the live
/// representatives of each partition side. Drivers
/// ([`crate::DynRunner`], the scenario layer) consult it at delivery
/// time; senders keep addressing their full neighbor list, exactly like
/// real deployments that do not learn about crashes or cuts synchronously.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicTopology {
    base: Topology,
    alive: Vec<bool>,
    /// Partition side per node (`None` ⇒ no partition active).
    side: Option<Vec<usize>>,
}

impl DynamicTopology {
    /// Wrap a static topology; every node starts alive, unpartitioned.
    pub fn new(base: Topology) -> Self {
        let n = base.len();
        DynamicTopology {
            base,
            alive: vec![true; n],
            side: None,
        }
    }

    /// The underlying link graph.
    pub fn base(&self) -> &Topology {
        &self.base
    }

    /// Number of nodes (alive or not).
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Is the membership empty?
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Is `node` currently up?
    pub fn is_alive(&self, node: ReplicaId) -> bool {
        self.alive[node.index()]
    }

    /// Mark `node` down (crash) or up (restart).
    pub fn set_alive(&mut self, node: ReplicaId, alive: bool) {
        self.alive[node.index()] = alive;
    }

    /// All currently live nodes, in id order.
    pub fn alive_nodes(&self) -> Vec<ReplicaId> {
        self.base.nodes().filter(|n| self.is_alive(*n)).collect()
    }

    /// Number of live nodes.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Install a partition: each entry of `groups` is one side; nodes not
    /// listed form one extra implicit side. Replaces any active partition.
    pub fn set_partition(&mut self, groups: &[Vec<usize>]) {
        let n = self.base.len();
        let mut side = vec![groups.len(); n];
        for (g, members) in groups.iter().enumerate() {
            for &m in members {
                assert!(m < n, "partition names unknown node {m}");
                side[m] = g;
            }
        }
        self.side = Some(side);
    }

    /// Remove the active partition (heal).
    pub fn clear_partition(&mut self) {
        self.side = None;
    }

    /// Is a partition currently active?
    pub fn is_partitioned(&self) -> bool {
        self.side.is_some()
    }

    /// Can a message currently cross `from → to`? `false` while the two
    /// ends sit on different partition sides or either end is down.
    pub fn link_open(&self, from: ReplicaId, to: ReplicaId) -> bool {
        if !self.is_alive(from) || !self.is_alive(to) {
            return false;
        }
        match &self.side {
            Some(side) => side[from.index()] == side[to.index()],
            None => true,
        }
    }

    /// The base-graph neighbors of `node` it can currently reach.
    pub fn reachable_neighbors(&self, node: ReplicaId) -> Vec<ReplicaId> {
        self.base
            .neighbors(node)
            .iter()
            .copied()
            .filter(|&p| self.link_open(node, p))
            .collect()
    }

    /// One live representative per partition side (lowest id), in side
    /// order — the nodes a repair pass stitches back together after a
    /// heal. Without an active partition: the single lowest live node.
    pub fn side_representatives(&self) -> Vec<ReplicaId> {
        match &self.side {
            None => self.alive_nodes().into_iter().take(1).collect(),
            Some(side) => {
                let mut reps: Vec<(usize, ReplicaId)> = Vec::new();
                for node in self.base.nodes() {
                    if self.is_alive(node) && !reps.iter().any(|(g, _)| *g == side[node.index()]) {
                        reps.push((side[node.index()], node));
                    }
                }
                reps.sort_unstable();
                reps.into_iter().map(|(_, n)| n).collect()
            }
        }
    }

    /// Grow the base graph by one (live) node — a join. Delegates to
    /// [`Topology::add_node`].
    pub fn join(&mut self, links: &[ReplicaId]) -> ReplicaId {
        let new = self.base.add_node(links);
        self.alive.push(true);
        if let Some(side) = &mut self.side {
            // A joiner lands on the side of its first link.
            side.push(side[links[0].index()]);
        }
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mesh_shape() {
        // Fig. 6 left: 15 nodes, 4 neighbors each.
        let t = Topology::partial_mesh(15, 4);
        assert_eq!(t.len(), 15);
        for node in t.nodes() {
            assert_eq!(t.degree(node), 4, "node {node}");
        }
        assert!(t.is_connected());
        assert!(t.has_cycle());
        assert_eq!(t.edge_count(), 30);
    }

    #[test]
    fn paper_tree_shape() {
        // Fig. 6 right: root 2 neighbors, inner 3, leaves 1.
        let t = Topology::binary_tree(15);
        assert_eq!(t.degree(ReplicaId(0)), 2);
        for i in 1..7 {
            assert_eq!(t.degree(ReplicaId(i)), 3, "inner node {i}");
        }
        for i in 7..15 {
            assert_eq!(t.degree(ReplicaId(i)), 1, "leaf {i}");
        }
        assert!(t.is_connected());
        assert!(!t.has_cycle());
        assert_eq!(t.edge_count(), 14);
    }

    #[test]
    fn full_mesh_is_complete() {
        let t = Topology::full_mesh(5);
        assert_eq!(t.edge_count(), 10);
        for node in t.nodes() {
            assert_eq!(t.degree(node), 4);
        }
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn ring_line_star() {
        let r = Topology::ring(6);
        assert!(r.has_cycle());
        assert_eq!(r.diameter(), 3);
        let l = Topology::line(6);
        assert!(!l.has_cycle());
        assert_eq!(l.diameter(), 5);
        let s = Topology::star(6);
        assert!(!s.has_cycle());
        assert_eq!(s.degree(ReplicaId(0)), 5);
        assert_eq!(s.diameter(), 2);
    }

    #[test]
    fn random_graphs_are_connected_and_deterministic() {
        for seed in 0..5 {
            let t = Topology::random_connected(12, 6, seed);
            assert!(t.is_connected(), "seed {seed}");
            let t2 = Topology::random_connected(12, 6, seed);
            assert_eq!(t, t2, "determinism for seed {seed}");
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let t = Topology::partial_mesh(10, 4);
        for a in t.nodes() {
            for &b in t.neighbors(a) {
                assert!(t.neighbors(b).contains(&a), "{a} ↔ {b}");
            }
        }
    }

    #[test]
    fn add_node_links_both_directions() {
        let mut t = Topology::ring(4);
        let new = t.add_node(&[ReplicaId(0), ReplicaId(2)]);
        assert_eq!(new, ReplicaId(4));
        assert_eq!(t.len(), 5);
        assert_eq!(t.neighbors(new), &[ReplicaId(0), ReplicaId(2)]);
        assert!(t.neighbors(ReplicaId(0)).contains(&new));
        assert!(t.is_connected());
    }

    #[test]
    fn dynamic_topology_tracks_membership_and_partitions() {
        let mut d = DynamicTopology::new(Topology::full_mesh(5));
        assert_eq!(d.alive_count(), 5);
        assert!(d.link_open(ReplicaId(0), ReplicaId(4)));

        d.set_alive(ReplicaId(4), false);
        assert!(!d.link_open(ReplicaId(0), ReplicaId(4)));
        assert_eq!(d.alive_nodes().len(), 4);

        d.set_partition(&[vec![0, 1]]);
        assert!(d.is_partitioned());
        assert!(d.link_open(ReplicaId(0), ReplicaId(1)));
        assert!(!d.link_open(ReplicaId(0), ReplicaId(2)));
        // Unlisted nodes form the implicit other side, together.
        assert!(d.link_open(ReplicaId(2), ReplicaId(3)));
        assert_eq!(
            d.side_representatives(),
            vec![ReplicaId(0), ReplicaId(2)],
            "one live representative per side"
        );
        assert_eq!(
            d.reachable_neighbors(ReplicaId(0)),
            vec![ReplicaId(1)],
            "cross-cut and dead peers filtered"
        );

        d.clear_partition();
        assert!(d.link_open(ReplicaId(0), ReplicaId(2)));
        assert_eq!(d.side_representatives(), vec![ReplicaId(0)]);

        let joined = d.join(&[ReplicaId(0)]);
        assert!(d.is_alive(joined));
        assert_eq!(d.len(), 6);
    }
}
