//! Network topologies (paper, Fig. 6).
//!
//! The evaluation uses two 15-node topologies: a **partial mesh** where
//! each node has 4 neighbors (cycles ⇒ redundant delivery paths ⇒ the RR
//! optimization matters) and a **tree** with 3 neighbors per inner node
//! (acyclic ⇒ BP alone suffices). This module builds those plus the usual
//! suspects for tests and extensions.

use crdt_lattice::ReplicaId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// An undirected connected graph over replicas `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    name: String,
    adj: Vec<Vec<ReplicaId>>,
}

impl Topology {
    fn from_edges(name: impl Into<String>, n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a != b, "self-loop {a}");
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            let (ra, rb) = (ReplicaId::from(a), ReplicaId::from(b));
            if !adj[a].contains(&rb) {
                adj[a].push(rb);
                adj[b].push(ra);
            }
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        Topology {
            name: name.into(),
            adj,
        }
    }

    /// Every node connected to every other node.
    pub fn full_mesh(n: usize) -> Self {
        let edges: Vec<_> = (0..n)
            .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
            .collect();
        Self::from_edges(format!("full-mesh({n})"), n, &edges)
    }

    /// The paper's partial mesh: a circulant graph where node `i` links to
    /// `i ± 1, …, i ± degree/2` (mod n). With `degree = 4` and `n = 15`
    /// this is the left topology of Fig. 6: 4 neighbors per node, plenty
    /// of cycles.
    pub fn partial_mesh(n: usize, degree: usize) -> Self {
        assert!(
            degree.is_multiple_of(2),
            "circulant mesh needs an even degree"
        );
        assert!(degree / 2 < n, "degree too large for {n} nodes");
        let mut edges = Vec::new();
        for a in 0..n {
            for d in 1..=degree / 2 {
                edges.push((a, (a + d) % n));
            }
        }
        Self::from_edges(format!("mesh({n},deg{degree})"), n, &edges)
    }

    /// The paper's tree: a complete binary tree — the root has 2
    /// neighbors, inner nodes 3, leaves 1 (right topology of Fig. 6).
    pub fn binary_tree(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 1..n {
            edges.push(((a - 1) / 2, a));
        }
        Self::from_edges(format!("tree({n})"), n, &edges)
    }

    /// A simple cycle.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs ≥ 3 nodes");
        let edges: Vec<_> = (0..n).map(|a| (a, (a + 1) % n)).collect();
        Self::from_edges(format!("ring({n})"), n, &edges)
    }

    /// A path graph.
    pub fn line(n: usize) -> Self {
        let edges: Vec<_> = (1..n).map(|a| (a - 1, a)).collect();
        Self::from_edges(format!("line({n})"), n, &edges)
    }

    /// A hub-and-spoke star centered on node 0.
    pub fn star(n: usize) -> Self {
        let edges: Vec<_> = (1..n).map(|a| (0, a)).collect();
        Self::from_edges(format!("star({n})"), n, &edges)
    }

    /// A random connected graph: a random spanning tree plus `extra`
    /// random edges (deterministic for a given seed).
    pub fn random_connected(n: usize, extra: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut edges = Vec::new();
        for i in 1..n {
            let parent = order[rng.gen_range(0..i)];
            edges.push((order[i], parent));
        }
        let mut added = 0;
        let mut guard = 0;
        while added < extra && guard < extra * 20 + 100 {
            guard += 1;
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
                edges.push((a, b));
                added += 1;
            }
        }
        Self::from_edges(format!("random({n},+{extra},seed{seed})"), n, &edges)
    }

    /// Human-readable topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Is the topology empty?
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        (0..self.adj.len()).map(ReplicaId::from)
    }

    /// Sorted neighbor list of `node`.
    pub fn neighbors(&self, node: ReplicaId) -> &[ReplicaId] {
        &self.adj[node.index()]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: ReplicaId) -> usize {
        self.adj[node.index()].len()
    }

    /// Total undirected edge count.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Is the graph connected? (Required for convergence.)
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(a) = stack.pop() {
            for &b in &self.adj[a] {
                if !seen[b.index()] {
                    seen[b.index()] = true;
                    stack.push(b.index());
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// Does the graph contain a cycle? (Determines whether BP alone
    /// suffices — §V-B.)
    pub fn has_cycle(&self) -> bool {
        // For a connected undirected graph: cycle ⇔ |E| ≥ |V|.
        self.edge_count() >= self.adj.len()
    }

    /// Graph diameter (longest shortest path), via BFS from every node.
    pub fn diameter(&self) -> usize {
        let n = self.adj.len();
        let mut best = 0;
        for start in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(a) = queue.pop_front() {
                for &b in &self.adj[a] {
                    if dist[b.index()] == usize::MAX {
                        dist[b.index()] = dist[a] + 1;
                        queue.push_back(b.index());
                    }
                }
            }
            best = best.max(
                dist.into_iter()
                    .filter(|d| *d != usize::MAX)
                    .max()
                    .unwrap_or(0),
            );
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mesh_shape() {
        // Fig. 6 left: 15 nodes, 4 neighbors each.
        let t = Topology::partial_mesh(15, 4);
        assert_eq!(t.len(), 15);
        for node in t.nodes() {
            assert_eq!(t.degree(node), 4, "node {node}");
        }
        assert!(t.is_connected());
        assert!(t.has_cycle());
        assert_eq!(t.edge_count(), 30);
    }

    #[test]
    fn paper_tree_shape() {
        // Fig. 6 right: root 2 neighbors, inner 3, leaves 1.
        let t = Topology::binary_tree(15);
        assert_eq!(t.degree(ReplicaId(0)), 2);
        for i in 1..7 {
            assert_eq!(t.degree(ReplicaId(i)), 3, "inner node {i}");
        }
        for i in 7..15 {
            assert_eq!(t.degree(ReplicaId(i)), 1, "leaf {i}");
        }
        assert!(t.is_connected());
        assert!(!t.has_cycle());
        assert_eq!(t.edge_count(), 14);
    }

    #[test]
    fn full_mesh_is_complete() {
        let t = Topology::full_mesh(5);
        assert_eq!(t.edge_count(), 10);
        for node in t.nodes() {
            assert_eq!(t.degree(node), 4);
        }
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn ring_line_star() {
        let r = Topology::ring(6);
        assert!(r.has_cycle());
        assert_eq!(r.diameter(), 3);
        let l = Topology::line(6);
        assert!(!l.has_cycle());
        assert_eq!(l.diameter(), 5);
        let s = Topology::star(6);
        assert!(!s.has_cycle());
        assert_eq!(s.degree(ReplicaId(0)), 5);
        assert_eq!(s.diameter(), 2);
    }

    #[test]
    fn random_graphs_are_connected_and_deterministic() {
        for seed in 0..5 {
            let t = Topology::random_connected(12, 6, seed);
            assert!(t.is_connected(), "seed {seed}");
            let t2 = Topology::random_connected(12, 6, seed);
            assert_eq!(t, t2, "determinism for seed {seed}");
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let t = Topology::partial_mesh(10, 4);
        for a in t.nodes() {
            for &b in t.neighbors(a) {
                assert!(t.neighbors(b).contains(&a), "{a} ↔ {b}");
            }
        }
    }
}
