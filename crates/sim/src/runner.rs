//! The round-based simulation engine.
//!
//! One **round** models the paper's experiment loop (§V-B: "each node
//! periodically (every second) synchronizes with neighbors and executes an
//! update operation"): every node first applies its workload operations,
//! then runs one synchronization step; all resulting messages (and any
//! protocol replies, recursively — Scuttlebutt's push-pull completes
//! within the round) are delivered before the next round starts.
//!
//! The round structure deliberately reproduces the contention regime that
//! exposes the classic-delta anomaly: *"this anomaly becomes noticeable
//! when concurrent update operations always occur between synchronization
//! rounds"* (§I).

use std::time::Instant;

use crdt_lattice::{ReplicaId, SizeModel};
use crdt_sync::{Measured, Params, Protocol};
use crdt_types::Crdt;

use crate::metrics::{RoundMetrics, RunMetrics};
use crate::network::{Network, NetworkConfig};
use crate::topology::Topology;

/// A source of update operations, one batch per (node, round).
///
/// Implementations live in `crdt-workloads`; closures work for tests.
pub trait Workload<C: Crdt> {
    /// Operations node `node` executes at the start of `round`.
    fn ops(&mut self, node: ReplicaId, round: usize) -> Vec<C::Op>;
}

impl<C: Crdt, F> Workload<C> for F
where
    F: FnMut(ReplicaId, usize) -> Vec<C::Op>,
{
    fn ops(&mut self, node: ReplicaId, round: usize) -> Vec<C::Op> {
        self(node, round)
    }
}

/// Simulation driver for one protocol over one topology.
#[derive(Debug)]
pub struct Runner<C: Crdt, P: Protocol<C>> {
    topology: Topology,
    nodes: Vec<P>,
    alive: Vec<bool>,
    net: Network<(ReplicaId, P::Msg)>,
    model: SizeModel,
    metrics: RunMetrics,
    round: usize,
}

impl<C: Crdt, P: Protocol<C>> Runner<C, P> {
    /// Build a runner: one protocol instance per topology node.
    pub fn new(topology: Topology, net_cfg: NetworkConfig, model: SizeModel) -> Self {
        let params = Params::new(topology.len());
        let nodes: Vec<P> = topology.nodes().map(|id| P::new(id, &params)).collect();
        let n = topology.len();
        Runner {
            topology,
            nodes,
            alive: vec![true; n],
            net: Network::new(net_cfg),
            model,
            metrics: RunMetrics::new(n),
            round: 0,
        }
    }

    /// The protocol's display name.
    pub fn protocol_name() -> &'static str {
        P::NAME
    }

    /// Access a node's protocol instance.
    pub fn node(&self, id: ReplicaId) -> &P {
        &self.nodes[id.index()]
    }

    /// The topology driving this run.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The collected metrics so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Consume the runner, returning the metrics.
    pub fn into_metrics(self) -> RunMetrics {
        self.metrics
    }

    /// Have all **live** replicas reached the same lattice state?
    pub fn converged(&self) -> bool {
        let states: Vec<&C> = self
            .nodes
            .iter()
            .zip(&self.alive)
            .filter(|(_, a)| **a)
            .map(|(p, _)| p.state())
            .collect();
        states.windows(2).all(|w| w[0] == w[1])
    }

    /// Crash `node`: it stops executing and everything addressed to it is
    /// discarded. `durable: false` additionally wipes its state (cold
    /// restart from `⊥`); pair the restart with
    /// [`Runner::bootstrap_pair`] to rejoin.
    pub fn crash_node(&mut self, node: ReplicaId, durable: bool) {
        self.alive[node.index()] = false;
        if !durable {
            self.nodes[node.index()] = P::new(node, &Params::new(self.topology.len()));
        }
    }

    /// Bring a crashed `node` back (state as the crash left it).
    pub fn restart_node(&mut self, node: ReplicaId) {
        self.alive[node.index()] = true;
    }

    /// Is `node` currently up?
    pub fn is_alive(&self, node: ReplicaId) -> bool {
        self.alive[node.index()]
    }

    /// Out-of-band bidirectional snapshot exchange between `a` and `b`
    /// through [`Protocol::bootstrap`] — the state-transfer half of a
    /// restart or join.
    pub fn bootstrap_pair(&mut self, a: ReplicaId, b: ReplicaId) {
        assert_ne!(a, b, "bootstrap needs two distinct replicas");
        let (lo, hi) = (a.index().min(b.index()), a.index().max(b.index()));
        let (left, right) = self.nodes.split_at_mut(hi);
        left[lo].bootstrap(&right[0]);
        right[0].bootstrap(&left[lo]);
    }

    /// Run `rounds` rounds of workload + synchronization.
    pub fn run(&mut self, workload: &mut impl Workload<C>, rounds: usize) {
        for _ in 0..rounds {
            self.step(workload);
        }
    }

    /// Run one round.
    pub fn step(&mut self, workload: &mut impl Workload<C>) {
        let mut rm = RoundMetrics::default();

        // Phase 1: update operations (paper: one update event per node per
        // synchronization interval). Down nodes execute nothing.
        for id in 0..self.nodes.len() {
            let node_id = ReplicaId::from(id);
            if !self.alive[id] {
                continue;
            }
            let t_draw = Instant::now();
            let ops = workload.ops(node_id, self.round);
            rm.workload_nanos += t_draw.elapsed().as_nanos() as u64;
            for op in ops {
                let t0 = Instant::now();
                self.nodes[id].on_op(&op);
                rm.cpu_nanos += t0.elapsed().as_nanos() as u64;
            }
        }

        // Phase 2: synchronization step at every live node (senders keep
        // addressing their full neighbor list — crashes are not learned
        // synchronously).
        let mut outbox: Vec<(ReplicaId, P::Msg)> = Vec::new();
        for id in 0..self.nodes.len() {
            let node_id = ReplicaId::from(id);
            if !self.alive[id] {
                continue;
            }
            let t0 = Instant::now();
            self.nodes[id].on_sync(self.topology.neighbors(node_id), &mut outbox);
            rm.cpu_nanos += t0.elapsed().as_nanos() as u64;
            for (to, msg) in outbox.drain(..) {
                self.account(&mut rm, &msg);
                self.net.send(node_id, to, (node_id, msg));
            }
        }

        // Phase 3: deliver to quiescence (replies may generate replies —
        // Scuttlebutt's 3-message exchange completes here). Deliveries to
        // down nodes are discarded.
        while !self.net.is_idle() {
            for env in self.net.flush() {
                let (from, msg) = env.msg;
                let to = env.to;
                if !self.alive[to.index()] {
                    continue;
                }
                let t0 = Instant::now();
                self.nodes[to.index()].on_msg(from, msg, &mut outbox);
                rm.cpu_nanos += t0.elapsed().as_nanos() as u64;
                for (reply_to, reply) in outbox.drain(..) {
                    self.account(&mut rm, &reply);
                    self.net.send(to, reply_to, (to, reply));
                }
            }
        }

        // Phase 4: end-of-round memory snapshot (paper §V-B3: "during the
        // experiments, we periodically measure the amount of state").
        for (id, node) in self.nodes.iter().enumerate() {
            if !self.alive[id] {
                continue;
            }
            let m = node.memory(&self.model);
            rm.memory.crdt_elements += m.crdt_elements;
            rm.memory.crdt_bytes += m.crdt_bytes;
            rm.memory.meta_elements += m.meta_elements;
            rm.memory.meta_bytes += m.meta_bytes;
        }

        // One worker did everything: the critical path is the total work.
        rm.critical_path_nanos = rm.cpu_nanos;
        self.metrics.push_round(rm);
        self.round += 1;
        self.net.advance_round();
    }

    fn account(&self, rm: &mut RoundMetrics, msg: &P::Msg) {
        rm.messages += 1;
        rm.envelopes += 1;
        rm.payload_elements += msg.payload_elements();
        rm.payload_bytes += msg.payload_bytes(&self.model);
        rm.metadata_bytes += msg.metadata_bytes(&self.model);
    }

    /// After the workload ends, keep synchronizing (no new ops) until all
    /// replicas agree, up to `max_rounds`. Returns the number of extra
    /// rounds taken, or `None` if convergence was not reached.
    pub fn run_to_convergence(&mut self, max_rounds: usize) -> Option<usize> {
        let mut idle = |_: ReplicaId, _: usize| -> Vec<C::Op> { Vec::new() };
        for extra in 0..=max_rounds {
            if self.converged() {
                return Some(extra);
            }
            self.step(&mut idle);
        }
        self.converged().then_some(max_rounds)
    }
}

/// Convenience: run `protocol` over `topology` with `workload` for
/// `rounds` rounds, then drive to convergence; panic if the replicas do
/// not converge. Returns the metrics.
pub fn run_experiment<C: Crdt, P: Protocol<C>>(
    topology: Topology,
    net_cfg: NetworkConfig,
    model: SizeModel,
    workload: &mut impl Workload<C>,
    rounds: usize,
) -> RunMetrics {
    let mut runner: Runner<C, P> = Runner::new(topology, net_cfg, model);
    runner.run(workload, rounds);
    let diameter_slack = runner.topology().diameter() * 4 + 16;
    runner
        .run_to_convergence(diameter_slack)
        .unwrap_or_else(|| {
            panic!(
                "{} did not converge within {} extra rounds",
                P::NAME,
                diameter_slack
            )
        });
    runner.into_metrics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_sync::{BpRrDelta, ClassicDelta, OpBased, Scuttlebutt, ScuttlebuttGc, StateSync};
    use crdt_types::{GSet, GSetOp};

    /// Each node adds one globally unique element per round (the paper's
    /// GSet micro-benchmark).
    fn unique_adds(n: usize) -> impl FnMut(ReplicaId, usize) -> Vec<GSetOp<u64>> {
        move |node: ReplicaId, round: usize| vec![GSetOp::Add((round * n + node.index()) as u64)]
    }

    fn total_expected(n: usize, rounds: usize) -> usize {
        n * rounds
    }

    macro_rules! converges {
        ($name:ident, $proto:ident) => {
            #[test]
            fn $name() {
                let n = 8;
                let rounds = 6;
                let topo = Topology::partial_mesh(n, 4);
                let mut runner: Runner<GSet<u64>, $proto<GSet<u64>>> =
                    Runner::new(topo, NetworkConfig::chaotic(7), SizeModel::compact());
                runner.run(&mut unique_adds(n), rounds);
                let extra = runner.run_to_convergence(64).expect("must converge");
                assert!(extra <= 64);
                let state = runner.node(ReplicaId(0)).state();
                assert_eq!(state.len(), total_expected(n, rounds));
            }
        };
    }

    converges!(state_sync_converges, StateSync);
    converges!(classic_delta_converges, ClassicDelta);
    converges!(bp_rr_delta_converges, BpRrDelta);
    converges!(scuttlebutt_converges, Scuttlebutt);
    converges!(scuttlebutt_gc_converges, ScuttlebuttGc);
    converges!(op_based_converges, OpBased);

    #[test]
    fn tree_topology_converges_too() {
        let n = 15;
        let topo = Topology::binary_tree(n);
        let mut runner: Runner<GSet<u64>, BpRrDelta<GSet<u64>>> =
            Runner::new(topo, NetworkConfig::reliable(3), SizeModel::compact());
        runner.run(&mut unique_adds(n), 5);
        runner.run_to_convergence(64).expect("tree convergence");
        assert_eq!(runner.node(ReplicaId(14)).state().len(), 75);
    }

    #[test]
    fn bp_rr_transmits_less_than_classic_on_mesh() {
        // The headline claim (Fig. 7): on a cyclic topology BP+RR beats
        // classic delta by a wide margin.
        let n = 15;
        let rounds = 20;
        let topo = Topology::partial_mesh(n, 4);
        let classic = run_experiment::<GSet<u64>, ClassicDelta<GSet<u64>>>(
            topo.clone(),
            NetworkConfig::reliable(1),
            SizeModel::compact(),
            &mut unique_adds(n),
            rounds,
        );
        let bprr = run_experiment::<GSet<u64>, BpRrDelta<GSet<u64>>>(
            topo,
            NetworkConfig::reliable(1),
            SizeModel::compact(),
            &mut unique_adds(n),
            rounds,
        );
        assert!(
            bprr.total_elements() * 2 < classic.total_elements(),
            "BP+RR {} vs classic {}",
            bprr.total_elements(),
            classic.total_elements()
        );
    }

    #[test]
    fn classic_is_no_better_than_state_based_on_mesh() {
        // The Fig. 1 anomaly: with updates every round, classic delta
        // transmits in the same ballpark as full-state gossip.
        let n = 15;
        let rounds = 20;
        let topo = Topology::partial_mesh(n, 4);
        let classic = run_experiment::<GSet<u64>, ClassicDelta<GSet<u64>>>(
            topo.clone(),
            NetworkConfig::reliable(1),
            SizeModel::compact(),
            &mut unique_adds(n),
            rounds,
        );
        let state = run_experiment::<GSet<u64>, StateSync<GSet<u64>>>(
            topo,
            NetworkConfig::reliable(1),
            SizeModel::compact(),
            &mut unique_adds(n),
            rounds,
        );
        let ratio = classic.total_elements() as f64 / state.total_elements() as f64;
        assert!(
            ratio > 0.5,
            "classic should be within the state-based ballpark, got ratio {ratio:.3}"
        );
    }

    #[test]
    fn crash_restart_bootstrap_reconverges() {
        // Durable and non-durable crashes of a BP+RR node: the restarted
        // node misses the deltas sent while it was down (buffers were
        // cleared into the void), so a bootstrap exchange with a live
        // peer is what restores convergence.
        for durable in [true, false] {
            let n = 6;
            let topo = Topology::partial_mesh(n, 4);
            let mut runner: Runner<GSet<u64>, BpRrDelta<GSet<u64>>> =
                Runner::new(topo, NetworkConfig::reliable(5), SizeModel::compact());
            runner.run(&mut unique_adds(n), 2);
            runner.crash_node(ReplicaId(3), durable);
            assert!(!runner.is_alive(ReplicaId(3)));
            runner.run(&mut unique_adds(n), 3);
            runner.restart_node(ReplicaId(3));
            runner.bootstrap_pair(ReplicaId(3), ReplicaId(0));
            runner
                .run_to_convergence(64)
                .unwrap_or_else(|| panic!("durable={durable}: no re-convergence"));
            assert_eq!(
                runner.node(ReplicaId(3)).state(),
                runner.node(ReplicaId(0)).state()
            );
        }
    }

    #[test]
    fn metrics_record_rounds() {
        let n = 4;
        let topo = Topology::ring(n);
        let mut runner: Runner<GSet<u64>, BpRrDelta<GSet<u64>>> =
            Runner::new(topo, NetworkConfig::reliable(0), SizeModel::compact());
        runner.run(&mut unique_adds(n), 3);
        assert_eq!(runner.metrics().rounds.len(), 3);
        assert!(runner.metrics().total_messages() > 0);
        assert!(runner.metrics().total_elements() > 0);
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let run = |seed: u64| {
            let n = 6;
            let topo = Topology::partial_mesh(n, 4);
            run_experiment::<GSet<u64>, BpRrDelta<GSet<u64>>>(
                topo,
                NetworkConfig::chaotic(seed),
                SizeModel::compact(),
                &mut unique_adds(n),
                5,
            )
        };
        let (a, b) = (run(9), run(9));
        assert_eq!(a.total_elements(), b.total_elements());
        assert_eq!(a.total_bytes(), b.total_bytes());
        assert_eq!(a.total_messages(), b.total_messages());
    }
}
