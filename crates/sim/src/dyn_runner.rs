//! The engine-layer twin of [`crate::Runner`]: one simulation driver for
//! **runtime-selected** protocols.
//!
//! [`crate::Runner`] is monomorphized per protocol (`Runner<C, P>`), which
//! is perfect for experiments but means every binary must instantiate
//! every protocol it might run. `DynRunner` instead drives
//! `Box<dyn SyncEngine>` replicas built by [`crdt_sync::build_engine`]
//! from a [`ProtocolKind`] value — the same replica/network substrate, the
//! protocol chosen by a CLI flag. Messages are [`WireEnvelope`]s carrying
//! truly encoded payloads, so this runner also exercises the full
//! encode/decode path a production transport would.
//!
//! The workload side stays typed (`Workload<C>`): operations are encoded
//! at the boundary via [`OpBytes`]. Round structure, metric collection and
//! convergence driving mirror [`crate::Runner`] exactly — the parity
//! property test in `crdt-sync` relies on that.

use std::time::Instant;

use crdt_lattice::{ReplicaId, SizeModel, WireEncode};
use crdt_sync::digest::{digest_repair_deltas, PairSyncStats};
use crdt_sync::{
    build_engine_with_model, BufferPool, DeltaMsg, Measured, OpBytes, Params, ProtocolKind,
    SyncEngine, WireAccounting, WireEnvelope,
};
use crdt_types::Crdt;

use crate::metrics::{RoundMetrics, RunMetrics};
use crate::network::{LinkFault, Network, NetworkConfig};
use crate::runner::Workload;
use crate::topology::{DynamicTopology, Topology};

/// Simulation driver for one runtime-selected protocol over one topology.
///
/// ```
/// use crdt_sim::{DynRunner, NetworkConfig, Topology};
/// use crdt_sync::ProtocolKind;
/// use crdt_lattice::{ReplicaId, SizeModel};
/// use crdt_types::{GSet, GSetOp};
///
/// let kind: ProtocolKind = "bp_rr".parse().unwrap();
/// let mut runner: DynRunner<GSet<u64>> = DynRunner::new(
///     kind,
///     Topology::ring(4),
///     NetworkConfig::reliable(1),
///     SizeModel::compact(),
/// );
/// let mut workload = |node: ReplicaId, round: usize| {
///     vec![GSetOp::Add((round * 4 + node.index()) as u64)]
/// };
/// runner.run(&mut workload, 3);
/// runner.run_to_convergence(16).expect("converges");
/// assert_eq!(runner.protocol_name(), "delta+BP+RR");
/// ```
#[derive(Debug)]
pub struct DynRunner<C: Crdt> {
    kind: ProtocolKind,
    topo: DynamicTopology,
    nodes: Vec<Box<dyn SyncEngine>>,
    net: Network<WireEnvelope>,
    metrics: RunMetrics,
    params: Params,
    model: SizeModel,
    round: usize,
    /// Messages addressed to down nodes or across an active partition,
    /// discarded at delivery time.
    undeliverable: u64,
    /// Cumulative out-of-band recovery traffic (digest repair and
    /// bootstrap transfers).
    repair: PairSyncStats,
    /// Recycled encode scratch shared by every engine this (sequential)
    /// runner drives — payload buffers are reused round after round.
    pool: BufferPool,
    _crdt: core::marker::PhantomData<fn() -> C>,
}

impl<C> DynRunner<C>
where
    C: Crdt + WireEncode + 'static,
    C::Op: WireEncode + 'static,
{
    /// Build a runner with default parameters: one engine per topology
    /// node, all of protocol `kind`.
    pub fn new(
        kind: ProtocolKind,
        topology: Topology,
        net_cfg: NetworkConfig,
        model: SizeModel,
    ) -> Self {
        Self::with_params(kind, topology, net_cfg, model, None)
    }

    /// Build a runner, overriding the [`Params`] knobs (`fan_out`,
    /// `sync_interval`). `params.n_nodes` is always taken from the
    /// topology.
    pub fn with_params(
        kind: ProtocolKind,
        topology: Topology,
        net_cfg: NetworkConfig,
        model: SizeModel,
        params: Option<Params>,
    ) -> Self {
        let mut params = params.unwrap_or_else(|| Params::new(topology.len()));
        params.n_nodes = topology.len();
        let nodes = topology
            .nodes()
            .map(|id| build_engine_with_model::<C>(kind, id, &params, model))
            .collect();
        let n = topology.len();
        DynRunner {
            kind,
            topo: DynamicTopology::new(topology),
            nodes,
            net: Network::new(net_cfg),
            metrics: RunMetrics::new(n),
            params,
            model,
            round: 0,
            undeliverable: 0,
            repair: PairSyncStats::default(),
            pool: BufferPool::new(),
            _crdt: core::marker::PhantomData,
        }
    }

    /// The protocol every node runs.
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// The protocol's display name.
    pub fn protocol_name(&self) -> &'static str {
        self.kind.name()
    }

    /// Access a node's engine.
    pub fn node(&self, id: ReplicaId) -> &dyn SyncEngine {
        self.nodes[id.index()].as_ref()
    }

    /// A node's lattice state, typed (`None` if `T` is not the CRDT this
    /// runner was built over).
    pub fn state_of<T: 'static>(&self, id: ReplicaId) -> Option<&T> {
        self.nodes[id.index()].state_any().downcast_ref::<T>()
    }

    /// The (base) topology driving this run.
    pub fn topology(&self) -> &Topology {
        self.topo.base()
    }

    /// The live membership/partition view.
    pub fn membership(&self) -> &DynamicTopology {
        &self.topo
    }

    /// The collected metrics so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Consume the runner, returning the metrics.
    pub fn into_metrics(self) -> RunMetrics {
        self.metrics
    }

    /// Messages discarded because the recipient was down or unreachable
    /// across a partition, plus messages the fabric itself dropped
    /// (global `drop_prob` and per-link faults).
    pub fn undeliverable(&self) -> u64 {
        self.undeliverable + self.net.dropped
    }

    /// Cumulative out-of-band recovery traffic (digest repairs and
    /// bootstrap state transfers).
    pub fn repair_stats(&self) -> PairSyncStats {
        self.repair
    }

    /// Have all **live** replicas reached the same lattice state?
    pub fn converged(&self) -> bool {
        let alive = self.topo.alive_nodes();
        alive
            .windows(2)
            .all(|w| self.nodes[w[0].index()].state_eq(self.nodes[w[1].index()].as_ref()))
    }

    /// Run `rounds` rounds of workload + synchronization.
    pub fn run(&mut self, workload: &mut impl Workload<C>, rounds: usize) {
        for _ in 0..rounds {
            self.step(workload);
        }
    }

    /// The neighbors node `id` synchronizes with this round: everyone,
    /// unless `params.fan_out` caps the count — then a deterministic
    /// rotating window, so capped replicas still address every neighbor
    /// over successive sync steps.
    ///
    /// The window advances by *sync step* (`round / sync_interval`), not
    /// by raw round: with an interval of `s`, only every `s`-th round
    /// syncs, and stepping the window by rounds would skip the same
    /// neighbor indices forever whenever `s` and the neighbor count share
    /// a factor.
    fn sync_targets(&self, id: ReplicaId) -> Vec<ReplicaId> {
        let all = self.topo.base().neighbors(id);
        match self.params.fan_out {
            Some(f) if f < all.len() => {
                let step = self.round / self.params.sync_interval.max(1);
                (0..f).map(|i| all[(step * f + i) % all.len()]).collect()
            }
            _ => all.to_vec(),
        }
    }

    /// Run one round: workload ops, one synchronization step per node
    /// (respecting `sync_interval`), delivery to quiescence, then a memory
    /// snapshot — the same four phases as [`crate::Runner::step`].
    pub fn step(&mut self, workload: &mut impl Workload<C>) {
        let mut rm = RoundMetrics::default();

        // Phase 1: update operations, encoded across the erased boundary.
        // Down nodes execute nothing.
        for id in 0..self.nodes.len() {
            let node_id = ReplicaId::from(id);
            if !self.topo.is_alive(node_id) {
                continue;
            }
            let t_draw = Instant::now();
            let ops = workload.ops(node_id, self.round);
            rm.workload_nanos += t_draw.elapsed().as_nanos() as u64;
            for op in ops {
                let bytes = OpBytes::encode(&op);
                let t0 = Instant::now();
                self.nodes[id]
                    .on_op(&bytes)
                    .expect("engine rejected its own CRDT's op encoding");
                rm.cpu_nanos += t0.elapsed().as_nanos() as u64;
            }
        }

        // Phase 2: synchronization step (skipped on off rounds when a
        // sync_interval > 1 is configured; buffers keep accumulating).
        // Live senders still address their *full* neighbor list — nodes
        // do not learn about crashes or cuts synchronously; undeliverable
        // traffic is discarded in phase 3, like a real fabric.
        if self.round.is_multiple_of(self.params.sync_interval.max(1)) {
            for id in 0..self.nodes.len() {
                let node_id = ReplicaId::from(id);
                if !self.topo.is_alive(node_id) {
                    continue;
                }
                let targets = self.sync_targets(node_id);
                let t0 = Instant::now();
                let out = self.nodes[id].on_sync_pooled(&targets, &mut self.pool);
                rm.cpu_nanos += t0.elapsed().as_nanos() as u64;
                for env in out {
                    self.account(&mut rm, &env);
                    self.net.send(env.from, env.to, env);
                }
            }
        }

        // Phase 3: deliver to quiescence (push-pull replies included).
        // Deliveries to down nodes, or across an active partition, are
        // dropped here.
        while !self.net.is_idle() {
            for delivery in self.net.flush() {
                let to = delivery.to;
                if !self.topo.link_open(delivery.from, to) {
                    self.undeliverable += 1;
                    continue;
                }
                let t0 = Instant::now();
                let replies = self.nodes[to.index()]
                    .on_msg_pooled(delivery.msg, &mut self.pool)
                    .expect("uniform-protocol run cannot mismatch kinds");
                rm.cpu_nanos += t0.elapsed().as_nanos() as u64;
                for reply in replies {
                    self.account(&mut rm, &reply);
                    self.net.send(reply.from, reply.to, reply);
                }
            }
        }

        // Phase 4: end-of-round memory snapshot (live nodes — a down
        // process occupies no memory, durable or not).
        for (id, node) in self.nodes.iter().enumerate() {
            if !self.topo.is_alive(ReplicaId::from(id)) {
                continue;
            }
            let m = node.memory();
            rm.memory.crdt_elements += m.crdt_elements;
            rm.memory.crdt_bytes += m.crdt_bytes;
            rm.memory.meta_elements += m.meta_elements;
            rm.memory.meta_bytes += m.meta_bytes;
        }

        // One worker did everything: the critical path is the total work.
        rm.critical_path_nanos = rm.cpu_nanos;
        self.metrics.push_round(rm);
        self.round += 1;
        self.net.advance_round();
    }

    fn account(&self, rm: &mut RoundMetrics, env: &WireEnvelope) {
        rm.messages += 1;
        rm.envelopes += 1;
        rm.payload_elements += env.accounting.payload_elements;
        rm.payload_bytes += env.accounting.payload_bytes;
        rm.metadata_bytes += env.accounting.metadata_bytes;
    }

    /// After the workload ends, keep synchronizing (no new ops) until all
    /// replicas agree, up to `max_rounds` extra rounds. Returns the extra
    /// rounds taken, or `None` if convergence was not reached.
    pub fn run_to_convergence(&mut self, max_rounds: usize) -> Option<usize> {
        let mut idle = |_: ReplicaId, _: usize| -> Vec<C::Op> { Vec::new() };
        for extra in 0..=max_rounds {
            if self.converged() {
                return Some(extra);
            }
            self.step(&mut idle);
        }
        self.converged().then_some(max_rounds)
    }

    // -----------------------------------------------------------------
    // Fault & membership control (the scenario layer drives these)
    // -----------------------------------------------------------------

    /// Crash `node`. While down it executes no phases and everything
    /// addressed to it is discarded. `durable: true` models a process
    /// crash with intact storage (the engine's state survives for the
    /// restart); `durable: false` wipes the engine immediately — a cold
    /// restart starts from `⊥` and should be pointed at a live peer via
    /// [`DynRunner::restart_node`]'s `bootstrap`.
    pub fn crash_node(&mut self, node: ReplicaId, durable: bool) {
        self.topo.set_alive(node, false);
        if !durable {
            self.nodes[node.index()].reset();
        }
    }

    /// Bring a crashed `node` back. With `bootstrap = Some(peer)` the
    /// restarted node and the peer exchange state snapshots out-of-band
    /// (both directions — a durable restart may hold novelty the cluster
    /// lost track of), charged to [`DynRunner::repair_stats`].
    pub fn restart_node(&mut self, node: ReplicaId, bootstrap: Option<ReplicaId>) {
        self.topo.set_alive(node, true);
        if let Some(peer) = bootstrap {
            self.bootstrap_pair(node, peer);
        }
    }

    /// Grow the cluster by one node linked to `links`, running a fresh
    /// engine of the same protocol, bootstrapped from `bootstrap` when
    /// given. Returns the joiner's id.
    pub fn join_node(&mut self, links: &[ReplicaId], bootstrap: Option<ReplicaId>) -> ReplicaId {
        let new = self.topo.join(links);
        self.params.n_nodes = self.topo.len();
        self.metrics.n_nodes = self.topo.len();
        // Existing engines must learn the new size *before* the joiner is
        // heard from: Scuttlebutt-GC's safe-delete rule would otherwise
        // prune deltas the joiner has not seen, beyond recovery.
        for node in &mut self.nodes {
            node.set_system_size(self.params.n_nodes);
        }
        self.nodes.push(build_engine_with_model::<C>(
            self.kind,
            new,
            &self.params,
            self.model,
        ));
        if let Some(peer) = bootstrap {
            self.repair_pair(new, peer);
        }
        new
    }

    /// Install a partition (each entry of `groups` is one side; unlisted
    /// nodes form the implicit last side). Cross-side traffic is
    /// discarded until [`DynRunner::heal_partition`].
    pub fn set_partition(&mut self, groups: &[Vec<usize>]) {
        self.topo.set_partition(groups);
    }

    /// Heal the active partition and stitch the sides back together: the
    /// lowest live representative of each side pairwise-repairs with the
    /// first side's representative (two passes, so every side sees every
    /// other side's novelty), using [`DynRunner::repair_pair`].
    ///
    /// Kinds that [`ProtocolKind::recovers_from_loss`] get no repair —
    /// their own metadata re-requests or retransmits what the cut
    /// swallowed, which is exactly the property the scenario experiments
    /// measure.
    pub fn heal_partition(&mut self) {
        let reps = self.topo.side_representatives();
        self.topo.clear_partition();
        if reps.len() < 2 || self.kind.recovers_from_loss() {
            return;
        }
        // δ-group kinds repair one representative per side: the injected
        // novelty re-enters their buffers and propagates to the rest of
        // each side over ordinary rounds. The op-based middleware cannot
        // re-ship a state join as operations, so every live node must be
        // reconciled directly — the honest (and expensive) price of
        // partition recovery without join semantics.
        let peers: Vec<ReplicaId> = if self.kind.accepts_raw_delta() {
            reps[1..].to_vec()
        } else {
            self.topo
                .alive_nodes()
                .into_iter()
                .filter(|&n| n != reps[0])
                .collect()
        };
        // Gather into reps[0], then scatter back out. The second pass
        // re-ships only what the earlier peers are still missing —
        // digest-driven repair sends differences, not states.
        for _pass in 0..2 {
            for &peer in &peers {
                self.repair_pair(reps[0], peer);
            }
        }
    }

    /// Overlay a fault on both directions of the edge `a ↔ b`.
    pub fn set_edge_fault(&mut self, a: ReplicaId, b: ReplicaId, fault: LinkFault) {
        self.net.set_link_fault(a, b, fault);
        self.net.set_link_fault(b, a, fault);
    }

    /// Clear any fault overlay from both directions of `a ↔ b`.
    pub fn clear_edge_fault(&mut self, a: ReplicaId, b: ReplicaId) {
        self.net.clear_link_fault(a, b);
        self.net.clear_link_fault(b, a);
    }

    /// Pairwise repair between two live replicas, the §VI mechanism:
    ///
    /// * kinds whose wire message is a bare δ-group (the delta family and
    ///   `state`) run **digest-driven** repair — only the
    ///   join-irreducibles each side is missing cross the wire, injected
    ///   through the ordinary receive path so the novelty is re-buffered
    ///   and keeps propagating to other neighbors;
    /// * the remaining kinds (anti-entropy, op-based) adopt each other's
    ///   snapshot via [`SyncEngine::bootstrap_from`] — their own recovery
    ///   metadata (vectors, delivery clocks, ack state) travels with it.
    ///
    /// Traffic is charged to [`DynRunner::repair_stats`].
    pub fn repair_pair(&mut self, a: ReplicaId, b: ReplicaId) {
        assert_ne!(a, b, "repair needs two distinct replicas");
        if self.kind.accepts_raw_delta() {
            let (delta_for_a, delta_for_b, stats) = {
                let xa = self
                    .state_of::<C>(a)
                    .expect("runner engines are built over C");
                let xb = self
                    .state_of::<C>(b)
                    .expect("runner engines are built over C");
                digest_repair_deltas(xa, xb, &self.model)
            };
            self.repair.messages += stats.messages;
            self.repair.payload_elements += stats.payload_elements;
            self.repair.payload_bytes += stats.payload_bytes;
            self.repair.metadata_bytes += stats.metadata_bytes;
            if !delta_for_a.is_bottom() {
                self.inject_delta(b, a, delta_for_a);
            }
            if !delta_for_b.is_bottom() {
                self.inject_delta(a, b, delta_for_b);
            }
        } else {
            self.bootstrap_pair(a, b);
        }
    }

    /// Bidirectional out-of-band snapshot exchange between `a` and `b`
    /// through the engines' bootstrap hooks.
    fn bootstrap_pair(&mut self, a: ReplicaId, b: ReplicaId) {
        assert_ne!(a, b, "bootstrap needs two distinct replicas");
        let (lo, hi) = (a.index().min(b.index()), a.index().max(b.index()));
        let (left, right) = self.nodes.split_at_mut(hi);
        let x = &mut left[lo];
        let y = &mut right[0];
        let acc1 = x
            .bootstrap_from(y.as_ref())
            .expect("uniform-protocol run cannot mismatch kinds");
        let acc2 = y
            .bootstrap_from(x.as_ref())
            .expect("uniform-protocol run cannot mismatch kinds");
        for acc in [acc1, acc2] {
            self.repair.messages += 1;
            self.repair.payload_elements += acc.payload_elements;
            self.repair.payload_bytes += acc.payload_bytes;
        }
    }

    /// Feed a repaired δ-group into `to`'s engine as if `from` had sent
    /// it, through the ordinary receive path.
    fn inject_delta(&mut self, from: ReplicaId, to: ReplicaId, delta: C) {
        let msg = DeltaMsg(delta);
        let payload = msg.to_bytes();
        let accounting = WireAccounting {
            payload_elements: msg.payload_elements(),
            payload_bytes: msg.payload_bytes(&self.model),
            metadata_bytes: msg.metadata_bytes(&self.model),
            encoded_bytes: payload.len() as u64,
        };
        let env = WireEnvelope {
            from,
            to,
            kind: self.kind,
            payload: payload.into(),
            accounting,
        };
        let replies = self.nodes[to.index()]
            .on_msg_pooled(env, &mut self.pool)
            .expect("raw delta injection matches the configured protocol");
        debug_assert!(replies.is_empty(), "delta-family kinds never reply");
    }
}

/// Convenience mirror of [`crate::run_experiment`] for the erased path:
/// run `kind` over `topology` with `workload` for `rounds` rounds, then
/// drive to convergence; panic if the replicas do not converge.
pub fn run_dyn_experiment<C>(
    kind: ProtocolKind,
    topology: Topology,
    net_cfg: NetworkConfig,
    model: SizeModel,
    workload: &mut impl Workload<C>,
    rounds: usize,
) -> RunMetrics
where
    C: Crdt + WireEncode + 'static,
    C::Op: WireEncode + 'static,
{
    let mut runner: DynRunner<C> = DynRunner::new(kind, topology, net_cfg, model);
    runner.run(workload, rounds);
    let diameter_slack = runner.topology().diameter() * 4 + 16;
    runner
        .run_to_convergence(diameter_slack)
        .unwrap_or_else(|| {
            panic!(
                "{} did not converge within {} extra rounds",
                kind, diameter_slack
            )
        });
    runner.into_metrics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_experiment, Runner};
    use crdt_sync::{BpRrDelta, ClassicDelta};
    use crdt_types::{GSet, GSetOp};

    fn unique_adds(n: usize) -> impl FnMut(ReplicaId, usize) -> Vec<GSetOp<u64>> {
        move |node: ReplicaId, round: usize| vec![GSetOp::Add((round * n + node.index()) as u64)]
    }

    #[test]
    fn every_kind_converges_on_a_mesh() {
        let n = 6;
        let rounds = 4;
        for kind in ProtocolKind::ALL {
            let topo = Topology::partial_mesh(n, 4);
            let mut runner: DynRunner<GSet<u64>> =
                DynRunner::new(kind, topo, NetworkConfig::reliable(3), SizeModel::compact());
            runner.run(&mut unique_adds(n), rounds);
            runner
                .run_to_convergence(64)
                .unwrap_or_else(|| panic!("{kind} failed to converge"));
            let state = runner.state_of::<GSet<u64>>(ReplicaId(0)).unwrap();
            assert_eq!(state.len(), n * rounds, "{kind} lost elements");
        }
    }

    /// The headline parity claim at runner level: identical schedule in,
    /// identical transmission accounting and final state out.
    #[test]
    fn dyn_runner_matches_generic_runner_exactly() {
        let n = 8;
        let rounds = 5;
        for (kind, generic) in [
            (ProtocolKind::Classic, {
                let topo = Topology::partial_mesh(n, 4);
                run_experiment::<GSet<u64>, ClassicDelta<GSet<u64>>>(
                    topo,
                    NetworkConfig::reliable(7),
                    SizeModel::compact(),
                    &mut unique_adds(n),
                    rounds,
                )
            }),
            (ProtocolKind::BpRr, {
                let topo = Topology::partial_mesh(n, 4);
                run_experiment::<GSet<u64>, BpRrDelta<GSet<u64>>>(
                    topo,
                    NetworkConfig::reliable(7),
                    SizeModel::compact(),
                    &mut unique_adds(n),
                    rounds,
                )
            }),
        ] {
            let topo = Topology::partial_mesh(n, 4);
            let erased = run_dyn_experiment::<GSet<u64>>(
                kind,
                topo,
                NetworkConfig::reliable(7),
                SizeModel::compact(),
                &mut unique_adds(n),
                rounds,
            );
            assert_eq!(erased.total_elements(), generic.total_elements(), "{kind}");
            assert_eq!(erased.total_bytes(), generic.total_bytes(), "{kind}");
            assert_eq!(erased.total_messages(), generic.total_messages(), "{kind}");
        }
    }

    #[test]
    fn fan_out_cap_still_converges_for_anti_entropy() {
        // Scuttlebutt keeps its key-delta store (nothing is cleared on
        // sync), so gossiping to one rotating peer per round is a valid
        // anti-entropy deployment — the scenario `fan_out` models.
        let n = 8;
        let params = Params::new(n).fan_out(1);
        let mut runner: DynRunner<GSet<u64>> = DynRunner::with_params(
            ProtocolKind::Scuttlebutt,
            Topology::full_mesh(n),
            NetworkConfig::reliable(5),
            SizeModel::compact(),
            Some(params),
        );
        runner.run(&mut unique_adds(n), 3);
        runner
            .run_to_convergence(64)
            .expect("capped fan-out converges");
        assert_eq!(
            runner.state_of::<GSet<u64>>(ReplicaId(0)).unwrap().len(),
            n * 3
        );
    }

    #[test]
    fn fan_out_with_sync_interval_still_addresses_every_neighbor() {
        // Regression: the rotating window must advance by sync *step*, not
        // raw round — otherwise interval 2 over an even neighbor count
        // would address the same neighbor indices forever.
        let n = 5; // full mesh → 4 neighbors, sharing factor 2 with the interval
        let params = Params::new(n).fan_out(1).sync_interval(2);
        let mut runner: DynRunner<GSet<u64>> = DynRunner::with_params(
            ProtocolKind::Scuttlebutt,
            Topology::full_mesh(n),
            NetworkConfig::reliable(9),
            SizeModel::compact(),
            Some(params),
        );
        runner.run(&mut unique_adds(n), 2);
        runner
            .run_to_convergence(64)
            .expect("window rotation reaches all neighbors");
        assert_eq!(
            runner.state_of::<GSet<u64>>(ReplicaId(0)).unwrap().len(),
            n * 2
        );
    }

    #[test]
    fn fan_out_cap_limits_messages_per_round() {
        let n = 8;
        let capped: DynRunner<GSet<u64>> = {
            let mut r = DynRunner::with_params(
                ProtocolKind::BpRr,
                Topology::full_mesh(n),
                NetworkConfig::reliable(5),
                SizeModel::compact(),
                Some(Params::new(n).fan_out(2)),
            );
            r.run(&mut unique_adds(n), 1);
            r
        };
        // Each node addressed exactly 2 of its 7 neighbors.
        assert_eq!(capped.metrics().rounds[0].messages, (n * 2) as u64);
    }

    #[test]
    fn sync_interval_batches_rounds() {
        let n = 4;
        let params = Params::new(n).sync_interval(2);
        let mut runner: DynRunner<GSet<u64>> = DynRunner::with_params(
            ProtocolKind::BpRr,
            Topology::full_mesh(n),
            NetworkConfig::reliable(5),
            SizeModel::compact(),
            Some(params),
        );
        runner.run(&mut unique_adds(n), 4);
        // Rounds 1 and 3 are off rounds: no messages recorded.
        let per_round: Vec<u64> = runner.metrics().rounds.iter().map(|r| r.messages).collect();
        assert_eq!(per_round[1], 0);
        assert_eq!(per_round[3], 0);
        assert!(per_round[0] > 0 && per_round[2] > 0);
        runner.run_to_convergence(16).expect("still converges");
    }

    #[test]
    fn mixed_protocol_state_comparison_is_type_safe() {
        let topo = Topology::ring(3);
        let a: DynRunner<GSet<u64>> = DynRunner::new(
            ProtocolKind::BpRr,
            topo.clone(),
            NetworkConfig::reliable(1),
            SizeModel::compact(),
        );
        // Engines of the same CRDT but different protocols still compare
        // states (both are at ⊥ here).
        let b: DynRunner<GSet<u64>> = DynRunner::new(
            ProtocolKind::Scuttlebutt,
            topo,
            NetworkConfig::reliable(1),
            SizeModel::compact(),
        );
        assert!(a.node(ReplicaId(0)).state_eq(b.node(ReplicaId(0))));
    }

    /// `Runner` (generic) and `DynRunner` (erased) expose the same
    /// protocol naming so experiment tables line up.
    #[test]
    fn names_agree_with_generic_runner() {
        assert_eq!(
            Runner::<GSet<u64>, BpRrDelta<GSet<u64>>>::protocol_name(),
            ProtocolKind::BpRr.name()
        );
        assert_eq!(
            Runner::<GSet<u64>, ClassicDelta<GSet<u64>>>::protocol_name(),
            ProtocolKind::Classic.name()
        );
    }
}
