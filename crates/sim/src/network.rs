//! The simulated message fabric.
//!
//! State-based CRDTs demand little of the network: "messages can be
//! dropped, duplicated, and reordered" (§II). The simulator reproduces the
//! conditions of Algorithm 1 — duplication and reordering allowed, drops
//! disabled by default (the algorithm clears its buffer assuming no loss;
//! enable drops only for [`crdt_sync::AckedDeltaSync`]) — deterministically
//! from a seed.

use crdt_lattice::ReplicaId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fault-injection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Probability that a message is delivered twice.
    pub duplicate_prob: f64,
    /// Shuffle delivery order each flush.
    pub reorder: bool,
    /// Probability that a message is lost. **Must stay 0.0 for protocols
    /// that assume reliable channels** (all except the acked variant).
    pub drop_prob: f64,
    /// RNG seed (simulations are reproducible).
    pub seed: u64,
}

impl NetworkConfig {
    /// Reliable, in-order delivery.
    pub fn reliable(seed: u64) -> Self {
        NetworkConfig {
            duplicate_prob: 0.0,
            reorder: false,
            drop_prob: 0.0,
            seed,
        }
    }

    /// The §II channel model: duplication + reordering, no loss.
    pub fn chaotic(seed: u64) -> Self {
        NetworkConfig {
            duplicate_prob: 0.1,
            reorder: true,
            drop_prob: 0.0,
            seed,
        }
    }

    /// A lossy channel (for the acked delta variant only).
    pub fn lossy(seed: u64, drop_prob: f64) -> Self {
        NetworkConfig {
            duplicate_prob: 0.05,
            reorder: true,
            drop_prob,
            seed,
        }
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self::reliable(0)
    }
}

/// An in-flight message.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sender.
    pub from: ReplicaId,
    /// Recipient.
    pub to: ReplicaId,
    /// Payload.
    pub msg: M,
}

/// The message fabric: collects sends, then flushes them (with configured
/// faults) for delivery.
#[derive(Debug)]
pub struct Network<M> {
    cfg: NetworkConfig,
    rng: StdRng,
    in_flight: Vec<Envelope<M>>,
    /// Counters for observability.
    pub sent: u64,
    /// Messages duplicated by the fabric.
    pub duplicated: u64,
    /// Messages dropped by the fabric.
    pub dropped: u64,
}

impl<M: Clone> Network<M> {
    /// A fabric with the given fault model.
    pub fn new(cfg: NetworkConfig) -> Self {
        Network {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            in_flight: Vec::new(),
            sent: 0,
            duplicated: 0,
            dropped: 0,
        }
    }

    /// Submit a message for delivery.
    pub fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: M) {
        self.sent += 1;
        if self.cfg.drop_prob > 0.0 && self.rng.gen_bool(self.cfg.drop_prob) {
            self.dropped += 1;
            return;
        }
        if self.cfg.duplicate_prob > 0.0 && self.rng.gen_bool(self.cfg.duplicate_prob) {
            self.duplicated += 1;
            self.in_flight.push(Envelope {
                from,
                to,
                msg: msg.clone(),
            });
        }
        self.in_flight.push(Envelope { from, to, msg });
    }

    /// Take everything currently in flight, in (possibly shuffled)
    /// delivery order.
    pub fn flush(&mut self) -> Vec<Envelope<M>> {
        let mut batch = std::mem::take(&mut self.in_flight);
        if self.cfg.reorder {
            // Fisher-Yates with the seeded RNG.
            for i in (1..batch.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                batch.swap(i, j);
            }
        }
        batch
    }

    /// Anything still queued?
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    #[test]
    fn reliable_fabric_delivers_in_order() {
        let mut net: Network<u32> = Network::new(NetworkConfig::reliable(1));
        net.send(A, B, 1);
        net.send(A, B, 2);
        let got: Vec<u32> = net.flush().into_iter().map(|e| e.msg).collect();
        assert_eq!(got, vec![1, 2]);
        assert!(net.is_idle());
        assert_eq!(net.sent, 2);
        assert_eq!(net.dropped, 0);
    }

    #[test]
    fn duplication_produces_extra_copies() {
        let mut net: Network<u32> = Network::new(NetworkConfig {
            duplicate_prob: 1.0,
            reorder: false,
            drop_prob: 0.0,
            seed: 7,
        });
        net.send(A, B, 9);
        let got = net.flush();
        assert_eq!(got.len(), 2, "always-duplicate config doubles messages");
        assert_eq!(net.duplicated, 1);
    }

    #[test]
    fn drops_remove_messages() {
        let mut net: Network<u32> = Network::new(NetworkConfig {
            duplicate_prob: 0.0,
            reorder: false,
            drop_prob: 1.0,
            seed: 7,
        });
        net.send(A, B, 9);
        assert!(net.flush().is_empty());
        assert_eq!(net.dropped, 1);
    }

    #[test]
    fn reordering_is_deterministic_per_seed() {
        let run = |seed| {
            let mut net: Network<u32> = Network::new(NetworkConfig {
                duplicate_prob: 0.0,
                reorder: true,
                drop_prob: 0.0,
                seed,
            });
            for i in 0..20 {
                net.send(A, B, i);
            }
            net.flush().into_iter().map(|e| e.msg).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42), "same seed, same order");
        assert_ne!(run(42), run(43), "different seed, different order");
    }
}
