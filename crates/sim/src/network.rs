//! The simulated message fabric.
//!
//! State-based CRDTs demand little of the network: "messages can be
//! dropped, duplicated, and reordered" (§II). The simulator reproduces the
//! conditions of Algorithm 1 — duplication and reordering allowed, drops
//! disabled by default (the algorithm clears its buffer assuming no loss;
//! enable drops only for [`crdt_sync::AckedDeltaSync`]) — deterministically
//! from a seed.

use std::collections::BTreeMap;
use std::ops::Range;

use crdt_lattice::ReplicaId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fault-injection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Probability that a message is delivered twice.
    pub duplicate_prob: f64,
    /// Shuffle delivery order each flush.
    pub reorder: bool,
    /// Probability that a message is lost. **Must stay 0.0 for protocols
    /// that assume reliable channels** (all except the acked variant).
    pub drop_prob: f64,
    /// RNG seed (simulations are reproducible).
    pub seed: u64,
}

impl NetworkConfig {
    /// Reliable, in-order delivery.
    pub fn reliable(seed: u64) -> Self {
        NetworkConfig {
            duplicate_prob: 0.0,
            reorder: false,
            drop_prob: 0.0,
            seed,
        }
    }

    /// The §II channel model: duplication + reordering, no loss.
    pub fn chaotic(seed: u64) -> Self {
        NetworkConfig {
            duplicate_prob: 0.1,
            reorder: true,
            drop_prob: 0.0,
            seed,
        }
    }

    /// A lossy channel (for the acked delta variant only).
    pub fn lossy(seed: u64, drop_prob: f64) -> Self {
        NetworkConfig {
            duplicate_prob: 0.05,
            reorder: true,
            drop_prob,
            seed,
        }
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self::reliable(0)
    }
}

/// A fault configuration for **one directed link**, layered on top of the
/// fabric-wide [`NetworkConfig`] — the per-edge knob a fault scenario
/// turns (`LinkFault` events, partitions-as-blocked-links).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Probability a message on this link is lost.
    pub drop_prob: f64,
    /// Probability a message on this link is delivered twice.
    pub duplicate_prob: f64,
    /// Shuffle this link's messages among themselves at flush.
    pub reorder: bool,
}

impl LinkFault {
    /// A fully severed link: everything sent on it is dropped.
    pub const BLOCKED: LinkFault = LinkFault {
        drop_prob: 1.0,
        duplicate_prob: 0.0,
        reorder: false,
    };

    /// A lossy (but not dead) link.
    pub fn lossy(drop_prob: f64) -> Self {
        LinkFault {
            drop_prob,
            duplicate_prob: 0.0,
            reorder: false,
        }
    }

    /// A flaky link: losses plus duplication plus reordering.
    pub fn flaky(drop_prob: f64, duplicate_prob: f64) -> Self {
        LinkFault {
            drop_prob,
            duplicate_prob,
            reorder: true,
        }
    }
}

/// A [`LinkFault`] plus the round window it is active in (`None` ⇒
/// active until cleared).
#[derive(Debug, Clone, PartialEq)]
struct TimedFault {
    fault: LinkFault,
    window: Option<Range<u64>>,
}

/// An in-flight message.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sender.
    pub from: ReplicaId,
    /// Recipient.
    pub to: ReplicaId,
    /// Payload.
    pub msg: M,
}

/// The message fabric: collects sends, then flushes them (with configured
/// faults) for delivery.
#[derive(Debug)]
pub struct Network<M> {
    cfg: NetworkConfig,
    rng: StdRng,
    in_flight: Vec<Envelope<M>>,
    /// Per-directed-link fault overlays, possibly time-windowed.
    link_faults: BTreeMap<(ReplicaId, ReplicaId), TimedFault>,
    /// Simulation round, advanced by the driver; gates fault windows.
    round: u64,
    /// Counters for observability.
    pub sent: u64,
    /// Messages duplicated by the fabric.
    pub duplicated: u64,
    /// Messages dropped by the fabric.
    pub dropped: u64,
}

impl<M: Clone> Network<M> {
    /// A fabric with the given fault model.
    pub fn new(cfg: NetworkConfig) -> Self {
        Network {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            in_flight: Vec::new(),
            link_faults: BTreeMap::new(),
            round: 0,
            sent: 0,
            duplicated: 0,
            dropped: 0,
        }
    }

    /// Advance the fabric's clock by one round. Drivers call this once
    /// per simulation round so time-windowed link faults engage and
    /// expire on schedule.
    pub fn advance_round(&mut self) {
        self.round += 1;
        let round = self.round;
        self.link_faults
            .retain(|_, t| t.window.as_ref().is_none_or(|w| round < w.end));
    }

    /// The fabric's current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Overlay `fault` on the directed link `from → to` until cleared.
    pub fn set_link_fault(&mut self, from: ReplicaId, to: ReplicaId, fault: LinkFault) {
        self.link_faults.insert(
            (from, to),
            TimedFault {
                fault,
                window: None,
            },
        );
    }

    /// Overlay `fault` on the directed link `from → to` for the round
    /// window `rounds` (self-clearing — the time-varying form for
    /// drivers that program the fabric up front; the scenario layer
    /// instead sets/clears faults event-by-event, because a link *heal*
    /// is also where its repair policy runs).
    pub fn set_link_fault_during(
        &mut self,
        from: ReplicaId,
        to: ReplicaId,
        fault: LinkFault,
        rounds: Range<u64>,
    ) {
        self.link_faults.insert(
            (from, to),
            TimedFault {
                fault,
                window: Some(rounds),
            },
        );
    }

    /// Remove any fault overlay from the directed link `from → to`.
    pub fn clear_link_fault(&mut self, from: ReplicaId, to: ReplicaId) {
        self.link_faults.remove(&(from, to));
    }

    /// Sever both directions of the edge `a ↔ b` (a partition cut).
    pub fn block_edge(&mut self, a: ReplicaId, b: ReplicaId) {
        self.set_link_fault(a, b, LinkFault::BLOCKED);
        self.set_link_fault(b, a, LinkFault::BLOCKED);
    }

    /// Restore both directions of the edge `a ↔ b`.
    pub fn unblock_edge(&mut self, a: ReplicaId, b: ReplicaId) {
        self.clear_link_fault(a, b);
        self.clear_link_fault(b, a);
    }

    /// The fault currently active on `from → to`, if any.
    pub fn link_fault(&self, from: ReplicaId, to: ReplicaId) -> Option<LinkFault> {
        self.link_faults.get(&(from, to)).and_then(|t| {
            t.window
                .as_ref()
                .is_none_or(|w| w.contains(&self.round))
                .then_some(t.fault)
        })
    }

    /// Submit a message for delivery.
    pub fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: M) {
        self.sent += 1;
        let link = self.link_fault(from, to);
        let drop_prob = link.map_or(0.0, |l| l.drop_prob).max(self.cfg.drop_prob);
        if drop_prob > 0.0 && (drop_prob >= 1.0 || self.rng.gen_bool(drop_prob)) {
            self.dropped += 1;
            return;
        }
        let dup_prob = link
            .map_or(0.0, |l| l.duplicate_prob)
            .max(self.cfg.duplicate_prob);
        if dup_prob > 0.0 && self.rng.gen_bool(dup_prob) {
            self.duplicated += 1;
            self.in_flight.push(Envelope {
                from,
                to,
                msg: msg.clone(),
            });
        }
        self.in_flight.push(Envelope { from, to, msg });
    }

    /// Take everything currently in flight, in (possibly shuffled)
    /// delivery order.
    pub fn flush(&mut self) -> Vec<Envelope<M>> {
        let mut batch = std::mem::take(&mut self.in_flight);
        if self.cfg.reorder {
            // Fisher-Yates with the seeded RNG.
            for i in (1..batch.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                batch.swap(i, j);
            }
        } else if !self.link_faults.is_empty() {
            // Per-link reordering: shuffle each reordering link's
            // messages among their own positions, leaving other traffic
            // in order.
            let links: Vec<(ReplicaId, ReplicaId)> = self
                .link_faults
                .keys()
                .copied()
                .filter(|(f, t)| self.link_fault(*f, *t).is_some_and(|l| l.reorder))
                .collect();
            for (f, t) in links {
                let idx: Vec<usize> = batch
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.from == f && e.to == t)
                    .map(|(i, _)| i)
                    .collect();
                for i in (1..idx.len()).rev() {
                    let j = self.rng.gen_range(0..=i);
                    batch.swap(idx[i], idx[j]);
                }
            }
        }
        batch
    }

    /// Anything still queued?
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    #[test]
    fn reliable_fabric_delivers_in_order() {
        let mut net: Network<u32> = Network::new(NetworkConfig::reliable(1));
        net.send(A, B, 1);
        net.send(A, B, 2);
        let got: Vec<u32> = net.flush().into_iter().map(|e| e.msg).collect();
        assert_eq!(got, vec![1, 2]);
        assert!(net.is_idle());
        assert_eq!(net.sent, 2);
        assert_eq!(net.dropped, 0);
    }

    #[test]
    fn duplication_produces_extra_copies() {
        let mut net: Network<u32> = Network::new(NetworkConfig {
            duplicate_prob: 1.0,
            reorder: false,
            drop_prob: 0.0,
            seed: 7,
        });
        net.send(A, B, 9);
        let got = net.flush();
        assert_eq!(got.len(), 2, "always-duplicate config doubles messages");
        assert_eq!(net.duplicated, 1);
    }

    #[test]
    fn drops_remove_messages() {
        let mut net: Network<u32> = Network::new(NetworkConfig {
            duplicate_prob: 0.0,
            reorder: false,
            drop_prob: 1.0,
            seed: 7,
        });
        net.send(A, B, 9);
        assert!(net.flush().is_empty());
        assert_eq!(net.dropped, 1);
    }

    #[test]
    fn blocked_links_drop_everything_and_unblock_restores() {
        let mut net: Network<u32> = Network::new(NetworkConfig::reliable(3));
        net.block_edge(A, B);
        net.send(A, B, 1);
        net.send(B, A, 2);
        assert!(net.flush().is_empty());
        assert_eq!(net.dropped, 2);
        // Unrelated links are unaffected.
        net.send(A, ReplicaId(2), 3);
        assert_eq!(net.flush().len(), 1);
        net.unblock_edge(A, B);
        net.send(A, B, 4);
        assert_eq!(net.flush().len(), 1);
    }

    #[test]
    fn windowed_link_fault_expires_with_the_clock() {
        let mut net: Network<u32> = Network::new(NetworkConfig::reliable(3));
        // Active for rounds 0..2.
        net.set_link_fault_during(A, B, LinkFault::BLOCKED, 0..2);
        net.send(A, B, 1);
        assert!(net.flush().is_empty(), "round 0: blocked");
        net.advance_round();
        net.send(A, B, 2);
        assert!(net.flush().is_empty(), "round 1: still blocked");
        net.advance_round();
        net.send(A, B, 3);
        assert_eq!(net.flush().len(), 1, "round 2: window expired");
        assert!(net.link_fault(A, B).is_none(), "expired fault is pruned");
    }

    #[test]
    fn per_link_duplication_composes_with_reliable_fabric() {
        let mut net: Network<u32> = Network::new(NetworkConfig::reliable(7));
        net.set_link_fault(
            A,
            B,
            LinkFault {
                drop_prob: 0.0,
                duplicate_prob: 1.0,
                reorder: false,
            },
        );
        net.send(A, B, 9);
        net.send(B, A, 9);
        let got = net.flush();
        assert_eq!(got.len(), 3, "A→B doubled, B→A untouched");
        assert_eq!(net.duplicated, 1);
    }

    #[test]
    fn per_link_reorder_shuffles_only_that_link() {
        let run = |seed| {
            let mut net: Network<u32> = Network::new(NetworkConfig::reliable(seed));
            net.set_link_fault(A, B, LinkFault::flaky(0.0, 0.0));
            for i in 0..12 {
                net.send(A, B, i);
                net.send(B, A, i);
            }
            let batch = net.flush();
            let ab: Vec<u32> = batch
                .iter()
                .filter(|e| e.from == A)
                .map(|e| e.msg)
                .collect();
            let ba: Vec<u32> = batch
                .iter()
                .filter(|e| e.from == B)
                .map(|e| e.msg)
                .collect();
            (ab, ba)
        };
        let (ab, ba) = run(11);
        assert_eq!(ba, (0..12).collect::<Vec<u32>>(), "untouched link in order");
        assert_ne!(ab, (0..12).collect::<Vec<u32>>(), "faulted link shuffled");
        assert_eq!(run(11), run(11), "deterministic per seed");
    }

    #[test]
    fn reordering_is_deterministic_per_seed() {
        let run = |seed| {
            let mut net: Network<u32> = Network::new(NetworkConfig {
                duplicate_prob: 0.0,
                reorder: true,
                drop_prob: 0.0,
                seed,
            });
            for i in 0..20 {
                net.send(A, B, i);
            }
            net.flush().into_iter().map(|e| e.msg).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42), "same seed, same order");
        assert_ne!(run(42), run(43), "different seed, different order");
    }
}
