//! # crdt-sim
//!
//! Deterministic round-based network simulator for CRDT synchronization
//! experiments — the substrate standing in for the paper's Emulab/
//! Kubernetes cluster (§V-A).
//!
//! * [`Topology`] — the paper's 15-node partial mesh and tree (Fig. 6)
//!   plus rings, lines, stars, full meshes and seeded random graphs;
//! * [`Network`] — a message fabric with seeded duplication/reordering
//!   (the §II channel model) and optional drops for the acked variant;
//! * [`Runner`] — drives one [`crdt_sync::Protocol`] per node through
//!   rounds of "update, synchronize, deliver" and collects
//! * [`RunMetrics`] — transmission in elements and payload/metadata bytes,
//!   per-round memory snapshots, and protocol CPU time: exactly the
//!   quantities of Figs. 1 and 7–12;
//! * [`ShardedEngineRunner`] — the unified sharded runner: per-object
//!   engines of any [`crdt_sync::ProtocolKind`] (the paper's 30 K-object
//!   Retwis granularity), thread-parallel phases, scenario events at
//!   node level, and per-destination [`crdt_sync::BatchEnvelope`]
//!   batching so wire frames per round are O(links), not O(objects);
//! * [`ScenarioSchedule`] / [`run_scenario`] — fault & churn scenarios
//!   beyond the paper's static setup: partitions that heal, crashes with
//!   and without durable state, joins with bootstrap, flapping links —
//!   driven on the clock against [`DynRunner`], measuring convergence
//!   rounds, bytes to re-converge, repair traffic and staleness windows.
//!
//! Every quantity the paper reports is a *protocol* property, not a
//! network property, so a deterministic simulation reproduces the shapes
//! (who wins, by what factor) without a testbed; see DESIGN.md for the
//! substitution argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dyn_runner;
mod metrics;
mod network;
mod parallel;
mod runner;
mod scenario;
mod sharded;
mod sharded_engine;
mod topology;

pub use dyn_runner::{run_dyn_experiment, DynRunner};
pub use metrics::{RoundMetrics, RunMetrics};
pub use network::{Envelope, LinkFault, Network, NetworkConfig};
pub use parallel::ParallelRunner;
pub use runner::{run_experiment, Runner, Workload};
pub use scenario::{run_scenario, ScenarioEvent, ScenarioOutcome, ScenarioSchedule};
pub use sharded::{KeyedOp, ShardedDeltaRunner};
pub use sharded_engine::{register_runner_metrics, ShardedEngineRunner};
pub use topology::{DynamicTopology, Topology};
