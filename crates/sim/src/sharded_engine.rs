//! The unified sharded runner: per-object engines of **any**
//! [`ProtocolKind`], thread-parallel, scenario-capable, with
//! per-destination envelope batching.
//!
//! [`crate::ShardedDeltaRunner`] runs the paper's Retwis granularity (one
//! independent δ-buffer per object, §V-C) but is hard-wired to
//! `DeltaSync`, single-threaded, and fault-free. This runner closes that
//! gap by combining the workspace's three orthogonal subsystems:
//!
//! * **protocol-generic** — every object is a `Box<dyn SyncEngine + Send>`
//!   built by [`crdt_sync::build_engine_send_with_model`], so the same
//!   runner drives all nine [`ProtocolKind`]s at 30 K-object scale;
//! * **thread-parallel** — nodes share nothing within a phase, so the
//!   expensive phases parallelize across nodes exactly like
//!   [`crate::ParallelRunner`]'s deterministic phase model: contiguous
//!   node chunks per thread, delivery grouped by recipient, replies
//!   looping to quiescence. Deterministic accounting is identical across
//!   thread counts;
//! * **batched** — all of one node's per-object envelopes bound for one
//!   recipient in a round coalesce into a single
//!   [`crdt_sync::BatchEnvelope`] wire frame (the same frame
//!   `delta-store`'s transport ships), so [`RoundMetrics::messages`] is
//!   O(links) per round, independent of object count, while
//!   [`RoundMetrics::envelopes`] keeps counting per-object protocol
//!   envelopes — their ratio is the batch-amortization factor;
//! * **scenario-capable** — [`crate::ScenarioEvent`]s apply at the *node*
//!   level across all of its objects: a crash takes every shard down (a
//!   non-durable one wipes them), a heal repairs every object pairwise, a
//!   join bootstraps the full keyspace. Link-level fault overlays need
//!   the seeded [`crate::Network`] fabric and stay with
//!   [`crate::DynRunner`].
//!
//! At `threads = 1` with a δ-kind, deterministic accounting (elements,
//! payload/metadata bytes, memory, per-object envelopes) is byte-identical
//! to [`crate::ShardedDeltaRunner`] — the parity property test in
//! `tests/sharded_engine_parity.rs` pins that.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::Mutex;
use std::time::Instant;

use crdt_lattice::{ReplicaId, SizeModel, Sizeable, WireEncode};
use crdt_obs::{EventKind, Obs};
use crdt_sync::digest::{digest_repair_deltas, PairSyncStats};
use crdt_sync::{
    build_engine_send_with_model, diff_keys, BatchEnvelope, BufferPool, DeltaMsg, Measured,
    MerkleRepairMetrics, MerkleTree, OpBytes, Params, ProtocolKind, SyncEngine, WireAccounting,
    WireEnvelope, DEFAULT_MERKLE_DEPTH, MERKLE_REPAIR_THRESHOLD,
};
use crdt_types::Crdt;

use crate::metrics::{phase_split, RoundMetrics, RunMetrics};
use crate::scenario::ScenarioEvent;
use crate::sharded::KeyedOp;
use crate::topology::{DynamicTopology, Topology};

/// One node's keyspace: object key → that object's type-erased engine.
type EngineMap<K> = BTreeMap<K, Box<dyn SyncEngine + Send>>;

/// One node's phase output: driver (routing/framing) nanos, protocol
/// nanos, and per-destination batches.
type PhaseOutput<K> = (u64, u64, Vec<(ReplicaId, BatchEnvelope<K>)>);

/// A batch in flight: `(from, to, frame)`.
type InFlight<K> = (ReplicaId, ReplicaId, BatchEnvelope<K>);

use crate::parallel::{par_map_chunked as par_map, par_map_chunked_ctx as par_map_ctx};

/// Runner-level observability: registry cells the driver bumps plus
/// the trace-event hook. Attached via
/// [`ShardedEngineRunner::set_obs`]; absent by default (zero cost).
#[derive(Clone, Debug)]
struct RunnerObs {
    obs: Obs,
    /// `sim.runner.rounds` — synchronization rounds driven.
    rounds: crdt_obs::Counter,
    /// `sim.runner.undeliverable` — batches dropped at delivery (down
    /// node or active partition).
    undeliverable: crdt_obs::Counter,
    /// Shared `repair.*` cells (Merkle descents + pairwise sessions).
    repair: MerkleRepairMetrics,
}

/// Register (or look up) the runner-level cells: the `sim.runner.*`
/// counters plus the shared `repair.*` namespace.
fn runner_cells(
    reg: &crdt_obs::Registry,
) -> (crdt_obs::Counter, crdt_obs::Counter, MerkleRepairMetrics) {
    (
        crdt_obs::register_counter!(reg, "sim.runner.rounds", "synchronization rounds driven"),
        crdt_obs::register_counter!(
            reg,
            "sim.runner.undeliverable",
            "batches dropped at delivery (down node or active partition)"
        ),
        MerkleRepairMetrics::register(reg),
    )
}

/// Register every runner-layer metric in `reg` (idempotent) without
/// building a runner — the golden-name gate enumerates the `sim.*` and
/// `repair.*` namespaces through this.
pub fn register_runner_metrics(reg: &crdt_obs::Registry) {
    let _ = runner_cells(reg);
}

/// The unified sharded runner (see module docs).
#[derive(Debug)]
pub struct ShardedEngineRunner<K: Ord, C: Crdt> {
    kind: ProtocolKind,
    topo: DynamicTopology,
    model: SizeModel,
    params: Params,
    threads: usize,
    nodes: Vec<EngineMap<K>>,
    /// Per-worker encode scratch, round-robin across rounds: worker `w`
    /// owns `pools[w]` for every phase it runs, so steady-state rounds
    /// reuse the same buffers instead of allocating per envelope (see
    /// `crdt_sync::BufferPool`). Grown lazily by the chunked par-map.
    pools: Vec<BufferPool>,
    metrics: RunMetrics,
    /// Cumulative out-of-band recovery traffic (digest repair and
    /// bootstrap transfers).
    repair: PairSyncStats,
    /// Batches discarded at delivery because the recipient was down or
    /// across an active partition.
    undeliverable: u64,
    /// Last crash durability per node (drives the restart repair policy).
    durability: Vec<bool>,
    round: usize,
    /// Observability hook, attached via [`ShardedEngineRunner::set_obs`].
    obs: Option<RunnerObs>,
    _crdt: PhantomData<fn() -> C>,
}

impl<K, C> ShardedEngineRunner<K, C>
where
    K: Ord + Clone + core::fmt::Debug + Sizeable + std::hash::Hash + WireEncode + Send + Sync,
    C: Crdt + WireEncode + Send + 'static,
    C::Op: WireEncode + Send + Sync + 'static,
{
    /// Build a runner over `topology`: protocol `kind` for every object,
    /// `threads` worker threads (clamped to ≥ 1). Objects are created
    /// lazily at `⊥` when first updated or received.
    pub fn new(kind: ProtocolKind, topology: Topology, model: SizeModel, threads: usize) -> Self {
        let n = topology.len();
        ShardedEngineRunner {
            kind,
            topo: DynamicTopology::new(topology),
            model,
            params: Params::new(n),
            threads: threads.max(1),
            nodes: (0..n).map(|_| BTreeMap::new()).collect(),
            pools: Vec::new(),
            metrics: RunMetrics::new(n),
            repair: PairSyncStats::default(),
            undeliverable: 0,
            durability: vec![true; n],
            round: 0,
            obs: None,
            _crdt: PhantomData,
        }
    }

    /// Attach an observability bundle: the runner registers its
    /// `sim.runner.*` / `repair.*` cells in `obs.registry`, drives
    /// `obs.clock` to its round counter, and emits trace events for
    /// rounds, faults, and repair descents.
    pub fn set_obs(&mut self, obs: &Obs) {
        let (rounds, undeliverable, repair) = runner_cells(&obs.registry);
        self.obs = Some(RunnerObs {
            obs: obs.clone(),
            rounds,
            undeliverable,
            repair,
        });
    }

    /// The protocol every object runs.
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// The (base) topology driving this run.
    pub fn topology(&self) -> &Topology {
        self.topo.base()
    }

    /// The live membership/partition view.
    pub fn membership(&self) -> &DynamicTopology {
        &self.topo
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Consume, returning the metrics.
    pub fn into_metrics(self) -> RunMetrics {
        self.metrics
    }

    /// Cumulative out-of-band recovery traffic.
    pub fn repair_stats(&self) -> PairSyncStats {
        self.repair
    }

    /// Batches dropped because the recipient was down or unreachable.
    pub fn undeliverable(&self) -> u64 {
        self.undeliverable
    }

    /// Number of distinct objects hosted at `node`.
    pub fn objects_at(&self, node: ReplicaId) -> usize {
        self.nodes[node.index()].len()
    }

    /// A node's replica of one object, typed, if it exists.
    pub fn object_state(&self, node: ReplicaId, key: &K) -> Option<&C> {
        self.nodes[node.index()]
            .get(key)
            .map(|e| Self::typed_state(e.as_ref()))
    }

    fn typed_state(engine: &dyn SyncEngine) -> &C {
        engine
            .state_any()
            .downcast_ref::<C>()
            .expect("runner engines are always built over C")
    }

    fn engine_at<'a>(
        map: &'a mut EngineMap<K>,
        key: &K,
        node: ReplicaId,
        kind: ProtocolKind,
        params: &Params,
        model: SizeModel,
    ) -> &'a mut Box<dyn SyncEngine + Send> {
        map.entry(key.clone())
            .or_insert_with(|| build_engine_send_with_model::<C>(kind, node, params, model))
    }

    fn account_batch(rm: &mut RoundMetrics, batch: &BatchEnvelope<K>, model: &SizeModel) {
        rm.messages += 1;
        rm.envelopes += batch.len() as u64;
        rm.payload_elements += batch.payload_elements();
        rm.payload_bytes += batch.payload_bytes(model);
        rm.metadata_bytes += batch.metadata_bytes(model);
    }

    /// Run one round: apply this round's keyed ops, synchronize every
    /// object, deliver per-destination batches (and push-pull replies) to
    /// quiescence, snapshot memory — the four phases of every runner in
    /// this crate, each parallelized across nodes.
    ///
    /// `ops_per_node` may be *shorter* than the current node count:
    /// replicas that joined after the trace was materialized simply
    /// execute no workload ops (they still synchronize). It must never
    /// be longer.
    pub fn step(&mut self, ops_per_node: &[Vec<KeyedOp<K, C>>]) {
        assert!(
            ops_per_node.len() <= self.nodes.len(),
            "ops for {} nodes but the cluster has {}",
            ops_per_node.len(),
            self.nodes.len()
        );
        let mut rm = RoundMetrics::default();
        if let Some(o) = &self.obs {
            o.obs.clock.advance_to(self.round as u64 + 1);
            o.obs.trace(
                crdt_obs::CLUSTER_NODE,
                EventKind::SyncRoundStart,
                self.round as u64,
                0,
            );
        }
        let (kind, params, model, threads) = (self.kind, self.params, self.model, self.threads);
        let topo = &self.topo;

        // Phase 1: local operations, routed to their object, in parallel
        // across nodes. Encoding and shard routing are driver work
        // (workload_nanos); only `on_op` is protocol CPU.
        let timings: Vec<(u64, u64)> = par_map(&mut self.nodes, threads, |i, shards| {
            let node = ReplicaId::from(i);
            if !topo.is_alive(node) {
                return (0, 0);
            }
            let (mut route, mut cpu) = (0u64, 0u64);
            let ops = ops_per_node.get(i).map_or(&[][..], Vec::as_slice);
            for (key, op) in ops {
                let t_route = Instant::now();
                let bytes = OpBytes::encode(op);
                let engine = Self::engine_at(shards, key, node, kind, &params, model);
                route += t_route.elapsed().as_nanos() as u64;
                let t0 = Instant::now();
                engine
                    .on_op(&bytes)
                    .expect("engine rejected its own CRDT's op encoding");
                cpu += t0.elapsed().as_nanos() as u64;
            }
            (route, cpu)
        });
        rm.workload_nanos += timings.iter().map(|(r, _)| r).sum::<u64>();
        let cpu: Vec<u64> = timings.iter().map(|(_, c)| *c).collect();
        let (work, critical) = phase_split(&cpu, threads);
        rm.cpu_nanos += work;
        rm.critical_path_nanos += critical;

        // Phase 2: per-object synchronization at every live node, in
        // parallel; each node coalesces everything bound for one
        // neighbor into a single batch frame. Senders address their full
        // neighbor list — crashes and cuts are not learned synchronously;
        // undeliverable frames are discarded in phase 3.
        // Per node: (framing nanos, protocol nanos, batches). Only the
        // `on_sync` callbacks are protocol CPU; coalescing envelopes
        // into per-destination frames (key clones, map inserts) is
        // driver work, metered as workload_nanos — the same split every
        // other phase and runner uses, so cpu_nanos stays comparable
        // across runners.
        let sync_out: Vec<PhaseOutput<K>> = par_map_ctx(
            &mut self.nodes,
            threads,
            &mut self.pools,
            BufferPool::new,
            |i, shards, pool| {
                let node = ReplicaId::from(i);
                if !topo.is_alive(node) {
                    return (0, 0, Vec::new());
                }
                let targets = topo.base().neighbors(node).to_vec();
                let (mut route, mut cpu) = (0u64, 0u64);
                let mut batches: BTreeMap<ReplicaId, BatchEnvelope<K>> = BTreeMap::new();
                for (key, engine) in shards.iter_mut() {
                    let t0 = Instant::now();
                    let out = engine.on_sync_pooled(&targets, pool);
                    cpu += t0.elapsed().as_nanos() as u64;
                    let t_route = Instant::now();
                    for env in out {
                        batches.entry(env.to).or_default().push(key.clone(), env);
                    }
                    route += t_route.elapsed().as_nanos() as u64;
                }
                (route, cpu, batches.into_iter().collect())
            },
        );
        let mut wave: Vec<InFlight<K>> = Vec::new();
        let mut phase: Vec<u64> = Vec::with_capacity(sync_out.len());
        for (i, (route, cpu, batches)) in sync_out.into_iter().enumerate() {
            rm.workload_nanos += route;
            phase.push(cpu);
            for (to, batch) in batches {
                Self::account_batch(&mut rm, &batch, &model);
                wave.push((ReplicaId::from(i), to, batch));
            }
        }
        let (work, critical) = phase_split(&phase, threads);
        rm.cpu_nanos += work;
        rm.critical_path_nanos += critical;

        // Phase 3: delivery waves until quiescence. Each recipient
        // absorbs its inbox (in deterministic (sender, emission) order)
        // on exactly one thread; push-pull replies re-batch per
        // destination and ride the next wave. Frames to down nodes or
        // across an active partition are dropped.
        while !wave.is_empty() {
            let n = self.nodes.len();
            let mut inboxes: Vec<Vec<InFlight<K>>> = Vec::with_capacity(n);
            inboxes.resize_with(n, Vec::new);
            for (from, to, batch) in wave.drain(..) {
                if !topo.link_open(from, to) {
                    self.undeliverable += 1;
                    if let Some(o) = &self.obs {
                        o.undeliverable.inc();
                    }
                    continue;
                }
                inboxes[to.index()].push((from, to, batch));
            }
            let inboxes_ref = Mutex::new(inboxes);
            // Shard lookup and lazy engine construction are driver work,
            // metered apart from the `on_msg` callbacks — the same split
            // as phase 1 and `ShardedDeltaRunner`'s delivery phase.
            let replies: Vec<PhaseOutput<K>> = par_map_ctx(
                &mut self.nodes,
                threads,
                &mut self.pools,
                BufferPool::new,
                |i, shards, pool| {
                    let inbox = {
                        let mut guard = inboxes_ref.lock().expect("inbox lock");
                        std::mem::take(&mut guard[i])
                    };
                    if inbox.is_empty() {
                        return (0, 0, Vec::new());
                    }
                    let node = ReplicaId::from(i);
                    let (mut route, mut cpu) = (0u64, 0u64);
                    let mut batches: BTreeMap<ReplicaId, BatchEnvelope<K>> = BTreeMap::new();
                    for (_, _, batch) in inbox {
                        for (key, env) in batch.entries {
                            let t_route = Instant::now();
                            let engine = Self::engine_at(shards, &key, node, kind, &params, model);
                            route += t_route.elapsed().as_nanos() as u64;
                            let t0 = Instant::now();
                            let out = engine
                                .on_msg_pooled(env, pool)
                                .expect("uniform-protocol run cannot mismatch kinds");
                            cpu += t0.elapsed().as_nanos() as u64;
                            for reply in out {
                                batches
                                    .entry(reply.to)
                                    .or_default()
                                    .push(key.clone(), reply);
                            }
                        }
                    }
                    (route, cpu, batches.into_iter().collect())
                },
            );
            let mut phase: Vec<u64> = Vec::with_capacity(replies.len());
            for (i, (route, cpu, batches)) in replies.into_iter().enumerate() {
                rm.workload_nanos += route;
                phase.push(cpu);
                for (to, batch) in batches {
                    Self::account_batch(&mut rm, &batch, &model);
                    wave.push((ReplicaId::from(i), to, batch));
                }
            }
            let (work, critical) = phase_split(&phase, threads);
            rm.cpu_nanos += work;
            rm.critical_path_nanos += critical;
        }

        // Phase 4: memory snapshot over live nodes (a down process
        // occupies no memory), in parallel. Keys are charged to CRDT
        // bytes exactly like `ShardedDeltaRunner` — parity depends on it.
        let mems: Vec<(u64, u64, u64, u64)> = par_map(&mut self.nodes, threads, |i, shards| {
            if !topo.is_alive(ReplicaId::from(i)) {
                return (0, 0, 0, 0);
            }
            let mut acc = (0, 0, 0, 0);
            for (key, engine) in shards.iter() {
                let m = engine.memory();
                acc.0 += m.crdt_elements;
                acc.1 += m.crdt_bytes + key.payload_bytes(&model);
                acc.2 += m.meta_elements;
                acc.3 += m.meta_bytes;
            }
            acc
        });
        for (ce, cb, me, mb) in mems {
            rm.memory.crdt_elements += ce;
            rm.memory.crdt_bytes += cb;
            rm.memory.meta_elements += me;
            rm.memory.meta_bytes += mb;
        }

        if let Some(o) = &self.obs {
            o.rounds.inc();
            o.obs.trace(
                crdt_obs::CLUSTER_NODE,
                EventKind::SyncRoundEnd,
                self.round as u64,
                rm.messages,
            );
        }
        self.metrics.push_round(rm);
        self.round += 1;
    }

    /// Have all **live** replicas of every object reached the same state?
    /// (Key sets must match: missing key = `⊥` ≠ non-`⊥`.)
    pub fn converged(&self) -> bool {
        let alive = self.topo.alive_nodes();
        let Some((&first, rest)) = alive.split_first() else {
            return true;
        };
        let reference = &self.nodes[first.index()];
        rest.iter().all(|&id| {
            let node = &self.nodes[id.index()];
            node.len() == reference.len()
                && node
                    .iter()
                    .zip(reference.iter())
                    .all(|((k1, e1), (k2, e2))| k1 == k2 && e1.state_eq(e2.as_ref()))
        })
    }

    /// Keep synchronizing without new ops until convergence (or give up
    /// after `max_rounds`). Returns the extra rounds taken — the exact
    /// contract of [`crate::ShardedDeltaRunner::run_to_convergence`]
    /// (`None` once the budget is exhausted, even if the final step
    /// happened to converge), which the parity property test compares
    /// round for round.
    pub fn run_to_convergence(&mut self, max_rounds: usize) -> Option<usize> {
        let idle: Vec<Vec<KeyedOp<K, C>>> = vec![Vec::new(); self.nodes.len()];
        for extra in 0..=max_rounds {
            if self.converged() {
                return Some(extra);
            }
            self.step(&idle);
        }
        None
    }

    /// Run `rounds[r][node]` keyed operations round by round (the shape
    /// `crdt-workloads`' `RetwisTrace` materializes).
    pub fn run_rounds(&mut self, rounds: &[Vec<Vec<KeyedOp<K, C>>>]) {
        for ops in rounds {
            self.step(ops);
        }
    }

    /// Drive a [`crate::ScenarioSchedule`]'s events against the trace:
    /// events scheduled at round `r` apply before round `r` runs; events
    /// at or past the trace length fire after the last round.
    ///
    /// # Panics
    ///
    /// On [`ScenarioEvent::LinkFault`]/[`ScenarioEvent::LinkHeal`] —
    /// link-level fault overlays need the seeded [`crate::Network`]
    /// fabric; drive those scenarios with [`crate::DynRunner`].
    pub fn run_schedule(
        &mut self,
        rounds: &[Vec<Vec<KeyedOp<K, C>>>],
        schedule: &crate::scenario::ScenarioSchedule,
    ) {
        for (r, ops) in rounds.iter().enumerate() {
            for event in schedule.events_at(r) {
                self.apply_event(event);
            }
            self.step(ops);
        }
        let boundary: Vec<ScenarioEvent> = schedule.events_from(rounds.len()).cloned().collect();
        for event in boundary {
            self.apply_event(&event);
        }
    }

    // -----------------------------------------------------------------
    // Fault & membership control — node-level, across all objects
    // -----------------------------------------------------------------

    /// Apply one scenario event at node granularity. Restarts follow the
    /// repair policy of the scenario layer: a durable restart of a
    /// loss-recovering protocol needs no help; everything else is
    /// stitched back through a live peer, per object.
    pub fn apply_event(&mut self, event: &ScenarioEvent) {
        match event {
            ScenarioEvent::Partition { groups } => self.set_partition(groups),
            ScenarioEvent::Heal => self.heal_partition(),
            ScenarioEvent::Crash { node, durable } => {
                self.crash_node(ReplicaId::from(*node), *durable);
            }
            ScenarioEvent::Restart { node } => {
                let id = ReplicaId::from(*node);
                self.topo.set_alive(id, true);
                if self.durability[*node] && self.kind.recovers_from_loss() {
                    return;
                }
                let peer = {
                    let m = &self.topo;
                    m.reachable_neighbors(id)
                        .into_iter()
                        .next()
                        .or_else(|| m.alive_nodes().into_iter().find(|&p| p != id))
                };
                if let Some(peer) = peer {
                    self.repair_pair(id, peer);
                }
            }
            ScenarioEvent::Join { links, bootstrap } => {
                let links: Vec<ReplicaId> = links.iter().map(|&l| ReplicaId::from(l)).collect();
                self.join_node(&links, Some(ReplicaId::from(*bootstrap)));
            }
            ScenarioEvent::LinkFault { .. } | ScenarioEvent::LinkHeal { .. } => {
                panic!(
                    "link-level fault overlays need the seeded Network fabric; \
                     drive this schedule with DynRunner/run_scenario"
                );
            }
        }
    }

    /// Crash `node`: while down it executes no phases and every frame
    /// addressed to it is discarded. `durable: false` wipes its entire
    /// keyspace — a cold restart starts from `⊥`.
    pub fn crash_node(&mut self, node: ReplicaId, durable: bool) {
        self.topo.set_alive(node, false);
        self.durability[node.index()] = durable;
        if !durable {
            self.nodes[node.index()].clear();
        }
        if let Some(o) = &self.obs {
            o.obs.trace(
                node.index() as u64,
                EventKind::Crash,
                node.index() as u64,
                durable as u64,
            );
        }
    }

    /// Bring a crashed `node` back; with `bootstrap = Some(peer)` the
    /// pair repairs every object (both directions), charged to
    /// [`ShardedEngineRunner::repair_stats`].
    pub fn restart_node(&mut self, node: ReplicaId, bootstrap: Option<ReplicaId>) {
        self.topo.set_alive(node, true);
        if let Some(o) = &self.obs {
            o.obs.trace(
                node.index() as u64,
                EventKind::Restart,
                node.index() as u64,
                bootstrap.is_some() as u64,
            );
        }
        if let Some(peer) = bootstrap {
            self.repair_pair(node, peer);
        }
    }

    /// Grow the cluster by one node linked to `links`, with an empty
    /// keyspace, bootstrapped per object from `bootstrap` when given.
    /// Returns the joiner's id.
    pub fn join_node(&mut self, links: &[ReplicaId], bootstrap: Option<ReplicaId>) -> ReplicaId {
        let new = self.topo.join(links);
        self.params.n_nodes = self.topo.len();
        self.metrics.n_nodes = self.topo.len();
        self.durability.push(true);
        // Existing engines learn the new size before the joiner is heard
        // from (Scuttlebutt-GC safe-delete safety).
        for shards in &mut self.nodes {
            for engine in shards.values_mut() {
                engine.set_system_size(self.params.n_nodes);
            }
        }
        self.nodes.push(BTreeMap::new());
        if let Some(peer) = bootstrap {
            self.repair_pair(new, peer);
        }
        new
    }

    /// Install a partition (see [`DynamicTopology::set_partition`]).
    pub fn set_partition(&mut self, groups: &[Vec<usize>]) {
        self.topo.set_partition(groups);
        if let Some(o) = &self.obs {
            o.obs.trace(
                crdt_obs::CLUSTER_NODE,
                EventKind::Partition,
                1,
                groups.len() as u64,
            );
        }
    }

    /// Heal the active partition and stitch the sides back together —
    /// the same policy as [`crate::DynRunner::heal_partition`], applied
    /// per object: loss-recovering kinds get nothing, δ-group kinds
    /// repair one representative per side, the op-based middleware
    /// reconciles every live node.
    pub fn heal_partition(&mut self) {
        let reps = self.topo.side_representatives();
        self.topo.clear_partition();
        if let Some(o) = &self.obs {
            o.obs.trace(
                crdt_obs::CLUSTER_NODE,
                EventKind::Partition,
                0,
                reps.len() as u64,
            );
        }
        if reps.len() < 2 || self.kind.recovers_from_loss() {
            return;
        }
        let peers: Vec<ReplicaId> = if self.kind.accepts_raw_delta() {
            reps[1..].to_vec()
        } else {
            self.topo
                .alive_nodes()
                .into_iter()
                .filter(|&n| n != reps[0])
                .collect()
        };
        for _pass in 0..2 {
            for &peer in &peers {
                self.repair_pair(reps[0], peer);
            }
        }
    }

    /// Pairwise repair between two live replicas, per object — the §VI
    /// mechanism at sharded granularity. δ-group kinds run digest-driven
    /// repair per object (only missing join-irreducibles cross the wire,
    /// re-entering the ordinary receive path so novelty keeps
    /// propagating); the remaining kinds bootstrap per object, protocol
    /// metadata included. Traffic lands in
    /// [`ShardedEngineRunner::repair_stats`].
    pub fn repair_pair(&mut self, a: ReplicaId, b: ReplicaId) {
        assert_ne!(a, b, "repair needs two distinct replicas");
        if let Some(o) = &self.obs {
            o.repair.pairs.inc();
        }
        if self.kind.accepts_raw_delta() {
            let union: std::collections::BTreeSet<K> = self.nodes[a.index()]
                .keys()
                .chain(self.nodes[b.index()].keys())
                .cloned()
                .collect();
            // At scale, localize the divergence with a Merkle descent
            // first (O(log n · diverged) control frames, charged as
            // repair metadata) and run the per-object protocol over only
            // the diverged keys; small keyspaces keep the plain sweep,
            // whose accounting the scenario baselines pin.
            let keys: Vec<K> = if union.len() >= MERKLE_REPAIR_THRESHOLD {
                let tree = |node: &EngineMap<K>| {
                    MerkleTree::build(
                        DEFAULT_MERKLE_DEPTH,
                        node.iter().map(|(k, e)| (k.clone(), e.state_hash())),
                    )
                };
                let (diverged, descent) =
                    diff_keys(&tree(&self.nodes[a.index()]), &tree(&self.nodes[b.index()]));
                self.repair.messages += descent.frames as u32;
                self.repair.metadata_bytes += descent.total_bytes();
                if let Some(o) = &self.obs {
                    o.repair.charge(&descent);
                    o.obs.trace(
                        a.index() as u64,
                        EventKind::RepairHop,
                        descent.rounds,
                        descent.total_bytes(),
                    );
                }
                diverged.into_iter().collect()
            } else {
                union.into_iter().collect()
            };
            for key in keys {
                let (delta_for_a, delta_for_b, stats) = {
                    let bottom = C::bottom();
                    let xa = self.object_state(a, &key).unwrap_or(&bottom);
                    let xb = self.object_state(b, &key).unwrap_or(&bottom);
                    digest_repair_deltas(xa, xb, &self.model)
                };
                self.repair.messages += stats.messages;
                self.repair.payload_elements += stats.payload_elements;
                self.repair.payload_bytes += stats.payload_bytes;
                self.repair.metadata_bytes += stats.metadata_bytes;
                if !delta_for_a.is_bottom() {
                    self.inject_delta(b, a, &key, delta_for_a);
                }
                if !delta_for_b.is_bottom() {
                    self.inject_delta(a, b, &key, delta_for_b);
                }
            }
        } else {
            self.bootstrap_pair(a, b);
        }
    }

    /// Bidirectional out-of-band snapshot exchange between `a` and `b`,
    /// object by object (engines created at `⊥` for keys only one side
    /// holds). Each direction is one batched snapshot frame in the
    /// repair accounting.
    fn bootstrap_pair(&mut self, a: ReplicaId, b: ReplicaId) {
        assert_ne!(a, b, "bootstrap needs two distinct replicas");
        let (kind, params, model) = (self.kind, self.params, self.model);
        for (dst, src) in [(a, b), (b, a)] {
            let keys: Vec<K> = self.nodes[src.index()].keys().cloned().collect();
            if keys.is_empty() {
                continue;
            }
            let (lo, hi) = (dst.index().min(src.index()), dst.index().max(src.index()));
            let (left, right) = self.nodes.split_at_mut(hi);
            let (dst_map, src_map) = if dst.index() < src.index() {
                (&mut left[lo], &mut right[0])
            } else {
                (&mut right[0], &mut left[lo])
            };
            self.repair.messages += 1;
            for key in keys {
                let source = src_map.get(&key).expect("key listed from src");
                let acc = Self::engine_at(dst_map, &key, dst, kind, &params, model)
                    .bootstrap_from(source.as_ref())
                    .expect("uniform-protocol run cannot mismatch kinds");
                self.repair.payload_elements += acc.payload_elements;
                self.repair.payload_bytes += acc.payload_bytes;
            }
        }
    }

    /// Feed a repaired δ-group for `key` into `to`'s engine as if `from`
    /// had sent it, through the ordinary receive path.
    fn inject_delta(&mut self, from: ReplicaId, to: ReplicaId, key: &K, delta: C) {
        let msg = DeltaMsg(delta);
        let payload = msg.to_bytes();
        let accounting = WireAccounting {
            payload_elements: msg.payload_elements(),
            payload_bytes: msg.payload_bytes(&self.model),
            metadata_bytes: msg.metadata_bytes(&self.model),
            encoded_bytes: payload.len() as u64,
        };
        let env = WireEnvelope {
            from,
            to,
            kind: self.kind,
            payload: payload.into(),
            accounting,
        };
        let (kind, params, model) = (self.kind, self.params, self.model);
        if self.pools.is_empty() {
            self.pools.push(BufferPool::new());
        }
        let pool = &mut self.pools[0];
        let replies = Self::engine_at(&mut self.nodes[to.index()], key, to, kind, &params, model)
            .on_msg_pooled(env, pool)
            .expect("raw delta injection matches the configured protocol");
        debug_assert!(replies.is_empty(), "delta-family kinds never reply");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSchedule;
    use crdt_types::{GSet, GSetOp};

    type R = ShardedEngineRunner<u32, GSet<u64>>;
    type RoundOps = Vec<Vec<KeyedOp<u32, GSet<u64>>>>;

    fn keyed(n_nodes: usize, per_node: &[(usize, u32, u64)]) -> RoundOps {
        let mut out = vec![Vec::new(); n_nodes];
        for &(node, key, elem) in per_node {
            out[node].push((key, GSetOp::Add(elem)));
        }
        out
    }

    #[test]
    fn every_kind_converges_at_object_granularity() {
        for kind in ProtocolKind::ALL {
            let mut r: R = ShardedEngineRunner::new(
                kind,
                Topology::partial_mesh(6, 4),
                SizeModel::compact(),
                3,
            );
            for round in 0..4u64 {
                let ops: Vec<Vec<KeyedOp<u32, GSet<u64>>>> = (0..6)
                    .map(|node| {
                        vec![
                            ((node % 3) as u32, GSetOp::Add(round * 6 + node as u64)),
                            (100, GSetOp::Add(round * 6 + node as u64)),
                        ]
                    })
                    .collect();
                r.step(&ops);
            }
            r.run_to_convergence(64)
                .unwrap_or_else(|| panic!("{kind} failed to converge"));
            assert_eq!(r.objects_at(ReplicaId(0)), 4, "{kind}");
            assert_eq!(
                r.object_state(ReplicaId(5), &100).unwrap().len(),
                24,
                "{kind} hot object lost elements"
            );
        }
    }

    #[test]
    fn batching_sends_one_frame_per_link_regardless_of_object_count() {
        // 4-node full mesh, every node updates 50 distinct objects: the
        // round must emit 4 × 3 = 12 frames, not 600 envelopes' worth.
        let mut r: R = ShardedEngineRunner::new(
            ProtocolKind::BpRr,
            Topology::full_mesh(4),
            SizeModel::compact(),
            2,
        );
        let ops: Vec<Vec<KeyedOp<u32, GSet<u64>>>> = (0..4)
            .map(|node| {
                (0..50)
                    .map(|k| (k as u32, GSetOp::Add((node * 50 + k) as u64)))
                    .collect()
            })
            .collect();
        r.step(&ops);
        let round = &r.metrics().rounds[0];
        assert_eq!(round.messages, 12, "one frame per directed link");
        assert_eq!(round.envelopes, 4 * 3 * 50, "every object still ships");
        assert!(r.metrics().batch_amortization() > 40.0);
    }

    #[test]
    fn thread_count_does_not_change_accounting() {
        let run = |threads: usize| {
            let mut r: R = ShardedEngineRunner::new(
                ProtocolKind::Scuttlebutt,
                Topology::partial_mesh(9, 4),
                SizeModel::compact(),
                threads,
            );
            for round in 0..5u64 {
                let ops: Vec<Vec<KeyedOp<u32, GSet<u64>>>> = (0..9)
                    .map(|node| vec![((node % 4) as u32, GSetOp::Add(round * 9 + node as u64))])
                    .collect();
                r.step(&ops);
            }
            r.run_to_convergence(64).expect("converges");
            let m = r.metrics();
            (
                m.total_elements(),
                m.total_bytes(),
                m.total_messages(),
                m.total_envelopes(),
                r.object_state(ReplicaId(0), &0).unwrap().clone(),
            )
        };
        let (e1, b1, m1, v1, s1) = run(1);
        let (e4, b4, m4, v4, s4) = run(4);
        let (e16, b16, m16, v16, s16) = run(16);
        assert_eq!((e1, b1, m1, v1), (e4, b4, m4, v4));
        assert_eq!((e4, b4, m4, v4), (e16, b16, m16, v16));
        assert_eq!(s1, s4);
        assert_eq!(s4, s16);
    }

    #[test]
    fn partition_heal_repairs_every_object() {
        let schedule = ScenarioSchedule::new("cut", 8).partition_during(2..6, vec![vec![0, 1]]);
        let mut r: R = ShardedEngineRunner::new(
            ProtocolKind::BpRr,
            Topology::full_mesh(4),
            SizeModel::compact(),
            2,
        );
        let rounds: Vec<RoundOps> = (0..8u64)
            .map(|round| {
                (0..4)
                    .map(|node| vec![(node as u32 % 2, GSetOp::Add(round * 4 + node as u64))])
                    .collect()
            })
            .collect();
        r.run_schedule(&rounds, &schedule);
        assert!(r.undeliverable() > 0, "cross-cut frames were dropped");
        assert!(
            r.repair_stats().payload_elements > 0,
            "heal repaired objects"
        );
        r.run_to_convergence(32).expect("re-converges");
    }

    #[test]
    fn non_durable_crash_restart_rebuilds_the_keyspace() {
        for kind in [
            ProtocolKind::BpRr,
            ProtocolKind::Scuttlebutt,
            ProtocolKind::OpBased,
        ] {
            let mut r: R =
                ShardedEngineRunner::new(kind, Topology::full_mesh(4), SizeModel::compact(), 2);
            r.step(&keyed(4, &[(0, 1, 10), (1, 2, 20), (2, 3, 30)]));
            r.run_to_convergence(16).expect("warm-up");
            r.crash_node(ReplicaId(3), false);
            assert_eq!(r.objects_at(ReplicaId(3)), 0, "{kind}: cold crash wipes");
            r.step(&keyed(4, &[(0, 1, 11)]));
            r.restart_node(ReplicaId(3), Some(ReplicaId(0)));
            r.run_to_convergence(32)
                .unwrap_or_else(|| panic!("{kind} did not re-converge"));
            assert_eq!(r.objects_at(ReplicaId(3)), 3, "{kind}: keyspace restored");
        }
    }

    #[test]
    fn join_bootstraps_all_objects() {
        let mut r: R = ShardedEngineRunner::new(
            ProtocolKind::BpRr,
            Topology::full_mesh(3),
            SizeModel::compact(),
            2,
        );
        r.step(&keyed(3, &[(0, 1, 1), (1, 2, 2)]));
        r.run_to_convergence(16).expect("warm-up");
        let new = r.join_node(&[ReplicaId(0), ReplicaId(2)], Some(ReplicaId(1)));
        assert_eq!(new, ReplicaId(3));
        assert_eq!(r.objects_at(new), 2, "joiner got the whole keyspace");
        let ops = keyed(4, &[(3, 2, 99)]);
        r.step(&ops);
        r.run_to_convergence(16).expect("joiner participates");
        assert!(r.object_state(ReplicaId(0), &2).unwrap().contains(&99));
    }

    #[test]
    fn mid_trace_join_runs_with_a_shorter_trace() {
        // A Join mid-schedule grows the cluster past the materialized
        // trace's node count; later rounds must still run (the joiner
        // executes no workload ops, but synchronizes).
        let schedule = ScenarioSchedule::new("grow", 6).at(
            3,
            ScenarioEvent::Join {
                links: vec![0, 2],
                bootstrap: 0,
            },
        );
        let mut r: R = ShardedEngineRunner::new(
            ProtocolKind::BpRr,
            Topology::full_mesh(3),
            SizeModel::compact(),
            2,
        );
        let rounds: Vec<RoundOps> = (0..6u64)
            .map(|round| {
                (0..3)
                    .map(|node| vec![(node as u32, GSetOp::Add(round * 3 + node as u64))])
                    .collect()
            })
            .collect();
        r.run_schedule(&rounds, &schedule);
        r.run_to_convergence(16).expect("grown cluster converges");
        assert_eq!(r.membership().len(), 4);
        assert_eq!(r.objects_at(ReplicaId(3)), 3, "joiner caught up");
    }

    #[test]
    #[should_panic(expected = "link-level fault overlays")]
    fn link_faults_are_rejected() {
        let mut r: R = ShardedEngineRunner::new(
            ProtocolKind::BpRr,
            Topology::full_mesh(4),
            SizeModel::compact(),
            1,
        );
        r.apply_event(&ScenarioEvent::LinkHeal { a: 0, b: 1 });
    }
}
