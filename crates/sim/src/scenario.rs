//! Fault & churn scenarios: time-indexed schedules of membership and
//! network events, driven against the engine-layer runner.
//!
//! The paper evaluates a fixed 15-node topology over a network that may
//! "drop, duplicate, and reorder" uniformly. Production systems face a
//! harsher regime — partitions that heal, nodes that crash (with or
//! without their disk), replicas that join mid-run, links that flap.
//! This module makes those regimes first-class:
//!
//! * [`ScenarioEvent`] — one fault/membership transition;
//! * [`ScenarioSchedule`] — events keyed by simulation round, with
//!   range-based builders and four built-in scenarios
//!   (`partition_heal`, `churn`, `flapping_link`, `rolling_restart`);
//! * [`run_scenario`] — drives any [`crdt_sync::ProtocolKind`] through a
//!   schedule on a [`DynRunner`] and reports a [`ScenarioOutcome`]:
//!   convergence rounds, bytes to re-converge, repair traffic, and
//!   staleness windows — the quantities `crdt-bench`'s `scenarios`
//!   experiment family records in `BENCH_scenarios.json`.
//!
//! **Clock semantics.** Events scheduled at round `r` are applied *before*
//! round `r` executes (a partition scheduled at 5 blocks round 5's
//! traffic). Events scheduled at or past the schedule's round count fire
//! after the workload, before convergence is driven. The network's
//! per-link fault windows ([`crate::network::LinkFault`]) advance on the
//! same clock.
//!
//! **Repair policy.** Kinds that
//! [`crdt_sync::ProtocolKind::recovers_from_loss`] (Scuttlebutt variants,
//! the acked delta) are left to their own metadata. The rest get the
//! paper's §VI medicine at the disruption boundary: digest-driven pairwise
//! repair for δ-group kinds, bootstrap state transfer otherwise — all
//! charged to the outcome's repair accounting, so the BP/RR ablation
//! extends honestly into fault regimes the paper never measured.

use crdt_lattice::{ReplicaId, SizeModel, WireEncode};
use crdt_sync::ProtocolKind;
use crdt_types::Crdt;

use std::collections::BTreeMap;
use std::ops::Range;

use crate::dyn_runner::DynRunner;
use crate::network::{LinkFault, NetworkConfig};
use crate::runner::Workload;
use crate::topology::Topology;

/// One fault or membership transition.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioEvent {
    /// Split the cluster: each entry of `groups` is one side; unlisted
    /// nodes form the implicit last side. Cross-side traffic is dropped.
    Partition {
        /// Partition sides, as node indices.
        groups: Vec<Vec<usize>>,
    },
    /// Remove the active partition and run the repair policy.
    Heal,
    /// Take `node` down. `durable: true` keeps its state for the restart
    /// (process crash, disk intact); `durable: false` wipes it (cold
    /// restart from `⊥`).
    Crash {
        /// The crashing node.
        node: usize,
        /// Does the node's state survive the crash?
        durable: bool,
    },
    /// Bring a crashed `node` back, repairing/bootstrapping per policy.
    Restart {
        /// The restarting node.
        node: usize,
    },
    /// A new replica joins, linked to `links`, bootstrapped from
    /// `bootstrap`.
    Join {
        /// Existing nodes the joiner links to.
        links: Vec<usize>,
        /// The live peer whose snapshot seeds the joiner.
        bootstrap: usize,
    },
    /// Overlay a fault on both directions of the edge `a ↔ b`.
    LinkFault {
        /// One end of the edge.
        a: usize,
        /// The other end.
        b: usize,
        /// Drop/duplicate/reorder configuration.
        fault: LinkFault,
    },
    /// Clear the fault overlay from `a ↔ b` and repair the pair if the
    /// protocol cannot recover lost messages on its own.
    LinkHeal {
        /// One end of the edge.
        a: usize,
        /// The other end.
        b: usize,
    },
}

/// A named, time-indexed schedule of [`ScenarioEvent`]s over a fixed
/// number of workload rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSchedule {
    name: String,
    rounds: usize,
    events: BTreeMap<usize, Vec<ScenarioEvent>>,
}

impl ScenarioSchedule {
    /// Names of the built-in scenarios accepted by
    /// [`ScenarioSchedule::builtin`].
    pub const BUILTIN_NAMES: [&'static str; 4] = [
        "partition_heal",
        "churn",
        "flapping_link",
        "rolling_restart",
    ];

    /// An empty schedule named `name`, spanning `rounds` workload rounds.
    pub fn new(name: impl Into<String>, rounds: usize) -> Self {
        ScenarioSchedule {
            name: name.into(),
            rounds,
            events: BTreeMap::new(),
        }
    }

    /// Schedule `event` at `round` (applied before that round runs).
    pub fn at(mut self, round: usize, event: ScenarioEvent) -> Self {
        self.events.entry(round).or_default().push(event);
        self
    }

    /// Partition into `groups` for the round range, healing at its end.
    pub fn partition_during(self, range: Range<usize>, groups: Vec<Vec<usize>>) -> Self {
        self.at(range.start, ScenarioEvent::Partition { groups })
            .at(range.end, ScenarioEvent::Heal)
    }

    /// Crash `node` for the round range, restarting at its end.
    pub fn crash_during(self, range: Range<usize>, node: usize, durable: bool) -> Self {
        self.at(range.start, ScenarioEvent::Crash { node, durable })
            .at(range.end, ScenarioEvent::Restart { node })
    }

    /// Fault the edge `a ↔ b` for the round range, healing at its end.
    pub fn link_fault_during(
        self,
        range: Range<usize>,
        a: usize,
        b: usize,
        fault: LinkFault,
    ) -> Self {
        self.at(range.start, ScenarioEvent::LinkFault { a, b, fault })
            .at(range.end, ScenarioEvent::LinkHeal { a, b })
    }

    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Workload rounds the scenario spans.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Events scheduled at exactly `round`.
    pub fn events_at(&self, round: usize) -> &[ScenarioEvent] {
        self.events.get(&round).map_or(&[], Vec::as_slice)
    }

    /// Events scheduled at or after `round` (boundary events fired after
    /// the workload, before convergence), in round order.
    pub fn events_from(&self, round: usize) -> impl Iterator<Item = &ScenarioEvent> {
        self.events.range(round..).flat_map(|(_, evs)| evs.iter())
    }

    /// Build a named built-in scenario for an `n`-node cluster over
    /// `rounds` workload rounds; `None` for unknown names.
    ///
    /// | name | shape |
    /// |---|---|
    /// | `partition_heal` | cluster splits in half at ¼, heals at ¾ |
    /// | `churn` | a durable crash/restart, a non-durable one, and a join |
    /// | `flapping_link` | edge 0↔1 flaps lossy (drop+dup+reorder) 3× |
    /// | `rolling_restart` | every node durably restarted, one at a time |
    pub fn builtin(name: &str, n: usize, rounds: usize) -> Option<Self> {
        assert!(n >= 4, "built-in scenarios need ≥ 4 nodes");
        assert!(rounds >= 8, "built-in scenarios need ≥ 8 rounds");
        Some(match name {
            "partition_heal" => {
                let left: Vec<usize> = (0..n / 2).collect();
                ScenarioSchedule::new(name, rounds)
                    .partition_during(rounds / 4..3 * rounds / 4, vec![left])
            }
            "churn" => ScenarioSchedule::new(name, rounds)
                .crash_during(rounds / 5..2 * rounds / 5, 1, true)
                .crash_during(2 * rounds / 5..3 * rounds / 5, 2, false)
                .at(
                    3 * rounds / 5,
                    ScenarioEvent::Join {
                        links: vec![0, n - 1],
                        bootstrap: 0,
                    },
                ),
            "flapping_link" => {
                let fault = LinkFault::flaky(0.5, 0.2);
                let mut s = ScenarioSchedule::new(name, rounds);
                // Three on/off cycles across the run, healed at the end.
                let phase = (rounds / 6).max(1);
                for cycle in 0..3 {
                    let start = 2 * cycle * phase;
                    s = s.link_fault_during(start..start + phase, 0, 1, fault);
                }
                s
            }
            "rolling_restart" => {
                let gap = (rounds / (n + 1)).max(2);
                let mut s = ScenarioSchedule::new(name, rounds);
                for node in 0..n {
                    let start = node * gap;
                    s = s.crash_during(start..start + gap.div_ceil(2), node, true);
                }
                s
            }
            _ => return None,
        })
    }
}

/// What a scenario run measured — the per-protocol row of
/// `BENCH_scenarios.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Protocol driven through it.
    pub protocol: ProtocolKind,
    /// Workload rounds executed.
    pub workload_rounds: usize,
    /// Extra idle rounds until all live replicas agreed, `None` if
    /// convergence was never reached within the slack budget.
    pub convergence_rounds: Option<usize>,
    /// Total protocol traffic over the whole run (model bytes).
    pub total_bytes: u64,
    /// Total transmitted lattice elements.
    pub total_elements: u64,
    /// Total protocol messages.
    pub total_messages: u64,
    /// Protocol bytes spent *after* the workload ended, driving the
    /// cluster back to agreement.
    pub bytes_to_reconverge: u64,
    /// Out-of-band repair/bootstrap messages (digest repair sessions and
    /// snapshot transfers).
    pub repair_messages: u64,
    /// Lattice elements shipped by repair/bootstrap.
    pub repair_elements: u64,
    /// Repair payload + digest bytes.
    pub repair_bytes: u64,
    /// Messages lost to faults: discarded by crashes and partitions,
    /// plus messages the fabric dropped (global `drop_prob` and
    /// per-link fault overlays — the flapping-link loss shows up here).
    pub undeliverable: u64,
    /// Workload rounds that ended with live replicas disagreeing.
    pub staleness_rounds: usize,
    /// Longest consecutive run of disagreeing rounds, including the
    /// convergence tail.
    pub max_staleness_window: usize,
    /// Cluster size at the end (joins included).
    pub final_nodes: usize,
    /// Did the run end converged?
    pub converged: bool,
}

/// Apply one event to the runner, with the repair policy described in the
/// module docs.
fn apply_event<C>(runner: &mut DynRunner<C>, event: &ScenarioEvent, durability: &mut Vec<bool>)
where
    C: Crdt + WireEncode + 'static,
    C::Op: WireEncode + 'static,
{
    let kind = runner.kind();
    match event {
        ScenarioEvent::Partition { groups } => runner.set_partition(groups),
        ScenarioEvent::Heal => runner.heal_partition(),
        ScenarioEvent::Crash { node, durable } => {
            durability[*node] = *durable;
            runner.crash_node(ReplicaId::from(*node), *durable);
        }
        ScenarioEvent::Restart { node } => {
            let id = ReplicaId::from(*node);
            runner.restart_node(id, None);
            // Durable restart of a loss-recovering protocol needs no
            // help; everything else is stitched back via a live peer.
            if durability[*node] && kind.recovers_from_loss() {
                return;
            }
            if let Some(peer) = repair_peer(runner, id) {
                runner.repair_pair(id, peer);
            }
        }
        ScenarioEvent::Join { links, bootstrap } => {
            let links: Vec<ReplicaId> = links.iter().map(|&l| ReplicaId::from(l)).collect();
            let new = runner.join_node(&links, Some(ReplicaId::from(*bootstrap)));
            durability.resize(new.index() + 1, true);
        }
        ScenarioEvent::LinkFault { a, b, fault } => {
            runner.set_edge_fault(ReplicaId::from(*a), ReplicaId::from(*b), *fault);
        }
        ScenarioEvent::LinkHeal { a, b } => {
            let (a, b) = (ReplicaId::from(*a), ReplicaId::from(*b));
            runner.clear_edge_fault(a, b);
            if !kind.recovers_from_loss() {
                runner.repair_pair(a, b);
            }
        }
    }
}

/// A live peer for `node` to repair against: its first reachable
/// neighbor, else the first other live node.
fn repair_peer<C>(runner: &DynRunner<C>, node: ReplicaId) -> Option<ReplicaId>
where
    C: Crdt + WireEncode + 'static,
    C::Op: WireEncode + 'static,
{
    let m = runner.membership();
    m.reachable_neighbors(node)
        .into_iter()
        .next()
        .or_else(|| m.alive_nodes().into_iter().find(|&p| p != node))
}

/// Drive `kind` over `topology` through `schedule`, then to convergence.
///
/// The workload keeps producing operations for every **live** node during
/// the whole schedule (crashed nodes execute nothing); after the last
/// round, boundary events fire and the runner synchronizes idle rounds
/// until all live replicas agree, up to a slack budget derived from the
/// topology diameter.
pub fn run_scenario<C>(
    kind: ProtocolKind,
    topology: Topology,
    schedule: &ScenarioSchedule,
    net_cfg: NetworkConfig,
    model: SizeModel,
    workload: &mut impl Workload<C>,
) -> ScenarioOutcome
where
    C: Crdt + WireEncode + 'static,
    C::Op: WireEncode + 'static,
{
    let mut runner: DynRunner<C> = DynRunner::new(kind, topology, net_cfg, model);
    let mut durability = vec![true; runner.membership().len()];

    let mut staleness_rounds = 0usize;
    let mut window = 0usize;
    let mut max_window = 0usize;
    for round in 0..schedule.rounds() {
        for event in schedule.events_at(round) {
            apply_event(&mut runner, event, &mut durability);
        }
        runner.step(workload);
        if runner.converged() {
            window = 0;
        } else {
            staleness_rounds += 1;
            window += 1;
            max_window = max_window.max(window);
        }
    }
    for event in schedule.events_from(schedule.rounds()) {
        apply_event(&mut runner, event, &mut durability);
    }

    let bytes_before = runner.metrics().total_bytes();
    let slack = runner.topology().diameter() * 6 + 32;
    // Drive convergence round by round so the staleness window keeps
    // counting through the tail — including the case where it never
    // closes within the slack budget.
    let mut convergence_rounds = None;
    let mut idle = |_: ReplicaId, _: usize| -> Vec<C::Op> { Vec::new() };
    for extra in 0..=slack {
        if runner.converged() {
            convergence_rounds = Some(extra);
            break;
        }
        if extra == slack {
            break;
        }
        runner.step(&mut idle);
        window += 1;
        max_window = max_window.max(window);
    }

    let repair = runner.repair_stats();
    let converged = runner.converged();
    let metrics = runner.metrics();
    ScenarioOutcome {
        scenario: schedule.name().to_string(),
        protocol: kind,
        workload_rounds: schedule.rounds(),
        convergence_rounds,
        total_bytes: metrics.total_bytes() + repair.payload_bytes + repair.metadata_bytes,
        total_elements: metrics.total_elements() + repair.payload_elements,
        total_messages: metrics.total_messages() + u64::from(repair.messages),
        bytes_to_reconverge: metrics.total_bytes() - bytes_before,
        repair_messages: u64::from(repair.messages),
        repair_elements: repair.payload_elements,
        repair_bytes: repair.payload_bytes + repair.metadata_bytes,
        undeliverable: runner.undeliverable(),
        staleness_rounds,
        max_staleness_window: max_window,
        final_nodes: runner.membership().len(),
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_types::{GSet, GSetOp};

    /// Each live node adds one globally unique element per round.
    fn unique_adds(stride: usize) -> impl FnMut(ReplicaId, usize) -> Vec<GSetOp<u64>> {
        move |node: ReplicaId, round: usize| {
            vec![GSetOp::Add((round * stride + node.index()) as u64)]
        }
    }

    fn run(kind: ProtocolKind, name: &str) -> ScenarioOutcome {
        let n = 6;
        let rounds = 12;
        let schedule = ScenarioSchedule::builtin(name, n, rounds).expect("known scenario");
        run_scenario::<GSet<u64>>(
            kind,
            Topology::partial_mesh(n, 4),
            &schedule,
            NetworkConfig::reliable(7),
            SizeModel::compact(),
            &mut unique_adds(64),
        )
    }

    #[test]
    fn every_kind_survives_every_builtin_scenario() {
        for name in ScenarioSchedule::BUILTIN_NAMES {
            for kind in ProtocolKind::ALL {
                let outcome = run(kind, name);
                assert!(
                    outcome.converged,
                    "{kind} did not re-converge under {name}: {outcome:?}"
                );
                assert!(outcome.total_messages > 0, "{kind}/{name} sent nothing");
            }
        }
    }

    #[test]
    fn partition_causes_staleness_then_heals() {
        let outcome = run(ProtocolKind::BpRr, "partition_heal");
        assert!(outcome.converged);
        assert!(
            outcome.staleness_rounds > 0,
            "the cut must show up as staleness: {outcome:?}"
        );
        assert!(
            outcome.repair_bytes > 0,
            "delta family needs repair traffic after a heal"
        );
        assert!(outcome.undeliverable > 0, "cross-cut traffic was dropped");
    }

    #[test]
    fn scuttlebutt_heals_partitions_without_repair() {
        let outcome = run(ProtocolKind::Scuttlebutt, "partition_heal");
        assert!(outcome.converged);
        assert_eq!(
            outcome.repair_bytes, 0,
            "anti-entropy recovers on its own: {outcome:?}"
        );
    }

    #[test]
    fn churn_grows_the_cluster() {
        let outcome = run(ProtocolKind::BpRr, "churn");
        assert!(outcome.converged);
        assert_eq!(outcome.final_nodes, 7, "the join added a node");
    }

    #[test]
    fn acked_flapping_link_recovers_without_repair() {
        let outcome = run(ProtocolKind::Acked, "flapping_link");
        assert!(outcome.converged);
        assert_eq!(outcome.repair_bytes, 0, "acked retransmits by itself");
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = run(ProtocolKind::BpRr, "rolling_restart");
        let b = run(ProtocolKind::BpRr, "rolling_restart");
        assert_eq!(a, b);
    }

    #[test]
    fn schedule_builders_place_events() {
        let s = ScenarioSchedule::new("custom", 10)
            .partition_during(2..6, vec![vec![0, 1]])
            .crash_during(4..8, 3, false);
        assert_eq!(s.events_at(2).len(), 1);
        assert!(matches!(s.events_at(6)[0], ScenarioEvent::Heal));
        assert!(matches!(
            s.events_at(4)[0],
            ScenarioEvent::Crash {
                node: 3,
                durable: false
            }
        ));
        assert_eq!(s.events_from(8).count(), 1, "restart at 8");
        assert!(ScenarioSchedule::builtin("bogus", 6, 12).is_none());
    }
}
