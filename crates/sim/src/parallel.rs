//! A thread-parallel round engine.
//!
//! Protocol instances at different nodes share nothing, so within a round
//! the expensive phases — applying operations, running synchronization
//! steps, and absorbing delivered messages — parallelize across nodes.
//! The engine keeps the sequential runner's semantics exactly:
//!
//! * ops are drawn from the workload **sequentially** (workloads are
//!   stateful generators; their op streams must not depend on thread
//!   interleaving);
//! * messages are delivered grouped by recipient, each recipient
//!   processed by exactly one thread, in a deterministic
//!   (sender, emission-index) order;
//! * reply waves (push-pull protocols) loop until quiescence, exactly
//!   like [`crate::Runner`].
//!
//! Fault injection is not supported here (the fault RNG is inherently
//! sequential); use the sequential [`crate::Runner`] for chaos testing
//! and this engine for big, reliable-fabric sweeps.

use std::time::Instant;

use crdt_lattice::{ReplicaId, SizeModel};
use crdt_sync::{Measured, Params, Protocol};
use crdt_types::Crdt;

use crate::metrics::{RoundMetrics, RunMetrics};
use crate::runner::Workload;
use crate::topology::Topology;

/// Messages a node hands the engine in one phase: per-node CPU nanos plus
/// `(recipient, message)` pairs.
type PhaseOutput<M> = (u64, Vec<(ReplicaId, M)>);

/// Split `items` into contiguous per-thread chunks and run `work` on each
/// `(index, item)` in parallel; collect per-item outputs in item order.
///
/// The chunking is identical to [`crate::metrics::phase_split`]'s — the
/// two must stay in lockstep, or per-phase critical paths would be
/// computed over chunks that never ran. Shared by [`ParallelRunner`] and
/// `ShardedEngineRunner`.
pub(crate) fn par_map_chunked<N: Send, T: Send + Default>(
    items: &mut [N],
    threads: usize,
    work: impl Fn(usize, &mut N) -> T + Sync,
) -> Vec<T> {
    let mut no_ctx: Vec<()> = Vec::new();
    par_map_chunked_ctx(
        items,
        threads,
        &mut no_ctx,
        || (),
        |i, item, ()| work(i, item),
    )
}

/// [`par_map_chunked`] with **per-worker mutable context**: worker `w`
/// (the thread running contiguous chunk `w`) gets exclusive access to
/// `ctxs[w]` for its whole chunk. `ctxs` is grown on demand with
/// `make_ctx` and persists across calls, which is exactly the shape the
/// wire path's [`crdt_sync::BufferPool`]s need — each worker reuses its
/// own encode scratch round after round, with no cross-thread
/// synchronization (the phase model already gives workers disjoint
/// state).
pub(crate) fn par_map_chunked_ctx<N: Send, T: Send + Default, Cx: Send>(
    items: &mut [N],
    threads: usize,
    ctxs: &mut Vec<Cx>,
    make_ctx: impl Fn() -> Cx,
    work: impl Fn(usize, &mut N, &mut Cx) -> T + Sync,
) -> Vec<T> {
    let n = items.len();
    let chunk = n.div_ceil(threads).max(1);
    let n_chunks = n.div_ceil(chunk);
    if ctxs.len() < n_chunks {
        ctxs.resize_with(n_chunks, make_ctx);
    }
    let mut results: Vec<T> = Vec::with_capacity(n);
    results.resize_with(n, T::default);
    std::thread::scope(|scope| {
        let work = &work;
        for (((start, item_chunk), result_chunk), ctx) in (0..n)
            .step_by(chunk)
            .zip(items.chunks_mut(chunk))
            .zip(results.chunks_mut(chunk))
            .zip(ctxs.iter_mut())
        {
            scope.spawn(move || {
                for (offset, (item, slot)) in item_chunk
                    .iter_mut()
                    .zip(result_chunk.iter_mut())
                    .enumerate()
                {
                    *slot = work(start + offset, item, ctx);
                }
            });
        }
    });
    results
}

/// Thread-parallel counterpart of [`crate::Runner`] (reliable fabric
/// only).
#[derive(Debug)]
pub struct ParallelRunner<C: Crdt, P: Protocol<C>> {
    topology: Topology,
    nodes: Vec<P>,
    model: SizeModel,
    threads: usize,
    metrics: RunMetrics,
    round: usize,
    _marker: core::marker::PhantomData<fn() -> C>,
}

impl<C, P> ParallelRunner<C, P>
where
    C: Crdt,
    C::Op: Send + Sync,
    P: Protocol<C> + Send,
    P::Msg: Send,
{
    /// Build a runner with `threads` worker threads (clamped to ≥ 1).
    pub fn new(topology: Topology, model: SizeModel, threads: usize) -> Self {
        let params = Params::new(topology.len());
        let nodes: Vec<P> = topology.nodes().map(|id| P::new(id, &params)).collect();
        let n = topology.len();
        ParallelRunner {
            topology,
            nodes,
            model,
            threads: threads.max(1),
            metrics: RunMetrics::new(n),
            round: 0,
            _marker: core::marker::PhantomData,
        }
    }

    /// Access a node's protocol instance.
    pub fn node(&self, id: ReplicaId) -> &P {
        &self.nodes[id.index()]
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Consume, returning the metrics.
    pub fn into_metrics(self) -> RunMetrics {
        self.metrics
    }

    /// Have all replicas converged?
    pub fn converged(&self) -> bool {
        self.nodes.windows(2).all(|w| w[0].state() == w[1].state())
    }

    /// Run `rounds` rounds.
    pub fn run(&mut self, workload: &mut impl Workload<C>, rounds: usize) {
        for _ in 0..rounds {
            self.step(workload);
        }
    }

    /// Split `nodes` into contiguous per-thread chunks and run `work` on
    /// each (node_index, node) in parallel; collect per-node outputs.
    fn par_map<T: Send + Default>(
        nodes: &mut [P],
        threads: usize,
        work: impl Fn(usize, &mut P) -> T + Sync,
    ) -> Vec<T> {
        par_map_chunked(nodes, threads, work)
    }

    /// Per-node phase timings → `(summed work, critical path)`: the sum
    /// over all nodes, and the busiest thread-chunk's sum under the same
    /// contiguous chunking [`ParallelRunner::par_map`] uses. Speedup
    /// claims must compare critical paths, never a wall-clock quantity
    /// against a cross-thread sum.
    fn phase_nanos(nanos: &[u64], threads: usize) -> (u64, u64) {
        crate::metrics::phase_split(nanos, threads)
    }

    fn absorb_phase(rm: &mut RoundMetrics, nanos: &[u64], threads: usize) {
        let (work, critical) = Self::phase_nanos(nanos, threads);
        rm.cpu_nanos += work;
        rm.critical_path_nanos += critical;
    }

    /// Run one round.
    pub fn step(&mut self, workload: &mut impl Workload<C>) {
        let mut rm = RoundMetrics::default();
        let n = self.nodes.len();

        // Ops are drawn sequentially (stateful generator), applied in
        // parallel. Draw time is driver overhead, not protocol CPU.
        let t_draw = Instant::now();
        let ops: Vec<Vec<C::Op>> = (0..n)
            .map(|i| workload.ops(ReplicaId::from(i), self.round))
            .collect();
        rm.workload_nanos += t_draw.elapsed().as_nanos() as u64;
        let ops_ref = &ops;
        let nanos = Self::par_map(&mut self.nodes, self.threads, |i, node| {
            let t0 = Instant::now();
            for op in &ops_ref[i] {
                node.on_op(op);
            }
            t0.elapsed().as_nanos() as u64
        });
        Self::absorb_phase(&mut rm, &nanos, self.threads);

        // Sync phase: each node emits its messages in parallel.
        let topology = &self.topology;
        let sync_out: Vec<PhaseOutput<P::Msg>> =
            Self::par_map(&mut self.nodes, self.threads, |i, node| {
                let t0 = Instant::now();
                let mut out = Vec::new();
                node.on_sync(topology.neighbors(ReplicaId::from(i)), &mut out);
                (t0.elapsed().as_nanos() as u64, out)
            });

        // Delivery waves until quiescence.
        let mut wave: Vec<(ReplicaId, ReplicaId, P::Msg)> = Vec::new();
        let mut phase: Vec<u64> = Vec::with_capacity(n);
        for (i, (nanos, msgs)) in sync_out.into_iter().enumerate() {
            phase.push(nanos);
            for (to, msg) in msgs {
                self.account(&mut rm, &msg);
                wave.push((ReplicaId::from(i), to, msg));
            }
        }
        Self::absorb_phase(&mut rm, &phase, self.threads);
        while !wave.is_empty() {
            // Group by recipient, preserving (sender, emission) order.
            let mut inboxes: Vec<Vec<(ReplicaId, P::Msg)>> = Vec::with_capacity(n);
            inboxes.resize_with(n, Vec::new);
            for (from, to, msg) in wave.drain(..) {
                inboxes[to.index()].push((from, msg));
            }
            let inboxes_ref = std::sync::Mutex::new(inboxes);
            // Each recipient absorbs its inbox in parallel; replies are
            // collected for the next wave.
            let replies: Vec<PhaseOutput<P::Msg>> =
                Self::par_map(&mut self.nodes, self.threads, |i, node| {
                    let inbox = {
                        let mut guard = inboxes_ref.lock().expect("inbox lock");
                        std::mem::take(&mut guard[i])
                    };
                    let t0 = Instant::now();
                    let mut out = Vec::new();
                    for (from, msg) in inbox {
                        node.on_msg(from, msg, &mut out);
                    }
                    (t0.elapsed().as_nanos() as u64, out)
                });
            let mut phase: Vec<u64> = Vec::with_capacity(n);
            for (i, (nanos, msgs)) in replies.into_iter().enumerate() {
                phase.push(nanos);
                for (to, msg) in msgs {
                    self.account(&mut rm, &msg);
                    wave.push((ReplicaId::from(i), to, msg));
                }
            }
            Self::absorb_phase(&mut rm, &phase, self.threads);
        }

        // Memory snapshot (parallel, read-only).
        let model = self.model;
        let mems = Self::par_map(&mut self.nodes, self.threads, |_, node| {
            let m = node.memory(&model);
            (m.crdt_elements, m.crdt_bytes, m.meta_elements, m.meta_bytes)
        });
        for (ce, cb, me, mb) in mems {
            rm.memory.crdt_elements += ce;
            rm.memory.crdt_bytes += cb;
            rm.memory.meta_elements += me;
            rm.memory.meta_bytes += mb;
        }

        self.metrics.push_round(rm);
        self.round += 1;
    }

    fn account(&self, rm: &mut RoundMetrics, msg: &P::Msg) {
        rm.messages += 1;
        rm.envelopes += 1;
        rm.payload_elements += msg.payload_elements();
        rm.payload_bytes += msg.payload_bytes(&self.model);
        rm.metadata_bytes += msg.metadata_bytes(&self.model);
    }

    /// Keep synchronizing with no new ops until convergence.
    pub fn run_to_convergence(&mut self, max_rounds: usize) -> Option<usize> {
        let mut idle = |_: ReplicaId, _: usize| -> Vec<C::Op> { Vec::new() };
        for extra in 0..=max_rounds {
            if self.converged() {
                return Some(extra);
            }
            self.step(&mut idle);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use crate::runner::Runner;
    use crdt_sync::{BpRrDelta, Scuttlebutt};
    use crdt_types::{GSet, GSetOp};

    fn unique_adds(n: usize, events: usize) -> impl FnMut(ReplicaId, usize) -> Vec<GSetOp<u64>> {
        move |node: ReplicaId, round: usize| {
            if round >= events {
                return Vec::new();
            }
            vec![GSetOp::Add((round * n + node.index()) as u64)]
        }
    }

    #[test]
    fn matches_sequential_runner_exactly() {
        let n = 10;
        let events = 8;
        let topo = Topology::partial_mesh(n, 4);

        let mut seq: Runner<GSet<u64>, BpRrDelta<GSet<u64>>> = Runner::new(
            topo.clone(),
            NetworkConfig::reliable(0),
            SizeModel::compact(),
        );
        seq.run(&mut unique_adds(n, events), events);
        seq.run_to_convergence(64).unwrap();

        let mut par: ParallelRunner<GSet<u64>, BpRrDelta<GSet<u64>>> =
            ParallelRunner::new(topo, SizeModel::compact(), 4);
        par.run(&mut unique_adds(n, events), events);
        par.run_to_convergence(64).unwrap();

        assert_eq!(
            seq.node(ReplicaId(0)).state(),
            par.node(ReplicaId(0)).state()
        );
        // Transmission accounting is identical (message contents and
        // counts do not depend on scheduling).
        assert_eq!(
            seq.metrics().total_elements(),
            par.metrics().total_elements()
        );
        assert_eq!(
            seq.metrics().total_messages(),
            par.metrics().total_messages()
        );
        assert_eq!(seq.metrics().total_bytes(), par.metrics().total_bytes());
    }

    #[test]
    fn push_pull_replies_complete_within_round() {
        let n = 8;
        let events = 5;
        let topo = Topology::ring(n);
        let mut par: ParallelRunner<GSet<u64>, Scuttlebutt<GSet<u64>>> =
            ParallelRunner::new(topo, SizeModel::compact(), 3);
        par.run(&mut unique_adds(n, events), events);
        par.run_to_convergence(32)
            .expect("scuttlebutt converges in parallel");
        assert_eq!(par.node(ReplicaId(3)).state().len(), n * events);
    }

    #[test]
    fn phase_nanos_splits_work_and_critical_path() {
        type R = ParallelRunner<GSet<u64>, BpRrDelta<GSet<u64>>>;
        // 4 nodes on 2 threads → chunks [7, 1] and [4, 4].
        let (work, critical) = R::phase_nanos(&[7, 1, 4, 4], 2);
        assert_eq!(work, 16);
        assert_eq!(critical, 8);
        // One thread: critical path is all the work.
        let (work, critical) = R::phase_nanos(&[7, 1, 4, 4], 1);
        assert_eq!(work, critical);
        assert_eq!(R::phase_nanos(&[], 4), (0, 0));
    }

    #[test]
    fn critical_path_is_bounded_by_total_work() {
        let n = 10;
        let topo = Topology::partial_mesh(n, 4);
        let mut par: ParallelRunner<GSet<u64>, BpRrDelta<GSet<u64>>> =
            ParallelRunner::new(topo, SizeModel::compact(), 4);
        par.run(&mut unique_adds(n, 6), 6);
        par.run_to_convergence(64).unwrap();
        let m = par.metrics();
        assert!(m.total_cpu_nanos() > 0);
        assert!(m.total_critical_path_nanos() > 0);
        assert!(
            m.total_critical_path_nanos() <= m.total_cpu_nanos(),
            "critical path {} must never exceed summed work {}",
            m.total_critical_path_nanos(),
            m.total_cpu_nanos()
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let n = 9;
        let events = 6;
        let run = |threads: usize| {
            let topo = Topology::binary_tree(n);
            let mut par: ParallelRunner<GSet<u64>, BpRrDelta<GSet<u64>>> =
                ParallelRunner::new(topo, SizeModel::compact(), threads);
            par.run(&mut unique_adds(n, events), events);
            par.run_to_convergence(64).unwrap();
            (
                par.node(ReplicaId(0)).state().clone(),
                par.metrics().total_elements(),
            )
        };
        let (s1, t1) = run(1);
        let (s4, t4) = run(4);
        let (s16, t16) = run(16);
        assert_eq!(s1, s4);
        assert_eq!(s4, s16);
        assert_eq!(t1, t4);
        assert_eq!(t4, t16);
    }
}
