//! Engine-parity property tests for the unified sharded runner.
//!
//! Two pinned properties:
//!
//! 1. **Accounting parity with the legacy sharded runner.** For the
//!    δ-kinds (`classic`, `bp`, `rr`, `bp_rr`),
//!    [`ShardedEngineRunner`] at `threads = 1` over a random keyed
//!    schedule produces **byte-identical** deterministic accounting to
//!    [`ShardedDeltaRunner`] round by round: per-object envelopes (the
//!    legacy runner's per-object messages), payload elements,
//!    payload/metadata bytes, and memory snapshots. Only the frame count
//!    differs — batching collapses it to O(links) — which is exactly the
//!    claim the `retwis_sharded` bench measures.
//!
//! 2. **Thread-count invariance for every kind.** All nine
//!    [`ProtocolKind`]s produce identical final states *and* identical
//!    deterministic accounting across thread counts.

use crdt_lattice::{ReplicaId, SizeModel};
use crdt_sim::{KeyedOp, ShardedDeltaRunner, ShardedEngineRunner, Topology};
use crdt_sync::{DeltaConfig, ProtocolKind};
use crdt_types::{GSet, GSetOp};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

const N: usize = 5;

/// One round's keyed ops per node, from a flat (node, key, elem) list.
type Schedule = Vec<Vec<Vec<KeyedOp<u32, GSet<u64>>>>>;

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    // 1–3 rounds; per round up to 8 keyed ops spread over N nodes and a
    // 4-key space. Element values collide across nodes on purpose
    // (concurrent duplicate adds exercise RR extraction).
    pvec(pvec((0usize..N, 0u32..4, 0u64..16), 0..8), 1..4).prop_map(|rounds| {
        rounds
            .into_iter()
            .map(|ops| {
                let mut per_node = vec![Vec::new(); N];
                for (node, key, elem) in ops {
                    per_node[node].push((key, GSetOp::Add(elem)));
                }
                per_node
            })
            .collect()
    })
}

fn delta_kinds() -> [(DeltaConfig, ProtocolKind); 4] {
    [
        (DeltaConfig::CLASSIC, ProtocolKind::Classic),
        (DeltaConfig::BP, ProtocolKind::Bp),
        (DeltaConfig::RR, ProtocolKind::Rr),
        (DeltaConfig::BP_RR, ProtocolKind::BpRr),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn threads1_matches_sharded_delta_runner_byte_for_byte(schedule in schedule_strategy()) {
        for (cfg, kind) in delta_kinds() {
            let topo = Topology::partial_mesh(N, 4);
            let mut legacy: ShardedDeltaRunner<u32, GSet<u64>> =
                ShardedDeltaRunner::new(topo.clone(), cfg, SizeModel::compact());
            let mut unified: ShardedEngineRunner<u32, GSet<u64>> =
                ShardedEngineRunner::new(kind, topo, SizeModel::compact(), 1);
            for round in &schedule {
                legacy.step(round);
                unified.step(round);
            }
            let extra_legacy = legacy.run_to_convergence(64).expect("legacy converges");
            let extra_unified = unified.run_to_convergence(64).expect("unified converges");
            prop_assert_eq!(extra_legacy, extra_unified, "{}: convergence rounds", kind);

            let (lm, um) = (legacy.metrics(), unified.metrics());
            prop_assert_eq!(lm.rounds.len(), um.rounds.len(), "{}: round count", kind);
            for (r, (lr, ur)) in lm.rounds.iter().zip(um.rounds.iter()).enumerate() {
                // The legacy runner's per-object messages are the unified
                // runner's pre-batching envelopes.
                prop_assert_eq!(lr.messages, ur.envelopes, "{} round {}: envelopes", kind, r);
                prop_assert_eq!(
                    lr.payload_elements, ur.payload_elements,
                    "{} round {}: elements", kind, r
                );
                prop_assert_eq!(
                    lr.payload_bytes, ur.payload_bytes,
                    "{} round {}: payload bytes", kind, r
                );
                prop_assert_eq!(
                    lr.metadata_bytes, ur.metadata_bytes,
                    "{} round {}: metadata bytes", kind, r
                );
                prop_assert_eq!(lr.memory, ur.memory, "{} round {}: memory", kind, r);
                // Batching can only reduce frame count.
                prop_assert!(ur.messages <= lr.messages, "{} round {}: frames", kind, r);
            }
            for node in 0..N {
                let id = ReplicaId::from(node);
                prop_assert_eq!(
                    legacy.objects_at(id),
                    unified.objects_at(id),
                    "{} node {}: object count", kind, node
                );
                for key in 0u32..4 {
                    prop_assert_eq!(
                        legacy.object_state(id, &key),
                        unified.object_state(id, &key),
                        "{} node {} key {}: state", kind, node, key
                    );
                }
            }
        }
    }

    #[test]
    fn every_kind_is_thread_count_invariant(schedule in schedule_strategy()) {
        for kind in ProtocolKind::ALL {
            let run = |threads: usize| {
                let mut r: ShardedEngineRunner<u32, GSet<u64>> = ShardedEngineRunner::new(
                    kind,
                    Topology::partial_mesh(N, 4),
                    SizeModel::compact(),
                    threads,
                );
                for round in &schedule {
                    r.step(round);
                }
                r.run_to_convergence(64)
                    .unwrap_or_else(|| panic!("{kind} did not converge"));
                let states: Vec<Option<GSet<u64>>> = (0..N)
                    .flat_map(|node| {
                        (0u32..4).map(move |key| (node, key))
                    })
                    .map(|(node, key)| r.object_state(ReplicaId::from(node), &key).cloned())
                    .collect();
                let m = r.metrics();
                (
                    m.total_elements(),
                    m.total_bytes(),
                    m.total_messages(),
                    m.total_envelopes(),
                    states,
                )
            };
            let one = run(1);
            let four = run(4);
            prop_assert_eq!(&one, &four, "{}: threads 1 vs 4", kind);
        }
    }
}
