//! The pooling acceptance test: steady-state rounds of the sharded
//! runner perform O(1) payload allocations **in the object count**.
//!
//! Before the zero-copy refactor, every envelope's payload was its own
//! `Vec<u8>` and every batch decode re-vectored every entry, so round
//! cost scaled with the keyspace. With shared-`Bytes` payloads and
//! per-worker `BufferPool`s, an idle (converged) round allocates only
//! the fixed per-phase plumbing, and an active round scales with the
//! *touched* objects — both independent of how many objects exist.
//!
//! The counting allocator is process-wide, so this binary holds exactly
//! one measuring test.

use crdt_lattice::SizeModel;
use crdt_sim::{ShardedEngineRunner, Topology};
use crdt_sync::ProtocolKind;
use crdt_types::{GSet, GSetOp};

#[global_allocator]
static ALLOC: testkit_alloc::CountingAllocator = testkit_alloc::CountingAllocator;

type Runner = ShardedEngineRunner<u32, GSet<u64>>;
type RoundOps = Vec<Vec<(u32, GSetOp<u64>)>>;

const NODES: usize = 4;
const THREADS: usize = 2;

/// Build a converged runner hosting `objects` distinct objects per node,
/// with warm pools (one idle and one active round already executed).
fn warm_runner(objects: usize) -> Runner {
    let mut r: Runner = ShardedEngineRunner::new(
        ProtocolKind::BpRr,
        Topology::full_mesh(NODES),
        SizeModel::compact(),
        THREADS,
    );
    let seed: RoundOps = (0..NODES)
        .map(|n| {
            (0..objects)
                .map(|k| (k as u32, GSetOp::Add((n * objects + k) as u64)))
                .collect()
        })
        .collect();
    r.step(&seed);
    r.run_to_convergence(32).expect("warm-up converges");
    r.step(&idle());
    r.step(&active(0));
    r.run_to_convergence(32).expect("still converged");
    r
}

fn idle() -> RoundOps {
    vec![Vec::new(); NODES]
}

/// Four ops per node on a fixed handful of objects, unique elements per
/// `epoch` so the ops are never no-ops.
fn active(epoch: u64) -> RoundOps {
    (0..NODES)
        .map(|n| {
            (0..4u32)
                .map(|k| {
                    (
                        k,
                        GSetOp::Add(1_000_000 + epoch * 1_000 + (n as u64) * 10 + u64::from(k)),
                    )
                })
                .collect()
        })
        .collect()
}

fn allocs(r: &mut Runner, ops: &RoundOps) -> u64 {
    let (_, stats) = testkit_alloc::measure(|| r.step(ops));
    stats.allocations
}

#[test]
fn steady_state_allocations_do_not_scale_with_object_count() {
    assert!(
        testkit_alloc::is_installed(),
        "the counting allocator must be this binary's global allocator"
    );

    let (small_objects, large_objects) = (64, 2048);
    let mut small = warm_runner(small_objects);
    let mut large = warm_runner(large_objects);

    // Idle converged rounds: nothing dirty, nothing sent — per-round
    // allocations are fixed phase plumbing, identical across a 32×
    // keyspace-size gap (generous slack for one-off container growth).
    let idle_small = allocs(&mut small, &idle());
    let idle_large = allocs(&mut large, &idle());
    assert!(
        idle_large <= idle_small * 2 + 64,
        "idle round allocations scale with object count: \
         {idle_small} at {small_objects} objects vs {idle_large} at {large_objects}"
    );

    // Active rounds touching a fixed 4 objects/node: allocations track
    // the touched set, not the keyspace.
    let active_small = allocs(&mut small, &active(1));
    let active_large = allocs(&mut large, &active(1));
    assert!(
        active_large <= active_small * 2 + 64,
        "active round allocations scale with object count: \
         {active_small} at {small_objects} objects vs {active_large} at {large_objects}"
    );

    // And the runners still agree with themselves: accounting unchanged
    // by the measuring round.
    small.run_to_convergence(16).expect("small reconverges");
    large.run_to_convergence(16).expect("large reconverges");
}
