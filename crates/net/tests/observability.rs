//! Observability end-to-end: a client pulls live metrics and the
//! flight-recorder tail over a real socket, and a deliberately wedged
//! node leaves behind a trace that names the stalled subsystem.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crdt_lattice::ReplicaId;
use crdt_net::{NetClient, NodeConfig, NodeHandle};
use crdt_obs::recorder;
use crdt_sync::ProtocolKind;
use crdt_types::{GSet, GSetOp};
use delta_store::StoreConfig;

const A: ReplicaId = ReplicaId(0);
const B: ReplicaId = ReplicaId(1);

type Node = NodeHandle<u64, GSet<u64>>;

fn cfg(protocol: ProtocolKind) -> NodeConfig {
    NodeConfig::new(StoreConfig::new(protocol), 2)
}

/// Poll `probe` until it returns true or `timeout` passes.
fn eventually(timeout: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if probe() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// A client pulls the node's metrics snapshot and trace tail over the
/// socket, and it matches the in-process view: the exposition names
/// every subsystem that did work, the trace carries the sync rounds
/// that drove it.
#[test]
fn stats_served_over_socket() {
    let a: Node = NodeHandle::spawn(A, cfg(ProtocolKind::BpRr)).unwrap();
    let b: Node = NodeHandle::spawn(B, cfg(ProtocolKind::BpRr)).unwrap();
    a.connect(B, b.addr()).unwrap();
    b.connect(A, a.addr()).unwrap();

    for i in 0..8 {
        a.update(1, &GSetOp::Add(i));
        a.sync_now();
    }
    assert!(
        eventually(Duration::from_secs(5), || {
            b.absorb_pending();
            b.get(1).is_some_and(|s| s.len() == 8)
        }),
        "state never converged"
    );

    let mut client: NetClient<u64, GSet<u64>> =
        NetClient::connect(a.addr(), crdt_net::framing::DEFAULT_MAX_FRAME_BYTES).unwrap();
    let report = client.stats(64).unwrap();
    assert_eq!(report.node, A);

    // The exposition is the live registry: counters from every layer
    // the workload exercised, in sorted deterministic form.
    let expo = &report.exposition;
    for name in [
        "engine.ops 8",
        "engine.sync.frames",
        "net.frames.sent",
        "net.sync.rounds 8",
        "store.objects 1",
        "store.sync.steps 8",
    ] {
        assert!(expo.contains(name), "exposition missing `{name}`:\n{expo}");
    }
    let mut lines: Vec<&str> = expo.lines().collect();
    let unsorted = lines.clone();
    lines.sort_unstable();
    assert_eq!(lines, unsorted, "exposition must be sorted");

    // The trace tail carries the sync rounds, stamped with the logical
    // clock (tick == round), exactly as the in-process accessor sees.
    assert!(
        report
            .trace
            .iter()
            .any(|e| e.kind == crdt_obs::EventKind::SyncRoundEnd && e.tick == e.a),
        "trace tail missing logically-stamped sync rounds"
    );
    let local = a.stats_local(64);
    assert_eq!(local.node, report.node);
    for name in ["engine.ops 8", "net.sync.rounds 8"] {
        assert!(local.exposition.contains(name));
    }
    a.shutdown_untyped();
    b.shutdown_untyped();
}

/// Wedge a consumer (inbox bound 1, never absorbing) and fail the run
/// the way a harness would: the armed flight recorder dumps a trace
/// that names `net.reactor` as the stalled subsystem.
#[test]
fn wedged_node_dump_names_the_stalled_subsystem() {
    let a: Node = NodeHandle::spawn(A, cfg(ProtocolKind::BpRr)).unwrap();
    let b: Node = NodeHandle::spawn(B, cfg(ProtocolKind::BpRr).with_inbox_capacity(1)).unwrap();
    a.connect(B, b.addr()).unwrap();

    // Overrun the one-slot inbox; the consumer never absorbs, so its
    // reads stall and the reactor records the transition.
    for i in 0..16 {
        a.update(1, &GSetOp::Add(i));
        a.sync_now();
    }
    assert!(
        eventually(Duration::from_secs(5), || b.probe_local().stall_events > 0),
        "consumer never stalled"
    );

    // Harness-failure path: capture the dump instead of stderr, arm the
    // wedged node's recorder, and dump without panicking.
    let captured: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&captured);
    recorder::set_panic_sink(Some(Box::new(move |text| {
        sink.lock().unwrap().push(text.to_string());
    })));
    b.obs().recorder.dump_on_panic("wedged-consumer");
    recorder::dump_armed();
    recorder::set_panic_sink(None);

    let dumps = captured.lock().unwrap();
    assert_eq!(dumps.len(), 1);
    assert!(
        dumps[0].contains("net.reactor reactor_stall"),
        "dump must name the stalled subsystem:\n{}",
        dumps[0]
    );
    assert!(b.obs().recorder.panic_dumped());
    a.shutdown_untyped();
    b.shutdown_untyped();
}
