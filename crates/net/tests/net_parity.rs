//! The acceptance suite of the socket runtime: a real 5-node
//! `LoopbackCluster` must converge for **every** [`ProtocolKind`], and
//! its model-view byte accounting must match the in-process simulator
//! (`delta_store::Cluster`) for the same workload and topology —
//! **exactly** for the kinds whose absorb path is join-commutative and
//! reply-free (the Algorithm-1 delta family and `state`), within
//! tolerance for the push-pull/acked kinds, whose reply cascades cross
//! drain passes differently over real sockets than in the simulator's
//! single-sweep loop.
//!
//! Plus the operational paths: partitions healed by the over-socket
//! digest repair, durable and cold crash/restart, the free-running
//! scheduler, scenario-event mapping, and frame-level hardening.

use std::time::Duration;

use crdt_lattice::ReplicaId;
use crdt_net::{LoopbackCluster, NetClient, NodeConfig};
use crdt_sim::ScenarioEvent;
use crdt_sync::ProtocolKind;
use crdt_types::{GSet, GSetOp};
use delta_store::{Cluster, StoreConfig, TrafficStats};

type Key = String;
type Val = GSet<u64>;

const KEYS: [&str; 3] = ["alpha", "beta", "gamma"];

/// The deterministic workload both clusters replay: every node updates
/// every key with node-distinct elements, twice.
fn workload(n: usize) -> Vec<(usize, Key, GSetOp<u64>)> {
    let mut ops = Vec::new();
    for node in 0..n {
        for (k, key) in KEYS.iter().enumerate() {
            for rep in 0..2u64 {
                ops.push((
                    node,
                    key.to_string(),
                    GSetOp::Add((node as u64) * 100 + (k as u64) * 10 + rep),
                ));
            }
        }
    }
    ops
}

fn sim_run(kind: ProtocolKind, n: usize, max_rounds: usize) -> (Cluster<Key, Val>, TrafficStats) {
    let mut sim: Cluster<Key, Val> = Cluster::full_mesh(n, StoreConfig::new(kind));
    for (node, key, op) in workload(n) {
        sim.update(node, key, &op);
    }
    sim.run_until_converged(max_rounds)
        .expect_converged(&format!("simulator, {kind}"));
    let stats = sim.stats();
    (sim, stats)
}

fn net_run(
    kind: ProtocolKind,
    n: usize,
    max_rounds: usize,
) -> (LoopbackCluster<Key, Val>, TrafficStats) {
    let cfg = NodeConfig::new(StoreConfig::new(kind), n);
    let mut net: LoopbackCluster<Key, Val> =
        LoopbackCluster::full_mesh(n, cfg).expect("spawn loopback cluster");
    for (node, key, op) in workload(n) {
        net.update(node, key, &op);
    }
    let report = net.run_until_converged(max_rounds);
    assert!(report.converged, "sockets, {kind}: {report}");
    let stats = net.stats();
    (net, stats)
}

/// The headline acceptance criterion: 5 real-socket nodes, every kind,
/// converged states identical to the simulator's, byte totals exact for
/// the raw-δ kinds and within tolerance otherwise.
#[test]
fn five_node_cluster_matches_simulator_accounting_for_every_kind() {
    const N: usize = 5;
    const MAX_ROUNDS: usize = 24;
    for kind in ProtocolKind::ALL {
        let (sim, sim_stats) = sim_run(kind, N, MAX_ROUNDS);
        let (mut net, net_stats) = net_run(kind, N, MAX_ROUNDS);

        // Converged *to the same states*, read over the socket clients.
        for key in KEYS {
            let over_socket = net
                .get(0, key.to_string())
                .unwrap_or_else(|| panic!("{kind}: {key} missing over sockets"));
            let in_process = sim
                .replica(0)
                .get(key.to_string())
                .unwrap_or_else(|| panic!("{kind}: {key} missing in simulator"));
            assert_eq!(&over_socket, in_process, "{kind}: {key} state mismatch");
        }

        if kind == ProtocolKind::ScuttlebuttGc {
            // The one legitimate non-exact kind: GC replies embed a
            // snapshot of the sender's *second-order* knowledge matrix,
            // and the socket drain is a barrier pass (replies emitted in
            // pass k absorb in pass k+1) while the simulator's drain
            // sweeps node-by-node, delivering some same-pass. Message
            // flow and payload follow the identical DAG — only the
            // piggybacked knowledge snapshot size shifts, by a few
            // percent. Pinned tightly in
            // `scuttlebutt_gc_drift_is_knowledge_snapshot_only`.
            assert_eq!(net_stats.messages, sim_stats.messages, "{kind}: messages");
            assert_eq!(
                net_stats.payload_bytes, sim_stats.payload_bytes,
                "{kind}: payload bytes"
            );
            let (lo, hi) = (
                sim_stats.metadata_bytes.min(net_stats.metadata_bytes) as f64,
                sim_stats.metadata_bytes.max(net_stats.metadata_bytes) as f64,
            );
            assert!(
                hi <= lo * 1.05,
                "{kind}: knowledge-snapshot drift beyond 5% (sim {sim_stats:?}, net {net_stats:?})"
            );
        } else {
            // Everything else — the Algorithm-1 delta family, state,
            // plain scuttlebutt, op-based, acked — reproduces the
            // simulator's accounting byte for byte: replies carry only
            // first-order state, which follows the same message DAG
            // under both drain schedules.
            assert_eq!(
                net_stats, sim_stats,
                "{kind}: socket accounting must be byte-identical to the simulator"
            );
        }

        // The socket ledger is real: frames were written, and every
        // frame cost its payload plus a 4-byte prefix.
        let wire = net.wire_totals();
        assert!(wire.frames > 0, "{kind}: no frames crossed the sockets?");
        assert!(
            wire.bytes > wire.frames * 4,
            "{kind}: wire bytes must exceed prefix overhead"
        );
    }
}

/// Two identical lockstep runs produce identical accounting — the
/// determinism the CI gate stands on.
#[test]
fn lockstep_accounting_is_deterministic_across_runs() {
    for kind in [ProtocolKind::BpRr, ProtocolKind::Scuttlebutt] {
        let (_, first) = net_run(kind, 3, 16);
        let (_, second) = net_run(kind, 3, 16);
        assert_eq!(first, second, "{kind}: run-to-run accounting drift");
    }
}

#[test]
fn partition_heals_via_digest_repair_over_sockets() {
    let cfg = NodeConfig::new(StoreConfig::new(ProtocolKind::BpRr), 4);
    let mut net: LoopbackCluster<Key, Val> = LoopbackCluster::full_mesh(4, cfg).unwrap();
    net.partition(&[0, 1]);
    net.update(0, "left".into(), &GSetOp::Add(1));
    net.update(2, "right".into(), &GSetOp::Add(2));
    for _ in 0..3 {
        net.sync_round();
    }
    assert!(
        !net.converged(),
        "the cut must block cross-side convergence"
    );
    // δ-buffers drained into severed links; ordinary rounds cannot
    // repair. The over-socket digest handshake can.
    let stats = net.heal_and_repair();
    assert!(
        stats.iter().any(|s| s.payload_elements > 0),
        "repair must ship the missing irreducibles"
    );
    let report = net.run_until_converged(8);
    assert!(report.converged, "{report}");
    assert!(net.get(3, "left".into()).unwrap().contains(&1));
    assert!(net.get(0, "right".into()).unwrap().contains(&2));
}

/// On a keyspace past `MERKLE_REPAIR_THRESHOLD`, the socket repair path
/// walks the Merkle trees instead of sweeping every object: same
/// irreducibles shipped, same converged states, but the descent's
/// metadata cost is a fraction of the full digest sweep's.
#[test]
fn merkle_repair_localizes_divergence_over_sockets() {
    const KEYSPACE: usize = 200;
    let build = || {
        let cfg = NodeConfig::new(StoreConfig::new(ProtocolKind::BpRr), 2);
        let mut net: LoopbackCluster<Key, Val> = LoopbackCluster::full_mesh(2, cfg).unwrap();
        for i in 0..KEYSPACE {
            net.update(0, format!("key-{i:04}"), &GSetOp::Add(i as u64));
        }
        let report = net.run_until_converged(16);
        assert!(report.converged, "seed: {report}");
        net.partition(&[0]);
        net.update(0, "key-0005".into(), &GSetOp::Add(10_000));
        net.update(1, "key-0100".into(), &GSetOp::Add(10_001));
        net.sync_round(); // δ-buffers drain into the severed links
        net.heal();
        net
    };

    let mut sweep = build();
    let sweep_stats = sweep
        .node(0)
        .repair_with(ReplicaId(1), sweep.addr(1))
        .expect("full digest sweep");
    let mut merkle = build();
    let merkle_stats = merkle
        .node(0)
        .merkle_repair_with(ReplicaId(1), merkle.addr(1))
        .expect("merkle descent repair");

    for net in [&mut sweep, &mut merkle] {
        let report = net.run_until_converged(8);
        assert!(report.converged, "{report}");
        assert!(net.get(1, "key-0005".into()).unwrap().contains(&10_000));
        assert!(net.get(0, "key-0100".into()).unwrap().contains(&10_001));
    }
    // Both paths ship exactly the missing irreducibles…
    assert_eq!(
        merkle_stats.payload_elements, sweep_stats.payload_elements,
        "merkle {merkle_stats:?} vs sweep {sweep_stats:?}"
    );
    assert!(merkle_stats.payload_elements > 0);
    // …but localization pays descent frames instead of a digest per
    // object: with 2 diverged keys in 200, at least 4× cheaper.
    assert!(
        merkle_stats.metadata_bytes * 4 < sweep_stats.metadata_bytes,
        "descent must undercut the sweep: merkle {merkle_stats:?} vs sweep {sweep_stats:?}"
    );
}

#[test]
fn crash_restart_durable_and_cold() {
    for durable in [true, false] {
        let cfg = NodeConfig::new(StoreConfig::new(ProtocolKind::BpRr), 4);
        let mut net: LoopbackCluster<Key, Val> = LoopbackCluster::full_mesh(4, cfg).unwrap();
        net.update(0, "x".into(), &GSetOp::Add(1));
        let report = net.run_until_converged(8);
        assert!(report.converged, "warm-up: {report}");
        net.crash(3, durable);
        assert!(!net.is_alive(3));
        // Progress while #3 is down: peers' δ-buffers drain into dead
        // connections.
        net.update(1, "x".into(), &GSetOp::Add(2));
        net.sync_round();
        net.sync_round();
        assert!(net.converged(), "live nodes agree without #3");
        net.restart(3, Some(0)).expect("restart");
        assert!(net.is_alive(3));
        let report = net.run_until_converged(8);
        assert!(report.converged, "durable={durable}: {report}");
        assert_eq!(
            net.get(3, "x".into()).unwrap().len(),
            2,
            "durable={durable}"
        );
    }
}

/// A restart while a partition is active must not heal the cut: the
/// re-dialed links come back severed, and the scenario-level repair
/// donor stays on the restarted node's own side.
#[test]
fn restart_under_partition_does_not_leak_across_the_cut() {
    let cfg = NodeConfig::new(StoreConfig::new(ProtocolKind::BpRr), 4);
    let mut net: LoopbackCluster<Key, Val> = LoopbackCluster::full_mesh(4, cfg).unwrap();
    net.update(0, "seed".into(), &GSetOp::Add(1));
    let report = net.run_until_converged(8);
    assert!(report.converged, "warm-up: {report}");
    net.partition(&[0, 1]);
    net.update(0, "left".into(), &GSetOp::Add(10));
    net.update(2, "right".into(), &GSetOp::Add(20));
    net.sync_round();
    // Crash and restart node 1 (same side as node 0) while the cut is
    // active, with a scenario-level restart that picks its own donor.
    net.apply_event(&ScenarioEvent::Crash {
        node: 1,
        durable: true,
    })
    .unwrap();
    net.apply_event(&ScenarioEvent::Restart { node: 1 })
        .unwrap();
    for _ in 0..3 {
        net.sync_round();
    }
    // Node 1 caught up with its own side…
    assert!(net.get(1, "left".into()).unwrap().contains(&10));
    // …but nothing crossed the cut in either direction.
    assert!(
        net.get(1, "right".into()).is_none(),
        "restart must not leak far-side state through re-dialed links"
    );
    assert!(
        net.get(2, "left".into()).is_none(),
        "restart must not leak near-side state to the far side"
    );
    assert!(!net.converged());
    // Healing with repair reunites the sides as usual.
    net.heal_and_repair();
    let report = net.run_until_converged(8);
    assert!(report.converged, "{report}");
    assert!(net.get(3, "left".into()).unwrap().contains(&10));
}

#[test]
fn free_running_scheduler_converges_without_external_driving() {
    let cfg = NodeConfig::new(StoreConfig::new(ProtocolKind::BpRr), 3)
        .with_scheduler(Duration::from_millis(5));
    let mut net: LoopbackCluster<Key, Val> = LoopbackCluster::full_mesh(3, cfg).unwrap();
    net.update(0, "a".into(), &GSetOp::Add(7));
    net.update(2, "b".into(), &GSetOp::Add(9));
    let report = net.await_convergence(Duration::from_secs(10));
    assert!(report.converged, "{report}");
    assert!(report.rounds > 0, "the scheduler must have run sync steps");
    assert!(net.get(1, "a".into()).unwrap().contains(&7));
    assert!(net.get(0, "b".into()).unwrap().contains(&9));
}

#[test]
fn frozen_links_delay_without_reorder() {
    let cfg = NodeConfig::new(StoreConfig::new(ProtocolKind::BpRr), 2);
    let mut net: LoopbackCluster<Key, Val> = LoopbackCluster::full_mesh(2, cfg).unwrap();
    net.freeze_link(0, 1);
    net.update(0, "x".into(), &GSetOp::Add(1));
    net.node(0).sync_now();
    // The frame is parked, not delivered and not dropped.
    assert!(net.get(1, "x".into()).is_none());
    assert_eq!(net.in_flight(), 1, "parked frame is accounted in flight");
    net.thaw_link(0, 1);
    net.drain();
    assert!(net.get(1, "x".into()).unwrap().contains(&1));
}

#[test]
fn scenario_events_map_where_honest() {
    let cfg = NodeConfig::new(StoreConfig::new(ProtocolKind::BpRr), 4);
    let mut net: LoopbackCluster<Key, Val> = LoopbackCluster::full_mesh(4, cfg).unwrap();
    net.update(0, "x".into(), &GSetOp::Add(1));
    net.apply_event(&ScenarioEvent::Partition {
        groups: vec![vec![0, 1]],
    })
    .unwrap();
    net.update(2, "y".into(), &GSetOp::Add(2));
    net.sync_round();
    assert!(!net.converged());
    net.apply_event(&ScenarioEvent::Heal).unwrap();
    net.apply_event(&ScenarioEvent::Crash {
        node: 3,
        durable: true,
    })
    .unwrap();
    net.apply_event(&ScenarioEvent::Restart { node: 3 })
        .unwrap();
    let report = net.run_until_converged(8);
    assert!(report.converged, "{report}");
    // Vocabulary without a socket-level equivalent is an error, not a
    // silent approximation.
    let err = net
        .apply_event(&ScenarioEvent::Join {
            links: vec![0],
            bootstrap: 0,
        })
        .unwrap_err();
    assert!(err.to_string().contains("no socket-level mapping"), "{err}");
}

/// A hostile frame (oversized claim) kills its connection, never the
/// node: the next client works, and the damage is counted.
#[test]
fn oversized_frame_is_contained() {
    use std::io::Write;
    let cfg = NodeConfig::new(StoreConfig::new(ProtocolKind::BpRr), 1).with_max_frame_bytes(1024);
    let mut net: LoopbackCluster<Key, Val> = LoopbackCluster::full_mesh(1, cfg).unwrap();
    net.update(0, "x".into(), &GSetOp::Add(1));
    {
        let mut hostile = std::net::TcpStream::connect(net.addr(0)).unwrap();
        hostile.write_all(&u32::MAX.to_le_bytes()).unwrap();
        hostile.write_all(&[0xAA; 64]).unwrap();
    }
    // Give the reader a beat to hit the guard.
    std::thread::sleep(Duration::from_millis(50));
    // The node is still serving; a fresh client sees the data.
    let mut client: NetClient<Key, Val> =
        NetClient::connect(net.addr(0), 1024).expect("node must survive the hostile frame");
    assert!(client.get("x".into()).unwrap().unwrap().contains(&1));
    let probe = net.node(0).probe_local();
    assert!(probe.bad_frames >= 1, "the hostile frame must be counted");
}

/// Batches from a peer of the wrong protocol are rejected per-frame
/// (counted, not fatal), mirroring the store's `EngineError` contract.
#[test]
fn mismatched_protocol_batch_is_contained() {
    let bp: LoopbackCluster<Key, Val> =
        LoopbackCluster::full_mesh(1, NodeConfig::new(StoreConfig::new(ProtocolKind::BpRr), 1))
            .unwrap();
    let cfg = NodeConfig::new(StoreConfig::new(ProtocolKind::Scuttlebutt), 2);
    let sb: LoopbackCluster<Key, Val> = LoopbackCluster::full_mesh(1, cfg).unwrap();
    // Hand-wire the scuttlebutt node to push to the BP+RR node.
    sb.node(0).update("x".into(), &GSetOp::Add(5));
    sb.node(0).connect(ReplicaId(1), bp.addr(0)).unwrap();
    sb.node(0).sync_now();
    std::thread::sleep(Duration::from_millis(50));
    let absorbed = bp.node(0).absorb_pending();
    assert_eq!(absorbed, 0, "mismatched batch must not absorb");
    assert!(bp.node(0).probe_local().bad_frames >= 1);
}

/// Scuttlebutt-GC's sim-vs-socket drift is *only* the piggybacked
/// knowledge-matrix snapshot, nothing else. Root cause: `SbMsg::Reply`
/// and `SbMsg::Final` embed the sender's second-order knowledge (what I
/// know *they* have seen) at build time; the socket drain is a barrier
/// pass — every inbox snapshotted, then absorbed — so a reply emitted
/// in pass k merges into its receiver's knowledge one pass later than
/// under the simulator's node-by-node sweep, where node i's reply can
/// reach node j > i within the same pass. First-order state (clocks,
/// δ-payload, message count) follows the identical message DAG either
/// way. This test pins that decomposition: if messages or payload ever
/// drift, or the knowledge snapshot drifts past 5%, something real
/// broke — not the schedule.
#[test]
fn scuttlebutt_gc_drift_is_knowledge_snapshot_only() {
    let (_, sim) = sim_run(ProtocolKind::ScuttlebuttGc, 5, 24);
    let (_, net) = net_run(ProtocolKind::ScuttlebuttGc, 5, 24);
    assert_eq!(net.messages, sim.messages, "message DAG must match");
    assert_eq!(
        net.payload_bytes, sim.payload_bytes,
        "δ-payload must match byte for byte"
    );
    let (lo, hi) = (
        sim.metadata_bytes.min(net.metadata_bytes) as f64,
        sim.metadata_bytes.max(net.metadata_bytes) as f64,
    );
    assert!(
        hi <= lo * 1.05,
        "knowledge snapshot drift beyond 5%: sim {sim:?}, net {net:?}"
    );
    // And the barrier drain can only *delay* knowledge, never invent
    // it: the socket run's snapshots are no larger than the sweep's.
    assert!(
        net.metadata_bytes <= sim.metadata_bytes,
        "socket knowledge snapshots exceed the simulator's: sim {sim:?}, net {net:?}"
    );
}
