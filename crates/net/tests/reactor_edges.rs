//! Reactor edge cases: the failure modes an event-driven runtime must
//! survive that a thread-per-peer runtime never sees.
//!
//! * **Slow consumers** — a bounded inbox stalls reads instead of
//!   growing without bound, and no frame is lost: the backlog parks in
//!   the kernel socket buffer until the consumer absorbs.
//! * **Half-open connections** — a dialer that never completes a frame
//!   is pruned by the readiness loop; one that has spoken is kept.
//! * **Reconnect storms** — clients dialing and dropping in a loop must
//!   not leak fds or wedge the node.
//! * **Scheduled compaction** — the timer wheel's `compact()` holds
//!   synchronization metadata flat under churn on a live node.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crdt_lattice::ReplicaId;
use crdt_net::{LoopbackCluster, NetClient, NodeConfig, NodeHandle};
use crdt_sync::ProtocolKind;
use crdt_types::{GSet, GSetOp};
use delta_store::StoreConfig;

const A: ReplicaId = ReplicaId(0);
const B: ReplicaId = ReplicaId(1);

type Node = NodeHandle<u64, GSet<u64>>;

fn cfg(protocol: ProtocolKind) -> NodeConfig {
    NodeConfig::new(StoreConfig::new(protocol), 2)
}

/// Poll `probe` until it returns true or `timeout` passes.
fn eventually(timeout: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if probe() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// A consumer that never absorbs holds its inbox at the configured
/// bound — reads stall (counted) and the backlog backs up into TCP —
/// and once it does absorb, every frame the producer sent lands: the
/// policy is stall, never drop.
#[test]
fn bounded_inbox_stalls_reads_without_loss() {
    const INBOX: usize = 4;
    const FRAMES: u64 = 32;
    let a: Node = NodeHandle::spawn(A, cfg(ProtocolKind::BpRr)).unwrap();
    let b: Node = NodeHandle::spawn(B, cfg(ProtocolKind::BpRr).with_inbox_capacity(INBOX)).unwrap();
    a.connect(B, b.addr()).unwrap();

    // Externally driven producer: each update + sync ships one batch
    // frame to the silent consumer.
    for i in 0..FRAMES {
        a.update(1, &GSetOp::Add(i));
        a.sync_now();
    }
    let sent = a
        .frames_sent_to()
        .into_iter()
        .find(|(to, _)| *to == B)
        .map_or(0, |(_, n)| n);
    assert!(sent > INBOX as u64, "producer must overrun the inbox");

    // The inbox fills to its bound and stops: reads stall.
    assert!(
        eventually(Duration::from_secs(5), || {
            let p = b.probe_local();
            p.inbox_len == INBOX as u64 && p.stall_events > 0
        }),
        "consumer never reached the stalled-full state: {:?}",
        b.probe_local()
    );
    // Held stalled, the inbox never exceeds its bound.
    for _ in 0..20 {
        assert!(
            b.probe_local().inbox_len <= INBOX as u64,
            "bounded inbox grew past its capacity"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // Absorbing drains the backlog; every frame sent eventually lands —
    // backpressure delayed them, nothing dropped them.
    assert!(
        eventually(Duration::from_secs(5), || {
            b.absorb_pending();
            let landed = b
                .frames_landed_from()
                .into_iter()
                .find(|(from, _)| *from == A)
                .map_or(0, |(_, n)| n);
            landed == sent
        }),
        "stalled frames never landed: sent {sent}, probe {:?}",
        b.probe_local()
    );
    let p = b.probe_local();
    assert_eq!(p.bad_frames, 0);
    assert_eq!(p.queue_dropped_frames, 0);
    a.shutdown_untyped();
    b.shutdown_untyped();
}

/// A connection that never completes a frame is half-open debris: the
/// readiness loop prunes it after the timeout, and the node keeps
/// serving.
#[test]
fn half_open_connections_are_pruned() {
    let node: Node = NodeHandle::spawn(
        A,
        cfg(ProtocolKind::BpRr).with_half_open_timeout(Duration::from_millis(150)),
    )
    .unwrap();

    // Dial and send two bytes of a length prefix — then go silent.
    let mut half_open = TcpStream::connect(node.addr()).unwrap();
    half_open.write_all(&[0x10, 0x00]).unwrap();
    assert!(
        eventually(Duration::from_secs(2), || node.live_connections() == 1),
        "half-open connection was never registered"
    );

    // The prune fires after the timeout; the socket stays held open on
    // our side the whole time — the *server* gives up on it.
    assert!(
        eventually(Duration::from_secs(3), || node.live_connections() == 0),
        "half-open connection survived the timeout"
    );

    // The node is unwedged: a real client connects and is served.
    let mut client: NetClient<u64, GSet<u64>> =
        NetClient::connect(node.addr(), crdt_net::framing::DEFAULT_MAX_FRAME_BYTES).unwrap();
    let report = client.probe().unwrap();
    assert_eq!(report.node, A);
    drop(half_open);
    node.shutdown_untyped();
}

/// Count this process's open file descriptors.
fn open_fds() -> usize {
    std::fs::read_dir("/proc/self/fd").map_or(0, |d| d.count())
}

/// N clients dialing, speaking once, and dropping in a tight loop: the
/// node must shed every dead connection (no fd leak, no wedge).
#[test]
fn reconnect_storm_leaks_no_fds_and_does_not_wedge() {
    const STORM: usize = 150;
    let node: Node = NodeHandle::spawn(A, cfg(ProtocolKind::BpRr)).unwrap();
    node.update(1, &GSetOp::Add(7));

    // Warm up one connect/drop cycle so lazily allocated fds (thread
    // stacks, epoll-free poll plumbing) are in place before measuring.
    {
        let mut c: NetClient<u64, GSet<u64>> =
            NetClient::connect(node.addr(), crdt_net::framing::DEFAULT_MAX_FRAME_BYTES).unwrap();
        c.probe().unwrap();
    }
    let fds_before = open_fds();

    for i in 0..STORM {
        let mut c: NetClient<u64, GSet<u64>> =
            NetClient::connect(node.addr(), crdt_net::framing::DEFAULT_MAX_FRAME_BYTES).unwrap();
        if i % 3 == 0 {
            assert_eq!(c.get(1).unwrap(), Some(GSet::from_iter([7u64])));
        } else {
            c.probe().unwrap();
        }
        // Dropped here: the server sees EOF and must prune.
    }

    // Every storm connection is shed…
    assert!(
        eventually(Duration::from_secs(5), || node.live_connections() == 0),
        "storm connections were never pruned: {} still live",
        node.live_connections()
    );
    // …and the fd table is back where it started (generous slack for
    // allocator/runtime noise — a leak of 150 sockets dwarfs it).
    let fds_after = open_fds();
    assert!(
        fds_after <= fds_before + 10,
        "fd leak under reconnect storm: {fds_before} -> {fds_after}"
    );

    // Still serving after the storm.
    let mut c: NetClient<u64, GSet<u64>> =
        NetClient::connect(node.addr(), crdt_net::framing::DEFAULT_MAX_FRAME_BYTES).unwrap();
    assert_eq!(c.probe().unwrap().node, A);
    node.shutdown_untyped();
}

/// The timer wheel's scheduled `compact()` (ROADMAP item 1 follow-on):
/// under steady churn on a live free-running pair, causal-stability
/// compaction holds synchronization metadata flat, while the identical
/// workload without the compaction timer accretes every epoch's deltas.
/// Plain Scuttlebutt is the vehicle — nothing prunes its dot store
/// except `compact()`.
#[test]
fn scheduled_compaction_keeps_metadata_flat_under_churn() {
    const KEYS: u64 = 8;
    const EPOCHS: u64 = 30;
    let base = NodeConfig::new(StoreConfig::new(ProtocolKind::Scuttlebutt), 2)
        .with_scheduler(Duration::from_millis(1));
    let compacted_cfg = base.with_compaction(Duration::from_millis(2));

    let mut compacted: LoopbackCluster<u64, GSet<u64>> =
        LoopbackCluster::full_mesh(2, compacted_cfg).unwrap();
    let mut accreting: LoopbackCluster<u64, GSet<u64>> =
        LoopbackCluster::full_mesh(2, base).unwrap();

    for e in 0..EPOCHS {
        for k in 0..KEYS {
            compacted.update(0, k, &GSetOp::Add(e * 10_000 + k));
            compacted.update(1, k, &GSetOp::Add(e * 10_000 + 5_000 + k));
            accreting.update(0, k, &GSetOp::Add(e * 10_000 + k));
            accreting.update(1, k, &GSetOp::Add(e * 10_000 + 5_000 + k));
        }
        // Let the schedulers exchange and the compaction timer fire.
        std::thread::sleep(Duration::from_millis(4));
    }
    let report = compacted.await_convergence(Duration::from_secs(10));
    assert!(
        report.converged,
        "compacted pair failed to converge: {report}"
    );
    let report = accreting.await_convergence(Duration::from_secs(10));
    assert!(
        report.converged,
        "accreting pair failed to converge: {report}"
    );
    // One more beat so the compaction timer runs over the final,
    // fully-exchanged knowledge frontier.
    std::thread::sleep(Duration::from_millis(20));

    let flat = compacted.node(0).memory();
    let grown = accreting.node(0).memory();
    // Same live CRDT state on both…
    assert_eq!(flat.crdt_elements, grown.crdt_elements);
    for k in 0..KEYS {
        assert_eq!(
            compacted.get(0, k),
            accreting.get(0, k),
            "compaction changed state at {k}"
        );
    }
    // …but the compacted node's metadata is a fraction of the twin's
    // retained history (factor 2 is lenient: the true gap is ~EPOCHS×).
    assert!(
        flat.meta_bytes * 2 <= grown.meta_bytes,
        "scheduled compaction did not bound metadata: {} B compacted vs {} B accreted",
        flat.meta_bytes,
        grown.meta_bytes
    );
}
