//! Corrupt-frame robustness for the length-prefixed socket framing:
//! truncated prefixes, truncated payloads, oversized claims, and
//! arbitrary garbage streams must surface as [`FrameError`]s — never a
//! panic, and never a buffer proportional to a hostile claim.
//!
//! This is the socket-layer sibling of `crdt-sync`'s
//! `proptest_corrupt_frames` suite: that one attacks the bytes *inside*
//! a frame, this one attacks the frame boundary itself. CI runs both
//! with a raised `PROPTEST_CASES`.

use crdt_net::framing::{read_frame, write_frame, FrameError, LEN_PREFIX_BYTES};
use crdt_sync::BufferPool;
use proptest::collection::vec as pvec;
use proptest::prelude::*;

const MAX: usize = 4096;

/// Read frames until EOF or error, returning the payloads and whether
/// the stream ended cleanly.
fn read_all(mut wire: &[u8], max: usize) -> (Vec<Vec<u8>>, Result<(), String>) {
    let mut pool = BufferPool::new();
    let mut frames = Vec::new();
    loop {
        match read_frame(&mut wire, max, &mut pool) {
            Ok(Some(frame)) => frames.push(frame.to_vec()),
            Ok(None) => return (frames, Ok(())),
            Err(e) => return (frames, Err(e.to_string())),
        }
    }
}

proptest! {
    /// A stream of valid frames round-trips exactly and ends cleanly.
    #[test]
    fn valid_streams_roundtrip(payloads in pvec(pvec(any::<u8>(), 0..200), 0..8)) {
        let mut wire = Vec::new();
        let mut expected_bytes = 0u64;
        for p in &payloads {
            expected_bytes += write_frame(&mut wire, p, MAX).unwrap();
        }
        prop_assert_eq!(expected_bytes as usize, wire.len());
        let (frames, end) = read_all(&wire, MAX);
        prop_assert!(end.is_ok());
        prop_assert_eq!(frames, payloads);
    }

    /// Truncating a valid stream at any interior point of the final
    /// frame yields `Truncated` (a cut at a frame boundary is a clean
    /// EOF instead). Never a panic, never a hang.
    #[test]
    fn truncations_error_or_end_cleanly(
        payloads in pvec(pvec(any::<u8>(), 1..100), 1..5),
        cut_seed in any::<u64>(),
    ) {
        let mut wire = Vec::new();
        let mut boundaries = vec![0usize];
        for p in &payloads {
            write_frame(&mut wire, p, MAX).unwrap();
            boundaries.push(wire.len());
        }
        let cut = (cut_seed as usize) % wire.len();
        let (frames, end) = read_all(&wire[..cut], MAX);
        if boundaries.contains(&cut) {
            prop_assert!(end.is_ok(), "boundary cut is a clean EOF");
        } else {
            prop_assert_eq!(end.unwrap_err(), "stream ended inside a frame".to_string());
        }
        // Whatever parsed before the cut is a prefix of the original.
        prop_assert!(frames.len() <= payloads.len());
        for (got, want) in frames.iter().zip(&payloads) {
            prop_assert_eq!(got, want);
        }
    }

    /// A prefix claiming more than the cap errors out `Oversized` —
    /// before the reader buffers anything, so the hostile stream can
    /// even be shorter than its own claim.
    #[test]
    fn oversized_claims_are_rejected_unbuffered(
        claim in (MAX as u32 + 1)..u32::MAX,
        tail in pvec(any::<u8>(), 0..32),
    ) {
        let mut wire = claim.to_le_bytes().to_vec();
        wire.extend_from_slice(&tail);
        let mut pool = BufferPool::new();
        let mut cursor: &[u8] = &wire;
        match read_frame(&mut cursor, MAX, &mut pool) {
            Err(FrameError::Oversized { claimed, max_frame_bytes }) => {
                prop_assert_eq!(claimed, claim as u64);
                prop_assert_eq!(max_frame_bytes, MAX);
                // The reader consumed only the prefix: nothing of the
                // claimed payload was pulled in.
                prop_assert_eq!(cursor.len(), tail.len());
            }
            other => prop_assert!(false, "expected Oversized, got {other:?}"),
        }
    }

    /// Arbitrary garbage streams never panic: every outcome is a parsed
    /// frame (when the bytes happen to frame), a clean EOF, or an error.
    #[test]
    fn arbitrary_garbage_never_panics(wire in pvec(any::<u8>(), 0..256)) {
        let (_frames, _end) = read_all(&wire, 64);
        // Also under a zero cap, where every nonempty claim is hostile.
        let (_f, _e) = read_all(&wire, 0);
    }

    /// A truncated prefix (fewer than `LEN_PREFIX_BYTES` bytes, at
    /// least one) is `Truncated`, not a hang or a bogus frame.
    #[test]
    fn short_prefix_is_truncated(len in 1usize..LEN_PREFIX_BYTES, byte in any::<u8>()) {
        let wire = vec![byte; len];
        let (frames, end) = read_all(&wire, MAX);
        prop_assert!(frames.is_empty());
        prop_assert_eq!(end.unwrap_err(), "stream ended inside a frame".to_string());
    }
}
