//! The client side of the node protocol: a blocking request-reply
//! connection for workloads and probes.

use std::io;
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpStream};

use crdt_lattice::WireEncode;
use crdt_sync::{BufferPool, OpBytes};
use crdt_types::Crdt;

use crate::framing::{read_frame, write_frame};
use crate::message::{NetMsg, ProbeReport, StatsReport};
use crate::node::NetError;

/// A client connection to one node: get/update/probe over real frames.
///
/// Every method is one request-reply round trip on a persistent
/// connection — the way a test (or the `net_cluster` example) drives a
/// real workload through the socket path instead of reaching into the
/// node's memory.
#[derive(Debug)]
pub struct NetClient<K, C> {
    stream: TcpStream,
    pool: BufferPool,
    max_frame_bytes: usize,
    _types: PhantomData<fn() -> (K, C)>,
}

impl<K, C> NetClient<K, C>
where
    K: WireEncode,
    C: Crdt + WireEncode,
    C::Op: WireEncode,
{
    /// Connect to the node at `addr`.
    pub fn connect(addr: SocketAddr, max_frame_bytes: usize) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(NetClient {
            stream,
            pool: BufferPool::new(),
            max_frame_bytes,
            _types: PhantomData,
        })
    }

    fn request(&mut self, msg: NetMsg<K>) -> Result<NetMsg<K>, NetError> {
        write_frame(&mut self.stream, &msg.to_bytes(), self.max_frame_bytes)?;
        let frame = read_frame(&mut self.stream, self.max_frame_bytes, &mut self.pool)?
            .ok_or(NetError::Protocol("server closed the connection"))?;
        let reply = NetMsg::<K>::from_bytes(&frame)?;
        if let NetMsg::Error { message } = reply {
            return Err(NetError::Remote(message));
        }
        Ok(reply)
    }

    /// Read the object at `key`; `None` when the node does not hold it.
    pub fn get(&mut self, key: K) -> Result<Option<C>, NetError> {
        match self.request(NetMsg::Get { key })? {
            NetMsg::GetReply { state: None } => Ok(None),
            NetMsg::GetReply { state: Some(blob) } => Ok(Some(C::from_bytes(&blob)?)),
            _ => Err(NetError::Protocol("expected GetReply")),
        }
    }

    /// Apply `op` to the object at `key` and wait for the ack.
    pub fn update(&mut self, key: K, op: &C::Op) -> Result<(), NetError> {
        match self.request(NetMsg::Update {
            key,
            op: OpBytes::encode(op).0,
        })? {
            NetMsg::UpdateReply => Ok(()),
            _ => Err(NetError::Protocol("expected UpdateReply")),
        }
    }

    /// The node's convergence probe: per-object state summaries plus
    /// transfer counters.
    pub fn probe(&mut self) -> Result<ProbeReport<K>, NetError> {
        match self.request(NetMsg::Probe)? {
            NetMsg::ProbeReply(report) => Ok(report),
            _ => Err(NetError::Protocol("expected ProbeReply")),
        }
    }

    /// The node's observability snapshot: full metrics exposition plus
    /// the newest `trace_tail` flight-recorder events.
    pub fn stats(&mut self, trace_tail: u64) -> Result<StatsReport, NetError> {
        match self.request(NetMsg::StatsRequest { trace_tail })? {
            NetMsg::StatsReply(report) => Ok(report),
            _ => Err(NetError::Protocol("expected StatsReply")),
        }
    }
}
