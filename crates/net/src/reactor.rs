//! Building blocks of the event-driven node runtime: non-blocking
//! connection state, outbound write queues with coalescing, and the
//! scheduler timer wheel.
//!
//! The workspace is dependency-free, so there is no `epoll` binding to
//! lean on; "readiness" here is a **non-blocking scan loop**: every
//! socket is `O_NONBLOCK`, each worker sweeps the connections it owns,
//! and a sweep that moves no bytes sleeps for a tick
//! ([`IDLE_TICK`]) before the next one. That is the honest poor-man's
//! poller — O(connections) per sweep instead of O(ready) — but it keeps
//! the structural properties that matter: no thread ever blocks inside
//! a socket call, one worker owns each connection outright (no locks on
//! the hot read path), and backpressure is explicit at both ends
//! (bounded inboxes stall reads; bounded write queues drop and count).
//!
//! The pieces here are deliberately passive data structures plus pure
//! functions; the policy — what a frame *means*, when to stall, when to
//! sync — lives with their owner in [`crate::node`].

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crdt_lattice::{ReplicaId, WireEncode};
use crdt_sync::{BatchEnvelope, BufferPool, Bytes};

use crate::framing::{FrameReader, ReadStatus, LEN_PREFIX_BYTES};
use crate::message::TAG_BATCH;

/// How long an idle worker sweep sleeps before rescanning its
/// connections. Small enough that lockstep harness round-trips stay
/// sub-millisecond, large enough that an idle node costs ~no CPU.
pub(crate) const IDLE_TICK: Duration = Duration::from_micros(200);

/// Frame-assembly budget per connection per sweep — bounds how long one
/// chatty peer can monopolize a worker before its siblings get served.
pub(crate) const FRAMES_PER_SWEEP: usize = 32;

/// Prefix `payload` with its length: one wire frame, ready to enqueue.
pub(crate) fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(LEN_PREFIX_BYTES + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// What one read sweep over a connection produced (completed frames are
/// pushed to the caller's vec as they assemble).
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum ConnEvent {
    /// The socket ran dry (`WouldBlock`) — nothing more right now.
    Idle,
    /// The per-sweep frame budget was exhausted with bytes still
    /// buffered; sweep again without sleeping.
    More,
    /// Clean end-of-stream at a frame boundary.
    Closed,
    /// Framing violation (truncated / oversized / io error mid-frame):
    /// the connection is no longer trustworthy.
    Corrupt,
}

/// One inbound connection, owned by exactly one reactor worker — reads
/// need no synchronization at all.
pub(crate) struct Conn {
    pub stream: TcpStream,
    pub reader: FrameReader,
    /// Set by the peer's `Hello`; `None` for client sessions.
    pub peer: Option<ReplicaId>,
    /// When the connection was accepted — with `frames_completed == 0`
    /// this drives half-open pruning.
    pub opened: Instant,
    /// Whole frames assembled on this connection.
    pub frames_completed: u64,
    /// Queued reply frames (client sessions), each a full wire frame.
    pub outbuf: VecDeque<Vec<u8>>,
    /// Bytes of `outbuf.front()` already written (partial write).
    pub out_written: usize,
    /// The connection is finished; the owner prunes it on next sweep.
    pub dead: bool,
    /// Currently stalled by a full inbox (backpressure bookkeeping —
    /// the stall *transition* is counted, not every stalled sweep).
    pub stalled: bool,
}

impl Conn {
    pub fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            reader: FrameReader::new(),
            peer: None,
            opened: Instant::now(),
            frames_completed: 0,
            outbuf: VecDeque::new(),
            out_written: 0,
            dead: false,
            stalled: false,
        }
    }

    /// Assemble up to `budget` frames from whatever the kernel has
    /// buffered, appending them to `out`.
    pub fn poll_frames(
        &mut self,
        max_frame_bytes: usize,
        pool: &mut BufferPool,
        budget: usize,
        out: &mut Vec<Bytes>,
    ) -> ConnEvent {
        for _ in 0..budget {
            match self.reader.poll(&mut self.stream, max_frame_bytes, pool) {
                Ok(ReadStatus::Frame(frame)) => {
                    self.frames_completed += 1;
                    out.push(frame);
                }
                Ok(ReadStatus::WouldBlock) => return ConnEvent::Idle,
                Ok(ReadStatus::Closed) => {
                    self.dead = true;
                    return ConnEvent::Closed;
                }
                Err(_) => {
                    self.dead = true;
                    return ConnEvent::Corrupt;
                }
            }
        }
        ConnEvent::More
    }

    /// Flush queued reply frames as far as the socket accepts. Returns
    /// true when any bytes moved.
    pub fn flush(&mut self) -> bool {
        let mut progressed = false;
        while let Some(front) = self.outbuf.front() {
            match self.stream.write(&front[self.out_written..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    progressed = true;
                    self.out_written += n;
                    if self.out_written == front.len() {
                        self.outbuf.pop_front();
                        self.out_written = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        progressed
    }
}

/// What one [`OutLink::flush`] accomplished.
#[derive(Debug, Default, PartialEq, Eq)]
pub(crate) struct FlushOutcome {
    /// Whole frames that finished writing.
    pub frames: u64,
    /// Wire bytes written (prefixes included).
    pub bytes: u64,
    /// Frames discarded because the link is severed or dead.
    pub dropped: u64,
}

/// One outbound peer link: a non-blocking stream plus a bounded queue
/// of ready-to-ship wire frames.
///
/// Fault injection maps onto queue state: a **severed** link discards
/// at enqueue *and* discards whatever is queued at the next flush
/// (frames already in the link when it was cut); a **paused** (frozen)
/// link parks frames in order and ships nothing until resumed — delay
/// without reorder, the queue is the old `frozen` buffer unified with
/// the write queue.
pub(crate) struct OutLink {
    pub stream: TcpStream,
    /// Queued wire frames (length prefix included).
    pub queue: VecDeque<Vec<u8>>,
    /// Bytes of `queue.front()` already written (partial write) — a
    /// partially-shipped frame is always completed, even on a freshly
    /// severed link, or the byte stream would desynchronize.
    pub written: usize,
    pub paused: bool,
    pub severed: bool,
    pub dead: bool,
    /// Whole frames actually written to the socket.
    pub frames_sent: u64,
    /// Frames folded away by write-side coalescing.
    pub coalesced: u64,
    /// Frames dropped by the bounded-queue overflow policy.
    pub queue_dropped: u64,
}

impl OutLink {
    pub fn new(stream: TcpStream) -> Self {
        OutLink {
            stream,
            queue: VecDeque::new(),
            written: 0,
            paused: false,
            severed: false,
            dead: false,
            frames_sent: 0,
            coalesced: 0,
            queue_dropped: 0,
        }
    }

    /// Frames queued and not yet (fully) written.
    pub fn queued(&self) -> u64 {
        self.queue.len() as u64
    }

    /// Write queued frames as far as the socket accepts. A paused link
    /// ships nothing; a severed link completes any half-written frame
    /// (stream alignment) and discards the rest.
    pub fn flush(&mut self) -> FlushOutcome {
        let mut out = FlushOutcome::default();
        if self.paused {
            return out;
        }
        if self.severed || self.dead {
            // Keep a partially-written frame only while the stream is
            // still alive to finish it on heal; everything else drains.
            let keep = usize::from(!self.dead && self.written > 0);
            while self.queue.len() > keep {
                self.queue.pop_back();
                out.dropped += 1;
            }
            if self.dead {
                self.written = 0;
            }
            return out;
        }
        while let Some(front) = self.queue.front() {
            match self.stream.write(&front[self.written..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.written += n;
                    if self.written == front.len() {
                        out.frames += 1;
                        out.bytes += front.len() as u64;
                        self.frames_sent += 1;
                        self.queue.pop_front();
                        self.written = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.dead {
            out.dropped += self.queue.len() as u64;
            self.queue.clear();
            self.written = 0;
        }
        out
    }

    /// Fold queued `BatchEnvelope` frames for this destination into as
    /// few frames as the `max_frame_bytes` cap allows. Entry order is
    /// preserved exactly (a fold is concatenation of entry lists), and a
    /// partially-written front frame is never touched. Returns the
    /// number of frames folded away.
    pub fn coalesce<K: Ord + WireEncode>(&mut self, max_frame_bytes: usize) -> u64 {
        let skip = usize::from(self.written > 0);
        let folded = coalesce_frames::<K>(&mut self.queue, skip, max_frame_bytes);
        self.coalesced += folded;
        folded
    }
}

/// The queue-level coalescing fold behind [`OutLink::coalesce`].
///
/// Adjacent batch frames merge greedily while a conservative size bound
/// (`sum of payload sizes + slack ≤ cap`) holds; if a merged encoding
/// still lands over the cap (it cannot, but the fallback keeps this
/// correct-by-construction), the original frames are emitted unchanged.
/// Non-batch or undecodable frames pass through as-is and break the
/// current run.
pub(crate) fn coalesce_frames<K: Ord + WireEncode>(
    queue: &mut VecDeque<Vec<u8>>,
    skip: usize,
    max_frame_bytes: usize,
) -> u64 {
    if queue.len() < skip + 2 {
        return 0;
    }
    let tail: Vec<Vec<u8>> = queue.split_off(skip).into();
    let mut folded = 0u64;
    // The in-progress run: decoded batches plus their original frames
    // (the loss-less fallback if a merged encoding would overflow).
    let mut run: Vec<(BatchEnvelope<K>, Vec<u8>)> = Vec::new();
    let mut run_payload = 0usize;

    fn emit<K: Ord + WireEncode>(
        queue: &mut VecDeque<Vec<u8>>,
        run: &mut Vec<(BatchEnvelope<K>, Vec<u8>)>,
        max_frame_bytes: usize,
        folded: &mut u64,
    ) {
        match run.len() {
            0 => {}
            // lint: allow(panic) — this match arm means run.len() == 1
            1 => queue.push_back(run.pop().expect("run of one").1),
            n => {
                let mut merged = BatchEnvelope::new();
                for (batch, _) in run.iter_mut() {
                    merged.entries.append(&mut batch.entries);
                }
                let mut payload = Vec::with_capacity(1 + max_frame_bytes.min(1 << 16));
                payload.push(TAG_BATCH);
                merged.encode(&mut payload);
                if payload.len() <= max_frame_bytes {
                    queue.push_back(frame_bytes(&payload));
                    *folded += (n - 1) as u64;
                } else {
                    for (_, frame) in run.drain(..) {
                        queue.push_back(frame);
                    }
                }
                run.clear();
            }
        }
        run.clear();
    }

    for frame in tail {
        let is_batch = frame.len() > LEN_PREFIX_BYTES && frame[LEN_PREFIX_BYTES] == TAG_BATCH;
        let decoded = is_batch
            .then(|| {
                let mut input = &frame[LEN_PREFIX_BYTES + 1..];
                BatchEnvelope::<K>::decode(&mut input)
                    .ok()
                    .filter(|_| input.is_empty())
            })
            .flatten();
        match decoded {
            Some(batch) => {
                let payload_len = frame.len() - LEN_PREFIX_BYTES;
                // Conservative: a merged encoding is at most the sum of
                // its parts plus varint growth of the entry count.
                if !run.is_empty() && run_payload + payload_len + 16 > max_frame_bytes {
                    emit(queue, &mut run, max_frame_bytes, &mut folded);
                    run_payload = 0;
                }
                run_payload += payload_len;
                run.push((batch, frame));
            }
            None => {
                emit(queue, &mut run, max_frame_bytes, &mut folded);
                run_payload = 0;
                queue.push_back(frame);
            }
        }
    }
    emit(queue, &mut run, max_frame_bytes, &mut folded);
    folded
}

/// A scheduler deadline the reactor's timer wheel fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TimerKind {
    /// Run one anti-entropy sync step.
    Sync,
    /// Prune causally stable metadata (`StoreReplica::compact`).
    Compact,
}

/// The reactor's timer wheel: a handful of periodic deadlines polled by
/// worker 0 each sweep. With single-digit timers a sorted scan *is* the
/// wheel — no hashing, no slots, deterministic firing order.
#[derive(Debug, Default)]
pub(crate) struct TimerWheel {
    timers: Vec<(TimerKind, Duration, Instant)>,
}

impl TimerWheel {
    pub fn new() -> Self {
        TimerWheel::default()
    }

    /// Register a periodic timer; first firing one `period` after `now`.
    pub fn register(&mut self, kind: TimerKind, period: Duration, now: Instant) {
        self.timers.push((kind, period, now + period));
    }

    /// Collect every due timer into `due`, advancing each next deadline
    /// past `now` (a stalled worker fires a missed timer once, it does
    /// not replay the backlog).
    pub fn poll(&mut self, now: Instant, due: &mut Vec<TimerKind>) {
        for (kind, period, next) in &mut self.timers {
            if *next <= now {
                due.push(*kind);
                while *next <= now {
                    *next += *period;
                }
            }
        }
    }
}

/// Lock-rank discipline for the node's shared state.
///
/// The reactor has exactly one legal nesting order — `CORE` (the
/// replica + traffic ledger) may hold while taking `LINKS` (the link
/// table) may hold while taking `LINK` (one outbound link); `INBOX` is
/// always taken with nothing else held. The static side of this
/// contract is enforced by `repo-lint` (rule `lock-rank`, per-function
/// token analysis); this module is the dynamic side: in debug builds
/// every acquisition is checked against a thread-local stack of held
/// ranks and panics on inversion, so the `net_parity` suite exercises
/// the real interleavings. Release builds compile the checks away —
/// [`RankedMutex`] is a plain [`Mutex`](std::sync::Mutex) plus one
/// byte, so the benchmark baselines are untouched.
pub(crate) mod rank {
    use std::sync::{LockResult, Mutex, MutexGuard, PoisonError};

    /// Replica core (`Inner::state`) — lowest rank, may hold the rest.
    pub const CORE: u8 = 1;
    /// The outbound link table (`Inner::links`).
    pub const LINKS: u8 = 2;
    /// One outbound link (`OutLink`), reached through the table.
    pub const LINK: u8 = 3;
    /// The landing inbox — leaf rank, taken with nothing else held.
    pub const INBOX: u8 = 4;

    #[cfg(debug_assertions)]
    thread_local! {
        /// Ranks currently held by this thread, in acquisition order.
        static HELD: std::cell::RefCell<Vec<u8>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }

    /// A [`Mutex`] that carries its place in the reactor's lock order.
    ///
    /// `lock()` mirrors [`Mutex::lock`]'s `LockResult` signature, so
    /// existing `.lock().unwrap()` call sites compile unchanged.
    #[derive(Debug)]
    pub struct RankedMutex<T> {
        rank: u8,
        inner: Mutex<T>,
    }

    /// Guard for a [`RankedMutex`]; pops its rank off the held stack
    /// on drop (debug builds only).
    #[derive(Debug)]
    pub struct RankedGuard<'a, T> {
        #[cfg_attr(not(debug_assertions), allow(dead_code))]
        rank: u8,
        guard: MutexGuard<'a, T>,
    }

    impl<T> RankedMutex<T> {
        pub fn new(rank: u8, value: T) -> Self {
            RankedMutex {
                rank,
                inner: Mutex::new(value),
            }
        }

        pub fn lock(&self) -> LockResult<RankedGuard<'_, T>> {
            #[cfg(debug_assertions)]
            check_acquire(self.rank);
            match self.inner.lock() {
                Ok(guard) => Ok(RankedGuard {
                    rank: self.rank,
                    guard,
                }),
                Err(poisoned) => Err(PoisonError::new(RankedGuard {
                    rank: self.rank,
                    guard: poisoned.into_inner(),
                })),
            }
        }
    }

    #[cfg(debug_assertions)]
    fn check_acquire(rank: u8) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if rank == INBOX && !held.is_empty() {
                panic!(
                    "lock-rank: inbox (rank {INBOX}) acquired while holding ranks {:?}; \
                     the inbox is a leaf — take it with nothing else held",
                    *held
                );
            }
            if let Some(&top) = held.last() {
                if top >= rank {
                    panic!(
                        "lock-rank: acquiring rank {rank} while rank {top} is held \
                         (legal order: core=1 < links=2 < link=3, inbox=4 alone)"
                    );
                }
            }
            held.push(rank);
        });
    }

    #[cfg(debug_assertions)]
    impl<T> Drop for RankedGuard<'_, T> {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&r| r == self.rank) {
                    held.remove(pos);
                }
            });
        }
    }

    impl<T> std::ops::Deref for RankedGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.guard
        }
    }

    impl<T> std::ops::DerefMut for RankedGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.guard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::read_frame;
    use crdt_lattice::ReplicaId;
    use crdt_sync::{ProtocolKind, WireAccounting, WireEnvelope};
    use std::net::{TcpListener, TcpStream};

    fn envelope(payload: Vec<u8>) -> WireEnvelope {
        WireEnvelope {
            from: ReplicaId(0),
            to: ReplicaId(1),
            kind: ProtocolKind::BpRr,
            payload: payload.into(),
            accounting: WireAccounting::default(),
        }
    }

    fn batch_frame(keys: &[u64]) -> Vec<u8> {
        let mut batch = BatchEnvelope::<u64>::new();
        for &k in keys {
            batch.push(k, envelope(vec![k as u8; 4]));
        }
        let mut payload = vec![TAG_BATCH];
        batch.encode(&mut payload);
        frame_bytes(&payload)
    }

    fn decode_frame(frame: &[u8]) -> BatchEnvelope<u64> {
        let mut input = &frame[LEN_PREFIX_BYTES + 1..];
        BatchEnvelope::<u64>::decode(&mut input).unwrap()
    }

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let dialed = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        (dialed, accepted)
    }

    #[test]
    fn coalesce_folds_a_run_into_one_frame_preserving_entry_order() {
        let mut queue: VecDeque<Vec<u8>> = vec![
            batch_frame(&[1, 2]),
            batch_frame(&[3]),
            batch_frame(&[4, 5]),
        ]
        .into_iter()
        .collect();
        let folded = coalesce_frames::<u64>(&mut queue, 0, 1 << 20);
        assert_eq!(folded, 2);
        assert_eq!(queue.len(), 1);
        let merged = decode_frame(&queue[0]);
        let keys: Vec<u64> = merged.entries.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn coalesce_respects_the_frame_cap_and_the_skip_prefix() {
        let one = batch_frame(&[1]);
        let payload_len = one.len() - LEN_PREFIX_BYTES;
        // Cap sized so two single-entry batches fit merged, three don't.
        let cap = payload_len * 2 + 16;
        let mut queue: VecDeque<Vec<u8>> = vec![
            batch_frame(&[1]),
            batch_frame(&[2]),
            batch_frame(&[3]),
            batch_frame(&[4]),
        ]
        .into_iter()
        .collect();
        // Index 0 is partially written: must stay untouched.
        let folded = coalesce_frames::<u64>(&mut queue, 1, cap);
        assert_eq!(folded, 1, "only one pair fits under the cap");
        assert_eq!(queue.len(), 3);
        assert_eq!(queue[0], batch_frame(&[1]), "skipped frame untouched");
        let merged = decode_frame(&queue[1]);
        let keys: Vec<u64> = merged.entries.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2, 3]);
        for frame in queue.iter().skip(1) {
            assert!(frame.len() - LEN_PREFIX_BYTES <= cap);
        }
    }

    #[test]
    fn coalesce_passes_foreign_frames_through_unchanged() {
        let foreign = frame_bytes(&[0xEE, 1, 2, 3]);
        let mut queue: VecDeque<Vec<u8>> = vec![
            batch_frame(&[1]),
            foreign.clone(),
            batch_frame(&[2]),
            batch_frame(&[3]),
        ]
        .into_iter()
        .collect();
        let folded = coalesce_frames::<u64>(&mut queue, 0, 1 << 20);
        assert_eq!(folded, 1, "only the run after the foreign frame folds");
        assert_eq!(queue.len(), 3);
        assert_eq!(queue[1], foreign);
    }

    #[test]
    fn outlink_flush_ships_in_order_and_severed_discards() {
        let (dialed, accepted) = socket_pair();
        dialed.set_nonblocking(true).unwrap();
        let mut link = OutLink::new(dialed);
        link.queue.push_back(frame_bytes(b"one"));
        link.queue.push_back(frame_bytes(b"two"));
        let out = link.flush();
        assert_eq!(out.frames, 2);
        assert_eq!(link.frames_sent, 2);
        let mut pool = BufferPool::new();
        let mut reader = accepted;
        assert_eq!(
            read_frame(&mut reader, 64, &mut pool).unwrap().unwrap(),
            b"one"[..]
        );
        assert_eq!(
            read_frame(&mut reader, 64, &mut pool).unwrap().unwrap(),
            b"two"[..]
        );
        // Paused: nothing moves. Severed: the queue drains as drops.
        link.paused = true;
        link.queue.push_back(frame_bytes(b"parked"));
        assert_eq!(link.flush(), FlushOutcome::default());
        link.paused = false;
        link.severed = true;
        let out = link.flush();
        assert_eq!(out.dropped, 1);
        assert!(link.queue.is_empty());
    }

    #[test]
    fn timer_wheel_fires_on_schedule_without_replaying_backlog() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new();
        wheel.register(TimerKind::Sync, Duration::from_millis(10), start);
        wheel.register(TimerKind::Compact, Duration::from_millis(25), start);
        let mut due = Vec::new();
        wheel.poll(start + Duration::from_millis(9), &mut due);
        assert!(due.is_empty());
        wheel.poll(start + Duration::from_millis(10), &mut due);
        assert_eq!(due, vec![TimerKind::Sync]);
        due.clear();
        // A stalled worker waking late fires each timer once, with the
        // next deadlines pushed past `now`.
        wheel.poll(start + Duration::from_millis(60), &mut due);
        assert_eq!(due, vec![TimerKind::Sync, TimerKind::Compact]);
        due.clear();
        wheel.poll(start + Duration::from_millis(69), &mut due);
        assert!(due.is_empty());
    }

    #[test]
    fn lock_rank_ascending_order_is_legal() {
        let core = rank::RankedMutex::new(rank::CORE, 1u32);
        let links = rank::RankedMutex::new(rank::LINKS, 2u32);
        let link = rank::RankedMutex::new(rank::LINK, 3u32);
        let inbox = rank::RankedMutex::new(rank::INBOX, 4u32);
        {
            let a = core.lock().unwrap();
            let b = links.lock().unwrap();
            let c = link.lock().unwrap();
            assert_eq!(*a + *b + *c, 6);
        }
        // Everything released: the leaf inbox is now legal, and a
        // fresh ascending chain works again on the same thread.
        assert_eq!(*inbox.lock().unwrap(), 4);
        let _a = core.lock().unwrap();
        let _c = link.lock().unwrap();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-rank: acquiring rank 1 while rank 3 is held")]
    fn lock_rank_inverted_acquisition_panics_in_debug() {
        let link = rank::RankedMutex::new(rank::LINK, ());
        let core = rank::RankedMutex::new(rank::CORE, ());
        let _held = link.lock().unwrap();
        let _inverted = core.lock().unwrap();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-rank: inbox")]
    fn lock_rank_inbox_is_a_leaf_in_debug() {
        let core = rank::RankedMutex::new(rank::CORE, ());
        let inbox = rank::RankedMutex::new(rank::INBOX, ());
        let _held = core.lock().unwrap();
        let _leaf = inbox.lock().unwrap();
    }
}
