//! The node protocol: every frame that crosses a `crdt-net` socket.
//!
//! One [`NetMsg`] per frame. Three traffic classes share the format:
//!
//! * **peer** — [`NetMsg::Hello`] (connection handshake, sender
//!   identity) and [`NetMsg::Batch`] (anti-entropy traffic: the same
//!   per-destination [`BatchEnvelope`] frame the in-process store and
//!   the sharded simulator ship, now length-prefixed onto TCP);
//! * **client** — get/update/probe request-reply pairs, so tests and
//!   examples drive real workloads through real sockets;
//! * **repair** — the 3-message digest-driven §VI handshake
//!   ([`NetMsg::RepairRequest`]/[`RepairReply`](NetMsg::RepairReply)/
//!   [`RepairFinal`](NetMsg::RepairFinal)), shipping only missing
//!   join-irreducibles after a partition or cold restart.
//!
//! Batch frames matter for throughput, so receivers never decode them
//! through this enum: the reader thread checks the leading tag byte and
//! hands the raw frame to [`batch_from_frame`], which slices past the
//! tag and runs `BatchEnvelope::decode_shared` — every entry payload a
//! zero-copy slice of the socket buffer.

use crdt_lattice::{CodecError, ReplicaId, WireEncode};
use crdt_obs::{EventKind, TraceEvent};
use crdt_sync::digest::Digest;
use crdt_sync::{
    BatchEnvelope, Bytes, DivergentChildren, LeafRepair, RootDigest, MAX_MERKLE_DEPTH,
};
use delta_store::TrafficStats;

/// Leading tag byte of a [`NetMsg::Batch`] frame — the one tag readers
/// dispatch on without a full decode.
pub const TAG_BATCH: u8 = 1;

/// Opaque encoded bytes (a CRDT state, delta, or operation) framed as
/// `len ‖ raw` — raw, not per-byte varints.
fn put_blob(out: &mut Vec<u8>, blob: &[u8]) {
    blob.len().encode(out);
    out.extend_from_slice(blob);
}

fn get_blob(input: &mut &[u8]) -> Result<Vec<u8>, CodecError> {
    let len = usize::decode(input)?;
    if input.len() < len {
        return Err(CodecError::UnexpectedEnd);
    }
    let (blob, rest) = input.split_at(len);
    *input = rest;
    Ok(blob.to_vec())
}

fn put_pairs<K: WireEncode>(out: &mut Vec<u8>, pairs: &[(K, Vec<u8>)]) {
    pairs.len().encode(out);
    for (k, blob) in pairs {
        k.encode(out);
        put_blob(out, blob);
    }
}

fn get_pairs<K: WireEncode>(input: &mut &[u8]) -> Result<Vec<(K, Vec<u8>)>, CodecError> {
    let len = usize::decode(input)?;
    if len > input.len() {
        return Err(CodecError::UnexpectedEnd);
    }
    let mut pairs = Vec::with_capacity(len);
    for _ in 0..len {
        let k = K::decode(input)?;
        pairs.push((k, get_blob(input)?));
    }
    Ok(pairs)
}

/// One frame of the node protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum NetMsg<K> {
    /// First frame on an outbound peer connection: who is dialing. Every
    /// later frame on that connection is attributed to this replica.
    Hello {
        /// The dialing node.
        node: ReplicaId,
    },
    /// Anti-entropy traffic: one per-destination envelope batch.
    Batch(BatchEnvelope<K>),
    /// Client: read the object at `key`.
    Get {
        /// The object key.
        key: K,
    },
    /// Reply to [`NetMsg::Get`]: the encoded CRDT state, if the key
    /// exists at the serving node.
    GetReply {
        /// Encoded state (`C::to_bytes`), or `None` for an unknown key.
        state: Option<Vec<u8>>,
    },
    /// Client: apply an operation to the object at `key`.
    Update {
        /// The object key.
        key: K,
        /// The encoded operation ([`crdt_sync::OpBytes`]).
        op: Vec<u8>,
    },
    /// Reply to [`NetMsg::Update`]: the operation was applied.
    UpdateReply,
    /// Client: report per-object state summaries and transfer counters —
    /// the convergence probe.
    Probe,
    /// Reply to [`NetMsg::Probe`].
    ProbeReply(ProbeReport<K>),
    /// Repair message 1 (A → B): digests of every object A holds.
    RepairRequest {
        /// The requesting replica — repair deltas the server later
        /// absorbs are attributed to it (BP must not echo them back).
        from: ReplicaId,
        /// `(key, digest)` for each of the requester's objects.
        digests: Vec<(K, Digest)>,
    },
    /// Repair message 2 (B → A): for every key B holds, the
    /// join-irreducibles A's digest does not cover, plus B's own digests
    /// so A can answer in kind.
    RepairReply {
        /// `(key, encoded delta)` pairs; keys with nothing missing are
        /// absent.
        deltas: Vec<(K, Vec<u8>)>,
        /// B's pre-merge digests, for the final message.
        digests: Vec<(K, Digest)>,
    },
    /// Repair message 3 (A → B): the irreducibles B's digests were
    /// missing, computed from A's post-merge state.
    RepairFinal {
        /// The requesting replica (same attribution as the request).
        from: ReplicaId,
        /// `(key, encoded delta)` pairs.
        deltas: Vec<(K, Vec<u8>)>,
    },
    /// A request failed at the serving node (undecodable operation,
    /// protocol misuse); carries a human-readable reason.
    Error {
        /// What went wrong.
        message: String,
    },
    /// Merkle repair, frame 1 (client → server): open a keyspace tree
    /// descent with the requester's root summary. The server answers
    /// [`NetMsg::MerkleChildren`] — empty when the roots match, its
    /// root's children otherwise — or [`NetMsg::Error`] on a tree-depth
    /// mismatch (the client then falls back to the full §VI sweep).
    MerkleRoot {
        /// The requesting replica.
        from: ReplicaId,
        /// The requester's flushed tree root.
        digest: RootDigest,
    },
    /// Merkle repair descent (client → server): "list your children at
    /// these `(child level, parent prefix)` nodes". The server is
    /// stateless across rounds — each request names its nodes in full.
    MerkleNodeReq {
        /// Nodes whose children the client needs, one level deeper per
        /// round.
        nodes: Vec<(u8, u64)>,
    },
    /// Merkle repair reply (server → client): the requested child
    /// listings; the client compares them against its own tree and
    /// descends.
    MerkleChildren(DivergentChildren),
    /// Merkle repair leaf round (client → server): "list your leaf
    /// buckets at these prefixes".
    MerkleLeafReq {
        /// Divergent leaf prefixes found by the descent.
        prefixes: Vec<u64>,
    },
    /// Merkle repair reply (server → client): the requested leaf bucket
    /// contents; the symmetric difference against the client's buckets
    /// is the diverged key set.
    MerkleLeaves(LeafRepair<K>),
    /// Scoped variant of [`NetMsg::RepairRequest`]: the server answers
    /// deltas and digests for **only** the listed keys (the Merkle
    /// descent already proved everything else equal), instead of
    /// sweeping its whole keyspace.
    RepairScoped {
        /// The requesting replica (same attribution as RepairRequest).
        from: ReplicaId,
        /// `(key, digest)` for each diverged key (digest of `⊥` when
        /// the requester does not hold the key).
        digests: Vec<(K, Digest)>,
    },
    /// Client: pull the node's live metrics snapshot and flight-recorder
    /// tail — the observability probe.
    StatsRequest {
        /// How many trailing trace events to include in the reply
        /// (0 = metrics only).
        trace_tail: u64,
    },
    /// Reply to [`NetMsg::StatsRequest`].
    StatsReply(StatsReport),
}

/// What a node reports to a [`NetMsg::StatsRequest`]: its full metrics
/// exposition plus the newest flight-recorder events.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// The reporting node.
    pub node: ReplicaId,
    /// The node's [`crdt_obs::Registry`] exposition: sorted
    /// `name value` lines, deterministic for goldens.
    pub exposition: String,
    /// The newest flight-recorder events, oldest first, capped at the
    /// requested tail length.
    pub trace: Vec<TraceEvent>,
}

// `TraceEvent` lives in `crdt-obs` and `WireEncode` in `crdt-lattice` —
// both foreign here, so the orphan rule forces field-wise codec helpers
// instead of a trait impl.
fn put_trace(out: &mut Vec<u8>, events: &[TraceEvent]) {
    events.len().encode(out);
    for ev in events {
        ev.seq.encode(out);
        ev.tick.encode(out);
        ev.node.encode(out);
        out.push(ev.kind.as_u8());
        ev.a.encode(out);
        ev.b.encode(out);
    }
}

fn get_trace(input: &mut &[u8]) -> Result<Vec<TraceEvent>, CodecError> {
    let len = usize::decode(input)?;
    if len > input.len() {
        return Err(CodecError::UnexpectedEnd);
    }
    let mut events = Vec::with_capacity(len);
    for _ in 0..len {
        let seq = u64::decode(input)?;
        let tick = u64::decode(input)?;
        let node = u64::decode(input)?;
        let (&raw, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        let kind = EventKind::from_u8(raw).ok_or(CodecError::BadDiscriminant(raw))?;
        let a = u64::decode(input)?;
        let b = u64::decode(input)?;
        events.push(TraceEvent {
            seq,
            tick,
            node,
            kind,
            a,
            b,
        });
    }
    Ok(events)
}

/// What a node reports to a convergence probe: per-object state
/// summaries plus its transfer counters, enough for a harness to build a
/// [`delta_store::ConvergenceReport`] without inventing a new shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReport<K> {
    /// The probed node.
    pub node: ReplicaId,
    /// Anti-entropy sync steps this node has executed.
    pub rounds: u64,
    /// `(key, state hash, lattice elements)` per non-`⊥` object. Hashes
    /// are deterministic across nodes, so equal keyspaces hash equal.
    pub keys: Vec<(K, u64, u64)>,
    /// Model-view traffic accounting, identical in kind to the
    /// in-process [`delta_store::Cluster`]'s.
    pub traffic: TrafficStats,
    /// Frames this node put on sockets.
    pub frames_sent: u64,
    /// Frames that landed in this node's inbox.
    pub frames_received: u64,
    /// Wire bytes shipped (payloads plus length prefixes).
    pub wire_bytes_sent: u64,
    /// Wire bytes received.
    pub wire_bytes_received: u64,
    /// Frames dropped at send time (severed/dead links).
    pub dropped_frames: u64,
    /// Received frames discarded as undecodable or mismatched.
    pub bad_frames: u64,
    /// Frames landed but not yet absorbed.
    pub inbox_len: u64,
    /// Frames parked on frozen links, per peer total.
    pub frozen_frames: u64,
    /// Frames queued on live (unpaused) outbound links, awaiting a
    /// reactor flush.
    pub queued_frames: u64,
    /// Backpressure stall transitions: times a peer connection's reads
    /// were paused because the bounded inbox hit capacity.
    pub stall_events: u64,
    /// Frames eliminated by write-side coalescing (each fold of `n`
    /// queued batches into one frame counts `n - 1`).
    pub coalesced_frames: u64,
    /// Frames dropped because an outbound write queue was at capacity
    /// even after coalescing.
    pub queue_dropped_frames: u64,
    /// Live inbound connections (peers and clients).
    pub connections: u64,
    /// Per-peer frames sent, for in-flight reconciliation.
    pub sent_to: Vec<(ReplicaId, u64)>,
    /// Per-peer frames landed, for in-flight reconciliation.
    pub received_from: Vec<(ReplicaId, u64)>,
}

fn put_traffic(out: &mut Vec<u8>, t: &TrafficStats) {
    t.messages.encode(out);
    t.payload_elements.encode(out);
    t.payload_bytes.encode(out);
    t.metadata_bytes.encode(out);
}

fn get_traffic(input: &mut &[u8]) -> Result<TrafficStats, CodecError> {
    Ok(TrafficStats {
        messages: u64::decode(input)?,
        payload_elements: u64::decode(input)?,
        payload_bytes: u64::decode(input)?,
        metadata_bytes: u64::decode(input)?,
    })
}

impl<K: WireEncode> WireEncode for ProbeReport<K> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        self.rounds.encode(out);
        self.keys.len().encode(out);
        for (k, hash, elements) in &self.keys {
            k.encode(out);
            hash.encode(out);
            elements.encode(out);
        }
        put_traffic(out, &self.traffic);
        self.frames_sent.encode(out);
        self.frames_received.encode(out);
        self.wire_bytes_sent.encode(out);
        self.wire_bytes_received.encode(out);
        self.dropped_frames.encode(out);
        self.bad_frames.encode(out);
        self.inbox_len.encode(out);
        self.frozen_frames.encode(out);
        self.queued_frames.encode(out);
        self.stall_events.encode(out);
        self.coalesced_frames.encode(out);
        self.queue_dropped_frames.encode(out);
        self.connections.encode(out);
        self.sent_to.encode(out);
        self.received_from.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let node = ReplicaId::decode(input)?;
        let rounds = u64::decode(input)?;
        let n = usize::decode(input)?;
        if n > input.len() {
            return Err(CodecError::UnexpectedEnd);
        }
        let mut keys = Vec::with_capacity(n);
        for _ in 0..n {
            keys.push((K::decode(input)?, u64::decode(input)?, u64::decode(input)?));
        }
        Ok(ProbeReport {
            node,
            rounds,
            keys,
            traffic: get_traffic(input)?,
            frames_sent: u64::decode(input)?,
            frames_received: u64::decode(input)?,
            wire_bytes_sent: u64::decode(input)?,
            wire_bytes_received: u64::decode(input)?,
            dropped_frames: u64::decode(input)?,
            bad_frames: u64::decode(input)?,
            inbox_len: u64::decode(input)?,
            frozen_frames: u64::decode(input)?,
            queued_frames: u64::decode(input)?,
            stall_events: u64::decode(input)?,
            coalesced_frames: u64::decode(input)?,
            queue_dropped_frames: u64::decode(input)?,
            connections: u64::decode(input)?,
            sent_to: Vec::decode(input)?,
            received_from: Vec::decode(input)?,
        })
    }
}

impl<K: WireEncode> WireEncode for NetMsg<K> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            NetMsg::Hello { node } => {
                out.push(0);
                node.encode(out);
            }
            NetMsg::Batch(batch) => {
                out.push(TAG_BATCH);
                batch.encode(out);
            }
            NetMsg::Get { key } => {
                out.push(2);
                key.encode(out);
            }
            NetMsg::GetReply { state } => {
                out.push(3);
                match state {
                    None => out.push(0),
                    Some(blob) => {
                        out.push(1);
                        put_blob(out, blob);
                    }
                }
            }
            NetMsg::Update { key, op } => {
                out.push(4);
                key.encode(out);
                put_blob(out, op);
            }
            NetMsg::UpdateReply => out.push(5),
            NetMsg::Probe => out.push(6),
            NetMsg::ProbeReply(report) => {
                out.push(7);
                report.encode(out);
            }
            NetMsg::RepairRequest { from, digests } => {
                out.push(8);
                from.encode(out);
                digests.encode(out);
            }
            NetMsg::RepairReply { deltas, digests } => {
                out.push(9);
                put_pairs(out, deltas);
                digests.encode(out);
            }
            NetMsg::RepairFinal { from, deltas } => {
                out.push(10);
                from.encode(out);
                put_pairs(out, deltas);
            }
            NetMsg::Error { message } => {
                out.push(11);
                message.encode(out);
            }
            NetMsg::MerkleRoot { from, digest } => {
                out.push(12);
                from.encode(out);
                digest.encode(out);
            }
            NetMsg::MerkleNodeReq { nodes } => {
                out.push(13);
                nodes.encode(out);
            }
            NetMsg::MerkleChildren(frame) => {
                out.push(14);
                frame.encode(out);
            }
            NetMsg::MerkleLeafReq { prefixes } => {
                out.push(15);
                prefixes.encode(out);
            }
            NetMsg::MerkleLeaves(leaves) => {
                out.push(16);
                leaves.encode(out);
            }
            NetMsg::RepairScoped { from, digests } => {
                out.push(17);
                from.encode(out);
                digests.encode(out);
            }
            NetMsg::StatsRequest { trace_tail } => {
                out.push(18);
                trace_tail.encode(out);
            }
            NetMsg::StatsReply(report) => {
                out.push(19);
                report.node.encode(out);
                report.exposition.encode(out);
                put_trace(out, &report.trace);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        Ok(match tag {
            0 => NetMsg::Hello {
                node: ReplicaId::decode(input)?,
            },
            TAG_BATCH => NetMsg::Batch(BatchEnvelope::decode(input)?),
            2 => NetMsg::Get {
                key: K::decode(input)?,
            },
            3 => {
                let (&present, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
                *input = rest;
                NetMsg::GetReply {
                    state: match present {
                        0 => None,
                        1 => Some(get_blob(input)?),
                        d => return Err(CodecError::BadDiscriminant(d)),
                    },
                }
            }
            4 => NetMsg::Update {
                key: K::decode(input)?,
                op: get_blob(input)?,
            },
            5 => NetMsg::UpdateReply,
            6 => NetMsg::Probe,
            7 => NetMsg::ProbeReply(ProbeReport::decode(input)?),
            8 => NetMsg::RepairRequest {
                from: ReplicaId::decode(input)?,
                digests: Vec::decode(input)?,
            },
            9 => NetMsg::RepairReply {
                deltas: get_pairs(input)?,
                digests: Vec::decode(input)?,
            },
            10 => NetMsg::RepairFinal {
                from: ReplicaId::decode(input)?,
                deltas: get_pairs(input)?,
            },
            11 => NetMsg::Error {
                message: String::decode(input)?,
            },
            12 => NetMsg::MerkleRoot {
                from: ReplicaId::decode(input)?,
                digest: RootDigest::decode(input)?,
            },
            13 => {
                let nodes = Vec::<(u8, u64)>::decode(input)?;
                // A descent never asks below the deepest level; hostile
                // level claims die here rather than in the tree walk.
                if nodes.iter().any(|(level, _)| *level >= MAX_MERKLE_DEPTH) {
                    return Err(CodecError::BadDiscriminant(
                        nodes
                            .iter()
                            .map(|(level, _)| *level)
                            .find(|l| *l >= MAX_MERKLE_DEPTH)
                            .unwrap_or_default(),
                    ));
                }
                NetMsg::MerkleNodeReq { nodes }
            }
            14 => NetMsg::MerkleChildren(DivergentChildren::decode(input)?),
            15 => NetMsg::MerkleLeafReq {
                prefixes: Vec::decode(input)?,
            },
            16 => NetMsg::MerkleLeaves(LeafRepair::decode(input)?),
            17 => NetMsg::RepairScoped {
                from: ReplicaId::decode(input)?,
                digests: Vec::decode(input)?,
            },
            18 => NetMsg::StatsRequest {
                trace_tail: u64::decode(input)?,
            },
            19 => NetMsg::StatsReply(StatsReport {
                node: ReplicaId::decode(input)?,
                exposition: String::decode(input)?,
                trace: get_trace(input)?,
            }),
            d => return Err(CodecError::BadDiscriminant(d)),
        })
    }
}

/// Is this frame an anti-entropy batch? Readers dispatch on the tag byte
/// without decoding the whole message.
pub fn is_batch_frame(frame: &[u8]) -> bool {
    frame.first() == Some(&TAG_BATCH)
}

/// Decode a batch frame zero-copy: entry payloads are shared slices of
/// `frame` (past the tag byte), exactly the `decode_shared` tier the
/// in-process runners use — nothing is re-vectored off the socket
/// buffer.
pub fn batch_from_frame<K: WireEncode>(frame: &Bytes) -> Result<BatchEnvelope<K>, CodecError> {
    if !is_batch_frame(frame) {
        return Err(CodecError::BadDiscriminant(
            frame.first().copied().unwrap_or(0xFF),
        ));
    }
    BatchEnvelope::decode_shared(&frame.slice(1..frame.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_sync::{ProtocolKind, WireAccounting, WireEnvelope};
    use crdt_types::GSet;

    fn batch() -> BatchEnvelope<String> {
        let payload = GSet::from_iter([1u64, 2]).to_bytes();
        BatchEnvelope {
            entries: vec![(
                "k".to_string(),
                WireEnvelope {
                    from: ReplicaId(0),
                    to: ReplicaId(1),
                    kind: ProtocolKind::BpRr,
                    accounting: WireAccounting {
                        payload_elements: 2,
                        payload_bytes: 16,
                        metadata_bytes: 0,
                        encoded_bytes: payload.len() as u64,
                    },
                    payload: payload.into(),
                },
            )],
        }
    }

    #[test]
    fn every_variant_roundtrips() {
        let report = ProbeReport {
            node: ReplicaId(2),
            rounds: 7,
            keys: vec![("a".to_string(), 42, 3)],
            traffic: TrafficStats {
                messages: 1,
                payload_elements: 2,
                payload_bytes: 16,
                metadata_bytes: 4,
            },
            frames_sent: 5,
            frames_received: 4,
            wire_bytes_sent: 100,
            wire_bytes_received: 80,
            dropped_frames: 1,
            bad_frames: 0,
            inbox_len: 2,
            frozen_frames: 0,
            queued_frames: 1,
            stall_events: 3,
            coalesced_frames: 2,
            queue_dropped_frames: 0,
            connections: 4,
            sent_to: vec![(ReplicaId(1), 5)],
            received_from: vec![(ReplicaId(1), 4)],
        };
        let msgs: Vec<NetMsg<String>> = vec![
            NetMsg::Hello { node: ReplicaId(3) },
            NetMsg::Batch(batch()),
            NetMsg::Get {
                key: "k".to_string(),
            },
            NetMsg::GetReply { state: None },
            NetMsg::GetReply {
                state: Some(vec![1, 2, 3]),
            },
            NetMsg::Update {
                key: "k".to_string(),
                op: vec![9],
            },
            NetMsg::UpdateReply,
            NetMsg::Probe,
            NetMsg::ProbeReply(report),
            NetMsg::RepairRequest {
                from: ReplicaId(0),
                digests: vec![("k".to_string(), Digest::of(&GSet::from_iter([1u64])))],
            },
            NetMsg::RepairReply {
                deltas: vec![("k".to_string(), vec![0, 1])],
                digests: vec![],
            },
            NetMsg::RepairFinal {
                from: ReplicaId(0),
                deltas: vec![],
            },
            NetMsg::Error {
                message: "nope".to_string(),
            },
            NetMsg::MerkleRoot {
                from: ReplicaId(1),
                digest: RootDigest {
                    epoch: 9,
                    depth: 3,
                    root: 0xFEED,
                },
            },
            NetMsg::MerkleNodeReq {
                nodes: vec![(1, 0x0), (2, 0x1F)],
            },
            NetMsg::MerkleChildren(DivergentChildren {
                nodes: vec![crdt_sync::ChildList {
                    level: 0,
                    prefix: 0,
                    children: vec![(2, 7), (9, 8)],
                }],
            }),
            NetMsg::MerkleLeafReq {
                prefixes: vec![0x123, 0x456],
            },
            NetMsg::MerkleLeaves(LeafRepair {
                leaves: vec![(0x123, vec![("k".to_string(), 42)])],
            }),
            NetMsg::RepairScoped {
                from: ReplicaId(0),
                digests: vec![("k".to_string(), Digest::of(&GSet::from_iter([2u64])))],
            },
            NetMsg::StatsRequest { trace_tail: 32 },
            NetMsg::StatsReply(StatsReport {
                node: ReplicaId(2),
                exposition: "net.sync.rounds 7\n".to_string(),
                trace: vec![
                    TraceEvent {
                        seq: 0,
                        tick: 1,
                        node: 2,
                        kind: EventKind::SyncRoundStart,
                        a: 1,
                        b: 3,
                    },
                    TraceEvent {
                        seq: 1,
                        tick: 1,
                        node: 2,
                        kind: EventKind::ReactorStall,
                        a: 0,
                        b: 64,
                    },
                ],
            }),
        ];
        for msg in msgs {
            let bytes = msg.to_bytes();
            let back = NetMsg::<String>::from_bytes(&bytes).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn batch_frames_decode_zero_copy() {
        let msg: NetMsg<String> = NetMsg::Batch(batch());
        let frame = Bytes::from(msg.to_bytes());
        assert!(is_batch_frame(&frame));
        let decoded = batch_from_frame::<String>(&frame).unwrap();
        assert_eq!(decoded, batch());
        // The entry payload shares the frame's allocation.
        let payload = &decoded.entries[0].1.payload;
        assert!(
            frame.offset_of(payload).is_some(),
            "payload must be a zero-copy slice of the socket frame"
        );
    }

    #[test]
    fn non_batch_frame_is_rejected_by_the_batch_path() {
        let frame = Bytes::from(NetMsg::<String>::Probe.to_bytes());
        assert!(!is_batch_frame(&frame));
        assert!(batch_from_frame::<String>(&frame).is_err());
    }

    #[test]
    fn hostile_merkle_node_levels_are_rejected() {
        // A descent request naming a level past the deepest possible
        // tree is hostile (or corrupt) — the decoder refuses it.
        let msg: NetMsg<String> = NetMsg::MerkleNodeReq {
            nodes: vec![(MAX_MERKLE_DEPTH, 0)],
        };
        assert!(NetMsg::<String>::from_bytes(&msg.to_bytes()).is_err());
    }

    #[test]
    fn corrupt_frames_error_not_panic() {
        for wire in [&[][..], &[99][..], &[TAG_BATCH, 0x80][..]] {
            assert!(NetMsg::<String>::from_bytes(wire).is_err());
        }
    }

    #[test]
    fn unknown_trace_event_kind_is_rejected() {
        // Corrupt a StatsReply so its one event carries an undefined
        // kind byte — the decoder must refuse, not invent a variant.
        let msg: NetMsg<String> = NetMsg::StatsReply(StatsReport {
            node: ReplicaId(0),
            exposition: String::new(),
            trace: vec![TraceEvent {
                seq: 0,
                tick: 0,
                node: 0,
                kind: EventKind::Crash,
                a: 0,
                b: 0,
            }],
        });
        let mut wire = msg.to_bytes();
        let kind_at = wire
            .iter()
            .position(|&b| b == EventKind::Crash.as_u8())
            .unwrap();
        wire[kind_at] = 0xEE;
        assert!(NetMsg::<String>::from_bytes(&wire).is_err());
    }
}
