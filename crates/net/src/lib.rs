//! # crdt-net
//!
//! A **real TCP node runtime** for the synchronization engines: the
//! layer that takes everything the wire codec hardened — zero-copy
//! [`crdt_sync::Bytes`] frames, pooled encode scratch, corrupt-frame-safe
//! decoding — and puts it on actual sockets.
//!
//! Every simulator in this workspace *counts* bytes; this crate *ships*
//! them. A [`NodeHandle`] is a live node: it hosts a keyspace of
//! per-object `Box<dyn SyncEngine + Send>` engines (a
//! [`delta_store::StoreReplica`] — any [`crdt_sync::ProtocolKind`],
//! selected at runtime), exchanges length-prefixed
//! [`crdt_sync::BatchEnvelope`] frames over persistent peer connections,
//! and optionally free-runs an anti-entropy scheduler thread. On top sit
//! a small client protocol ([`NetClient`]: get/update/converged-probe)
//! and the 3-message digest-driven repair handshake of the paper's §VI,
//! now crossing real frames.
//!
//! | Layer | Types |
//! |---|---|
//! | framing | [`framing::read_frame`] / [`framing::write_frame`], [`framing::FrameReader`], [`framing::FrameError`] — length prefix + `max_frame_bytes` guard, resumable across readiness events |
//! | protocol | [`NetMsg`], [`ProbeReport`] — peer, client, and repair frames |
//! | reactor | non-blocking readiness loop, bounded queues, write-side coalescing, timer wheel (internal; see ARCHITECTURE.md) |
//! | runtime | [`NodeHandle`], [`NodeConfig`] — listener, reactor workers, timers |
//! | client | [`NetClient`] — blocking request-reply workloads |
//! | harness | [`LoopbackCluster`] — N in-process nodes on ephemeral `127.0.0.1` ports, lockstep or free-running, with fault injection |
//!
//! The workspace is offline, so the runtime is built on `std::net` and
//! plain threads — no async executor. Thread model per node: one
//! accept thread plus [`NodeConfig::workers`] reactor workers, each
//! owning a partition of the **non-blocking** connection set (reads
//! resume mid-frame across readiness events via
//! [`framing::FrameReader`]). Frames land in a **bounded inbox** — a
//! full inbox stalls reads, pushing backpressure into TCP rather than
//! growing memory — and outbound frames queue on **bounded per-peer
//! write queues**, where backlog for the same destination is folded
//! into single batch frames (write-side coalescing). Worker 0 runs the
//! timer wheel: the optional anti-entropy scheduler and the optional
//! compaction interval. The keyspace sits behind a mutex, the inbox
//! behind another (never held together).
//!
//! ## Accounting parity
//!
//! A [`LoopbackCluster`] driven in lockstep reproduces the in-process
//! [`delta_store::Cluster`] schedule, so for the δ-kinds (whose absorb
//! path is join-commutative and reply-free) the model-view
//! [`delta_store::TrafficStats`] come out **byte-identical** to the
//! simulator for the same workload and topology — pinned by
//! `tests/net_parity.rs` and gated in CI via `BENCH_net.json`. The
//! socket ledger ([`cluster::WireTotals`]) counts what TCP actually
//! carried, length prefixes included.
//!
//! ```no_run
//! use crdt_net::{LoopbackCluster, NodeConfig};
//! use crdt_types::{GSet, GSetOp};
//! use delta_store::StoreConfig;
//!
//! let cfg = NodeConfig::new(StoreConfig::new("bp_rr".parse().unwrap()), 3);
//! let mut cluster: LoopbackCluster<String, GSet<u64>> =
//!     LoopbackCluster::full_mesh(3, cfg).unwrap();
//! cluster.update(0, "cart".into(), &GSetOp::Add(1));
//! let report = cluster.run_until_converged(8);
//! println!("{report}");
//! assert!(report.converged);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod cluster;
pub mod framing;
mod message;
mod node;
mod reactor;

pub use client::NetClient;
pub use cluster::{LoopbackCluster, UnsupportedScenarioEvent, WireTotals};
pub use message::{batch_from_frame, is_batch_frame, NetMsg, ProbeReport, StatsReport, TAG_BATCH};
pub use node::{register_net_metrics, NetError, NodeConfig, NodeHandle, NodeRelics};
