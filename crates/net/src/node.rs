//! The event-driven TCP node runtime.
//!
//! One [`NodeHandle::spawn`] gives a live process-within-the-process
//! built on the [`crate::reactor`] primitives:
//!
//! * an **accept thread** hands every inbound connection — non-blocking
//!   from birth — to a reactor worker, round-robin;
//! * **reactor workers** ([`NodeConfig::workers`] of them, thread-per-
//!   core by default), each owning a partition of the inbound
//!   connection set outright: a sweep assembles frames through a
//!   resumable [`crate::framing::FrameReader`], lands peer batch frames
//!   in the **bounded inbox** (a full inbox stalls reads — explicit
//!   backpressure that backs up into the peer's TCP buffer instead of
//!   growing memory), serves client request-reply frames inline, and
//!   flushes the **bounded outbound write queues** it owns, folding
//!   queued batches for the same destination into single
//!   `BatchEnvelope` frames (write-side coalescing);
//! * worker 0 additionally runs the **timer wheel**: the anti-entropy
//!   sync step every [`NodeConfig::scheduler`] interval and
//!   causal-stability [`NodeConfig::compaction`] on its own schedule.
//!
//! Without a scheduler the node is **externally driven** — the
//! [`crate::LoopbackCluster`] harness calls [`NodeHandle::sync_now`] and
//! [`NodeHandle::absorb_pending`] itself, which is what makes its rounds
//! reproduce the in-process simulators' schedule (and therefore their
//! byte accounting) exactly. Outbound sends flush **eagerly inline**
//! when the queue is empty and the socket accepts them — lockstep
//! harness rounds behave exactly like the old blocking writes — and
//! fall back to the owning worker's sweep under backlog.
//!
//! The keyspace is a [`StoreReplica`] — the same per-object
//! `Box<dyn SyncEngine + Send>` engines, δ-buffers, and pooled encode
//! scratch the in-process `Cluster` drives, behind a mutex shared by
//! the workers and client-serving sweeps.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hasher;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crdt_lattice::{ReplicaId, Sizeable, WireEncode};
use crdt_obs::{EventKind, Obs};
use crdt_sync::digest::{delta_for_digest, Digest, PairSyncStats};
use crdt_sync::{
    diverged_from_leaves, divergent_children, BufferPool, Bytes, ChildList, DivergentChildren,
    LeafRepair, MemoryUsage, MerkleRepairMetrics, OpBytes, MERKLE_REPAIR_THRESHOLD,
};
use crdt_types::Crdt;
use delta_store::{StoreConfig, StoreMsg, StoreReplica, TrafficStats};

use crate::framing::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME_BYTES};
use crate::message::{
    batch_from_frame, is_batch_frame, NetMsg, ProbeReport, StatsReport, TAG_BATCH,
};
use crate::reactor::rank::{self, RankedMutex};
use crate::reactor::{
    frame_bytes, Conn, ConnEvent, OutLink, TimerKind, TimerWheel, FRAMES_PER_SWEEP, IDLE_TICK,
};

/// Configuration of one node.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// Keyspace configuration: protocol kind + accounting model, shared
    /// with the in-process store so both layers account identically.
    pub store: StoreConfig,
    /// Total replicas in the system (drives `Params::n_nodes`;
    /// Scuttlebutt-GC's safe-delete bar needs it).
    pub n_nodes: usize,
    /// `Some(interval)` arms the anti-entropy timer: the node
    /// free-runs, syncing every `interval` and absorbing continuously.
    /// `None` leaves the node externally driven (lockstep harnesses,
    /// tests).
    pub scheduler: Option<Duration>,
    /// Cap on a single frame's payload, enforced on both send and
    /// receive (see [`crate::framing`]).
    pub max_frame_bytes: usize,
    /// Reactor worker threads; each owns a partition of the inbound
    /// connections and of the outbound links. Defaults to the core
    /// count, capped at 4 (a node is rarely the only thing running).
    pub workers: usize,
    /// Bound on frames parked in the inbox awaiting absorption. A full
    /// inbox **stalls reads** from peer connections (never drops): the
    /// backlog backs up into the kernel socket buffer and from there
    /// into the sender's write queue — end-to-end backpressure.
    pub inbox_capacity: usize,
    /// Bound on frames queued per outbound link. At capacity the link
    /// first tries coalescing; if the queue is still full the frame is
    /// **dropped and counted** ([`ProbeReport::queue_dropped_frames`]) —
    /// anti-entropy re-ships state, so dropping a δ-batch costs a
    /// resync, never correctness.
    pub write_queue_capacity: usize,
    /// Connections that never completed a frame are pruned after this
    /// long — half-open sockets (SYN-flood debris, dead dialers) must
    /// not pin fds forever. Identified peers and clients that have
    /// spoken once are never pruned.
    pub half_open_timeout: Duration,
    /// `Some(interval)` arms the causal-stability compaction timer:
    /// worker 0 calls [`StoreReplica::compact`] on this period (and
    /// `Params::compaction` is switched on for the keyspace, so the
    /// plain-Scuttlebutt dot store tracks the knowledge it needs).
    pub compaction: Option<Duration>,
    /// Fold queued frames for the same destination into single batch
    /// frames at flush time (on by default; off pins per-step frame
    /// counts for byte-accounting baselines, though an eagerly-flushed
    /// lockstep never coalesces either way).
    pub coalesce: bool,
}

impl NodeConfig {
    /// An externally driven node running `store`'s protocol in an
    /// `n_nodes`-replica system, at the default frame cap.
    pub fn new(store: StoreConfig, n_nodes: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        NodeConfig {
            store,
            n_nodes,
            scheduler: None,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            workers: cores.clamp(1, 4),
            inbox_capacity: 4096,
            write_queue_capacity: 1024,
            half_open_timeout: Duration::from_secs(30),
            compaction: None,
            coalesce: true,
        }
    }

    /// Free-run anti-entropy every `interval`.
    pub fn with_scheduler(mut self, interval: Duration) -> Self {
        self.scheduler = Some(interval);
        self
    }

    /// Override the frame-size cap.
    pub fn with_max_frame_bytes(mut self, max: usize) -> Self {
        self.max_frame_bytes = max;
        self
    }

    /// Override the reactor worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Override the bounded-inbox capacity (frames).
    pub fn with_inbox_capacity(mut self, frames: usize) -> Self {
        self.inbox_capacity = frames.max(1);
        self
    }

    /// Override the per-link write-queue capacity (frames).
    pub fn with_write_queue_capacity(mut self, frames: usize) -> Self {
        self.write_queue_capacity = frames.max(1);
        self
    }

    /// Override how long a connection may sit half-open (no completed
    /// frame) before the reactor prunes it.
    pub fn with_half_open_timeout(mut self, timeout: Duration) -> Self {
        self.half_open_timeout = timeout;
        self
    }

    /// Run causal-stability compaction every `interval` (worker 0's
    /// timer wheel).
    pub fn with_compaction(mut self, interval: Duration) -> Self {
        self.compaction = Some(interval);
        self
    }

    /// Switch write-side coalescing on or off.
    pub fn with_coalesce(mut self, on: bool) -> Self {
        self.coalesce = on;
        self
    }

    /// The keyspace `Params` this config implies.
    fn params(&self) -> crdt_sync::Params {
        let params = crdt_sync::Params::new(self.n_nodes);
        match self.compaction {
            Some(_) => params.compaction(),
            None => params,
        }
    }
}

/// Mutable node state behind the big lock.
struct Core<K: Ord, C> {
    replica: StoreReplica<K, C>,
    traffic: TrafficStats,
    /// Sync steps executed.
    rounds: u64,
    /// Encode scratch for outbound frames (tag + batch), recycled.
    pool: BufferPool,
}

/// Frames landed but not yet absorbed, plus per-peer landing counters.
#[derive(Default)]
struct Inbox {
    queue: std::collections::VecDeque<(ReplicaId, Bytes)>,
    received_from: BTreeMap<ReplicaId, u64>,
}

/// The node's transfer counters: registry-backed cells declared once
/// here (and snapshot by [`build_probe`] / the `StatsRequest` handler)
/// instead of ad-hoc atomics scattered per call site. Bumping is the
/// same relaxed atomic op the old bespoke counters used.
#[derive(Clone, Debug)]
struct NetMetrics {
    /// `net.frames.sent` — frames flushed onto peer sockets.
    frames_sent: crdt_obs::Counter,
    /// `net.frames.received` — frames assembled off peer sockets.
    frames_received: crdt_obs::Counter,
    /// `net.bytes.sent` — wire bytes shipped (payload + prefix).
    bytes_sent: crdt_obs::Counter,
    /// `net.bytes.received` — wire bytes landed (payload + prefix).
    bytes_received: crdt_obs::Counter,
    /// `net.frames.dropped` — frames discarded (severed/unknown link,
    /// oversize, write-queue overflow, half-open timeout).
    dropped: crdt_obs::Counter,
    /// `net.frames.bad` — undecodable or protocol-violating frames.
    bad_frames: crdt_obs::Counter,
    /// `net.reactor.stalls` — backpressure stall transitions (a peer
    /// connection entering the reads-paused state on a full inbox).
    stalls: crdt_obs::Counter,
    /// `net.reactor.coalesced` — queued frames folded away by
    /// write-side coalescing.
    coalesced: crdt_obs::Counter,
    /// `net.sync.rounds` — anti-entropy sync steps run.
    rounds: crdt_obs::Counter,
    /// `net.conns.open` — live inbound connections across workers.
    conns: crdt_obs::Gauge,
    /// Shared `repair.*` cells for the Merkle repair handshake.
    repair: MerkleRepairMetrics,
}

impl NetMetrics {
    /// Register (or look up) every node cell in `reg`.
    fn register(reg: &crdt_obs::Registry) -> Self {
        NetMetrics {
            frames_sent: crdt_obs::register_counter!(
                reg,
                "net.frames.sent",
                "frames flushed onto peer sockets"
            ),
            frames_received: crdt_obs::register_counter!(
                reg,
                "net.frames.received",
                "frames assembled off peer sockets"
            ),
            bytes_sent: crdt_obs::register_counter!(
                reg,
                "net.bytes.sent",
                "wire bytes shipped (payload + prefix)"
            ),
            bytes_received: crdt_obs::register_counter!(
                reg,
                "net.bytes.received",
                "wire bytes landed (payload + prefix)"
            ),
            dropped: crdt_obs::register_counter!(
                reg,
                "net.frames.dropped",
                "frames discarded (severed link, oversize, queue overflow)"
            ),
            bad_frames: crdt_obs::register_counter!(
                reg,
                "net.frames.bad",
                "undecodable or protocol-violating frames"
            ),
            stalls: crdt_obs::register_counter!(
                reg,
                "net.reactor.stalls",
                "backpressure stall transitions (inbox full, reads paused)"
            ),
            coalesced: crdt_obs::register_counter!(
                reg,
                "net.reactor.coalesced",
                "queued frames folded away by write-side coalescing"
            ),
            rounds: crdt_obs::register_counter!(
                reg,
                "net.sync.rounds",
                "anti-entropy sync steps run"
            ),
            conns: crdt_obs::register_gauge!(
                reg,
                "net.conns.open",
                "live inbound connections across workers"
            ),
            repair: MerkleRepairMetrics::register(reg),
        }
    }
}

struct Inner<K: Ord, C> {
    id: ReplicaId,
    cfg: NodeConfig,
    state: RankedMutex<Core<K, C>>,
    inbox: RankedMutex<Inbox>,
    /// Outbound links keyed by peer; each behind its own lock so a
    /// worker flushing one link never serializes against the keyspace.
    links: RankedMutex<BTreeMap<ReplicaId, Arc<RankedMutex<OutLink>>>>,
    wire: NetMetrics,
    /// This node's observability bundle: the registry behind
    /// [`Inner::wire`], the flight recorder, and a logical clock driven
    /// by the sync-round counter (gated paths stay clock-free).
    obs: Obs,
    shutdown: AtomicBool,
    /// Per-worker handoff queues: the accept thread parks fresh
    /// connections here; each worker adopts its own at the next sweep.
    injects: Vec<Mutex<Vec<Conn>>>,
}

impl<K: Ord, C> Inner<K, C> {
    /// Which worker owns the outbound link to `peer`.
    fn link_owner(&self, peer: ReplicaId) -> usize {
        peer.0 as usize % self.injects.len()
    }
}

impl<K: Ord, C> fmt::Debug for Inner<K, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("wire", &self.wire)
            .finish()
    }
}

/// What a shut-down node leaves behind: its keyspace (for durable
/// restarts) and its final accounting (so a harness's cluster-wide
/// totals survive the crash).
#[derive(Debug)]
pub struct NodeRelics<K: Ord, C> {
    /// The keyspace as it was at shutdown.
    pub replica: StoreReplica<K, C>,
    /// Model-view traffic the node accounted.
    pub traffic: TrafficStats,
    /// Socket frames the node shipped.
    pub frames_sent: u64,
    /// Wire bytes the node shipped (payloads + length prefixes).
    pub wire_bytes_sent: u64,
}

/// A live node: the public face of the spawned runtime.
#[derive(Debug)]
pub struct NodeHandle<K: Ord, C> {
    inner: Arc<Inner<K, C>>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

/// Node-side errors surfaced to harnesses.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(io::Error),
    /// Framing failure (truncated/oversized frame).
    Frame(FrameError),
    /// Payload-level failure.
    Codec(crdt_lattice::CodecError),
    /// The peer answered with [`NetMsg::Error`].
    Remote(String),
    /// The peer answered with an unexpected message.
    Protocol(&'static str),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Frame(e) => write!(f, "framing: {e}"),
            NetError::Codec(e) => write!(f, "codec: {e}"),
            NetError::Remote(m) => write!(f, "remote error: {m}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl From<crdt_lattice::CodecError> for NetError {
    fn from(e: crdt_lattice::CodecError) -> Self {
        NetError::Codec(e)
    }
}

/// Deterministic-across-processes hash of a lattice state (the ordered
/// containers make `Debug` a canonical form — the same justification as
/// the digest module's irreducible hashing).
fn state_hash<C: fmt::Debug>(state: &C) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::hash::Hash::hash(&format!("{state:?}"), &mut h);
    h.finish()
}

impl<K, C> Core<K, C>
where
    K: Ord + Clone + Sizeable + std::hash::Hash + WireEncode + Send + 'static,
    C: Crdt + WireEncode + Send + 'static,
    C::Op: WireEncode + Send + 'static,
{
    /// Account one outbound batch (model view, identical to the
    /// in-process `Cluster`), then frame and enqueue it. Accounting
    /// happens **before** fault checks — a batch dropped by a severed
    /// link was still produced and charged, exactly like
    /// `Cluster::sync_round` recording before `Transport::send` drops on
    /// a severed edge.
    fn record_and_send(&mut self, to: ReplicaId, batch: StoreMsg<K>, inner: &Inner<K, C>) {
        let model = self.replica.config().model;
        self.traffic.record(&batch, &model);
        let mut scratch = self.pool.take();
        scratch.push(TAG_BATCH);
        batch.encode(&mut scratch);
        send_payload(inner, to, &scratch);
        self.pool.give(scratch);
    }
}

/// Ship one already-encoded frame payload to `to`, honoring link
/// faults and the bounded write queue; flushes eagerly inline when the
/// link is idle so lockstep rounds stay effectively synchronous.
fn send_payload<K, C>(inner: &Inner<K, C>, to: ReplicaId, payload: &[u8])
where
    K: Ord + Clone + Sizeable + std::hash::Hash + WireEncode + Send + 'static,
    C: Crdt + WireEncode + Send + 'static,
    C::Op: WireEncode + Send + 'static,
{
    // ReactorDrop trace `a` encodes the reason: 1 = no such link,
    // 2 = severed/dead, 3 = oversize frame, 4 = write queue full.
    let link = { inner.links.lock().unwrap().get(&to).cloned() };
    let Some(link) = link else {
        inner.wire.dropped.inc();
        trace_drop(inner, to, 1);
        return;
    };
    let mut link = link.lock().unwrap();
    if link.severed || link.dead {
        inner.wire.dropped.inc();
        trace_drop(inner, to, 2);
        return;
    }
    if payload.len() > inner.cfg.max_frame_bytes {
        // The old blocking write would have failed the frame and killed
        // the link; the queue preserves that contract.
        link.dead = true;
        inner.wire.dropped.inc();
        trace_drop(inner, to, 3);
        return;
    }
    if link.queue.len() >= inner.cfg.write_queue_capacity {
        if inner.cfg.coalesce {
            credit_coalesce(inner, to, link.coalesce::<K>(inner.cfg.max_frame_bytes));
        }
        if link.queue.len() >= inner.cfg.write_queue_capacity {
            link.queue_dropped += 1;
            inner.wire.dropped.inc();
            trace_drop(inner, to, 4);
            return;
        }
    }
    link.queue.push_back(frame_bytes(payload));
    if !link.paused {
        let out = link.flush();
        credit_flush(inner, &out);
    }
}

/// Record one dropped outbound frame in the flight recorder. Reason
/// codes: 1 = no such link, 2 = severed/dead, 3 = oversize, 4 = full.
fn trace_drop<K: Ord, C>(inner: &Inner<K, C>, to: ReplicaId, reason: u64) {
    inner.obs.trace(
        inner.id.index() as u64,
        EventKind::ReactorDrop,
        reason,
        to.index() as u64,
    );
}

/// Credit `folded` frames folded away by write-side coalescing on the
/// link to `peer`, tracing only when something actually folded.
fn credit_coalesce<K: Ord, C>(inner: &Inner<K, C>, peer: ReplicaId, folded: u64) {
    if folded > 0 {
        inner.wire.coalesced.add(folded);
        inner.obs.trace(
            inner.id.index() as u64,
            EventKind::ReactorCoalesce,
            folded,
            peer.index() as u64,
        );
    }
}

/// Fold one [`crate::reactor::FlushOutcome`] into the node counters.
fn credit_flush<K: Ord, C>(inner: &Inner<K, C>, out: &crate::reactor::FlushOutcome) {
    if out.frames > 0 {
        inner.wire.frames_sent.add(out.frames);
        inner.wire.bytes_sent.add(out.bytes);
    }
    if out.dropped > 0 {
        inner.wire.dropped.add(out.dropped);
    }
}

impl<K, C> NodeHandle<K, C>
where
    K: Ord + Clone + Sizeable + std::hash::Hash + WireEncode + Send + 'static,
    C: Crdt + WireEncode + Send + 'static,
    C::Op: WireEncode + Send + 'static,
{
    /// Spawn a node listening on an ephemeral `127.0.0.1` port, with a
    /// fresh keyspace.
    pub fn spawn(id: ReplicaId, cfg: NodeConfig) -> io::Result<Self> {
        let replica = StoreReplica::with_params(id, cfg.store, cfg.params());
        Self::spawn_with_replica(id, cfg, replica)
    }

    /// Spawn a node adopting an existing keyspace — the durable-restart
    /// path: the relics of a crashed node come back up at a new port.
    pub fn spawn_with_replica(
        id: ReplicaId,
        cfg: NodeConfig,
        replica: StoreReplica<K, C>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        // One observability bundle per node: gated paths drive the
        // logical clock from the sync-round counter, and a cluster of
        // in-process nodes never mixes cells.
        let obs = Obs::logical();
        let mut replica = replica;
        replica.set_obs(&obs.registry);
        let inner = Arc::new(Inner {
            id,
            cfg,
            state: RankedMutex::new(
                rank::CORE,
                Core {
                    replica,
                    traffic: TrafficStats::default(),
                    rounds: 0,
                    pool: BufferPool::new(),
                },
            ),
            inbox: RankedMutex::new(rank::INBOX, Inbox::default()),
            links: RankedMutex::new(rank::LINKS, BTreeMap::new()),
            wire: NetMetrics::register(&obs.registry),
            obs,
            shutdown: AtomicBool::new(false),
            injects: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
        });

        let mut threads = Vec::new();
        {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || accept_loop(inner, listener)));
        }
        for widx in 0..workers {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || worker_loop(inner, widx)));
        }
        Ok(NodeHandle {
            inner,
            addr,
            threads,
        })
    }

    /// The node's replica id.
    pub fn id(&self) -> ReplicaId {
        self.inner.id
    }

    /// The address the node listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Dial `peer` at `addr` and make it a neighbor: every subsequent
    /// sync step addresses it, over this persistent connection. Replaces
    /// any previous link to the same peer (reconnect after a restart).
    pub fn connect(&self, peer: ReplicaId, addr: SocketAddr) -> io::Result<()> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let hello: NetMsg<K> = NetMsg::Hello {
            node: self.inner.id,
        };
        write_frame(
            &mut stream,
            &hello.to_bytes(),
            self.inner.cfg.max_frame_bytes,
        )
        .map_err(|e| match e {
            FrameError::Io(e) => e,
            other => io::Error::other(other.to_string()),
        })?;
        stream.set_nonblocking(true)?;
        self.inner.links.lock().unwrap().insert(
            peer,
            Arc::new(RankedMutex::new(rank::LINK, OutLink::new(stream))),
        );
        Ok(())
    }

    /// Run one synchronization step towards every neighbor — the
    /// externally driven twin of the scheduler's periodic step.
    pub fn sync_now(&self) {
        sync_step(&self.inner);
    }

    /// Drain the inbox: take every landed frame, ordered by sending
    /// peer (deterministic absorption independent of socket timing).
    pub fn take_inbox(&self) -> Vec<(ReplicaId, Bytes)> {
        take_inbox_sorted(&self.inner)
    }

    /// Absorb previously taken frames; replies (push-pull protocols) go
    /// straight back out over the peer sockets. Returns the number of
    /// frames absorbed.
    pub fn absorb_frames(&self, frames: Vec<(ReplicaId, Bytes)>) -> usize {
        absorb_frames(&self.inner, frames)
    }

    /// [`NodeHandle::take_inbox`] + [`NodeHandle::absorb_frames`].
    pub fn absorb_pending(&self) -> usize {
        let frames = self.take_inbox();
        self.absorb_frames(frames)
    }

    /// Sever the outbound link to `peer`: frames are dropped silently
    /// (both ends severing yields a full partition of the pair).
    pub fn sever(&self, peer: ReplicaId) {
        if let Some(link) = self.inner.links.lock().unwrap().get(&peer) {
            link.lock().unwrap().severed = true;
        }
    }

    /// Restore a severed outbound link.
    pub fn heal(&self, peer: ReplicaId) {
        if let Some(link) = self.inner.links.lock().unwrap().get(&peer) {
            link.lock().unwrap().severed = false;
        }
    }

    /// Freeze the outbound link to `peer`: frames park in the write
    /// queue, in order, instead of shipping.
    pub fn freeze(&self, peer: ReplicaId) {
        if let Some(link) = self.inner.links.lock().unwrap().get(&peer) {
            link.lock().unwrap().paused = true;
        }
    }

    /// Thaw a frozen link, flushing every parked frame in order (folded
    /// by write-side coalescing when enabled — delay without reorder).
    pub fn thaw(&self, peer: ReplicaId) {
        let link = { self.inner.links.lock().unwrap().get(&peer).cloned() };
        let Some(link) = link else { return };
        let mut link = link.lock().unwrap();
        if !link.paused {
            return;
        }
        link.paused = false;
        if self.inner.cfg.coalesce && link.queue.len() >= 2 {
            let folded = link.coalesce::<K>(self.inner.cfg.max_frame_bytes);
            credit_coalesce(&self.inner, peer, folded);
        }
        let out = link.flush();
        credit_flush(&self.inner, &out);
    }

    /// Apply `op` locally (the in-process twin of a client
    /// [`NetMsg::Update`]).
    pub fn update(&self, key: K, op: &C::Op) {
        self.inner.state.lock().unwrap().replica.update(key, op);
    }

    /// Read the object at `key` (the in-process twin of a client
    /// [`NetMsg::Get`]).
    pub fn get(&self, key: K) -> Option<C>
    where
        C: Clone,
    {
        self.inner.state.lock().unwrap().replica.get(key).cloned()
    }

    /// The node's probe report, computed in-process (the socket probe in
    /// [`crate::NetClient::probe`] serves exactly this).
    pub fn probe_local(&self) -> ProbeReport<K> {
        build_probe(&self.inner)
    }

    /// The node's observability bundle: registry, flight recorder, and
    /// clock. Tests and harnesses read metrics or arm panic dumps here;
    /// [`crate::NetClient::stats`] serves the same data over the socket.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// The node's stats report, computed in-process (the socket stats
    /// probe in [`crate::NetClient::stats`] serves exactly this).
    pub fn stats_local(&self, trace_tail: u64) -> StatsReport {
        build_stats(&self.inner, trace_tail)
    }

    /// The keyspace's memory footprint (CRDT state vs synchronization
    /// metadata) — what the compaction timer keeps flat under churn.
    pub fn memory(&self) -> MemoryUsage {
        self.inner.state.lock().unwrap().replica.memory()
    }

    /// Live inbound connections (peers and clients).
    pub fn live_connections(&self) -> u64 {
        self.inner.wire.conns.get()
    }

    /// Per-peer frames written, for in-flight reconciliation.
    pub fn frames_sent_to(&self) -> Vec<(ReplicaId, u64)> {
        let links = self.inner.links.lock().unwrap();
        links
            .iter()
            .map(|(id, link)| (*id, link.lock().unwrap().frames_sent))
            .collect()
    }

    /// Per-peer outbound queue depth and pause flag, for settle
    /// detection: a queued frame is in flight even though no wire frame
    /// exists yet.
    pub fn queued_to(&self) -> Vec<(ReplicaId, u64, bool)> {
        let links = self.inner.links.lock().unwrap();
        links
            .iter()
            .map(|(id, link)| {
                let link = link.lock().unwrap();
                (*id, link.queued(), link.paused)
            })
            .collect()
    }

    /// Zero the landing counter for `peer` — pairs with a fresh
    /// outbound [`NodeHandle::connect`] from that peer. The `Hello` of
    /// the new connection also resets it, but a harness that re-dials
    /// and immediately reconciles in-flight counts (cluster restart)
    /// calls this eagerly to close the race with the reset-on-`Hello`.
    pub fn reset_link_counters(&self, peer: ReplicaId) {
        self.inner
            .inbox
            .lock()
            .unwrap()
            .received_from
            .insert(peer, 0);
    }

    /// Per-peer frames landed in the inbox, for in-flight
    /// reconciliation.
    pub fn frames_landed_from(&self) -> Vec<(ReplicaId, u64)> {
        let inbox = self.inner.inbox.lock().unwrap();
        inbox
            .received_from
            .iter()
            .map(|(id, n)| (*id, *n))
            .collect()
    }

    /// Run the 3-message digest-driven repair handshake (§VI) against
    /// the node at `addr`, in both directions: this node absorbs what it
    /// was missing from the reply, and ships back what the peer's
    /// digests lack. Returns the exchange's accounting.
    ///
    /// # Panics
    ///
    /// If the configured protocol does not exchange bare δ-groups
    /// ([`crdt_sync::ProtocolKind::accepts_raw_delta`]) — anti-entropy
    /// and op-based kinds manage their own recovery, mirroring
    /// `Cluster::digest_repair`.
    pub fn repair_with(
        &self,
        peer: ReplicaId,
        addr: SocketAddr,
    ) -> Result<PairSyncStats, NetError> {
        let cfg = self.inner.cfg;
        assert!(
            cfg.store.protocol.accepts_raw_delta(),
            "digest repair applies to delta-family/state protocols; {} manages its own recovery",
            cfg.store.protocol
        );
        let model = cfg.store.model;
        let mut stats = PairSyncStats::default();

        // Message 1: our digests.
        let digests: Vec<(K, Digest)> = {
            let core = self.inner.state.lock().unwrap();
            core.replica
                .iter()
                .map(|(k, x)| (k.clone(), Digest::of(x)))
                .collect()
        };
        stats.messages += 1;
        stats.metadata_bytes += digests.iter().map(|(_, d)| d.size_bytes()).sum::<u64>();

        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut pool = BufferPool::new();
        let request: NetMsg<K> = NetMsg::RepairRequest {
            from: self.inner.id,
            digests,
        };
        write_frame(&mut stream, &request.to_bytes(), cfg.max_frame_bytes)?;

        // Message 2: the peer's deltas for us, plus its digests.
        let frame = read_frame(&mut stream, cfg.max_frame_bytes, &mut pool)?
            .ok_or(NetError::Protocol("repair connection closed early"))?;
        let reply = NetMsg::<K>::from_bytes(&frame)?;
        let (deltas, peer_digests) = match reply {
            NetMsg::RepairReply { deltas, digests } => (deltas, digests),
            NetMsg::Error { message } => return Err(NetError::Remote(message)),
            _ => return Err(NetError::Protocol("expected RepairReply")),
        };
        stats.messages += 1;
        stats.metadata_bytes += peer_digests
            .iter()
            .map(|(_, d)| d.size_bytes())
            .sum::<u64>();
        {
            let mut core = self.inner.state.lock().unwrap();
            for (key, blob) in deltas {
                let delta = C::from_bytes(&blob)?;
                stats.payload_elements += delta.count_elements();
                stats.payload_bytes += delta.size_bytes(&model);
                if !delta.is_bottom() {
                    core.replica.inject_delta(key, peer, delta);
                }
            }
        }

        // Message 3: deltas for the peer, from our post-merge state.
        // Digest lookups go through a map — a linear scan per key is
        // quadratic at store granularity (the paper's 30 K objects).
        let peer_digests: std::collections::BTreeMap<K, Digest> =
            peer_digests.into_iter().collect();
        let final_deltas: Vec<(K, Vec<u8>)> = {
            let empty = Digest::default();
            let core = self.inner.state.lock().unwrap();
            core.replica
                .iter()
                .filter_map(|(k, x)| {
                    let digest = peer_digests.get(k).unwrap_or(&empty);
                    let delta = delta_for_digest(x, digest);
                    (!delta.is_bottom()).then(|| {
                        stats.payload_elements += delta.count_elements();
                        stats.payload_bytes += delta.size_bytes(&model);
                        (k.clone(), delta.to_bytes())
                    })
                })
                .collect()
        };
        stats.messages += 1;
        let fin: NetMsg<K> = NetMsg::RepairFinal {
            from: self.inner.id,
            deltas: final_deltas,
        };
        write_frame(&mut stream, &fin.to_bytes(), cfg.max_frame_bytes)?;
        // Await the ack so the repair is complete when we return.
        let frame = read_frame(&mut stream, cfg.max_frame_bytes, &mut pool)?
            .ok_or(NetError::Protocol("repair connection closed before ack"))?;
        match NetMsg::<K>::from_bytes(&frame)? {
            NetMsg::UpdateReply => Ok(stats),
            NetMsg::Error { message } => Err(NetError::Remote(message)),
            _ => Err(NetError::Protocol("expected repair ack")),
        }
    }

    /// Run Merkle-descent repair against the node at `addr`: localize
    /// divergence by walking both keyspace trees level by level over the
    /// socket (the server answers each [`NetMsg::MerkleNodeReq`]
    /// statelessly from its flushed tree), then run the 3-message §VI
    /// handshake **scoped to the diverged keys** on the same stream.
    /// Keyspaces below [`MERKLE_REPAIR_THRESHOLD`] delegate to
    /// [`NodeHandle::repair_with`] — the per-object sweep is already
    /// cheap there. A tree-depth mismatch with the peer also falls back
    /// to the full sweep (conservative, still convergent).
    ///
    /// Descent frames are charged to the returned stats as messages and
    /// real encoded metadata bytes.
    ///
    /// # Panics
    ///
    /// Like [`NodeHandle::repair_with`], if the configured protocol does
    /// not exchange bare δ-groups.
    pub fn merkle_repair_with(
        &self,
        peer: ReplicaId,
        addr: SocketAddr,
    ) -> Result<PairSyncStats, NetError> {
        let cfg = self.inner.cfg;
        assert!(
            cfg.store.protocol.accepts_raw_delta(),
            "digest repair applies to delta-family/state protocols; {} manages its own recovery",
            cfg.store.protocol
        );
        // Snapshot the flushed tree so the descent never holds the
        // keyspace lock across socket I/O.
        let tree = {
            let mut core = self.inner.state.lock().unwrap();
            if core.replica.len() < MERKLE_REPAIR_THRESHOLD {
                drop(core);
                return self.repair_with(peer, addr);
            }
            core.replica.merkle().clone()
        };
        let model = cfg.store.model;
        self.inner.wire.repair.pairs.inc();
        let mut stats = PairSyncStats::default();
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut pool = BufferPool::new();
        let send = |stream: &mut TcpStream, msg: &NetMsg<K>, stats: &mut PairSyncStats| {
            let bytes = msg.to_bytes();
            stats.messages += 1;
            stats.metadata_bytes += bytes.len() as u64;
            write_frame(stream, &bytes, cfg.max_frame_bytes).map_err(NetError::from)
        };

        // Frame 1: our root digest opens the descent.
        let open: NetMsg<K> = NetMsg::MerkleRoot {
            from: self.inner.id,
            digest: tree.root_digest(),
        };
        send(&mut stream, &open, &mut stats)?;
        let mut frame = {
            let reply = read_frame(&mut stream, cfg.max_frame_bytes, &mut pool)?
                .ok_or(NetError::Protocol("merkle repair connection closed early"))?;
            stats.messages += 1;
            stats.metadata_bytes += reply.len() as u64;
            match NetMsg::<K>::from_bytes(&reply)? {
                NetMsg::MerkleChildren(frame) => frame,
                NetMsg::Error { message } if message.contains("depth mismatch") => {
                    // Incomparable trees: the full sweep still converges.
                    return self.repair_with(peer, addr);
                }
                NetMsg::Error { message } => return Err(NetError::Remote(message)),
                _ => return Err(NetError::Protocol("expected MerkleChildren")),
            }
        };

        // Descend: compare the server's listings against our tree, ask
        // one level deeper until the frontier is all leaves.
        let mut descent_rounds = 1u64;
        let mut leaves: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        loop {
            if frame.nodes.is_empty() {
                break;
            }
            let mut internal = Vec::new();
            divergent_children(&tree, &frame, &mut internal, &mut leaves);
            if internal.is_empty() {
                break;
            }
            let req: NetMsg<K> = NetMsg::MerkleNodeReq { nodes: internal };
            send(&mut stream, &req, &mut stats)?;
            let reply = read_frame(&mut stream, cfg.max_frame_bytes, &mut pool)?
                .ok_or(NetError::Protocol("merkle descent closed mid-round"))?;
            stats.messages += 1;
            stats.metadata_bytes += reply.len() as u64;
            descent_rounds += 1;
            frame = match NetMsg::<K>::from_bytes(&reply)? {
                NetMsg::MerkleChildren(frame) => frame,
                NetMsg::Error { message } => return Err(NetError::Remote(message)),
                _ => return Err(NetError::Protocol("expected MerkleChildren")),
            };
        }
        // Descent accounting: everything exchanged so far is control
        // plane (digests and child listings); the leaf round below is
        // charged separately.
        let repair = &self.inner.wire.repair;
        repair.frames.add(u64::from(stats.messages));
        repair.control_bytes.add(stats.metadata_bytes);
        repair.rounds.add(descent_rounds);
        self.inner.obs.trace(
            self.inner.id.index() as u64,
            EventKind::RepairHop,
            descent_rounds,
            stats.metadata_bytes,
        );
        if leaves.is_empty() {
            return Ok(stats);
        }

        // Leaf round: both sides' buckets for the divergent leaves; the
        // symmetric difference is the diverged key set.
        let req: NetMsg<K> = NetMsg::MerkleLeafReq {
            prefixes: leaves.iter().copied().collect(),
        };
        send(&mut stream, &req, &mut stats)?;
        let reply = read_frame(&mut stream, cfg.max_frame_bytes, &mut pool)?
            .ok_or(NetError::Protocol("merkle leaf round closed early"))?;
        stats.messages += 1;
        stats.metadata_bytes += reply.len() as u64;
        repair.frames.add(2);
        repair.leaf_bytes.add(reply.len() as u64);
        let theirs = match NetMsg::<K>::from_bytes(&reply)? {
            NetMsg::MerkleLeaves(leaves) => leaves,
            NetMsg::Error { message } => return Err(NetError::Remote(message)),
            _ => return Err(NetError::Protocol("expected MerkleLeaves")),
        };
        let mine = LeafRepair {
            leaves: leaves.iter().map(|&p| (p, tree.leaf_entries(p))).collect(),
        };
        let diverged = diverged_from_leaves(&mine, &theirs);
        if diverged.is_empty() {
            return Ok(stats);
        }

        // Scoped §VI handshake over the same stream: digests for only
        // the diverged keys (⊥ digests for keys only the peer holds).
        let digests: Vec<(K, Digest)> = {
            let core = self.inner.state.lock().unwrap();
            diverged
                .iter()
                .map(|k| {
                    let digest = core
                        .replica
                        .get(k.clone())
                        .map(Digest::of)
                        .unwrap_or_default();
                    stats.metadata_bytes += digest.size_bytes();
                    (k.clone(), digest)
                })
                .collect()
        };
        let scoped: NetMsg<K> = NetMsg::RepairScoped {
            from: self.inner.id,
            digests,
        };
        stats.messages += 1;
        write_frame(&mut stream, &scoped.to_bytes(), cfg.max_frame_bytes)?;
        let reply = read_frame(&mut stream, cfg.max_frame_bytes, &mut pool)?
            .ok_or(NetError::Protocol("scoped repair closed early"))?;
        let (deltas, peer_digests) = match NetMsg::<K>::from_bytes(&reply)? {
            NetMsg::RepairReply { deltas, digests } => (deltas, digests),
            NetMsg::Error { message } => return Err(NetError::Remote(message)),
            _ => return Err(NetError::Protocol("expected RepairReply")),
        };
        stats.messages += 1;
        stats.metadata_bytes += peer_digests
            .iter()
            .map(|(_, d)| d.size_bytes())
            .sum::<u64>();
        {
            let mut core = self.inner.state.lock().unwrap();
            for (key, blob) in deltas {
                let delta = C::from_bytes(&blob)?;
                stats.payload_elements += delta.count_elements();
                stats.payload_bytes += delta.size_bytes(&model);
                if !delta.is_bottom() {
                    core.replica.inject_delta(key, peer, delta);
                }
            }
        }
        let peer_digests: BTreeMap<K, Digest> = peer_digests.into_iter().collect();
        let final_deltas: Vec<(K, Vec<u8>)> = {
            let empty = Digest::default();
            let core = self.inner.state.lock().unwrap();
            diverged
                .iter()
                .filter_map(|k| {
                    let x = core.replica.get(k.clone())?;
                    let digest = peer_digests.get(k).unwrap_or(&empty);
                    let delta = delta_for_digest(x, digest);
                    (!delta.is_bottom()).then(|| {
                        stats.payload_elements += delta.count_elements();
                        stats.payload_bytes += delta.size_bytes(&model);
                        (k.clone(), delta.to_bytes())
                    })
                })
                .collect()
        };
        stats.messages += 1;
        let fin: NetMsg<K> = NetMsg::RepairFinal {
            from: self.inner.id,
            deltas: final_deltas,
        };
        write_frame(&mut stream, &fin.to_bytes(), cfg.max_frame_bytes)?;
        let frame = read_frame(&mut stream, cfg.max_frame_bytes, &mut pool)?
            .ok_or(NetError::Protocol("repair connection closed before ack"))?;
        match NetMsg::<K>::from_bytes(&frame)? {
            NetMsg::UpdateReply => Ok(stats),
            NetMsg::Error { message } => Err(NetError::Remote(message)),
            _ => Err(NetError::Protocol("expected repair ack")),
        }
    }

    /// Prune causally stable synchronization metadata in every object
    /// engine (see [`delta_store::StoreReplica::compact`]); worker 0's
    /// timer wheel calls this on the [`NodeConfig::compaction`] period.
    /// Returns entries pruned.
    pub fn compact(&self) -> u64 {
        self.inner.state.lock().unwrap().replica.compact()
    }

    /// Stop the node: close every connection, join the service threads,
    /// and hand back the keyspace and final accounting.
    pub fn shutdown(mut self) -> NodeRelics<K, C> {
        self.signal_and_join();
        let mut core = self.inner.state.lock().unwrap();
        let id = self.inner.id;
        let cfg = self.inner.cfg;
        let replica = std::mem::replace(
            &mut core.replica,
            StoreReplica::with_params(id, cfg.store, cfg.params()),
        );
        NodeRelics {
            replica,
            traffic: core.traffic,
            frames_sent: self.inner.wire.frames_sent.get(),
            wire_bytes_sent: self.inner.wire.bytes_sent.get(),
        }
    }
}

impl<K: Ord, C> NodeHandle<K, C> {
    /// Signal shutdown, join the reactor threads, close every socket.
    fn signal_and_join(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Workers dropped their connection sets on exit; close outbound
        // links and any connection still parked in a handoff queue so
        // peers observe EOF promptly.
        for link in self.inner.links.lock().unwrap().values() {
            let _ = link.lock().unwrap().stream.shutdown(Shutdown::Both);
        }
        for inject in &self.inner.injects {
            for conn in inject.lock().unwrap().drain(..) {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
        }
    }

    /// Stop the node and discard its state — the cleanup path for
    /// harness teardown; use [`NodeHandle::shutdown`] (bounded on the
    /// key/CRDT types) to recover the keyspace and accounting instead.
    pub fn shutdown_untyped(mut self) {
        self.signal_and_join();
    }
}

/// One sync step: batch per neighbor, account, ship.
fn sync_step<K, C>(inner: &Inner<K, C>)
where
    K: Ord + Clone + Sizeable + std::hash::Hash + WireEncode + Send + 'static,
    C: Crdt + WireEncode + Send + 'static,
    C::Op: WireEncode + Send + 'static,
{
    let neighbors: Vec<ReplicaId> = inner.links.lock().unwrap().keys().copied().collect();
    let mut core = inner.state.lock().unwrap();
    let steps = core.replica.sync_step(&neighbors);
    core.rounds += 1;
    // The node's logical clock is the sync-round counter, so trace
    // ticks in gated paths stay deterministic across runs.
    inner.obs.clock.advance_to(core.rounds);
    inner.wire.rounds.inc();
    let me = inner.id.index() as u64;
    inner.obs.trace(
        me,
        EventKind::SyncRoundStart,
        core.rounds,
        neighbors.len() as u64,
    );
    let shipped = steps.len() as u64;
    for (to, batch) in steps {
        core.record_and_send(to, batch, inner);
    }
    inner
        .obs
        .trace(me, EventKind::SyncRoundEnd, core.rounds, shipped);
}

/// Drain the inbox sorted by sending peer (deterministic absorption
/// independent of socket timing).
fn take_inbox_sorted<K: Ord, C>(inner: &Inner<K, C>) -> Vec<(ReplicaId, Bytes)> {
    let mut inbox = inner.inbox.lock().unwrap();
    let mut frames: Vec<_> = inbox.queue.drain(..).collect();
    drop(inbox);
    frames.sort_by_key(|(from, _)| *from);
    frames
}

/// Absorb a set of landed frames; replies ship immediately.
fn absorb_frames<K, C>(inner: &Inner<K, C>, frames: Vec<(ReplicaId, Bytes)>) -> usize
where
    K: Ord + Clone + Sizeable + std::hash::Hash + WireEncode + Send + 'static,
    C: Crdt + WireEncode + Send + 'static,
    C::Op: WireEncode + Send + 'static,
{
    let mut absorbed = 0;
    for (_, frame) in frames {
        match batch_from_frame::<K>(&frame) {
            Ok(batch) => {
                let mut core = inner.state.lock().unwrap();
                match core.replica.absorb(batch) {
                    Ok(replies) => {
                        absorbed += 1;
                        for (to, reply) in replies {
                            core.record_and_send(to, reply, inner);
                        }
                    }
                    // A corrupt or mismatched batch must not kill the
                    // node: count it and move on (hardened decode path).
                    Err(_) => {
                        inner.wire.bad_frames.inc();
                    }
                }
            }
            Err(_) => {
                inner.wire.bad_frames.inc();
            }
        }
    }
    absorbed
}

/// Build the probe report (state summaries + counters).
fn build_probe<K, C>(inner: &Inner<K, C>) -> ProbeReport<K>
where
    K: Ord + Clone + Sizeable + std::hash::Hash + WireEncode + Send + 'static,
    C: Crdt + WireEncode + Send + 'static,
    C::Op: WireEncode + Send + 'static,
{
    let (keys, traffic, rounds) = {
        let core = inner.state.lock().unwrap();
        let keys: Vec<(K, u64, u64)> = core
            .replica
            .iter()
            .filter(|(_, x)| !x.is_bottom())
            .map(|(k, x)| (k.clone(), state_hash(x), x.count_elements()))
            .collect();
        (keys, core.traffic, core.rounds)
    };
    let (sent_to, queued_frames, frozen_frames, coalesced, queue_dropped) = {
        let links = inner.links.lock().unwrap();
        let mut sent_to = Vec::with_capacity(links.len());
        let (mut queued, mut frozen, mut coalesced, mut dropped) = (0u64, 0u64, 0u64, 0u64);
        for (id, link) in links.iter() {
            let link = link.lock().unwrap();
            sent_to.push((*id, link.frames_sent));
            match link.paused {
                true => frozen += link.queued(),
                false => queued += link.queued(),
            }
            coalesced += link.coalesced;
            dropped += link.queue_dropped;
        }
        (sent_to, queued, frozen, coalesced, dropped)
    };
    let (inbox_len, received_from) = {
        let inbox = inner.inbox.lock().unwrap();
        (
            inbox.queue.len() as u64,
            inbox
                .received_from
                .iter()
                .map(|(id, n)| (*id, *n))
                .collect(),
        )
    };
    ProbeReport {
        node: inner.id,
        rounds,
        keys,
        traffic,
        frames_sent: inner.wire.frames_sent.get(),
        frames_received: inner.wire.frames_received.get(),
        wire_bytes_sent: inner.wire.bytes_sent.get(),
        wire_bytes_received: inner.wire.bytes_received.get(),
        dropped_frames: inner.wire.dropped.get(),
        bad_frames: inner.wire.bad_frames.get(),
        inbox_len,
        frozen_frames,
        queued_frames,
        stall_events: inner.wire.stalls.get(),
        coalesced_frames: coalesced,
        queue_dropped_frames: queue_dropped,
        connections: inner.wire.conns.get(),
        sent_to,
        received_from,
    }
}

/// Accept loop: register every connection — non-blocking from birth —
/// with a reactor worker, round-robin.
fn accept_loop<K, C>(inner: Arc<Inner<K, C>>, listener: TcpListener)
where
    K: Ord + Send + 'static,
    C: Send + 'static,
{
    let workers = inner.injects.len();
    let mut next = 0usize;
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nodelay(true).ok();
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                inner.wire.conns.add(1);
                inner.injects[next % workers]
                    .lock()
                    .unwrap()
                    .push(Conn::new(stream));
                next += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

/// One reactor worker: sweep owned connections (read + dispatch +
/// reply-flush), prune the dead and the half-open, flush owned outbound
/// links, and — on worker 0 — fire the timer wheel.
fn worker_loop<K, C>(inner: Arc<Inner<K, C>>, widx: usize)
where
    K: Ord + Clone + Sizeable + std::hash::Hash + WireEncode + Send + 'static,
    C: Crdt + WireEncode + Send + 'static,
    C::Op: WireEncode + Send + 'static,
{
    let mut conns: Vec<Conn> = Vec::new();
    let mut pool = BufferPool::new();
    let mut frames: Vec<Bytes> = Vec::new();
    let mut timers = TimerWheel::new();
    let mut due: Vec<TimerKind> = Vec::new();
    if widx == 0 {
        let now = Instant::now();
        if let Some(interval) = inner.cfg.scheduler {
            timers.register(TimerKind::Sync, interval, now);
        }
        if let Some(interval) = inner.cfg.compaction {
            timers.register(TimerKind::Compact, interval, now);
        }
    }
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let mut busy = false;

        // Adopt connections the accept thread handed this worker.
        {
            let mut inject = inner.injects[widx].lock().unwrap();
            if !inject.is_empty() {
                conns.append(&mut inject);
                busy = true;
            }
        }

        // Worker 0: timers, plus continuous absorption in free-running
        // (scheduler) mode. Externally driven nodes leave absorption to
        // the harness — that is what makes lockstep rounds reproduce
        // the simulator schedule exactly.
        if widx == 0 {
            due.clear();
            timers.poll(Instant::now(), &mut due);
            for kind in due.drain(..) {
                match kind {
                    TimerKind::Sync => sync_step(&inner),
                    TimerKind::Compact => {
                        let pruned = inner.state.lock().unwrap().replica.compact();
                        inner
                            .obs
                            .trace(inner.id.index() as u64, EventKind::Compaction, pruned, 0);
                    }
                }
                busy = true;
            }
            if inner.cfg.scheduler.is_some() {
                let frames = take_inbox_sorted(&inner);
                if !frames.is_empty() {
                    let absorbed = absorb_frames(&inner, frames);
                    inner.obs.trace(
                        inner.id.index() as u64,
                        EventKind::ReactorSweep,
                        absorbed as u64,
                        widx as u64,
                    );
                    busy = true;
                }
            }
        }

        // Read sweep: assemble frames from every owned connection.
        for conn in conns.iter_mut() {
            if conn.dead {
                continue;
            }
            let mut budget = FRAMES_PER_SWEEP;
            if conn.frames_completed == 0 {
                // Unidentified connection: read exactly one frame — if
                // it is a `Hello`, the *next* sweep's reads fall under
                // the inbox bound; a greedy first read could pull a
                // whole window of batches past the cap before the
                // connection is known to be a peer.
                budget = 1;
            }
            if conn.peer.is_some() {
                // Bounded inbox: reads never outrun the remaining
                // capacity, and a full inbox stalls this peer's reads
                // entirely — bytes stay in the kernel buffer, TCP
                // backpressure does the rest. Stall *transitions* are
                // counted.
                let free = inner
                    .cfg
                    .inbox_capacity
                    .saturating_sub(inner.inbox.lock().unwrap().queue.len());
                if free == 0 {
                    if !conn.stalled {
                        conn.stalled = true;
                        inner.wire.stalls.inc();
                        inner.obs.trace(
                            inner.id.index() as u64,
                            EventKind::ReactorStall,
                            conn.peer.map_or(u64::MAX, |p| p.index() as u64),
                            inner.cfg.inbox_capacity as u64,
                        );
                    }
                    continue;
                }
                conn.stalled = false;
                budget = budget.min(free);
            }
            frames.clear();
            let event = conn.poll_frames(inner.cfg.max_frame_bytes, &mut pool, budget, &mut frames);
            if !frames.is_empty() {
                busy = true;
            }
            for frame in frames.drain(..) {
                dispatch_frame(&inner, conn, frame);
            }
            match event {
                ConnEvent::More => busy = true,
                ConnEvent::Corrupt => {
                    inner.wire.bad_frames.inc();
                }
                ConnEvent::Idle | ConnEvent::Closed => {}
            }
            if conn.flush() {
                busy = true;
            }
        }

        // Prune: dead connections, and half-open ones that never
        // completed a frame within the timeout.
        let before = conns.len();
        let timeout = inner.cfg.half_open_timeout;
        conns.retain(|c| {
            let half_open = c.frames_completed == 0 && c.opened.elapsed() > timeout;
            !(c.dead || half_open)
        });
        if conns.len() < before {
            inner.wire.conns.sub((before - conns.len()) as u64);
            busy = true;
        }

        // Flush the outbound links this worker owns, coalescing any
        // backlog first.
        let owned: Vec<(ReplicaId, Arc<RankedMutex<OutLink>>)> = {
            let links = inner.links.lock().unwrap();
            links
                .iter()
                .filter(|(id, _)| inner.link_owner(**id) == widx)
                .map(|(id, link)| (*id, Arc::clone(link)))
                .collect()
        };
        for (peer, link) in owned {
            let mut link = link.lock().unwrap();
            if link.paused || (link.queue.is_empty() && link.written == 0) {
                continue;
            }
            if inner.cfg.coalesce && link.queue.len() >= 2 {
                let folded = link.coalesce::<K>(inner.cfg.max_frame_bytes);
                credit_coalesce(&inner, peer, folded);
            }
            let out = link.flush();
            if out.frames > 0 || out.dropped > 0 {
                busy = true;
            }
            credit_flush(&inner, &out);
        }

        if !busy {
            std::thread::sleep(IDLE_TICK);
        }
    }
}

/// Interpret one assembled frame in the context of its connection:
/// batch frames from identified peers land in the inbox; a `Hello`
/// identifies the connection; anything else is a client request served
/// inline, its reply queued on the connection.
fn dispatch_frame<K, C>(inner: &Inner<K, C>, conn: &mut Conn, frame: Bytes)
where
    K: Ord + Clone + Sizeable + std::hash::Hash + WireEncode + Send + 'static,
    C: Crdt + WireEncode + Send + 'static,
    C::Op: WireEncode + Send + 'static,
{
    inner.wire.frames_received.inc();
    inner
        .wire
        .bytes_received
        .add((crate::framing::LEN_PREFIX_BYTES + frame.len()) as u64);
    if let Some(from) = conn.peer {
        // Established peer stream: only batches are expected; they land
        // in the inbox raw for zero-copy absorption.
        if is_batch_frame(&frame) {
            land_batch(inner, from, frame);
        } else {
            inner.wire.bad_frames.inc();
        }
        return;
    }
    // First frame (or client session): decode the full message.
    let msg = match NetMsg::<K>::from_bytes(&frame) {
        Ok(msg) => msg,
        Err(_) => {
            // The connection is not trustworthy any more; count and
            // drop it. A corrupt frame never takes the node down.
            inner.wire.bad_frames.inc();
            conn.dead = true;
            return;
        }
    };
    match msg {
        NetMsg::Hello { node } => {
            conn.peer = Some(node);
            // A new connection starts a new ledger: the per-peer
            // landing counter pairs with the dialer's fresh
            // `OutLink::frames_sent`, so a reconnect (peer restart)
            // must zero it or in-flight reconciliation compares a new
            // sent-count against a stale landed count and undercounts
            // flight.
            inner.inbox.lock().unwrap().received_from.insert(node, 0);
        }
        NetMsg::Batch(batch) => {
            // A batch before Hello: attribute it to its header.
            match batch.route().map(|(from, _, _)| from) {
                Some(from) => land_batch(inner, from, frame),
                None => {
                    inner.wire.bad_frames.inc();
                }
            }
        }
        other => {
            let reply = serve_client_request(inner, other);
            let bytes = reply.to_bytes();
            if bytes.len() <= inner.cfg.max_frame_bytes {
                conn.outbuf.push_back(frame_bytes(&bytes));
            } else {
                // The old blocking write would have failed the frame
                // and dropped the session.
                conn.dead = true;
            }
        }
    }
}

/// Land one peer batch frame in the inbox (raw, for zero-copy absorb).
fn land_batch<K: Ord, C>(inner: &Inner<K, C>, from: ReplicaId, frame: Bytes) {
    let mut inbox = inner.inbox.lock().unwrap();
    inbox.queue.push_back((from, frame));
    *inbox.received_from.entry(from).or_insert(0) += 1;
}

/// Register every net-layer metric in `reg` (idempotent) without
/// spawning a node — the golden-name gate enumerates the `net.*` and
/// `repair.*` namespaces through this.
pub fn register_net_metrics(reg: &crdt_obs::Registry) {
    let _ = NetMetrics::register(reg);
}

/// Build the observability report: full registry exposition plus the
/// newest `trace_tail` flight-recorder events.
fn build_stats<K: Ord, C>(inner: &Inner<K, C>, trace_tail: u64) -> StatsReport {
    StatsReport {
        node: inner.id,
        exposition: inner.obs.registry.exposition(),
        trace: inner.obs.recorder.tail(trace_tail as usize),
    }
}

/// Answer one client/repair request.
fn serve_client_request<K, C>(inner: &Inner<K, C>, msg: NetMsg<K>) -> NetMsg<K>
where
    K: Ord + Clone + Sizeable + std::hash::Hash + WireEncode + Send + 'static,
    C: Crdt + WireEncode + Send + 'static,
    C::Op: WireEncode + Send + 'static,
{
    match msg {
        NetMsg::Get { key } => {
            let core = inner.state.lock().unwrap();
            NetMsg::GetReply {
                state: core.replica.get(key).map(WireEncode::to_bytes),
            }
        }
        NetMsg::Update { key, op } => {
            let decoded: Result<C::Op, _> = OpBytes(op).decode();
            match decoded {
                Ok(op) => {
                    inner.state.lock().unwrap().replica.update(key, &op);
                    NetMsg::UpdateReply
                }
                Err(e) => NetMsg::Error {
                    message: format!("undecodable operation: {e}"),
                },
            }
        }
        NetMsg::Probe => NetMsg::ProbeReply(build_probe(inner)),
        NetMsg::StatsRequest { trace_tail } => NetMsg::StatsReply(build_stats(inner, trace_tail)),
        NetMsg::RepairRequest { from: _, digests } => {
            if !inner.cfg.store.protocol.accepts_raw_delta() {
                return NetMsg::Error {
                    message: format!(
                        "digest repair applies to delta-family/state protocols; {} manages its own recovery",
                        inner.cfg.store.protocol
                    ),
                };
            }
            // Map the requester's digests so each local key is a
            // O(log n) lookup, not a linear scan (quadratic at store
            // granularity otherwise).
            let digests: std::collections::BTreeMap<K, Digest> = digests.into_iter().collect();
            let empty = Digest::default();
            let core = inner.state.lock().unwrap();
            let deltas: Vec<(K, Vec<u8>)> = core
                .replica
                .iter()
                .filter_map(|(k, x)| {
                    let digest = digests.get(k).unwrap_or(&empty);
                    let delta = delta_for_digest(x, digest);
                    (!delta.is_bottom()).then(|| (k.clone(), delta.to_bytes()))
                })
                .collect();
            let own_digests: Vec<(K, Digest)> = core
                .replica
                .iter()
                .map(|(k, x)| (k.clone(), Digest::of(x)))
                .collect();
            NetMsg::RepairReply {
                deltas,
                digests: own_digests,
            }
        }
        NetMsg::RepairFinal { from, deltas } => {
            if !inner.cfg.store.protocol.accepts_raw_delta() {
                return NetMsg::Error {
                    message: "unexpected RepairFinal for a non-δ protocol".to_string(),
                };
            }
            let mut core = inner.state.lock().unwrap();
            for (key, blob) in deltas {
                match C::from_bytes(&blob) {
                    Ok(delta) if !delta.is_bottom() => {
                        core.replica.inject_delta(key, from, delta);
                    }
                    Ok(_) => {}
                    Err(e) => {
                        return NetMsg::Error {
                            message: format!("undecodable repair delta: {e}"),
                        }
                    }
                }
            }
            NetMsg::UpdateReply
        }
        NetMsg::MerkleRoot { from: _, digest } => {
            if !inner.cfg.store.protocol.accepts_raw_delta() {
                return NetMsg::Error {
                    message: format!(
                        "digest repair applies to delta-family/state protocols; {} manages its own recovery",
                        inner.cfg.store.protocol
                    ),
                };
            }
            let mut core = inner.state.lock().unwrap();
            let tree = core.replica.merkle();
            if tree.depth() != digest.depth {
                return NetMsg::Error {
                    message: format!(
                        "merkle depth mismatch: local {} vs peer {}",
                        tree.depth(),
                        digest.depth
                    ),
                };
            }
            if tree.root() == digest.root {
                // Identical keyspaces: an empty frontier ends the descent
                // after a single round trip.
                return NetMsg::MerkleChildren(DivergentChildren::default());
            }
            NetMsg::MerkleChildren(DivergentChildren {
                nodes: vec![ChildList {
                    level: 0,
                    prefix: 0,
                    children: tree.node_children(0, 0),
                }],
            })
        }
        NetMsg::MerkleNodeReq { nodes } => {
            // Stateless per frame: list the children of every requested
            // node from the flushed tree; the client does the comparing.
            let mut core = inner.state.lock().unwrap();
            let tree = core.replica.merkle();
            NetMsg::MerkleChildren(DivergentChildren {
                nodes: nodes
                    .into_iter()
                    .filter(|&(level, _)| level < tree.depth())
                    .map(|(level, prefix)| ChildList {
                        level,
                        prefix,
                        children: tree.node_children(level, prefix),
                    })
                    .collect(),
            })
        }
        NetMsg::MerkleLeafReq { prefixes } => {
            let mut core = inner.state.lock().unwrap();
            let tree = core.replica.merkle();
            NetMsg::MerkleLeaves(LeafRepair {
                leaves: prefixes
                    .into_iter()
                    .map(|p| (p, tree.leaf_entries(p)))
                    .collect(),
            })
        }
        NetMsg::RepairScoped { from: _, digests } => {
            if !inner.cfg.store.protocol.accepts_raw_delta() {
                return NetMsg::Error {
                    message: format!(
                        "digest repair applies to delta-family/state protocols; {} manages its own recovery",
                        inner.cfg.store.protocol
                    ),
                };
            }
            // Like RepairRequest, but restricted to the listed keys —
            // after a Merkle descent the requester already knows the
            // diverged set, so a full keyspace sweep would waste the
            // localization the descent just paid for.
            let core = inner.state.lock().unwrap();
            let mut deltas: Vec<(K, Vec<u8>)> = Vec::new();
            let mut own_digests: Vec<(K, Digest)> = Vec::new();
            for (key, digest) in digests {
                if let Some(x) = core.replica.get(key.clone()) {
                    let delta = delta_for_digest(x, &digest);
                    if !delta.is_bottom() {
                        deltas.push((key.clone(), delta.to_bytes()));
                    }
                    own_digests.push((key, Digest::of(x)));
                }
            }
            NetMsg::RepairReply {
                deltas,
                digests: own_digests,
            }
        }
        NetMsg::Hello { .. }
        | NetMsg::Batch(_)
        | NetMsg::GetReply { .. }
        | NetMsg::UpdateReply
        | NetMsg::ProbeReply(_)
        | NetMsg::StatsReply(_)
        | NetMsg::RepairReply { .. }
        | NetMsg::MerkleChildren(_)
        | NetMsg::MerkleLeaves(_)
        | NetMsg::Error { .. } => NetMsg::Error {
            message: "not a request".to_string(),
        },
    }
}
