//! Length-prefixed socket framing with a pre-buffering size guard.
//!
//! A frame on the wire is a 4-byte little-endian length prefix followed
//! by exactly that many payload bytes (one encoded [`crate::NetMsg`]).
//! The prefix is fixed-width rather than a varint so a reader knows the
//! claimed length after exactly [`LEN_PREFIX_BYTES`] bytes — *before* it
//! allocates or buffers anything — and can reject hostile claims
//! ([`FrameError::Oversized`]) with O(1) work. Everything *inside* the
//! frame reuses the workspace varint codec and its own corrupt-input
//! guards ([`crdt_lattice::CodecError`]).
//!
//! Reads land in pooled scratch ([`BufferPool`]) frozen to a shared
//! [`Bytes`] frame, so the zero-copy receive tiers
//! (`BatchEnvelope::decode_shared`) start straight off the socket
//! buffer; writes flush a borrowed slice, no intermediate allocation.

use std::io::{self, Read, Write};

use crdt_sync::{BufferPool, Bytes};

/// Width of the frame length prefix (little-endian `u32`).
pub const LEN_PREFIX_BYTES: usize = 4;

/// Default cap on a single frame's payload length, generous enough for a
/// full-state batch of a large keyspace while still refusing the 4 GiB
/// claims a corrupt or hostile prefix can encode.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Failure while reading or writing one frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The stream ended inside a frame — a truncated length prefix or a
    /// payload shorter than its prefix claimed. Distinct from the clean
    /// end-of-stream between frames ([`read_frame`] returns `Ok(None)`).
    Truncated,
    /// The prefix claimed a payload larger than the configured cap. The
    /// claim is rejected before any buffering, so a corrupt prefix costs
    /// four bytes of reading, never a proportional allocation.
    Oversized {
        /// The length the prefix declared.
        claimed: u64,
        /// The configured [`crate::NodeConfig::max_frame_bytes`] cap.
        max_frame_bytes: usize,
    },
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::Truncated => f.write_str("stream ended inside a frame"),
            FrameError::Oversized {
                claimed,
                max_frame_bytes,
            } => write!(
                f,
                "frame claims {claimed} B, over the {max_frame_bytes} B cap"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame: length prefix plus `payload`. Returns the wire bytes
/// shipped (`LEN_PREFIX_BYTES + payload.len()`).
///
/// The sender enforces the same cap as the receiver — a node must never
/// produce a frame its peers are configured to reject.
pub fn write_frame(
    w: &mut impl Write,
    payload: &[u8],
    max_frame_bytes: usize,
) -> Result<u64, FrameError> {
    if payload.len() > max_frame_bytes {
        return Err(FrameError::Oversized {
            claimed: payload.len() as u64,
            max_frame_bytes,
        });
    }
    let prefix = (payload.len() as u32).to_le_bytes();
    w.write_all(&prefix)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok((LEN_PREFIX_BYTES + payload.len()) as u64)
}

/// Read one frame into a pooled buffer frozen to a shared [`Bytes`].
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed between
/// frames); [`FrameError::Truncated`] when the stream dies mid-frame;
/// [`FrameError::Oversized`] — **before any payload buffering** — when
/// the prefix claims more than `max_frame_bytes`.
pub fn read_frame(
    r: &mut impl Read,
    max_frame_bytes: usize,
    pool: &mut BufferPool,
) -> Result<Option<Bytes>, FrameError> {
    let mut prefix = [0u8; LEN_PREFIX_BYTES];
    let mut have = 0;
    while have < LEN_PREFIX_BYTES {
        match r.read(&mut prefix[have..]) {
            Ok(0) if have == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => have += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max_frame_bytes {
        return Err(FrameError::Oversized {
            claimed: len as u64,
            max_frame_bytes,
        });
    }
    let mut scratch = pool.take();
    scratch.resize(len, 0);
    match r.read_exact(&mut scratch) {
        Ok(()) => Ok(Some(pool.freeze(scratch))),
        Err(e) => {
            pool.give(scratch);
            match e.kind() {
                io::ErrorKind::UnexpectedEof => Err(FrameError::Truncated),
                _ => Err(FrameError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_two_frames_then_clean_eof() {
        let mut wire = Vec::new();
        let shipped = write_frame(&mut wire, b"hello", 64).unwrap();
        assert_eq!(shipped, 4 + 5);
        write_frame(&mut wire, b"", 64).unwrap();
        let mut pool = BufferPool::new();
        let mut cursor: &[u8] = &wire;
        assert_eq!(
            read_frame(&mut cursor, 64, &mut pool).unwrap().unwrap(),
            b"hello"[..]
        );
        assert!(read_frame(&mut cursor, 64, &mut pool)
            .unwrap()
            .unwrap()
            .is_empty());
        assert!(read_frame(&mut cursor, 64, &mut pool).unwrap().is_none());
    }

    #[test]
    fn oversized_claim_is_rejected_before_buffering() {
        // Prefix claims 4 GiB − 1; only four bytes exist on the wire.
        let wire = u32::MAX.to_le_bytes();
        let mut pool = BufferPool::new();
        let mut cursor: &[u8] = &wire;
        match read_frame(&mut cursor, 1024, &mut pool) {
            Err(FrameError::Oversized {
                claimed,
                max_frame_bytes,
            }) => {
                assert_eq!(claimed, u32::MAX as u64);
                assert_eq!(max_frame_bytes, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncation_mid_prefix_and_mid_payload() {
        let mut pool = BufferPool::new();
        // Two prefix bytes, then EOF.
        let mut cursor: &[u8] = &[7, 0];
        assert!(matches!(
            read_frame(&mut cursor, 64, &mut pool),
            Err(FrameError::Truncated)
        ));
        // Honest prefix, short payload.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef", 64).unwrap();
        wire.truncate(wire.len() - 2);
        let mut cursor: &[u8] = &wire;
        assert!(matches!(
            read_frame(&mut cursor, 64, &mut pool),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn sender_enforces_the_cap_too() {
        let mut wire = Vec::new();
        assert!(matches!(
            write_frame(&mut wire, &[0u8; 100], 64),
            Err(FrameError::Oversized { claimed: 100, .. })
        ));
        assert!(wire.is_empty(), "nothing hits the wire on a refused frame");
    }
}
