//! Length-prefixed socket framing with a pre-buffering size guard.
//!
//! A frame on the wire is a 4-byte little-endian length prefix followed
//! by exactly that many payload bytes (one encoded [`crate::NetMsg`]).
//! The prefix is fixed-width rather than a varint so a reader knows the
//! claimed length after exactly [`LEN_PREFIX_BYTES`] bytes — *before* it
//! allocates or buffers anything — and can reject hostile claims
//! ([`FrameError::Oversized`]) with O(1) work. Everything *inside* the
//! frame reuses the workspace varint codec and its own corrupt-input
//! guards ([`crdt_lattice::CodecError`]).
//!
//! Reads land in pooled scratch ([`BufferPool`]) frozen to a shared
//! [`Bytes`] frame, so the zero-copy receive tiers
//! (`BatchEnvelope::decode_shared`) start straight off the socket
//! buffer; writes flush a borrowed slice, no intermediate allocation.
//!
//! Two read APIs share one incremental parser:
//!
//! * [`read_frame`] — the blocking-socket convenience (client sessions,
//!   repair handshakes): loops until a whole frame (or error) arrives.
//! * [`FrameReader`] — the non-blocking building block the reactor
//!   uses: [`FrameReader::poll`] consumes whatever bytes the socket has
//!   *right now* and returns [`ReadStatus::WouldBlock`] when the kernel
//!   buffer runs dry **mid-frame**, preserving the partial prefix or
//!   payload so the next readiness event resumes exactly where this one
//!   stopped. `WouldBlock` is a status, never an error — the historical
//!   read path treated it as a connection failure, which silently killed
//!   any connection that happened to be non-blocking.

use std::io::{self, Read, Write};

use crdt_sync::{BufferPool, Bytes};

/// Width of the frame length prefix (little-endian `u32`).
pub const LEN_PREFIX_BYTES: usize = 4;

/// Default cap on a single frame's payload length, generous enough for a
/// full-state batch of a large keyspace while still refusing the 4 GiB
/// claims a corrupt or hostile prefix can encode.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Failure while reading or writing one frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The stream ended inside a frame — a truncated length prefix or a
    /// payload shorter than its prefix claimed. Distinct from the clean
    /// end-of-stream between frames ([`read_frame`] returns `Ok(None)`).
    Truncated,
    /// The prefix claimed a payload larger than the configured cap. The
    /// claim is rejected before any buffering, so a corrupt prefix costs
    /// four bytes of reading, never a proportional allocation.
    Oversized {
        /// The length the prefix declared.
        claimed: u64,
        /// The configured [`crate::NodeConfig::max_frame_bytes`] cap.
        max_frame_bytes: usize,
    },
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::Truncated => f.write_str("stream ended inside a frame"),
            FrameError::Oversized {
                claimed,
                max_frame_bytes,
            } => write!(
                f,
                "frame claims {claimed} B, over the {max_frame_bytes} B cap"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame: length prefix plus `payload`. Returns the wire bytes
/// shipped (`LEN_PREFIX_BYTES + payload.len()`).
///
/// The sender enforces the same cap as the receiver — a node must never
/// produce a frame its peers are configured to reject.
pub fn write_frame(
    w: &mut impl Write,
    payload: &[u8],
    max_frame_bytes: usize,
) -> Result<u64, FrameError> {
    if payload.len() > max_frame_bytes {
        return Err(FrameError::Oversized {
            claimed: payload.len() as u64,
            max_frame_bytes,
        });
    }
    let prefix = (payload.len() as u32).to_le_bytes();
    w.write_all(&prefix)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok((LEN_PREFIX_BYTES + payload.len()) as u64)
}

/// Outcome of one [`FrameReader::poll`] against a readiness event.
#[derive(Debug)]
pub enum ReadStatus {
    /// A whole frame arrived; the reader is reset for the next one.
    Frame(Bytes),
    /// The socket has no more bytes right now. Any partial prefix or
    /// payload stays buffered in the reader; poll again on the next
    /// readiness event.
    WouldBlock,
    /// Clean end-of-stream **between** frames (the peer closed after a
    /// complete frame, or before sending anything). EOF *inside* a frame
    /// is [`FrameError::Truncated`] instead.
    Closed,
}

/// Incremental frame parser for non-blocking sockets.
///
/// Owns the in-progress prefix/payload so a frame split across many
/// readiness events is reassembled without re-reading: each
/// [`FrameReader::poll`] consumes what the kernel has buffered and
/// either completes a frame, reports a clean close, or parks mid-frame
/// on [`ReadStatus::WouldBlock`].
///
/// After a returned `Err` the reader is poisoned — the stream is no
/// longer frame-aligned and the connection should be dropped (the same
/// contract as [`read_frame`]).
#[derive(Debug, Default)]
pub struct FrameReader {
    prefix: [u8; LEN_PREFIX_BYTES],
    prefix_have: usize,
    /// Pooled scratch for the in-progress payload, `None` between
    /// frames.
    payload: Option<Vec<u8>>,
    payload_have: usize,
}

impl FrameReader {
    /// A reader positioned at a frame boundary.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// True when no partial frame is buffered — distinguishing an idle
    /// connection from one that died mid-frame.
    pub fn is_idle(&self) -> bool {
        self.prefix_have == 0 && self.payload.is_none()
    }

    /// Consume whatever `r` has buffered, advancing the in-progress
    /// frame. See [`ReadStatus`] for the non-error outcomes;
    /// [`FrameError::Oversized`] is still raised from the prefix alone,
    /// before any payload buffering.
    pub fn poll(
        &mut self,
        r: &mut impl Read,
        max_frame_bytes: usize,
        pool: &mut BufferPool,
    ) -> Result<ReadStatus, FrameError> {
        if self.payload.is_none() {
            while self.prefix_have < LEN_PREFIX_BYTES {
                // lint: allow(panic) — loop guard keeps prefix_have < LEN_PREFIX_BYTES, the array length
                match r.read(&mut self.prefix[self.prefix_have..]) {
                    Ok(0) if self.prefix_have == 0 => return Ok(ReadStatus::Closed),
                    Ok(0) => return Err(FrameError::Truncated),
                    Ok(n) => self.prefix_have += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        return Ok(ReadStatus::WouldBlock)
                    }
                    Err(e) => return Err(FrameError::Io(e)),
                }
            }
            let len = u32::from_le_bytes(self.prefix) as usize;
            if len > max_frame_bytes {
                return Err(FrameError::Oversized {
                    claimed: len as u64,
                    max_frame_bytes,
                });
            }
            let mut scratch = pool.take();
            scratch.resize(len, 0);
            self.payload = Some(scratch);
            self.payload_have = 0;
        }
        // lint: allow(panic) — the branch above just ensured payload is Some
        let buf = self.payload.as_mut().expect("payload in progress");
        while self.payload_have < buf.len() {
            // lint: allow(panic) — loop guard keeps payload_have < buf.len()
            match r.read(&mut buf[self.payload_have..]) {
                Ok(0) => return Err(FrameError::Truncated),
                Ok(n) => self.payload_have += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(ReadStatus::WouldBlock)
                }
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        // lint: allow(panic) — the fill loop above completes only with payload still Some
        let done = self.payload.take().expect("payload in progress");
        self.prefix_have = 0;
        self.payload_have = 0;
        Ok(ReadStatus::Frame(pool.freeze(done)))
    }
}

/// Read one frame into a pooled buffer frozen to a shared [`Bytes`].
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed between
/// frames); [`FrameError::Truncated`] when the stream dies mid-frame;
/// [`FrameError::Oversized`] — **before any payload buffering** — when
/// the prefix claims more than `max_frame_bytes`.
///
/// This is the blocking-socket convenience over [`FrameReader`]: a
/// `WouldBlock` here (a socket with a read timeout, or one accidentally
/// left non-blocking) is surfaced as [`FrameError::Io`] — callers that
/// own non-blocking sockets should drive a [`FrameReader`] from their
/// readiness loop instead.
pub fn read_frame(
    r: &mut impl Read,
    max_frame_bytes: usize,
    pool: &mut BufferPool,
) -> Result<Option<Bytes>, FrameError> {
    let mut reader = FrameReader::new();
    match reader.poll(r, max_frame_bytes, pool)? {
        ReadStatus::Frame(frame) => Ok(Some(frame)),
        ReadStatus::Closed => Ok(None),
        ReadStatus::WouldBlock => Err(FrameError::Io(io::ErrorKind::WouldBlock.into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_two_frames_then_clean_eof() {
        let mut wire = Vec::new();
        let shipped = write_frame(&mut wire, b"hello", 64).unwrap();
        assert_eq!(shipped, 4 + 5);
        write_frame(&mut wire, b"", 64).unwrap();
        let mut pool = BufferPool::new();
        let mut cursor: &[u8] = &wire;
        assert_eq!(
            read_frame(&mut cursor, 64, &mut pool).unwrap().unwrap(),
            b"hello"[..]
        );
        assert!(read_frame(&mut cursor, 64, &mut pool)
            .unwrap()
            .unwrap()
            .is_empty());
        assert!(read_frame(&mut cursor, 64, &mut pool).unwrap().is_none());
    }

    #[test]
    fn oversized_claim_is_rejected_before_buffering() {
        // Prefix claims 4 GiB − 1; only four bytes exist on the wire.
        let wire = u32::MAX.to_le_bytes();
        let mut pool = BufferPool::new();
        let mut cursor: &[u8] = &wire;
        match read_frame(&mut cursor, 1024, &mut pool) {
            Err(FrameError::Oversized {
                claimed,
                max_frame_bytes,
            }) => {
                assert_eq!(claimed, u32::MAX as u64);
                assert_eq!(max_frame_bytes, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncation_mid_prefix_and_mid_payload() {
        let mut pool = BufferPool::new();
        // Two prefix bytes, then EOF.
        let mut cursor: &[u8] = &[7, 0];
        assert!(matches!(
            read_frame(&mut cursor, 64, &mut pool),
            Err(FrameError::Truncated)
        ));
        // Honest prefix, short payload.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef", 64).unwrap();
        wire.truncate(wire.len() - 2);
        let mut cursor: &[u8] = &wire;
        assert!(matches!(
            read_frame(&mut cursor, 64, &mut pool),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn sender_enforces_the_cap_too() {
        let mut wire = Vec::new();
        assert!(matches!(
            write_frame(&mut wire, &[0u8; 100], 64),
            Err(FrameError::Oversized { claimed: 100, .. })
        ));
        assert!(wire.is_empty(), "nothing hits the wire on a refused frame");
    }

    /// A scripted non-blocking stream: each `read` serves the next
    /// scripted event — some bytes, a `WouldBlock` (kernel buffer dry),
    /// or EOF once the script runs out.
    struct Chunked {
        script: std::collections::VecDeque<Option<Vec<u8>>>,
    }

    impl Chunked {
        fn new(events: Vec<Option<&[u8]>>) -> Self {
            Chunked {
                script: events.into_iter().map(|e| e.map(<[u8]>::to_vec)).collect(),
            }
        }
    }

    impl Read for Chunked {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.script.pop_front() {
                None => Ok(0),
                Some(None) => Err(io::ErrorKind::WouldBlock.into()),
                Some(Some(mut chunk)) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        chunk.drain(..n);
                        self.script.push_front(Some(chunk));
                    }
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn frame_reader_resumes_across_readiness_events() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"delta-group", 64).unwrap();
        write_frame(&mut wire, b"", 64).unwrap();
        // Split the first frame inside the prefix AND inside the
        // payload, with the buffer running dry at each seam.
        let mut stream = Chunked::new(vec![
            Some(&wire[..2]),   // half the prefix
            None,               // dry
            Some(&wire[2..7]),  // rest of prefix + 3 payload bytes
            None,               // dry
            Some(&wire[7..15]), // frame 1 completes
            None,
            Some(&wire[15..]), // frame 2 (empty payload) in one go
        ]);
        let mut pool = BufferPool::new();
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.poll(&mut stream, 64, &mut pool),
            Ok(ReadStatus::WouldBlock)
        ));
        assert!(!reader.is_idle(), "partial prefix is buffered");
        assert!(matches!(
            reader.poll(&mut stream, 64, &mut pool),
            Ok(ReadStatus::WouldBlock)
        ));
        match reader.poll(&mut stream, 64, &mut pool) {
            Ok(ReadStatus::Frame(frame)) => assert_eq!(frame, b"delta-group"[..]),
            other => panic!("expected the reassembled frame, got {other:?}"),
        }
        assert!(reader.is_idle(), "reader resets at the frame boundary");
        assert!(matches!(
            reader.poll(&mut stream, 64, &mut pool),
            Ok(ReadStatus::WouldBlock)
        ));
        match reader.poll(&mut stream, 64, &mut pool) {
            Ok(ReadStatus::Frame(frame)) => assert!(frame.is_empty()),
            other => panic!("expected the empty frame, got {other:?}"),
        }
        assert!(matches!(
            reader.poll(&mut stream, 64, &mut pool),
            Ok(ReadStatus::Closed)
        ));
    }

    #[test]
    fn frame_reader_eof_mid_frame_is_truncated_not_closed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef", 64).unwrap();
        let mut stream = Chunked::new(vec![Some(&wire[..6]), None]);
        let mut pool = BufferPool::new();
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.poll(&mut stream, 64, &mut pool),
            Ok(ReadStatus::WouldBlock)
        ));
        // The script is exhausted: the next read returns EOF with four
        // payload bytes still owed.
        assert!(matches!(
            reader.poll(&mut stream, 64, &mut pool),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn frame_reader_rejects_oversized_claim_from_a_split_prefix() {
        let prefix = u32::MAX.to_le_bytes();
        let mut stream = Chunked::new(vec![Some(&prefix[..3]), None, Some(&prefix[3..])]);
        let mut pool = BufferPool::new();
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.poll(&mut stream, 1024, &mut pool),
            Ok(ReadStatus::WouldBlock)
        ));
        assert!(matches!(
            reader.poll(&mut stream, 1024, &mut pool),
            Err(FrameError::Oversized { claimed, .. }) if claimed == u32::MAX as u64
        ));
    }

    #[test]
    fn blocking_read_frame_surfaces_wouldblock_as_io() {
        let mut stream = Chunked::new(vec![None]);
        let mut pool = BufferPool::new();
        match read_frame(&mut stream, 64, &mut pool) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::WouldBlock),
            other => panic!("expected Io(WouldBlock), got {other:?}"),
        }
    }
}
