//! An N-node real-socket cluster on `127.0.0.1` — the test and bench
//! harness of the runtime.
//!
//! Every node is a full [`NodeHandle`] (listener, readers, keyspace)
//! on an ephemeral port; the harness holds their handles plus one
//! persistent [`NetClient`] per node, so workloads, probes, and
//! convergence checks all travel the socket path.
//!
//! ## Lockstep rounds
//!
//! [`LoopbackCluster::sync_round`] reproduces the in-process
//! [`delta_store::Cluster::sync_round`] schedule over real TCP: every
//! live node runs one sync step (in id order), then the cluster drains —
//! it waits for all in-flight frames to land, snapshots every inbox, and
//! absorbs the snapshots in node order, repeating until nothing moves.
//! Snapshot-then-absorb makes each drain pass's content a deterministic
//! function of the previous pass (socket timing decides *when* frames
//! land, never *what* is absorbed together), which is what lets the
//! `net_loopback` bench gate byte metrics and the parity test demand
//! **exact** equality with the simulator's accounting for the δ-kinds.
//!
//! ## Faults
//!
//! Links can be severed (frames dropped at the sender, the semantics of
//! `LoopbackTransport::sever`) or frozen (frames parked in order,
//! flushed on thaw); nodes crash durably (keyspace kept for the
//! restart) or cold (state lost), and restart on a fresh port with
//! every affected connection re-dialed. [`LoopbackCluster::apply_event`]
//! maps the `crdt-sim` [`ScenarioEvent`] vocabulary onto these where it
//! translates (partitions, heals, crashes, restarts) and reports the
//! rest as unsupported rather than silently approximating.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use crdt_lattice::{ReplicaId, Sizeable, WireEncode};
use crdt_obs::EventKind;
use crdt_sim::ScenarioEvent;
use crdt_sync::digest::PairSyncStats;
use crdt_types::Crdt;
use delta_store::{ConvergenceReport, StoreReplica, TrafficStats};

use crate::client::NetClient;
use crate::message::ProbeReport;
use crate::node::{NodeConfig, NodeHandle};

/// A [`ScenarioEvent`] the socket harness cannot express.
///
/// `Join` needs membership negotiation the peer protocol does not carry
/// yet, and `LinkFault`/`LinkHeal` model probabilistic drop/dup/reorder
/// overlays that real TCP deliberately prevents — the honest mappings
/// here are sever (drop) and freeze (delay), exposed directly.
#[derive(Debug, Clone)]
pub struct UnsupportedScenarioEvent(pub ScenarioEvent);

impl fmt::Display for UnsupportedScenarioEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario event {:?} has no socket-level mapping (supported: \
             Partition, Heal, Crash, Restart)",
            self.0
        )
    }
}

impl std::error::Error for UnsupportedScenarioEvent {}

/// Wire-level transfer totals (socket ledger, distinct from the
/// model-view [`TrafficStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireTotals {
    /// Frames written to sockets.
    pub frames: u64,
    /// Bytes written (payloads plus length prefixes).
    pub bytes: u64,
}

/// N real-socket nodes on loopback, driven in lockstep or free-running.
pub struct LoopbackCluster<K: Ord, C> {
    cfg: NodeConfig,
    nodes: Vec<Option<NodeHandle<K, C>>>,
    clients: Vec<Option<NetClient<K, C>>>,
    addrs: Vec<SocketAddr>,
    neighbors: Vec<Vec<ReplicaId>>,
    /// Keyspaces of durably crashed nodes, awaiting restart.
    stash: Vec<Option<StoreReplica<K, C>>>,
    /// Accounting of shut-down nodes, so cluster totals survive crashes.
    retired_traffic: TrafficStats,
    retired_wire: WireTotals,
    /// Lockstep rounds executed.
    rounds: usize,
    /// The active partition (for the heal-time repair policy).
    partition: Option<Vec<Vec<usize>>>,
    /// How long to wait for in-flight frames to land before a drain
    /// pass proceeds anyway.
    settle_timeout: Duration,
}

impl<K: Ord, C> fmt::Debug for LoopbackCluster<K, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LoopbackCluster")
            .field("nodes", &self.nodes.len())
            .field("rounds", &self.rounds)
            .finish()
    }
}

impl<K, C> LoopbackCluster<K, C>
where
    K: Ord + Clone + Sizeable + std::hash::Hash + WireEncode + Send + 'static,
    C: Crdt + WireEncode + Send + 'static,
    C::Op: WireEncode + Send + 'static,
{
    /// A fully connected cluster of `n` nodes.
    pub fn full_mesh(n: usize, cfg: NodeConfig) -> io::Result<Self> {
        let neighbors = (0..n)
            .map(|i| (0..n).filter(|j| *j != i).map(ReplicaId::from).collect())
            .collect();
        Self::with_neighbors(neighbors, cfg)
    }

    /// A cluster over an explicit neighbor graph (entry `i` lists the
    /// nodes `i` pushes to).
    pub fn with_neighbors(neighbors: Vec<Vec<ReplicaId>>, cfg: NodeConfig) -> io::Result<Self> {
        let n = neighbors.len();
        let mut cfg = cfg;
        cfg.n_nodes = n;
        let mut nodes = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for i in 0..n {
            let node = NodeHandle::spawn(ReplicaId::from(i), cfg)?;
            addrs.push(node.addr());
            nodes.push(Some(node));
        }
        for (i, links) in neighbors.iter().enumerate() {
            for &peer in links {
                nodes[i]
                    .as_ref()
                    .expect("just spawned")
                    .connect(peer, addrs[peer.index()])?;
            }
        }
        let mut clients = Vec::with_capacity(n);
        for addr in &addrs {
            clients.push(Some(NetClient::connect(*addr, cfg.max_frame_bytes)?));
        }
        Ok(LoopbackCluster {
            cfg,
            nodes,
            clients,
            addrs,
            neighbors,
            stash: (0..n).map(|_| None).collect(),
            retired_traffic: TrafficStats::default(),
            retired_wire: WireTotals::default(),
            rounds: 0,
            partition: None,
            settle_timeout: Duration::from_secs(5),
        })
    }

    /// Number of nodes (including crashed ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the cluster empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Is node `i` currently up?
    pub fn is_alive(&self, i: usize) -> bool {
        self.nodes[i].is_some()
    }

    /// The live node handle at `i`.
    ///
    /// # Panics
    ///
    /// If the node is crashed.
    pub fn node(&self, i: usize) -> &NodeHandle<K, C> {
        self.nodes[i].as_ref().expect("node is down")
    }

    /// The persistent client connection to node `i`.
    pub fn client(&mut self, i: usize) -> &mut NetClient<K, C> {
        self.clients[i].as_mut().expect("node is down")
    }

    /// The address node `i` listens on.
    pub fn addr(&self, i: usize) -> SocketAddr {
        self.addrs[i]
    }

    /// Apply `op` at node `i` — over the socket client, like any real
    /// workload.
    pub fn update(&mut self, i: usize, key: K, op: &C::Op) {
        self.client(i)
            .update(key, op)
            .expect("loopback update failed");
    }

    /// Read the object at `key` from node `i`, over the socket client.
    pub fn get(&mut self, i: usize, key: K) -> Option<C> {
        self.client(i).get(key).expect("loopback get failed")
    }

    /// Probe every live node over its socket client.
    pub fn probes(&mut self) -> Vec<ProbeReport<K>> {
        (0..self.nodes.len())
            .filter(|i| self.nodes[*i].is_some())
            .map(|i| {
                self.clients[i]
                    .as_mut()
                    .expect("live node has a client")
                    .probe()
                    .expect("loopback probe failed")
            })
            .collect()
    }

    /// Frames sent but not yet landed (socket flight + unabsorbed
    /// inboxes + frozen queues), over live pairs.
    pub fn in_flight(&self) -> usize {
        let mut landed: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        for (j, node) in self.nodes.iter().enumerate() {
            let Some(node) = node else { continue };
            for (from, n) in node.frames_landed_from() {
                landed.insert((from.index(), j), n);
            }
        }
        let mut flight = 0i64;
        for (i, node) in self.nodes.iter().enumerate() {
            let Some(node) = node else { continue };
            for (to, sent) in node.frames_sent_to() {
                let j = to.index();
                if self.nodes[j].is_none() {
                    continue; // frames to a crashed node are lost, not in flight
                }
                let got = landed.get(&(i, j)).copied().unwrap_or(0);
                flight += (sent as i64 - got as i64).max(0);
            }
            let probe = node.probe_local();
            flight += (probe.inbox_len + probe.frozen_frames + probe.queued_frames) as i64;
        }
        flight.max(0) as usize
    }

    /// Wait until no frame is between a live sender's socket and a live
    /// receiver's inbox (frozen queues excluded — they are parked, not
    /// moving). Returns `false` on timeout.
    fn await_settled(&self) -> bool {
        let deadline = Instant::now() + self.settle_timeout;
        loop {
            let mut settled = true;
            'outer: for (i, node) in self.nodes.iter().enumerate() {
                let Some(node) = node else { continue };
                // A frame queued on a live (unpaused) outbound link is
                // in flight before it ever reaches the sent counter.
                for (_, queued, paused) in node.queued_to() {
                    if queued > 0 && !paused {
                        settled = false;
                        break 'outer;
                    }
                }
                for (to, sent) in node.frames_sent_to() {
                    let j = to.index();
                    let Some(receiver) = self.nodes[j].as_ref() else {
                        continue;
                    };
                    let got = receiver
                        .frames_landed_from()
                        .into_iter()
                        .find(|(from, _)| from.index() == i)
                        .map_or(0, |(_, n)| n);
                    if sent > got {
                        settled = false;
                        break 'outer;
                    }
                }
            }
            if settled {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Absorb until quiescence: wait for in-flight frames to land,
    /// snapshot every inbox, absorb the snapshots in node order; repeat
    /// until a full pass moves nothing.
    pub fn drain(&mut self) {
        loop {
            self.await_settled();
            let mut snapshots = Vec::with_capacity(self.nodes.len());
            for node in self.nodes.iter().flatten() {
                snapshots.push(node.take_inbox());
            }
            if snapshots.iter().all(Vec::is_empty) {
                return;
            }
            for (node, frames) in self.nodes.iter().flatten().zip(snapshots) {
                node.absorb_frames(frames);
            }
        }
    }

    /// One lockstep synchronization round: every live node syncs (in id
    /// order), then the cluster drains to quiescence — the socket twin
    /// of `delta_store::Cluster::sync_round`.
    pub fn sync_round(&mut self) {
        for node in self.nodes.iter().flatten() {
            node.sync_now();
        }
        self.rounds += 1;
        self.drain();
    }

    /// Have all live nodes converged on every non-`⊥` object?
    pub fn converged(&mut self) -> bool {
        self.divergence().is_empty()
    }

    /// Live nodes disagreeing with the first live node, as
    /// `(node index, divergent object count)` — the same shape
    /// [`delta_store::Cluster`] reports.
    pub fn divergence(&mut self) -> Vec<(usize, usize)> {
        let live: Vec<usize> = (0..self.nodes.len())
            .filter(|i| self.nodes[*i].is_some())
            .collect();
        let Some(&reference) = live.first() else {
            return Vec::new();
        };
        let summary = |probe: &ProbeReport<K>| -> BTreeMap<K, u64> {
            probe
                .keys
                .iter()
                .map(|(k, hash, _)| (k.clone(), *hash))
                .collect()
        };
        let base = summary(&self.nodes[reference].as_ref().unwrap().probe_local());
        let mut out = Vec::new();
        for &i in live.iter().skip(1) {
            let mine = summary(&self.nodes[i].as_ref().unwrap().probe_local());
            let differing = base
                .iter()
                .filter(|(k, hash)| mine.get(*k) != Some(hash))
                .count()
                + mine.iter().filter(|(k, _)| !base.contains_key(*k)).count();
            if differing > 0 {
                out.push((i, differing));
            }
        }
        out
    }

    /// Run lockstep rounds until convergence (or `max_rounds`),
    /// reporting the outcome in the **same diagnostic shape** as the
    /// in-process cluster — one report type across simulated and real
    /// transports.
    pub fn run_until_converged(&mut self, max_rounds: usize) -> ConvergenceReport {
        let mut rounds = max_rounds;
        for round in 0..max_rounds {
            if self.converged() && self.in_flight() == 0 {
                rounds = round;
                break;
            }
            self.sync_round();
        }
        ConvergenceReport {
            converged: self.converged() && self.in_flight() == 0,
            rounds,
            in_flight: self.in_flight(),
            divergent: self.divergence(),
        }
    }

    /// Free-running convergence: poll the probes until every live node
    /// agrees and nothing is in flight, or `timeout` passes. `rounds`
    /// in the report is the maximum scheduler sync-step count observed —
    /// only meaningful for nodes spawned with
    /// [`NodeConfig::with_scheduler`].
    pub fn await_convergence(&mut self, timeout: Duration) -> ConvergenceReport {
        let deadline = Instant::now() + timeout;
        loop {
            let converged = self.converged() && self.in_flight() == 0;
            if converged || Instant::now() >= deadline {
                let rounds = self
                    .nodes
                    .iter()
                    .flatten()
                    .map(|n| n.probe_local().rounds)
                    .max()
                    .unwrap_or(0) as usize;
                return ConvergenceReport {
                    converged,
                    rounds,
                    in_flight: self.in_flight(),
                    divergent: self.divergence(),
                };
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Partition the cluster: sever every directed link crossing
    /// between `group` and the rest.
    pub fn partition(&mut self, group: &[usize]) {
        let rest: Vec<usize> = (0..self.nodes.len())
            .filter(|i| !group.contains(i))
            .collect();
        self.partition_groups(vec![group.to_vec(), rest]);
    }

    /// Partition into explicit sides; links inside a side stay up.
    pub fn partition_groups(&mut self, groups: Vec<Vec<usize>>) {
        let side = |x: usize| groups.iter().position(|g| g.contains(&x));
        for (i, node) in self.nodes.iter().enumerate() {
            let Some(node) = node else { continue };
            node.obs()
                .trace(i as u64, EventKind::Partition, 1, groups.len() as u64);
            for &peer in &self.neighbors[i] {
                if side(i) != side(peer.index()) {
                    node.sever(peer);
                }
            }
        }
        self.partition = Some(groups);
    }

    /// Heal every severed link (no repair; see
    /// [`LoopbackCluster::heal_and_repair`]).
    pub fn heal(&mut self) {
        for (i, node) in self.nodes.iter().enumerate() {
            let Some(node) = node else { continue };
            node.obs().trace(i as u64, EventKind::Partition, 0, 0);
            for &peer in &self.neighbors[i] {
                node.heal(peer);
            }
        }
        self.partition = None;
    }

    /// Heal and run the repair policy across the former cut: δ-group
    /// kinds get the 3-message digest repair between one live
    /// representative of each side (repaired deltas then propagate over
    /// ordinary rounds); self-recovering kinds are left to their own
    /// metadata.
    pub fn heal_and_repair(&mut self) -> Vec<PairSyncStats> {
        let groups = self.partition.take();
        self.heal();
        let mut stats = Vec::new();
        if !self.cfg.store.protocol.accepts_raw_delta() {
            return stats;
        }
        if let Some(groups) = groups {
            let reps: Vec<usize> = groups
                .iter()
                .filter_map(|g| g.iter().copied().find(|&i| self.is_alive(i)))
                .collect();
            for pair in reps.windows(2) {
                stats.push(self.repair(pair[0], pair[1]));
            }
        }
        stats
    }

    /// Freeze the directed link `a → b` (frames park in order).
    pub fn freeze_link(&mut self, a: usize, b: usize) {
        self.node(a).freeze(ReplicaId::from(b));
    }

    /// Thaw `a → b`, flushing parked frames.
    pub fn thaw_link(&mut self, a: usize, b: usize) {
        self.node(a).thaw(ReplicaId::from(b));
    }

    /// Crash node `i`: its process goes away (listener closed, peers'
    /// frames die on the floor). `durable: true` keeps the keyspace for
    /// the restart; `false` loses it (cold restart from `⊥`).
    pub fn crash(&mut self, i: usize, durable: bool) {
        let node = self.nodes[i].take().expect("node already down");
        self.clients[i] = None;
        // Survivors witness the crash — the crashed node's own recorder
        // dies with it, so the event must land somewhere durable.
        for (j, peer) in self.nodes.iter().enumerate() {
            if let Some(peer) = peer.as_ref() {
                peer.obs()
                    .trace(j as u64, EventKind::Crash, i as u64, u64::from(durable));
            }
        }
        let relics = node.shutdown();
        self.retired_traffic.messages += relics.traffic.messages;
        self.retired_traffic.payload_elements += relics.traffic.payload_elements;
        self.retired_traffic.payload_bytes += relics.traffic.payload_bytes;
        self.retired_traffic.metadata_bytes += relics.traffic.metadata_bytes;
        self.retired_wire.frames += relics.frames_sent;
        self.retired_wire.bytes += relics.wire_bytes_sent;
        if durable {
            self.stash[i] = Some(relics.replica);
        }
    }

    /// Restart a crashed node on a fresh port, re-dialing every affected
    /// connection. A durably stashed keyspace comes back; otherwise the
    /// node starts from `⊥`. With `repair_from = Some(peer)` the node
    /// then runs the digest-repair handshake against `peer` — required
    /// after a cold restart, and after any crash for the δ-family, whose
    /// peers drained δ-buffers into the void while it was down.
    pub fn restart(&mut self, i: usize, repair_from: Option<usize>) -> io::Result<()> {
        assert!(self.nodes[i].is_none(), "node {i} is not down");
        let replica = self.stash[i].take();
        let durable = replica.is_some();
        let node = match replica {
            Some(replica) => NodeHandle::spawn_with_replica(ReplicaId::from(i), self.cfg, replica)?,
            None => NodeHandle::spawn(ReplicaId::from(i), self.cfg)?,
        };
        node.obs().trace(
            i as u64,
            EventKind::Restart,
            u64::from(durable),
            u64::from(repair_from.is_some()),
        );
        self.addrs[i] = node.addr();
        // Outbound links from the restarted node.
        for &peer in &self.neighbors[i] {
            if self.nodes[peer.index()].is_some() {
                node.connect(peer, self.addrs[peer.index()])?;
            }
        }
        // Inbound links: every live node that pushes to `i` re-dials.
        for (j, links) in self.neighbors.iter().enumerate() {
            if j != i && links.contains(&ReplicaId::from(i)) {
                if let Some(peer_node) = self.nodes[j].as_ref() {
                    peer_node.connect(ReplicaId::from(i), self.addrs[i])?;
                }
            }
        }
        // Fresh links mean fresh ledgers: survivors' landing counters
        // for the restarted node must pair with its zeroed send
        // counters, or in-flight reconciliation undercounts (the new
        // connection's Hello also resets them, but only once it is
        // read — reset eagerly so the very next round reconciles).
        for (j, peer_node) in self.nodes.iter().enumerate() {
            if j != i {
                if let Some(peer_node) = peer_node.as_ref() {
                    peer_node.reset_link_counters(ReplicaId::from(i));
                }
            }
        }
        // An active partition survives a restart: re-dialed links come
        // up unsevered, so re-sever every cross-side edge touching the
        // restarted node (the simulators' severed links are transport
        // state, independent of process lifecycle).
        if let Some(groups) = self.partition.clone() {
            let side = |x: usize| groups.iter().position(|g| g.contains(&x));
            for &peer in &self.neighbors[i] {
                if side(i) != side(peer.index()) {
                    node.sever(peer);
                    if let Some(peer_node) = self.nodes[peer.index()].as_ref() {
                        peer_node.sever(ReplicaId::from(i));
                    }
                }
            }
        }
        self.clients[i] = Some(NetClient::connect(self.addrs[i], self.cfg.max_frame_bytes)?);
        self.nodes[i] = Some(node);
        if let Some(peer) = repair_from {
            assert!(self.is_alive(peer), "repair peer {peer} is down");
            self.repair(i, peer);
        }
        Ok(())
    }

    /// Digest-driven pairwise repair between live nodes `a` and `b`,
    /// over a real socket. Mirrors
    /// [`delta_store::Cluster::digest_repair`]'s role and protocol
    /// restriction; keyspaces at or above
    /// [`crdt_sync::MERKLE_REPAIR_THRESHOLD`] localize the divergence
    /// with a Merkle descent first
    /// ([`NodeHandle::merkle_repair_with`]), smaller ones run the
    /// 3-frame per-object sweep directly.
    pub fn repair(&mut self, a: usize, b: usize) -> PairSyncStats {
        assert_ne!(a, b, "repair needs two distinct nodes");
        let addr = self.addrs[b];
        self.node(a)
            .merkle_repair_with(ReplicaId::from(b), addr)
            .expect("loopback repair failed")
    }

    /// Apply a `crdt-sim` scenario event where the socket runtime has an
    /// honest equivalent; unsupported vocabulary is an error, not an
    /// approximation.
    pub fn apply_event(&mut self, event: &ScenarioEvent) -> Result<(), UnsupportedScenarioEvent> {
        match event {
            ScenarioEvent::Partition { groups } => {
                let mut groups = groups.clone();
                let listed: Vec<usize> = groups.iter().flatten().copied().collect();
                let rest: Vec<usize> = (0..self.nodes.len())
                    .filter(|i| !listed.contains(i))
                    .collect();
                if !rest.is_empty() {
                    groups.push(rest);
                }
                self.partition_groups(groups);
                Ok(())
            }
            ScenarioEvent::Heal => {
                self.heal_and_repair();
                Ok(())
            }
            ScenarioEvent::Crash { node, durable } => {
                self.crash(*node, *durable);
                Ok(())
            }
            ScenarioEvent::Restart { node } => {
                // Repair must not leak state across an active cut:
                // restrict the donor to the restarted node's own side.
                let same_side = |j: usize| match &self.partition {
                    Some(groups) => {
                        let side = |x: usize| groups.iter().position(|g| g.contains(&x));
                        side(j) == side(*node)
                    }
                    None => true,
                };
                let repair_from = if self.cfg.store.protocol.accepts_raw_delta() {
                    (0..self.nodes.len()).find(|&j| j != *node && self.is_alive(j) && same_side(j))
                } else {
                    None
                };
                self.restart(*node, repair_from)
                    .expect("restart failed: could not rebind/redial");
                Ok(())
            }
            other => Err(UnsupportedScenarioEvent(other.clone())),
        }
    }

    /// Cluster-wide model-view traffic — the same units as the
    /// in-process cluster's [`delta_store::Cluster::stats`], summed over
    /// live nodes plus everything crashed nodes had accounted.
    pub fn stats(&self) -> TrafficStats {
        let mut total = self.retired_traffic;
        for node in self.nodes.iter().flatten() {
            let t = node.probe_local().traffic;
            total.messages += t.messages;
            total.payload_elements += t.payload_elements;
            total.payload_bytes += t.payload_bytes;
            total.metadata_bytes += t.metadata_bytes;
        }
        total
    }

    /// Cluster-wide socket ledger: frames and wire bytes actually
    /// written.
    pub fn wire_totals(&self) -> WireTotals {
        let mut total = self.retired_wire;
        for node in self.nodes.iter().flatten() {
            let probe = node.probe_local();
            total.frames += probe.frames_sent;
            total.bytes += probe.wire_bytes_sent;
        }
        total
    }

    /// Lockstep rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

impl<K: Ord, C> Drop for LoopbackCluster<K, C> {
    fn drop(&mut self) {
        for node in self.nodes.iter_mut() {
            if let Some(node) = node.take() {
                // Threads join inside; relics are discarded.
                drop_node(node);
            }
        }
    }
}

/// Monomorphization-friendly shutdown (avoids requiring the cluster's
/// full bounds in `Drop`).
fn drop_node<K: Ord, C>(node: NodeHandle<K, C>) {
    node.shutdown_untyped();
}
