//! # crdt-workloads
//!
//! Workload generators for the paper's evaluation (§V):
//!
//! * [`micro`] — the Table I micro-benchmarks: GSet unique additions,
//!   GCounter increments, and GMap K% key updates (K ∈ {10, 30, 60, 100},
//!   1000 keys, 100 events per replica);
//! * [`retwis`] — the §V-C Twitter clone: follower sets, walls and
//!   timelines as one composed lattice, driven by the Table II op mix
//!   (15% follow / 35% post / 50% timeline read) under Zipf-distributed
//!   object selection;
//! * [`zipf`] — the seeded Zipf sampler behind it.
//!
//! All generators implement [`crdt_sim::Workload`] and are deterministic
//! per seed, so every synchronization protocol replays an identical
//! operation stream — the property that makes cross-protocol ratios
//! (Figs. 7–12) meaningful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod micro;
pub mod retwis;
pub mod zipf;

pub use micro::{
    GCounterWorkload, GMapCrdt, GMapValue, GMapWorkload, GSetWorkload, WorkloadInfo,
    DEFAULT_EVENTS_PER_REPLICA, DEFAULT_GMAP_KEYS, TABLE1,
};
pub use retwis::{
    NodeTraceOps, RetwisConfig, RetwisOp, RetwisStats, RetwisStore, RetwisSummary, RetwisTrace,
    RetwisWorkload, Timeline, UserId, Wall,
};
pub use zipf::Zipf;
