//! The paper's micro-benchmarks (Table I).
//!
//! | Type | Periodic event | Measurement |
//! |---|---|---|
//! | GCounter | single increment | number of entries in the map |
//! | GSet | addition of unique element | number of elements in the set |
//! | GMap K% | change the value of K⁄N % keys | number of entries in the map |
//!
//! "Note how the GCounter benchmark is a particular case of GMap K%, in
//! which K = 100. For GMap K% we set the total number of keys to 1000,
//! and for all benchmarks, the number of events per replica is set to
//! 100." (§V-B)

use crdt_lattice::{Max, ReplicaId};
use crdt_sim::Workload;
use crdt_types::{GCounterOp, GMap, GMapOp, GSetOp};

/// Default events per replica (paper: 100).
pub const DEFAULT_EVENTS_PER_REPLICA: usize = 100;

/// Default GMap key-space size (paper: 1000).
pub const DEFAULT_GMAP_KEYS: usize = 1000;

/// Static description of a micro-benchmark (regenerates Table I rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadInfo {
    /// CRDT type under test.
    pub crdt: &'static str,
    /// What each node does per round.
    pub periodic_event: &'static str,
    /// The transmission/memory unit.
    pub measurement: &'static str,
}

/// Table I, as data (printed by the `table1_micro` experiment binary).
pub const TABLE1: &[WorkloadInfo] = &[
    WorkloadInfo {
        crdt: "GCounter",
        periodic_event: "single increment",
        measurement: "number of entries in the map",
    },
    WorkloadInfo {
        crdt: "GSet",
        periodic_event: "addition of unique element",
        measurement: "number of elements in the set",
    },
    WorkloadInfo {
        crdt: "GMap K%",
        periodic_event: "change the value of K/N % keys",
        measurement: "number of entries in the map",
    },
];

/// GSet micro-benchmark: each node adds one globally unique element per
/// round, for `events_per_replica` rounds.
#[derive(Debug, Clone)]
pub struct GSetWorkload {
    n_nodes: usize,
    events_per_replica: usize,
}

impl GSetWorkload {
    /// Paper-default workload for `n_nodes` replicas (100 events each).
    pub fn new(n_nodes: usize) -> Self {
        Self::with_events(n_nodes, DEFAULT_EVENTS_PER_REPLICA)
    }

    /// Custom event budget.
    pub fn with_events(n_nodes: usize, events_per_replica: usize) -> Self {
        GSetWorkload {
            n_nodes,
            events_per_replica,
        }
    }

    /// Rounds needed to exhaust the event budget (one event per round).
    pub fn rounds(&self) -> usize {
        self.events_per_replica
    }

    /// Total elements all replicas will eventually hold.
    pub fn expected_final_size(&self) -> usize {
        self.n_nodes * self.events_per_replica
    }
}

impl Workload<crdt_types::GSet<u64>> for GSetWorkload {
    fn ops(&mut self, node: ReplicaId, round: usize) -> Vec<GSetOp<u64>> {
        if round >= self.events_per_replica {
            return Vec::new();
        }
        // Globally unique element: round-major, node-minor.
        vec![GSetOp::Add((round * self.n_nodes + node.index()) as u64)]
    }
}

/// GCounter micro-benchmark: each node increments once per round.
#[derive(Debug, Clone)]
pub struct GCounterWorkload {
    events_per_replica: usize,
}

impl GCounterWorkload {
    /// Paper-default workload (100 increments per replica).
    pub fn new() -> Self {
        Self::with_events(DEFAULT_EVENTS_PER_REPLICA)
    }

    /// Custom event budget.
    pub fn with_events(events_per_replica: usize) -> Self {
        GCounterWorkload { events_per_replica }
    }

    /// Rounds needed to exhaust the event budget.
    pub fn rounds(&self) -> usize {
        self.events_per_replica
    }
}

impl Default for GCounterWorkload {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload<crdt_types::GCounter> for GCounterWorkload {
    fn ops(&mut self, node: ReplicaId, round: usize) -> Vec<GCounterOp> {
        if round >= self.events_per_replica {
            return Vec::new();
        }
        vec![GCounterOp::Inc(node)]
    }
}

/// The GMap value lattice used by the micro-benchmark: a monotone version
/// register per key.
pub type GMapValue = Max<u64>;

/// The GMap CRDT under test.
pub type GMapCrdt = GMap<u32, GMapValue>;

/// GMap K% micro-benchmark.
///
/// Globally, K% of the `total_keys` keys change per round; each node
/// updates its `K/N %` share. Keys rotate each round so the touched window
/// sweeps the key space; values carry a per-round version so every write
/// is a strict inflation (a fresh "change the value" event).
#[derive(Debug, Clone)]
pub struct GMapWorkload {
    n_nodes: usize,
    total_keys: usize,
    percent: usize,
    events_per_replica: usize,
}

impl GMapWorkload {
    /// Paper-default workload: 1000 keys, 100 events per replica.
    pub fn new(n_nodes: usize, percent: usize) -> Self {
        Self::custom(
            n_nodes,
            percent,
            DEFAULT_GMAP_KEYS,
            DEFAULT_EVENTS_PER_REPLICA,
        )
    }

    /// Fully parameterized workload.
    pub fn custom(
        n_nodes: usize,
        percent: usize,
        total_keys: usize,
        events_per_replica: usize,
    ) -> Self {
        assert!((1..=100).contains(&percent), "K must be in 1..=100");
        GMapWorkload {
            n_nodes,
            total_keys,
            percent,
            events_per_replica,
        }
    }

    /// Keys each node updates per round.
    pub fn keys_per_node_per_round(&self) -> usize {
        (self.total_keys * self.percent / 100 / self.n_nodes).max(1)
    }

    /// Keys changed globally per round (≈ K% of the key space).
    pub fn keys_per_round(&self) -> usize {
        self.keys_per_node_per_round() * self.n_nodes
    }

    /// Rounds needed to exhaust the event budget.
    pub fn rounds(&self) -> usize {
        self.events_per_replica
    }

    /// The Zipf-free deterministic key for a given (node, round, slot).
    fn key(&self, node: usize, round: usize, slot: usize) -> u32 {
        let per_round = self.keys_per_round();
        let base = (round * per_round) % self.total_keys;
        let offset = node * self.keys_per_node_per_round() + slot;
        ((base + offset) % self.total_keys) as u32
    }
}

impl Workload<GMapCrdt> for GMapWorkload {
    fn ops(&mut self, node: ReplicaId, round: usize) -> Vec<GMapOp<u32, GMapValue>> {
        if round >= self.events_per_replica {
            return Vec::new();
        }
        (0..self.keys_per_node_per_round())
            .map(|slot| GMapOp::Apply {
                key: self.key(node.index(), round, slot),
                value: Max::new(round as u64 + 1),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_sim::Workload;
    use std::collections::BTreeSet;

    #[test]
    fn gset_elements_are_globally_unique() {
        let n = 5;
        let mut w = GSetWorkload::with_events(n, 10);
        let mut seen = BTreeSet::new();
        for round in 0..10 {
            for node in 0..n {
                for op in w.ops(ReplicaId::from(node), round) {
                    let GSetOp::Add(e) = op;
                    assert!(seen.insert(e), "duplicate element {e}");
                }
            }
        }
        assert_eq!(seen.len(), w.expected_final_size());
    }

    #[test]
    fn gset_stops_after_event_budget() {
        let mut w = GSetWorkload::with_events(3, 4);
        assert!(!w.ops(ReplicaId(0), 3).is_empty());
        assert!(w.ops(ReplicaId(0), 4).is_empty());
    }

    #[test]
    fn gcounter_one_increment_per_round() {
        let mut w = GCounterWorkload::with_events(2);
        assert_eq!(w.ops(ReplicaId(1), 0), vec![GCounterOp::Inc(ReplicaId(1))]);
        assert_eq!(w.ops(ReplicaId(1), 1).len(), 1);
        assert!(w.ops(ReplicaId(1), 2).is_empty());
    }

    #[test]
    fn gmap_touches_k_percent_globally() {
        let n = 10;
        for percent in [10, 30, 60, 100] {
            let mut w = GMapWorkload::custom(n, percent, 1000, 5);
            let mut keys = BTreeSet::new();
            for node in 0..n {
                for op in w.ops(ReplicaId::from(node), 0) {
                    let GMapOp::Apply { key, .. } = op;
                    keys.insert(key);
                }
            }
            let expect = 1000 * percent / 100;
            assert_eq!(keys.len(), expect, "K = {percent}%");
        }
    }

    #[test]
    fn gmap_nodes_touch_disjoint_keys_within_a_round() {
        let n = 10;
        let mut w = GMapWorkload::custom(n, 60, 1000, 5);
        let mut keys = Vec::new();
        for node in 0..n {
            for op in w.ops(ReplicaId::from(node), 2) {
                let GMapOp::Apply { key, .. } = op;
                keys.push(key);
            }
        }
        let unique: BTreeSet<_> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len(), "no intra-round contention");
    }

    #[test]
    fn gmap_100_percent_touches_every_key() {
        let n = 10;
        let mut w = GMapWorkload::custom(n, 100, 1000, 2);
        let mut keys = BTreeSet::new();
        for node in 0..n {
            for op in w.ops(ReplicaId::from(node), 1) {
                let GMapOp::Apply { key, .. } = op;
                keys.insert(key);
            }
        }
        assert_eq!(keys.len(), 1000);
    }

    #[test]
    fn gmap_versions_inflate_across_rounds() {
        let mut w = GMapWorkload::custom(2, 100, 10, 3);
        let v0 = match w.ops(ReplicaId(0), 0)[0] {
            GMapOp::Apply { value, .. } => value,
        };
        let v1 = match w.ops(ReplicaId(0), 1)[0] {
            GMapOp::Apply { value, .. } => value,
        };
        assert!(v0 < v1, "later rounds carry higher versions");
    }

    #[test]
    fn table1_is_complete() {
        assert_eq!(TABLE1.len(), 3);
        assert_eq!(TABLE1[0].crdt, "GCounter");
        assert_eq!(TABLE1[2].measurement, "number of entries in the map");
    }
}
