//! Zipf-distributed sampling.
//!
//! The Retwis experiment (§V-C) draws object updates "following a Zipf
//! distribution, with coefficients ranging from 0.5 (low contention) to
//! 1.5 (high contention)". This sampler builds the cumulative weight
//! table once (`O(n)`) and samples by binary search (`O(log n)`),
//! deterministic under a seeded RNG.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank k) ∝ 1 / (k+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

// `len` without `is_empty` is deliberate: construction asserts `n > 0`,
// so an `is_empty` method could only ever return `false` — shipping a
// constant-false predicate as API is dishonest (and an earlier version
// did exactly that).
#[allow(clippy::len_without_is_empty)]
impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s ≥ 0`.
    ///
    /// `s = 0` is uniform; larger `s` concentrates probability on low
    /// ranks (higher contention).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(z: &Zipf, draws: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = vec![0usize; z.len()];
        for _ in 0..draws {
            h[z.sample(&mut rng)] += 1;
        }
        h
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(10, 0.0);
        let h = histogram(&z, 100_000, 1);
        for &count in &h {
            let p = count as f64 / 100_000.0;
            assert!((p - 0.1).abs() < 0.01, "p = {p}");
        }
    }

    #[test]
    fn skews_towards_low_ranks() {
        let z = Zipf::new(100, 1.5);
        let h = histogram(&z, 100_000, 2);
        assert!(
            h[0] > h[10] && h[10] >= h[50],
            "h0={} h10={} h50={}",
            h[0],
            h[10],
            h[50]
        );
        // Rank 0 should take the lion's share at s = 1.5.
        assert!(h[0] as f64 / 100_000.0 > 0.3);
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.0);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // PMF is monotone decreasing.
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    #[test]
    fn matches_theory_at_s1() {
        // With s = 1 over 3 ranks, weights are 1, 1/2, 1/3 → H = 11/6.
        let z = Zipf::new(3, 1.0);
        assert!((z.pmf(0) - 6.0 / 11.0).abs() < 1e-9);
        assert!((z.pmf(1) - 3.0 / 11.0).abs() < 1e-9);
        assert!((z.pmf(2) - 2.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let z = Zipf::new(100, 0.8);
        assert_eq!(histogram(&z, 1000, 7), histogram(&z, 1000, 7));
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(5, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    /// Statistical agreement between the analytic pmf and the sampler:
    /// for every rank, the empirical frequency over many draws must sit
    /// within a few standard errors of `pmf(k)` — the histogram and the
    /// pmf describe the same distribution, not merely similar shapes.
    #[test]
    fn histogram_agrees_with_pmf() {
        let n = 50;
        let draws = 200_000usize;
        for s in [0.0, 0.5, 1.0, 1.5] {
            let z = Zipf::new(n, s);
            let h = histogram(&z, draws, 11);
            for (k, &count) in h.iter().enumerate() {
                let p = z.pmf(k);
                let freq = count as f64 / draws as f64;
                // Normal approximation to the binomial: 5σ + a small
                // absolute floor for near-zero cells.
                let sigma = (p * (1.0 - p) / draws as f64).sqrt();
                let slack = 5.0 * sigma + 2e-4;
                assert!(
                    (freq - p).abs() <= slack,
                    "s={s} rank {k}: freq {freq:.5} vs pmf {p:.5} (slack {slack:.5})"
                );
            }
        }
    }

    /// An `Rng` stub pinning `next_u64`, hence `gen::<f64>()`, to chosen
    /// values — for driving `sample` through exact edge uniforms.
    struct FixedRng(u64);

    impl Rng for FixedRng {
        fn next_u64(&mut self) -> u64 {
            self.0
        }
    }

    #[test]
    fn top_rank_draw_clamps_into_range() {
        // u64::MAX maps to u = (2^53 − 1)/2^53 ≈ 1.0 — past every cdf
        // entry except the final (exactly-1.0) one. The clamp in
        // `sample` must land on the last rank, never at `len`.
        let z = Zipf::new(7, 1.0);
        assert_eq!(z.sample(&mut FixedRng(u64::MAX)), 6);
        // u = 0.0 sits below the whole table: rank 0.
        assert_eq!(z.sample(&mut FixedRng(0)), 0);
        // A single-rank domain absorbs every draw.
        let single = Zipf::new(1, 1.5);
        assert_eq!(single.sample(&mut FixedRng(u64::MAX)), 0);
        assert_eq!(single.sample(&mut FixedRng(0)), 0);
    }

    /// The cdf's last entry is pinned to exactly 1.0 (the float-shortfall
    /// guard), so the pmf still sums to 1 at skews where naive
    /// accumulation falls short.
    #[test]
    fn cdf_top_is_exact_after_normalization() {
        for (n, s) in [(3, 0.0), (1000, 1.5), (10_000, 0.5)] {
            let z = Zipf::new(n, s);
            let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} s={s}: {total}");
        }
    }
}
