//! Zipf-distributed sampling.
//!
//! The Retwis experiment (§V-C) draws object updates "following a Zipf
//! distribution, with coefficients ranging from 0.5 (low contention) to
//! 1.5 (high contention)". This sampler builds the cumulative weight
//! table once (`O(n)`) and samples by binary search (`O(log n)`),
//! deterministic under a seeded RNG.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank k) ∝ 1 / (k+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s ≥ 0`.
    ///
    /// `s = 0` is uniform; larger `s` concentrates probability on low
    /// ranks (higher contention).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Is the domain empty? (Never true — construction requires `n > 0`.)
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(z: &Zipf, draws: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = vec![0usize; z.len()];
        for _ in 0..draws {
            h[z.sample(&mut rng)] += 1;
        }
        h
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(10, 0.0);
        let h = histogram(&z, 100_000, 1);
        for &count in &h {
            let p = count as f64 / 100_000.0;
            assert!((p - 0.1).abs() < 0.01, "p = {p}");
        }
    }

    #[test]
    fn skews_towards_low_ranks() {
        let z = Zipf::new(100, 1.5);
        let h = histogram(&z, 100_000, 2);
        assert!(
            h[0] > h[10] && h[10] >= h[50],
            "h0={} h10={} h50={}",
            h[0],
            h[10],
            h[50]
        );
        // Rank 0 should take the lion's share at s = 1.5.
        assert!(h[0] as f64 / 100_000.0 > 0.3);
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.0);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // PMF is monotone decreasing.
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    #[test]
    fn matches_theory_at_s1() {
        // With s = 1 over 3 ranks, weights are 1, 1/2, 1/3 → H = 11/6.
        let z = Zipf::new(3, 1.0);
        assert!((z.pmf(0) - 6.0 / 11.0).abs() < 1e-9);
        assert!((z.pmf(1) - 3.0 / 11.0).abs() < 1e-9);
        assert!((z.pmf(2) - 2.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let z = Zipf::new(100, 0.8);
        assert_eq!(histogram(&z, 1000, 7), histogram(&z, 1000, 7));
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(5, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }
}
