//! Retwis — the Twitter-clone application benchmark (paper, §V-C).
//!
//! Each user owns three CRDT objects:
//!
//! 1. a set of **followers** (GSet);
//! 2. a **wall**: a GMap from tweet identifiers to tweet content;
//! 3. a **timeline**: a GMap from tweet timestamps to tweet identifiers.
//!
//! The workload mix is Table II: *Follow* (1 update, 15%), *Post Tweet*
//! (1 + #followers updates, 35%), *Timeline* read (0 updates, 50%).
//! Object selection follows a Zipf distribution with coefficient 0.5–1.5.
//! Tweet identifiers are 31 B and content 270 B (sizes "representative of
//! real workloads" per the Facebook KV study the paper cites).
//!
//! The full store is itself one composed lattice — three grow-only maps —
//! so every synchronization protocol runs over it unchanged; this is the
//! composition machinery of Appendix B doing application work.
//!
//! **Scale note (documented substitution):** the paper runs 10 K users on
//! a 50-node cluster at GB/s rates. Defaults here are laptop-sized
//! (1 K users), and post fan-out is capped at [`RetwisConfig::max_fanout`]
//! timeline insertions per post; the contention regime that separates
//! classic delta from BP+RR — many updates to the *same hot objects*
//! between synchronization rounds — is governed by the Zipf coefficient,
//! which is reproduced exactly.

use std::collections::{BTreeMap, BTreeSet};

use crdt_lattice::{Bottom, Decompose, Lattice, Max, ReplicaId, SizeModel, Sizeable, StateSize};
use crdt_sim::Workload;
use crdt_types::{Crdt, GMap, GMapOp, GSet, GSetOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Application-level user identifier.
pub type UserId = u32;

/// A user's wall: tweet id → content.
pub type Wall = GMap<String, Max<String>>;

/// A user's timeline: timestamp → tweet id.
pub type Timeline = GMap<u64, Max<String>>;

/// The replicated Retwis store: all three object families for all users,
/// as one composed lattice (a triple product of grow-only maps).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RetwisStore {
    /// user → follower set.
    pub followers: GMap<UserId, GSet<UserId>>,
    /// user → wall.
    pub walls: GMap<UserId, Wall>,
    /// user → timeline.
    pub timelines: GMap<UserId, Timeline>,
}

/// Retwis update operations (Table II; *Timeline* is a read and never
/// reaches the store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetwisOp {
    /// `follower` starts following `followee` (1 update).
    Follow {
        /// The user doing the following.
        follower: UserId,
        /// The user being followed (their follower set is updated).
        followee: UserId,
    },
    /// `author` posts a tweet (1 wall update + one timeline update per
    /// recipient).
    Post {
        /// The posting user.
        author: UserId,
        /// 31-byte tweet identifier.
        tweet_id: String,
        /// 270-byte tweet body.
        content: String,
        /// Unique timestamp for timeline ordering.
        ts: u64,
        /// Timelines to insert into (the author's followers at post time).
        recipients: Vec<UserId>,
    },
}

/// Store-wide summary returned by [`Crdt::value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetwisSummary {
    /// Total follow edges.
    pub follow_edges: u64,
    /// Total tweets on walls.
    pub wall_tweets: u64,
    /// Total timeline entries.
    pub timeline_entries: u64,
}

impl RetwisStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The 10 most recent timeline entries of `user` (the *Timeline* read
    /// of Table II): `(timestamp, tweet id)`, newest first.
    pub fn timeline(&self, user: UserId) -> Vec<(u64, &str)> {
        match self.timelines.get(&user) {
            None => Vec::new(),
            Some(t) => {
                let mut entries: Vec<(u64, &str)> =
                    t.iter().map(|(ts, id)| (*ts, id.get().as_str())).collect();
                entries.sort_by_key(|e| std::cmp::Reverse(e.0));
                entries.truncate(10);
                entries
            }
        }
    }

    /// A user's current follower set, if any.
    pub fn followers_of(&self, user: UserId) -> Option<&GSet<UserId>> {
        self.followers.get(&user)
    }

    /// A tweet's content, if present on the author's wall.
    pub fn tweet(&self, author: UserId, tweet_id: &str) -> Option<&str> {
        self.walls
            .get(&author)
            .and_then(|w| w.get(&tweet_id.to_string()))
            .map(|c| c.get().as_str())
    }
}

impl Lattice for RetwisStore {
    fn join_assign(&mut self, other: Self) -> bool {
        // `|`, not `||`: every component must merge.
        self.followers.join_assign(other.followers)
            | self.walls.join_assign(other.walls)
            | self.timelines.join_assign(other.timelines)
    }

    fn leq(&self, other: &Self) -> bool {
        self.followers.leq(&other.followers)
            && self.walls.leq(&other.walls)
            && self.timelines.leq(&other.timelines)
    }
}

impl Bottom for RetwisStore {
    fn bottom() -> Self {
        Self::default()
    }

    fn is_bottom(&self) -> bool {
        self.followers.is_bottom() && self.walls.is_bottom() && self.timelines.is_bottom()
    }
}

impl Decompose for RetwisStore {
    fn for_each_irreducible(&self, f: &mut dyn FnMut(Self)) {
        self.followers.for_each_irreducible(&mut |m| {
            f(RetwisStore {
                followers: m,
                ..Default::default()
            })
        });
        self.walls.for_each_irreducible(&mut |m| {
            f(RetwisStore {
                walls: m,
                ..Default::default()
            })
        });
        self.timelines.for_each_irreducible(&mut |m| {
            f(RetwisStore {
                timelines: m,
                ..Default::default()
            })
        });
    }

    fn irreducible_count(&self) -> u64 {
        self.followers.irreducible_count()
            + self.walls.irreducible_count()
            + self.timelines.irreducible_count()
    }

    fn delta(&self, other: &Self) -> Self {
        RetwisStore {
            followers: self.followers.delta(&other.followers),
            walls: self.walls.delta(&other.walls),
            timelines: self.timelines.delta(&other.timelines),
        }
    }

    fn is_irreducible(&self) -> bool {
        self.irreducible_count() == 1
            && (self.followers.is_irreducible()
                || self.walls.is_irreducible()
                || self.timelines.is_irreducible())
    }
}

impl StateSize for RetwisStore {
    fn count_elements(&self) -> u64 {
        self.followers.count_elements()
            + self.walls.count_elements()
            + self.timelines.count_elements()
    }

    fn size_bytes(&self, model: &SizeModel) -> u64 {
        self.followers.size_bytes(model)
            + self.walls.size_bytes(model)
            + self.timelines.size_bytes(model)
    }
}

impl Crdt for RetwisStore {
    type Op = RetwisOp;
    type Value = RetwisSummary;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match op {
            RetwisOp::Follow { follower, followee } => {
                let d = self.followers.mutate_entry(*followee, |s| s.add(*follower));
                RetwisStore {
                    followers: d,
                    ..Default::default()
                }
            }
            RetwisOp::Post {
                author,
                tweet_id,
                content,
                ts,
                recipients,
            } => {
                let wall_delta = self.walls.mutate_entry(*author, |w| {
                    w.apply_to_entry(tweet_id.clone(), Max::new(content.clone()))
                });
                let mut timeline_delta = GMap::new();
                for &r in recipients {
                    let d = self
                        .timelines
                        .mutate_entry(r, |t| t.apply_to_entry(*ts, Max::new(tweet_id.clone())));
                    timeline_delta.join_assign(d);
                }
                RetwisStore {
                    walls: wall_delta,
                    timelines: timeline_delta,
                    ..Default::default()
                }
            }
        }
    }

    fn value(&self) -> RetwisSummary {
        RetwisSummary {
            follow_edges: self.followers.count_elements(),
            wall_tweets: self.walls.count_elements(),
            timeline_entries: self.timelines.count_elements(),
        }
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            RetwisOp::Follow { .. } => 8,
            RetwisOp::Post {
                tweet_id,
                content,
                recipients,
                ..
            } => {
                4 + tweet_id.payload_bytes(model)
                    + content.payload_bytes(model)
                    + 8
                    + recipients.len() as u64 * 4
            }
        }
    }
}

/// Configuration of the Retwis workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetwisConfig {
    /// Number of users (paper: 10 000; default here is laptop-scale).
    pub n_users: usize,
    /// Zipf coefficient for object selection (paper: 0.5–1.5).
    pub zipf: f64,
    /// Application operations issued per node per round.
    pub ops_per_node_per_round: usize,
    /// Cap on timeline insertions per post (scale substitution; see
    /// module docs).
    pub max_fanout: usize,
    /// RNG seed — the generated op stream is a pure function of the
    /// configuration, so different protocols replay identical workloads.
    pub seed: u64,
}

impl Default for RetwisConfig {
    fn default() -> Self {
        RetwisConfig {
            n_users: 1000,
            zipf: 1.0,
            ops_per_node_per_round: 4,
            max_fanout: 50,
            seed: 42,
        }
    }
}

/// Workload-mix statistics (regenerates Table II).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetwisStats {
    /// *Follow* operations issued.
    pub follows: u64,
    /// *Post Tweet* operations issued.
    pub posts: u64,
    /// *Timeline* reads issued.
    pub timeline_reads: u64,
    /// CRDT updates caused by follows (1 each).
    pub follow_updates: u64,
    /// CRDT updates caused by posts (1 + #recipients each).
    pub post_updates: u64,
}

impl RetwisStats {
    /// Total operations.
    pub fn total_ops(&self) -> u64 {
        self.follows + self.posts + self.timeline_reads
    }

    /// Average updates per post (Table II's `1 + #Followers`).
    pub fn avg_updates_per_post(&self) -> f64 {
        if self.posts == 0 {
            0.0
        } else {
            self.post_updates as f64 / self.posts as f64
        }
    }

    /// Workload share of an op class, in percent.
    pub fn share(&self, count: u64) -> f64 {
        let total = self.total_ops();
        if total == 0 {
            0.0
        } else {
            100.0 * count as f64 / total as f64
        }
    }
}

/// The Retwis workload generator.
///
/// Keeps its own (deterministic) view of the social graph so *Post* ops
/// can resolve "the timeline of all their followers" at generation time,
/// exactly as the application server would by reading its local replica.
#[derive(Debug, Clone)]
pub struct RetwisWorkload {
    cfg: RetwisConfig,
    zipf: Zipf,
    rng: StdRng,
    follower_graph: BTreeMap<UserId, BTreeSet<UserId>>,
    op_counter: u64,
    /// Measured op mix (Table II).
    pub stats: RetwisStats,
}

impl RetwisWorkload {
    /// Build a generator from `cfg`.
    pub fn new(cfg: RetwisConfig) -> Self {
        RetwisWorkload {
            zipf: Zipf::new(cfg.n_users, cfg.zipf),
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            follower_graph: BTreeMap::new(),
            op_counter: 0,
            stats: RetwisStats::default(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &RetwisConfig {
        &self.cfg
    }

    fn next_user(&mut self) -> UserId {
        self.zipf.sample(&mut self.rng) as UserId
    }

    /// One application op, already classified; `None` = Timeline read.
    fn next_op(&mut self) -> Option<RetwisOp> {
        self.op_counter += 1;
        let roll: f64 = self.rng.gen();
        if roll < 0.15 {
            // Follow: 15%.
            let follower = self.next_user();
            let mut followee = self.next_user();
            if followee == follower {
                followee = (followee + 1) % self.cfg.n_users as UserId;
            }
            self.follower_graph
                .entry(followee)
                .or_default()
                .insert(follower);
            self.stats.follows += 1;
            self.stats.follow_updates += 1;
            Some(RetwisOp::Follow { follower, followee })
        } else if roll < 0.50 {
            // Post Tweet: 35%.
            let author = self.next_user();
            let recipients: Vec<UserId> = self
                .follower_graph
                .get(&author)
                .map(|s| s.iter().copied().take(self.cfg.max_fanout).collect())
                .unwrap_or_default();
            let ts = self.op_counter;
            // 31-byte tweet id, 270-byte content (§V-C).
            let tweet_id = format!("tweet:{:025}", ts);
            let content = format!("{:0270}", ts);
            self.stats.posts += 1;
            self.stats.post_updates += 1 + recipients.len() as u64;
            Some(RetwisOp::Post {
                author,
                tweet_id,
                content,
                ts,
                recipients,
            })
        } else {
            // Timeline read: 50%, zero updates.
            let _reader = self.next_user();
            self.stats.timeline_reads += 1;
            None
        }
    }
}

impl Workload<RetwisStore> for RetwisWorkload {
    fn ops(&mut self, _node: ReplicaId, _round: usize) -> Vec<RetwisOp> {
        (0..self.cfg.ops_per_node_per_round)
            .filter_map(|_| self.next_op())
            .collect()
    }
}

/// Keyed per-object-family operations for one node in one round.
///
/// The paper's deployment synchronizes each of the "30K CRDT objects"
/// independently (its own δ-buffer, its own Algorithm 1 instance); this
/// split drives `crdt_sim::ShardedDeltaRunner` — one runner per family —
/// which is equivalent to one deployment hosting all objects, since
/// objects never interact.
#[derive(Debug, Clone, Default)]
pub struct NodeTraceOps {
    /// Follower-set updates: `(owner, add(follower))`.
    pub followers: Vec<(UserId, GSetOp<UserId>)>,
    /// Wall updates: `(author, tweet_id ↦ content)`.
    pub walls: Vec<(UserId, GMapOp<String, Max<String>>)>,
    /// Timeline updates: `(recipient, ts ↦ tweet_id)`.
    pub timelines: Vec<(UserId, GMapOp<u64, Max<String>>)>,
}

impl NodeTraceOps {
    /// Total CRDT updates in this batch.
    pub fn updates(&self) -> usize {
        self.followers.len() + self.walls.len() + self.timelines.len()
    }
}

/// A fully materialized Retwis run: per-round, per-node keyed operations.
#[derive(Debug, Clone)]
pub struct RetwisTrace {
    /// `rounds[r][node]` — node's operations in round `r`.
    pub rounds: Vec<Vec<NodeTraceOps>>,
    /// Measured op mix over the whole trace (Table II).
    pub stats: RetwisStats,
}

impl RetwisTrace {
    /// Generate a deterministic trace for `n_nodes` nodes over `rounds`
    /// rounds.
    pub fn generate(cfg: RetwisConfig, n_nodes: usize, rounds: usize) -> Self {
        let mut w = RetwisWorkload::new(cfg);
        let mut out = Vec::with_capacity(rounds);
        for round in 0..rounds {
            let mut per_node = Vec::with_capacity(n_nodes);
            for node in 0..n_nodes {
                let mut ops = NodeTraceOps::default();
                for op in w.ops(ReplicaId::from(node), round) {
                    match op {
                        RetwisOp::Follow { follower, followee } => {
                            ops.followers.push((followee, GSetOp::Add(follower)));
                        }
                        RetwisOp::Post {
                            author,
                            tweet_id,
                            content,
                            ts,
                            recipients,
                        } => {
                            ops.walls.push((
                                author,
                                GMapOp::Apply {
                                    key: tweet_id.clone(),
                                    value: Max::new(content),
                                },
                            ));
                            for r in recipients {
                                ops.timelines.push((
                                    r,
                                    GMapOp::Apply {
                                        key: ts,
                                        value: Max::new(tweet_id.clone()),
                                    },
                                ));
                            }
                        }
                    }
                }
                per_node.push(ops);
            }
            out.push(per_node);
        }
        RetwisTrace {
            rounds: out,
            stats: w.stats,
        }
    }

    /// Total CRDT updates across the trace.
    pub fn total_updates(&self) -> usize {
        self.rounds
            .iter()
            .flat_map(|nodes| nodes.iter())
            .map(NodeTraceOps::updates)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_lattice::testing::check_all_laws;
    use crdt_types::testing::check_crdt_op;

    fn post(author: UserId, n: u64, recipients: Vec<UserId>) -> RetwisOp {
        RetwisOp::Post {
            author,
            tweet_id: format!("tweet:{n:025}"),
            content: format!("{n:0270}"),
            ts: n,
            recipients,
        }
    }

    #[test]
    fn follow_then_post_reaches_timelines() {
        let mut store = RetwisStore::new();
        let _ = store.apply(&RetwisOp::Follow {
            follower: 1,
            followee: 0,
        });
        let _ = store.apply(&RetwisOp::Follow {
            follower: 2,
            followee: 0,
        });
        let _ = store.apply(&post(0, 7, vec![1, 2]));
        assert_eq!(store.followers_of(0).unwrap().len(), 2);
        assert_eq!(store.timeline(1).len(), 1);
        assert_eq!(store.timeline(2).len(), 1);
        assert_eq!(
            store
                .tweet(0, "tweet:0000000000000000000000007")
                .unwrap()
                .len(),
            270
        );
        let v = store.value();
        assert_eq!(v.follow_edges, 2);
        assert_eq!(v.wall_tweets, 1);
        assert_eq!(v.timeline_entries, 2);
    }

    #[test]
    fn timeline_returns_newest_first_capped_at_ten() {
        let mut store = RetwisStore::new();
        for n in 0..15u64 {
            let _ = store.apply(&post(0, n, vec![5]));
        }
        let tl = store.timeline(5);
        assert_eq!(tl.len(), 10);
        assert_eq!(tl[0].0, 14, "newest first");
        assert_eq!(tl[9].0, 5);
    }

    #[test]
    fn ops_satisfy_delta_mutator_contract() {
        let mut store = RetwisStore::new();
        let _ = store.apply(&RetwisOp::Follow {
            follower: 3,
            followee: 0,
        });
        check_crdt_op(
            &store,
            &RetwisOp::Follow {
                follower: 4,
                followee: 0,
            },
        );
        check_crdt_op(&store, &post(0, 9, vec![3, 4]));
        // Redundant follow: delta must be ⊥.
        check_crdt_op(
            &store,
            &RetwisOp::Follow {
                follower: 3,
                followee: 0,
            },
        );
    }

    #[test]
    fn store_obeys_lattice_laws() {
        let mut s1 = RetwisStore::new();
        let _ = s1.apply(&RetwisOp::Follow {
            follower: 1,
            followee: 0,
        });
        let mut s2 = RetwisStore::new();
        let _ = s2.apply(&post(1, 3, vec![0]));
        let mut s3 = s1.clone();
        let _ = s3.apply(&post(0, 4, vec![1]));
        let samples = vec![RetwisStore::bottom(), s1, s2, s3];
        check_all_laws(&samples);
    }

    #[test]
    fn tweet_sizes_match_the_paper() {
        let op = post(0, 1, vec![]);
        if let RetwisOp::Post {
            tweet_id, content, ..
        } = &op
        {
            assert_eq!(tweet_id.len(), 31);
            assert_eq!(content.len(), 270);
        } else {
            unreachable!()
        }
    }

    #[test]
    fn workload_mix_approximates_table2() {
        let mut w = RetwisWorkload::new(RetwisConfig {
            n_users: 100,
            zipf: 1.0,
            ops_per_node_per_round: 1000,
            max_fanout: 50,
            seed: 7,
        });
        let _ops = w.ops(ReplicaId(0), 0);
        let s = w.stats;
        assert!(
            (s.share(s.follows) - 15.0).abs() < 3.0,
            "follow share {}",
            s.share(s.follows)
        );
        assert!(
            (s.share(s.posts) - 35.0).abs() < 3.0,
            "post share {}",
            s.share(s.posts)
        );
        assert!(
            (s.share(s.timeline_reads) - 50.0).abs() < 3.0,
            "read share {}",
            s.share(s.timeline_reads)
        );
        // Posts carry 1 + #followers updates.
        assert!(s.avg_updates_per_post() >= 1.0);
    }

    #[test]
    fn zipf_contention_concentrates_updates() {
        let count_hot = |zipf: f64| {
            let mut w = RetwisWorkload::new(RetwisConfig {
                n_users: 100,
                zipf,
                ops_per_node_per_round: 2000,
                max_fanout: 10,
                seed: 3,
            });
            let ops = w.ops(ReplicaId(0), 0);
            ops.iter()
                .filter(|op| match op {
                    RetwisOp::Follow { followee, .. } => *followee == 0,
                    RetwisOp::Post { author, .. } => *author == 0,
                })
                .count()
        };
        assert!(
            count_hot(1.5) > count_hot(0.5) * 3,
            "higher Zipf must concentrate on the hot user"
        );
    }

    #[test]
    fn generator_is_deterministic() {
        let gen = |seed| {
            let mut w = RetwisWorkload::new(RetwisConfig {
                seed,
                ..Default::default()
            });
            (w.ops(ReplicaId(0), 0), w.stats)
        };
        assert_eq!(gen(9), gen(9));
    }

    #[test]
    fn concurrent_stores_converge_via_deltas() {
        let mut a = RetwisStore::new();
        let mut b = RetwisStore::new();
        let da = a.apply(&RetwisOp::Follow {
            follower: 1,
            followee: 2,
        });
        let db = b.apply(&post(2, 5, vec![9]));
        a.join_assign(db);
        b.join_assign(da);
        assert_eq!(a, b);
    }

    #[test]
    fn trace_splits_ops_by_family() {
        let trace = RetwisTrace::generate(
            RetwisConfig {
                n_users: 50,
                ops_per_node_per_round: 20,
                ..Default::default()
            },
            4,
            3,
        );
        assert_eq!(trace.rounds.len(), 3);
        assert_eq!(trace.rounds[0].len(), 4);
        assert!(trace.total_updates() > 0);
        // Update accounting matches the generator stats.
        let expected = trace.stats.follow_updates + trace.stats.post_updates;
        assert_eq!(trace.total_updates() as u64, expected);
    }

    #[test]
    fn trace_is_deterministic() {
        let cfg = RetwisConfig {
            n_users: 50,
            ops_per_node_per_round: 5,
            ..Default::default()
        };
        let a = RetwisTrace::generate(cfg, 3, 2);
        let b = RetwisTrace::generate(cfg, 3, 2);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.total_updates(), b.total_updates());
    }
}
