//! Encode-cache correctness battery for the flat causal states.
//!
//! Flat causal CRDTs carry a cached wire frame keyed by a mutation epoch:
//! encoding an unmutated state returns the cached bytes, and a mutation
//! through **any** entry point must invalidate it. These tests hammer
//! every type-level entry point (op apply, changing join, covered join,
//! delta extraction, decode, clone) and then interleave mutation with
//! encoding under proptest, comparing against a shadow twin that is
//! mutated identically but never encodes until the comparison — so its
//! bytes are always the structural ground truth. (The shadow never
//! encodes, so its frame slot is empty; `shadow.clone().to_bytes()` is
//! therefore a cache-free structural encode that leaves the shadow
//! itself unencoded for the next check.)

use crdt_lattice::{Bottom, Decompose, Lattice, ReplicaId, WireEncode};
use crdt_types::{AWSet, AWSetOp, CCounter, Crdt, DWFlag, EWFlag, ORMap, ORMapOp, ORSetMap, RWSet};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

const A: ReplicaId = ReplicaId(0);
const B: ReplicaId = ReplicaId(1);

/// Encode twice (the second hit is the cached path), then decode the
/// served bytes: the decoded state must *equal* the live one (equality
/// ignores the cache tag), which a stale frame cannot satisfy, and its
/// fresh-tag re-encode must reproduce the bytes structurally.
fn assert_cache_fresh<C>(state: &C, what: &str)
where
    C: Crdt + WireEncode + PartialEq + core::fmt::Debug,
{
    let first = state.to_bytes();
    assert_eq!(state.to_bytes(), first, "{what}: cached re-encode diverged");
    assert_eq!(
        state.encode_frame().as_ref(),
        first.as_slice(),
        "{what}: encode_frame diverged from to_bytes"
    );
    let decoded = C::from_bytes(&first).expect("cached frame must decode");
    assert_eq!(
        &decoded, state,
        "{what}: cached bytes describe a different state"
    );
    assert_eq!(
        decoded.to_bytes(),
        first,
        "{what}: structural re-encode diverged from cached frame"
    );
}

#[test]
fn op_apply_invalidates() {
    let mut s = AWSet::new();
    let _ = s.apply(&AWSetOp::Add(A, 1u8));
    let before = s.to_bytes();
    assert_cache_fresh(&s, "after add");
    let _ = s.apply(&AWSetOp::Add(A, 2u8));
    assert_ne!(s.to_bytes(), before, "mutation kept serving stale bytes");
    assert_cache_fresh(&s, "after second add");
    let _ = s.apply(&AWSetOp::Remove(1u8));
    assert_cache_fresh(&s, "after remove");
    let _ = s.apply(&AWSetOp::Clear);
    assert_cache_fresh(&s, "after clear");
}

#[test]
fn changing_join_invalidates_covered_join_does_not() {
    let mut x = ORMap::new();
    let d1 = x.put(A, 1u8, 10u16);
    let mut y = ORMap::new();
    let d2 = y.put(B, 2u8, 20u16);

    let cached = x.to_bytes();
    // Covered join: no change, the cached frame stays valid AND keeps
    // being served (the mutation epoch must not move).
    let epoch = x.mutation_epoch().expect("causal types report an epoch");
    assert!(!x.join_assign(d1));
    assert_eq!(
        x.mutation_epoch().unwrap(),
        epoch,
        "covered join must not bump the epoch"
    );
    assert_eq!(x.to_bytes(), cached);

    // Changing join: epoch bumps, frame invalidates.
    assert!(x.join_assign(d2));
    assert_ne!(x.mutation_epoch().unwrap(), epoch);
    assert_ne!(x.to_bytes(), cached);
    assert_cache_fresh(&x, "after changing join");
}

#[test]
fn delta_and_decompose_products_encode_fresh() {
    let mut s = RWSet::new();
    let _ = s.add(A, 1u8);
    let _ = s.add(B, 2u8);
    let _ = s.remove(A, 2u8);
    let _ = s.to_bytes(); // populate the source's cache
    let stale = RWSet::new();
    let d = s.delta(&stale);
    assert_cache_fresh(&d, "delta product");
    for part in s.decompose() {
        assert_cache_fresh(&part, "decomposed part");
    }
    // The source's own cache survived producing deltas and parts.
    assert_cache_fresh(&s, "delta source");
}

#[test]
fn decoded_states_encode_fresh_and_roundtrip() {
    let mut m = ORSetMap::new();
    let _ = m.add(A, 1u8, 10u16);
    let _ = m.add(B, 1u8, 20u16);
    let _ = m.remove_elem(&1, &10);
    let bytes = m.to_bytes();
    let decoded = ORSetMap::<u8, u16>::from_bytes(&bytes).expect("roundtrip");
    assert_eq!(decoded, m);
    assert_cache_fresh(&decoded, "decoded state");
    // Mutating the decoded copy must not resurrect the roundtripped bytes.
    let mut decoded = decoded;
    let _ = decoded.add(A, 2u8, 30u16);
    assert_ne!(decoded.to_bytes(), bytes);
    assert_cache_fresh(&decoded, "decoded then mutated");
}

#[test]
fn clones_do_not_share_stale_caches() {
    let mut f = EWFlag::new();
    let _ = f.enable(A);
    let _ = f.to_bytes(); // cache populated
    let mut g = f.clone();
    let _ = g.disable();
    // g mutated, f untouched: both must encode their own truth.
    assert_ne!(f.to_bytes(), g.to_bytes());
    assert_cache_fresh(&f, "original after clone mutated");
    assert_cache_fresh(&g, "mutated clone");
}

#[test]
fn bottom_states_encode_consistently() {
    // Fresh bottoms share epoch 0; their encodes must agree with each
    // other and with a bottom that was never encoded.
    let a = CCounter::new();
    let b = CCounter::bottom();
    assert_eq!(a.to_bytes(), b.to_bytes());
    assert_cache_fresh(&a, "bottom");
    let mut c = CCounter::new();
    let _ = c.add(A, 5);
    assert_ne!(c.to_bytes(), a.to_bytes());
    assert_cache_fresh(&c, "counter after add");
}

// ---------------------------------------------------------------------------
// Proptest: random interleavings of mutation and encoding
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Action {
    Op(ORMapOp<u8, u16>),
    JoinDelta(usize),
    Encode,
    EncodeFrame,
    CloneSwap,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    let op = prop_oneof![
        4 => (0u32..3, 0u8..5, 0u16..50)
            .prop_map(|(r, k, v)| ORMapOp::Put(ReplicaId(r), k, v)),
        2 => (0u8..5).prop_map(ORMapOp::Remove),
        1 => Just(ORMapOp::Clear),
    ];
    prop_oneof![
        4 => op.prop_map(Action::Op),
        2 => any::<usize>().prop_map(Action::JoinDelta),
        3 => Just(Action::Encode),
        2 => Just(Action::EncodeFrame),
        1 => Just(Action::CloneSwap),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any interleaving of ops, (re-)joins, encodes, frame encodes
    /// and clone-swaps, the probe's encode always equals the structural
    /// encode of a shadow twin that mutates identically but never
    /// encodes until checked.
    #[test]
    fn interleaved_mutation_and_encode_never_serves_stale_bytes(
        actions in pvec(action_strategy(), 1..32),
    ) {
        let mut probe = ORMap::<u8, u16>::new();
        let mut shadow = ORMap::<u8, u16>::new();
        let mut deltas: Vec<ORMap<u8, u16>> = Vec::new();
        for action in &actions {
            match action {
                Action::Op(op) => {
                    deltas.push(probe.apply(op));
                    let _ = shadow.apply(op);
                }
                Action::JoinDelta(i) => {
                    if deltas.is_empty() {
                        continue;
                    }
                    let d = deltas[i % deltas.len()].clone();
                    probe.join_assign(d.clone());
                    shadow.join_assign(d);
                }
                Action::Encode => {
                    prop_assert_eq!(probe.to_bytes(), shadow.clone().to_bytes());
                }
                Action::EncodeFrame => {
                    prop_assert_eq!(
                        probe.encode_frame().as_ref(),
                        shadow.clone().to_bytes().as_slice()
                    );
                }
                Action::CloneSwap => {
                    // Encoding through a clone then continuing on the
                    // clone must not confuse either cache.
                    let c = probe.clone();
                    let _ = c.to_bytes();
                    probe = c;
                }
            }
        }
        prop_assert_eq!(probe.to_bytes(), shadow.clone().to_bytes());
        prop_assert_eq!(&probe, &shadow);
    }

    /// DWFlag flavor of the same property (DotFun-rooted store, no map
    /// nesting) to cover the second encode path shape.
    #[test]
    fn dwflag_interleaving_never_serves_stale_bytes(
        toggles in pvec((0u32..3, any::<bool>(), any::<bool>()), 1..24),
    ) {
        let mut probe = DWFlag::new();
        let mut shadow = DWFlag::new();
        for (r, enable, encode_now) in &toggles {
            let r = ReplicaId(*r);
            if *enable {
                let _ = probe.enable(r);
                let _ = shadow.enable(r);
            } else {
                let _ = probe.disable(r);
                let _ = shadow.disable(r);
            }
            if *encode_now {
                prop_assert_eq!(probe.to_bytes(), shadow.clone().to_bytes());
            }
        }
        prop_assert_eq!(probe.to_bytes(), shadow.clone().to_bytes());
    }
}
