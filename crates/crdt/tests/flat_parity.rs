//! Differential parity: the flat causal representation against the
//! nested `BTreeMap`/`BTreeSet` representation it replaced.
//!
//! The flat rewrite changed the in-memory shape of every causal state
//! (coalesced dot runs, sorted vectors) but promised the *semantics* and
//! the *wire bytes* are untouched. This suite holds it to that: the
//! `nested` module below is a direct transcription of the old nested
//! implementation (clock + cloud context, `BTreeMap` stores, the generic
//! framework join), and every property drives a flat state and its nested
//! model through the same randomized schedule of ops, delta deliveries
//! and full-state joins — asserting equal values, equal element counts
//! and byte-identical encodes at every checkpoint, including after
//! cloud→clock compaction and delta repair of a stale replica.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

use crdt_lattice::{Bottom, Decompose, Dot, Lattice, ReplicaId, StateSize, VClock, WireEncode};
use crdt_types::{
    AWSet, AWSetOp, CCounter, CCounterOp, Crdt, DWFlag, DWFlagOp, EWFlag, EWFlagOp, ORMap, ORMapOp,
    ORSetMap, ORSetMapOp, RWSet, RWSetOp,
};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// The nested reference model (transcribed from the pre-flat implementation)
// ---------------------------------------------------------------------------

mod nested {
    use super::*;

    /// The old causal context: a contiguous vector-clock prefix plus a
    /// cloud of out-of-band dots, compacted opportunistically.
    #[derive(Debug, Clone, PartialEq, Eq, Default)]
    pub struct NCtx {
        clock: VClock,
        cloud: BTreeSet<Dot>,
    }

    impl NCtx {
        pub fn singleton(dot: Dot) -> Self {
            let mut c = Self::default();
            c.insert(dot);
            c
        }

        pub fn contains(&self, dot: &Dot) -> bool {
            self.clock.contains(dot) || self.cloud.contains(dot)
        }

        pub fn insert(&mut self, dot: Dot) -> bool {
            if self.contains(&dot) {
                return false;
            }
            if dot.seq == self.clock.get(dot.replica) + 1 {
                self.clock.observe(dot);
                self.compact(dot.replica);
            } else {
                self.cloud.insert(dot);
            }
            true
        }

        fn compact(&mut self, replica: ReplicaId) {
            let mut next = self.clock.get(replica) + 1;
            while self.cloud.remove(&Dot::new(replica, next)) {
                self.clock.observe(Dot::new(replica, next));
                next += 1;
            }
        }

        pub fn next_dot(&mut self, replica: ReplicaId) -> Dot {
            let dot = Dot::new(replica, self.clock.get(replica) + 1);
            self.insert(dot);
            dot
        }

        pub fn len(&self) -> u64 {
            self.clock.iter().map(|(_, s)| s).sum::<u64>() + self.cloud.len() as u64
        }

        pub fn iter(&self) -> impl Iterator<Item = Dot> + '_ {
            self.clock
                .iter()
                .flat_map(|(r, s)| (1..=s).map(move |q| Dot::new(r, q)))
                .chain(self.cloud.iter().copied())
        }

        pub fn union(&mut self, other: &NCtx) {
            for (r, s) in other.clock.iter() {
                for q in (self.clock.get(r) + 1)..=s {
                    self.insert(Dot::new(r, q));
                }
            }
            for d in &other.cloud {
                self.insert(*d);
            }
        }

        pub fn encode(&self, out: &mut Vec<u8>) {
            self.clock.encode(out);
            self.cloud.encode(out);
        }
    }

    /// The old dot-store algebra, on the nested containers.
    pub trait NStore: Clone + Debug + Eq + Default {
        fn for_each_dot(&self, f: &mut dyn FnMut(Dot));
        fn contains_dot(&self, d: &Dot) -> bool;
        fn is_empty(&self) -> bool;
        fn join(&mut self, self_ctx: &NCtx, other: &Self, other_ctx: &NCtx);
        fn parts(&self) -> Vec<(Dot, Self)>;
        fn encode(&self, out: &mut Vec<u8>);
    }

    #[derive(Debug, Clone, PartialEq, Eq, Default)]
    pub struct NSet(pub BTreeSet<Dot>);

    impl NStore for NSet {
        fn for_each_dot(&self, f: &mut dyn FnMut(Dot)) {
            for d in &self.0 {
                f(*d);
            }
        }

        fn contains_dot(&self, d: &Dot) -> bool {
            self.0.contains(d)
        }

        fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        fn join(&mut self, self_ctx: &NCtx, other: &Self, other_ctx: &NCtx) {
            let mine: Vec<Dot> = self.0.iter().copied().collect();
            for d in mine {
                if !other.0.contains(&d) && other_ctx.contains(&d) {
                    self.0.remove(&d);
                }
            }
            for d in &other.0 {
                if !self.0.contains(d) && !self_ctx.contains(d) {
                    self.0.insert(*d);
                }
            }
        }

        fn parts(&self) -> Vec<(Dot, Self)> {
            self.0
                .iter()
                .map(|d| (*d, NSet(BTreeSet::from([*d]))))
                .collect()
        }

        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
        }
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct NFun<V>(pub BTreeMap<Dot, V>);

    impl<V> Default for NFun<V> {
        fn default() -> Self {
            NFun(BTreeMap::new())
        }
    }

    impl<V: Clone + Debug + Eq + Ord + WireEncode> NStore for NFun<V> {
        fn for_each_dot(&self, f: &mut dyn FnMut(Dot)) {
            for d in self.0.keys() {
                f(*d);
            }
        }

        fn contains_dot(&self, d: &Dot) -> bool {
            self.0.contains_key(d)
        }

        fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        fn join(&mut self, self_ctx: &NCtx, other: &Self, other_ctx: &NCtx) {
            let mine: Vec<Dot> = self.0.keys().copied().collect();
            for d in mine {
                if !other.0.contains_key(&d) && other_ctx.contains(&d) {
                    self.0.remove(&d);
                }
            }
            for (d, v) in &other.0 {
                if !self.0.contains_key(d) && !self_ctx.contains(d) {
                    self.0.insert(*d, v.clone());
                }
            }
        }

        fn parts(&self) -> Vec<(Dot, Self)> {
            self.0
                .iter()
                .map(|(d, v)| (*d, NFun(BTreeMap::from([(*d, v.clone())]))))
                .collect()
        }

        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
        }
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct NMap<K: Ord, S>(pub BTreeMap<K, S>);

    impl<K: Ord, S> Default for NMap<K, S> {
        fn default() -> Self {
            NMap(BTreeMap::new())
        }
    }

    impl<K: Ord + Clone + Debug + WireEncode, S: NStore> NStore for NMap<K, S> {
        fn for_each_dot(&self, f: &mut dyn FnMut(Dot)) {
            for s in self.0.values() {
                s.for_each_dot(f);
            }
        }

        fn contains_dot(&self, d: &Dot) -> bool {
            self.0.values().any(|s| s.contains_dot(d))
        }

        fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        fn join(&mut self, self_ctx: &NCtx, other: &Self, other_ctx: &NCtx) {
            let keys: BTreeSet<K> = self.0.keys().chain(other.0.keys()).cloned().collect();
            for k in keys {
                let mut s = self.0.remove(&k).unwrap_or_default();
                let empty = S::default();
                let ts = other.0.get(&k).unwrap_or(&empty);
                s.join(self_ctx, ts, other_ctx);
                if !s.is_empty() {
                    self.0.insert(k, s);
                }
            }
        }

        fn parts(&self) -> Vec<(Dot, Self)> {
            let mut out = Vec::new();
            for (k, s) in &self.0 {
                for (d, part) in s.parts() {
                    out.push((d, NMap(BTreeMap::from([(k.clone(), part)]))));
                }
            }
            out
        }

        fn encode(&self, out: &mut Vec<u8>) {
            (self.0.len() as u64).encode(out);
            for (k, s) in &self.0 {
                k.encode(out);
                s.encode(out);
            }
        }
    }

    /// The old `Causal<S>`: store + context, framework join, generic
    /// optimal delta, `store.encode ++ ctx.encode` wire layout.
    #[derive(Debug, Clone, PartialEq, Eq, Default)]
    pub struct NCausal<S> {
        pub store: S,
        pub ctx: NCtx,
    }

    impl<S: NStore> NCausal<S> {
        pub fn mutate(
            &mut self,
            replica: Option<ReplicaId>,
            kill: impl Fn(&Dot) -> bool,
            write: impl FnOnce(Dot) -> S,
        ) -> Self {
            let mut delta = Self::default();
            let mut dead_ctx = NCtx::default();
            self.store.for_each_dot(&mut |d| {
                if kill(&d) {
                    dead_ctx.insert(d);
                }
            });
            self.store.join(&self.ctx, &S::default(), &dead_ctx);
            delta.ctx.union(&dead_ctx);
            if let Some(r) = replica {
                let pre_ctx = self.ctx.clone();
                let dot = self.ctx.next_dot(r);
                let news = write(dot);
                self.store.join(&pre_ctx, &news, &NCtx::singleton(dot));
                delta.store = news;
                delta.ctx.insert(dot);
            }
            delta
        }

        pub fn join(&mut self, other: &Self) {
            self.store.join(&self.ctx, &other.store, &other.ctx);
            self.ctx.union(&other.ctx);
        }

        pub fn delta(&self, other: &Self) -> Self {
            let mut d = Self::default();
            for (dot, part) in self.store.parts() {
                if !other.ctx.contains(&dot) {
                    let d_ctx = d.ctx.clone();
                    d.store.join(&d_ctx, &part, &NCtx::singleton(dot));
                    d.ctx.insert(dot);
                }
            }
            for dot in self.ctx.iter() {
                if !self.store.contains_dot(&dot)
                    && (!other.ctx.contains(&dot) || other.store.contains_dot(&dot))
                {
                    d.ctx.insert(dot);
                }
            }
            d
        }

        pub fn count(&self) -> u64 {
            self.ctx.len()
        }

        pub fn to_bytes(&self) -> Vec<u8> {
            let mut out = Vec::new();
            self.store.encode(&mut out);
            self.ctx.encode(&mut out);
            out
        }
    }
}

use nested::{NCausal, NFun, NMap, NSet, NStore};

// ---------------------------------------------------------------------------
// Pairing a flat type with its nested model
// ---------------------------------------------------------------------------

/// A flat causal CRDT paired with its nested reference: ops apply to
/// both, deltas ship as (flat delta, nested delta) pairs, and parity is
/// asserted on value, element count and encoded bytes.
trait Parity: Sized {
    type Flat: Crdt + WireEncode + Bottom;
    type Store: NStore;
    type Val: Debug + PartialEq;

    fn apply(
        flat: &mut Self::Flat,
        model: &mut NCausal<Self::Store>,
        op: &<Self::Flat as Crdt>::Op,
    ) -> (Self::Flat, NCausal<Self::Store>);

    fn flat_value(flat: &Self::Flat) -> Self::Val;
    fn nested_value(model: &NCausal<Self::Store>) -> Self::Val;

    /// Which replica's local context mints the op's dot (ops without a
    /// dot may run anywhere).
    fn owner(op: &<Self::Flat as Crdt>::Op) -> Option<ReplicaId>;
}

fn assert_parity<P: Parity>(flat: &P::Flat, model: &NCausal<P::Store>, what: &str) {
    assert_eq!(
        P::flat_value(flat),
        P::nested_value(model),
        "{what}: value diverged"
    );
    assert_eq!(
        flat.count_elements(),
        model.count(),
        "{what}: element count diverged"
    );
    assert_eq!(flat.to_bytes(), model.to_bytes(), "{what}: bytes diverged");
    // The cached-frame path must agree with the from-scratch path.
    assert_eq!(
        flat.encode_frame().as_ref(),
        model.to_bytes(),
        "{what}: cached frame diverged"
    );
}

/// One schedule event: apply an op at its owning replica, deliver a
/// buffered delta to a replica, or full-state join one replica into
/// another.
#[derive(Debug, Clone)]
enum Event<Op> {
    Op(Op),
    DeliverDelta { delta: usize, to: usize },
    FullJoin { from: usize, to: usize },
}

fn event_strategy<Op: Debug + Clone + 'static>(
    op: impl Strategy<Value = Op> + 'static,
) -> impl Strategy<Value = Event<Op>> {
    prop_oneof![
        4 => op.prop_map(Event::Op),
        3 => (any::<usize>(), 0usize..3)
            .prop_map(|(delta, to)| Event::DeliverDelta { delta, to }),
        2 => (0usize..3, 0usize..3).prop_map(|(from, to)| Event::FullJoin { from, to }),
    ]
}

/// Run a schedule over 3 (flat, nested) replica pairs, checking parity on
/// every replica after every event, then converge everyone and check the
/// lagging replica repairs to parity via the optimal delta.
fn run_parity_schedule<P: Parity>(events: Vec<Event<<P::Flat as Crdt>::Op>>)
where
    <P::Flat as Crdt>::Op: Clone,
{
    let mut flats: Vec<P::Flat> = (0..3).map(|_| P::Flat::bottom()).collect();
    let mut models: Vec<NCausal<P::Store>> = (0..3).map(|_| NCausal::default()).collect();
    let mut deltas: Vec<(P::Flat, NCausal<P::Store>)> = Vec::new();

    for event in &events {
        match event {
            Event::Op(op) => {
                let owner = P::owner(op).map(|r| r.index()).unwrap_or(0) % 3;
                let (fd, nd) = P::apply(&mut flats[owner], &mut models[owner], op);
                deltas.push((fd, nd));
            }
            Event::DeliverDelta { delta, to } => {
                if deltas.is_empty() {
                    continue;
                }
                let (fd, nd) = &deltas[delta % deltas.len()];
                flats[*to].join_assign(fd.clone());
                models[*to].join(nd);
            }
            Event::FullJoin { from, to } => {
                if from == to {
                    continue;
                }
                let (fd, nd) = (flats[*from].clone(), models[*from].clone());
                flats[*to].join_assign(fd);
                models[*to].join(&nd);
            }
        }
        for i in 0..3 {
            assert_parity::<P>(&flats[i], &models[i], "mid-schedule");
        }
    }

    // Keep replica 2 stale, converge 0 and 1 fully (this also exercises
    // cloud→clock compaction in the nested model as delivery gaps fill,
    // and run coalescing in the flat one).
    let stale_flat = flats[2].clone();
    let stale_model = models[2].clone();
    for (fd, nd) in &deltas {
        flats[0].join_assign(fd.clone());
        models[0].join(nd);
    }
    let (f1, n1) = (flats[1].clone(), models[1].clone());
    flats[0].join_assign(f1);
    models[0].join(&n1);
    assert_parity::<P>(&flats[0], &models[0], "converged");

    // Repair-after-compaction: the optimal delta from the converged
    // (fully compacted) state must repair the stale replica identically
    // in both representations.
    let flat_repair = flats[0].delta(&stale_flat);
    let model_repair = models[0].delta(&stale_model);
    let mut flat_stale = stale_flat;
    let mut model_stale = stale_model;
    flat_stale.join_assign(flat_repair);
    model_stale.join(&model_repair);
    assert_parity::<P>(&flat_stale, &model_stale, "repaired");
    assert_eq!(
        flat_stale.to_bytes(),
        flats[0].to_bytes(),
        "repair did not reach the converged state"
    );
}

fn replica() -> impl Strategy<Value = ReplicaId> {
    (0u32..3).prop_map(ReplicaId)
}

// ---------------------------------------------------------------------------
// The seven causal types, one Parity impl each
// ---------------------------------------------------------------------------

struct AwSetParity;

impl Parity for AwSetParity {
    type Flat = AWSet<u8>;
    type Store = NFun<u8>;
    type Val = BTreeSet<u8>;

    fn apply(
        flat: &mut Self::Flat,
        model: &mut NCausal<Self::Store>,
        op: &AWSetOp<u8>,
    ) -> (Self::Flat, NCausal<Self::Store>) {
        let nd = match op {
            AWSetOp::Add(r, e) => {
                let kill: BTreeSet<Dot> = model
                    .store
                    .0
                    .iter()
                    .filter(|(_, v)| *v == e)
                    .map(|(d, _)| *d)
                    .collect();
                let e = *e;
                model.mutate(
                    Some(*r),
                    |d| kill.contains(d),
                    |dot| NFun(BTreeMap::from([(dot, e)])),
                )
            }
            AWSetOp::Remove(e) => {
                let kill: BTreeSet<Dot> = model
                    .store
                    .0
                    .iter()
                    .filter(|(_, v)| *v == e)
                    .map(|(d, _)| *d)
                    .collect();
                model.mutate(None, |d| kill.contains(d), |_| NFun::default())
            }
            AWSetOp::Clear => model.mutate(None, |_| true, |_| NFun::default()),
        };
        (flat.apply(op), nd)
    }

    fn flat_value(flat: &Self::Flat) -> BTreeSet<u8> {
        flat.value()
    }

    fn nested_value(model: &NCausal<Self::Store>) -> BTreeSet<u8> {
        model.store.0.values().copied().collect()
    }

    fn owner(op: &AWSetOp<u8>) -> Option<ReplicaId> {
        match op {
            AWSetOp::Add(r, _) => Some(*r),
            _ => None,
        }
    }
}

struct EwFlagParity;

impl Parity for EwFlagParity {
    type Flat = EWFlag;
    type Store = NFun<()>;
    type Val = bool;

    fn apply(
        flat: &mut Self::Flat,
        model: &mut NCausal<Self::Store>,
        op: &EWFlagOp,
    ) -> (Self::Flat, NCausal<Self::Store>) {
        let nd = match op {
            EWFlagOp::Enable(r) => {
                model.mutate(Some(*r), |_| true, |dot| NFun(BTreeMap::from([(dot, ())])))
            }
            EWFlagOp::Disable => model.mutate(None, |_| true, |_| NFun::default()),
        };
        (flat.apply(op), nd)
    }

    fn flat_value(flat: &Self::Flat) -> bool {
        flat.value()
    }

    fn nested_value(model: &NCausal<Self::Store>) -> bool {
        !model.store.0.is_empty()
    }

    fn owner(op: &EWFlagOp) -> Option<ReplicaId> {
        match op {
            EWFlagOp::Enable(r) => Some(*r),
            EWFlagOp::Disable => None,
        }
    }
}

struct CCounterParity;

impl Parity for CCounterParity {
    type Flat = CCounter;
    type Store = NFun<i64>;
    type Val = i64;

    fn apply(
        flat: &mut Self::Flat,
        model: &mut NCausal<Self::Store>,
        op: &CCounterOp,
    ) -> (Self::Flat, NCausal<Self::Store>) {
        let nd = match op {
            CCounterOp::Add(r, by) => {
                let current: i64 = model
                    .store
                    .0
                    .iter()
                    .filter(|(d, _)| d.replica == *r)
                    .map(|(_, v)| *v)
                    .sum();
                let r2 = *r;
                model.mutate(
                    Some(*r),
                    |d| d.replica == r2,
                    |dot| NFun(BTreeMap::from([(dot, current + by)])),
                )
            }
            CCounterOp::Reset => model.mutate(None, |_| true, |_| NFun::default()),
        };
        (flat.apply(op), nd)
    }

    fn flat_value(flat: &Self::Flat) -> i64 {
        flat.value()
    }

    fn nested_value(model: &NCausal<Self::Store>) -> i64 {
        model.store.0.values().sum()
    }

    fn owner(op: &CCounterOp) -> Option<ReplicaId> {
        match op {
            CCounterOp::Add(r, _) => Some(*r),
            CCounterOp::Reset => None,
        }
    }
}

struct OrMapParity;

impl Parity for OrMapParity {
    type Flat = ORMap<u8, u16>;
    type Store = NMap<u8, NFun<u16>>;
    type Val = BTreeMap<u8, Vec<u16>>;

    fn apply(
        flat: &mut Self::Flat,
        model: &mut NCausal<Self::Store>,
        op: &ORMapOp<u8, u16>,
    ) -> (Self::Flat, NCausal<Self::Store>) {
        let key_dots = |model: &NCausal<Self::Store>, k: &u8| -> BTreeSet<Dot> {
            model
                .store
                .0
                .get(k)
                .map(|f| f.0.keys().copied().collect())
                .unwrap_or_default()
        };
        let nd = match op {
            ORMapOp::Put(r, k, v) => {
                let kill = key_dots(model, k);
                let (k, v) = (*k, *v);
                model.mutate(
                    Some(*r),
                    |d| kill.contains(d),
                    |dot| NMap(BTreeMap::from([(k, NFun(BTreeMap::from([(dot, v)])))])),
                )
            }
            ORMapOp::Remove(k) => {
                let kill = key_dots(model, k);
                model.mutate(None, |d| kill.contains(d), |_| NMap::default())
            }
            ORMapOp::Clear => model.mutate(None, |_| true, |_| NMap::default()),
        };
        (flat.apply(op), nd)
    }

    fn flat_value(flat: &Self::Flat) -> Self::Val {
        flat.value()
    }

    fn nested_value(model: &NCausal<Self::Store>) -> Self::Val {
        model
            .store
            .0
            .iter()
            .map(|(k, f)| (*k, f.0.values().copied().collect()))
            .collect()
    }

    fn owner(op: &ORMapOp<u8, u16>) -> Option<ReplicaId> {
        match op {
            ORMapOp::Put(r, _, _) => Some(*r),
            _ => None,
        }
    }
}

struct OrSetMapParity;

impl Parity for OrSetMapParity {
    type Flat = ORSetMap<u8, u16>;
    type Store = NMap<u8, NMap<u16, NSet>>;
    type Val = BTreeMap<u8, BTreeSet<u16>>;

    fn apply(
        flat: &mut Self::Flat,
        model: &mut NCausal<Self::Store>,
        op: &ORSetMapOp<u8, u16>,
    ) -> (Self::Flat, NCausal<Self::Store>) {
        let elem_dots = |model: &NCausal<Self::Store>, k: &u8, e: &u16| -> BTreeSet<Dot> {
            model
                .store
                .0
                .get(k)
                .and_then(|sets| sets.0.get(e))
                .map(|ds| ds.0.clone())
                .unwrap_or_default()
        };
        let nd = match op {
            ORSetMapOp::Add(r, k, e) => {
                let kill = elem_dots(model, k, e);
                let (k, e) = (*k, *e);
                model.mutate(
                    Some(*r),
                    |d| kill.contains(d),
                    |dot| {
                        NMap(BTreeMap::from([(
                            k,
                            NMap(BTreeMap::from([(e, NSet(BTreeSet::from([dot])))])),
                        )]))
                    },
                )
            }
            ORSetMapOp::RemoveElem(k, e) => {
                let kill = elem_dots(model, k, e);
                model.mutate(None, |d| kill.contains(d), |_| NMap::default())
            }
            ORSetMapOp::RemoveKey(k) => {
                let mut kill = BTreeSet::new();
                if let Some(sets) = model.store.0.get(k) {
                    sets.for_each_dot(&mut |d| {
                        kill.insert(d);
                    });
                }
                model.mutate(None, |d| kill.contains(d), |_| NMap::default())
            }
        };
        (flat.apply(op), nd)
    }

    fn flat_value(flat: &Self::Flat) -> Self::Val {
        flat.value()
    }

    fn nested_value(model: &NCausal<Self::Store>) -> Self::Val {
        model
            .store
            .0
            .iter()
            .map(|(k, sets)| (*k, sets.0.keys().copied().collect()))
            .collect()
    }

    fn owner(op: &ORSetMapOp<u8, u16>) -> Option<ReplicaId> {
        match op {
            ORSetMapOp::Add(r, _, _) => Some(*r),
            _ => None,
        }
    }
}

struct RwSetParity;

impl Parity for RwSetParity {
    type Flat = RWSet<u8>;
    type Store = NMap<u8, NFun<bool>>;
    type Val = BTreeSet<u8>;

    fn apply(
        flat: &mut Self::Flat,
        model: &mut NCausal<Self::Store>,
        op: &RWSetOp<u8>,
    ) -> (Self::Flat, NCausal<Self::Store>) {
        let (r, e, present) = match op {
            RWSetOp::Add(r, e) => (*r, *e, true),
            RWSetOp::Remove(r, e) => (*r, *e, false),
        };
        let kill: BTreeSet<Dot> = model
            .store
            .0
            .get(&e)
            .map(|votes| votes.0.keys().copied().collect())
            .unwrap_or_default();
        let nd = model.mutate(
            Some(r),
            |d| kill.contains(d),
            |dot| {
                NMap(BTreeMap::from([(
                    e,
                    NFun(BTreeMap::from([(dot, present)])),
                )]))
            },
        );
        (flat.apply(op), nd)
    }

    fn flat_value(flat: &Self::Flat) -> BTreeSet<u8> {
        flat.value()
    }

    fn nested_value(model: &NCausal<Self::Store>) -> BTreeSet<u8> {
        model
            .store
            .0
            .iter()
            .filter(|(_, votes)| votes.0.values().any(|v| *v) && !votes.0.values().any(|v| !*v))
            .map(|(e, _)| *e)
            .collect()
    }

    fn owner(op: &RWSetOp<u8>) -> Option<ReplicaId> {
        match op {
            RWSetOp::Add(r, _) | RWSetOp::Remove(r, _) => Some(*r),
        }
    }
}

struct DwFlagParity;

impl Parity for DwFlagParity {
    type Flat = DWFlag;
    type Store = NFun<bool>;
    type Val = bool;

    fn apply(
        flat: &mut Self::Flat,
        model: &mut NCausal<Self::Store>,
        op: &DWFlagOp,
    ) -> (Self::Flat, NCausal<Self::Store>) {
        let (r, enabled) = match op {
            DWFlagOp::Enable(r) => (*r, true),
            DWFlagOp::Disable(r) => (*r, false),
        };
        let nd = model.mutate(
            Some(r),
            |_| true,
            |dot| NFun(BTreeMap::from([(dot, enabled)])),
        );
        (flat.apply(op), nd)
    }

    fn flat_value(flat: &Self::Flat) -> bool {
        flat.value()
    }

    fn nested_value(model: &NCausal<Self::Store>) -> bool {
        model.store.0.values().any(|v| *v) && !model.store.0.values().any(|v| !*v)
    }

    fn owner(op: &DWFlagOp) -> Option<ReplicaId> {
        match op {
            DWFlagOp::Enable(r) | DWFlagOp::Disable(r) => Some(*r),
        }
    }
}

// ---------------------------------------------------------------------------
// Op strategies + the suites
// ---------------------------------------------------------------------------

fn awset_op() -> impl Strategy<Value = AWSetOp<u8>> {
    prop_oneof![
        4 => (replica(), 0u8..6).prop_map(|(r, e)| AWSetOp::Add(r, e)),
        2 => (0u8..6).prop_map(AWSetOp::Remove),
        1 => Just(AWSetOp::Clear),
    ]
}

fn ewflag_op() -> impl Strategy<Value = EWFlagOp> {
    prop_oneof![
        replica().prop_map(EWFlagOp::Enable),
        Just(EWFlagOp::Disable),
    ]
}

fn ccounter_op() -> impl Strategy<Value = CCounterOp> {
    prop_oneof![
        4 => (replica(), -5i64..5).prop_map(|(r, by)| CCounterOp::Add(r, by)),
        1 => Just(CCounterOp::Reset),
    ]
}

fn ormap_op() -> impl Strategy<Value = ORMapOp<u8, u16>> {
    prop_oneof![
        4 => (replica(), 0u8..5, 0u16..50).prop_map(|(r, k, v)| ORMapOp::Put(r, k, v)),
        2 => (0u8..5).prop_map(ORMapOp::Remove),
        1 => Just(ORMapOp::Clear),
    ]
}

fn orsetmap_op() -> impl Strategy<Value = ORSetMapOp<u8, u16>> {
    prop_oneof![
        4 => (replica(), 0u8..4, 0u16..6).prop_map(|(r, k, e)| ORSetMapOp::Add(r, k, e)),
        2 => (0u8..4, 0u16..6).prop_map(|(k, e)| ORSetMapOp::RemoveElem(k, e)),
        1 => (0u8..4).prop_map(ORSetMapOp::RemoveKey),
    ]
}

fn rwset_op() -> impl Strategy<Value = RWSetOp<u8>> {
    prop_oneof![
        (replica(), 0u8..6).prop_map(|(r, e)| RWSetOp::Add(r, e)),
        (replica(), 0u8..6).prop_map(|(r, e)| RWSetOp::Remove(r, e)),
    ]
}

fn dwflag_op() -> impl Strategy<Value = DWFlagOp> {
    prop_oneof![
        replica().prop_map(DWFlagOp::Enable),
        replica().prop_map(DWFlagOp::Disable),
    ]
}

macro_rules! parity_suite {
    ($name:ident, $parity:ty, $op_strat:expr) => {
        mod $name {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(32))]

                #[test]
                fn flat_matches_nested(events in pvec(event_strategy($op_strat), 0..24)) {
                    run_parity_schedule::<$parity>(events);
                }
            }
        }
    };
}

parity_suite!(awset_parity, AwSetParity, awset_op());
parity_suite!(ewflag_parity, EwFlagParity, ewflag_op());
parity_suite!(ccounter_parity, CCounterParity, ccounter_op());
parity_suite!(ormap_parity, OrMapParity, ormap_op());
parity_suite!(orsetmap_parity, OrSetMapParity, orsetmap_op());
parity_suite!(rwset_parity, RwSetParity, rwset_op());
parity_suite!(dwflag_parity, DwFlagParity, dwflag_op());

// ---------------------------------------------------------------------------
// Deterministic regression cases
// ---------------------------------------------------------------------------

/// Out-of-order delta delivery builds a cloud in the nested model; gap
/// fill compacts it into the clock. The flat runs must encode the same
/// clock/cloud split at every stage.
#[test]
fn cloud_compaction_parity() {
    let a = ReplicaId(0);
    let mut source = AWSet::new();
    let mut source_n: NCausal<NFun<u8>> = NCausal::default();
    let mut deltas = Vec::new();
    for e in 0..5u8 {
        let (fd, nd) = AwSetParity::apply(&mut source, &mut source_n, &AWSetOp::Add(a, e));
        deltas.push((fd, nd));
    }
    let mut obs = AWSet::new();
    let mut obs_n: NCausal<NFun<u8>> = NCausal::default();
    // Deliver 4, 2, 0 — all gaps, everything in the cloud.
    for i in [4usize, 2, 0] {
        obs.join_assign(deltas[i].0.clone());
        obs_n.join(&deltas[i].1);
        assert_parity::<AwSetParity>(&obs, &obs_n, "gapped");
    }
    // Deliver 1, 3 — fills the gaps, cloud compacts to a pure clock.
    for i in [1usize, 3] {
        obs.join_assign(deltas[i].0.clone());
        obs_n.join(&deltas[i].1);
        assert_parity::<AwSetParity>(&obs, &obs_n, "filling");
    }
    assert_eq!(obs.to_bytes(), source.to_bytes(), "converged to the source");
}

/// Decode parity: bytes produced by the nested model decode into the flat
/// representation and re-encode byte-identically (honest frames only).
#[test]
fn nested_bytes_roundtrip_through_flat() {
    let (a, b) = (ReplicaId(0), ReplicaId(1));
    let mut flat = ORSetMap::new();
    let mut model: NCausal<NMap<u8, NMap<u16, NSet>>> = NCausal::default();
    for op in [
        ORSetMapOp::Add(a, 1, 10),
        ORSetMapOp::Add(b, 1, 20),
        ORSetMapOp::RemoveElem(1, 10),
        ORSetMapOp::Add(a, 2, 30),
        ORSetMapOp::RemoveKey(2),
    ] {
        let _ = OrSetMapParity::apply(&mut flat, &mut model, &op);
    }
    let bytes = model.to_bytes();
    let decoded = ORSetMap::<u8, u16>::from_bytes(&bytes).expect("nested bytes decode flat");
    assert_eq!(decoded, flat);
    assert_eq!(decoded.to_bytes(), bytes, "re-encode is byte-identical");
}
