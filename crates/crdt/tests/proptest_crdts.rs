//! Property-based testing of the CRDT catalog.
//!
//! Three families of properties:
//!
//! 1. **δ-mutator optimality** (§III-B): for random states and ops,
//!    `apply` must inflate, repair, and return exactly `Δ(m(x), x)`.
//! 2. **Convergence under arbitrary delivery**: replicas applying random
//!    op sequences and exchanging deltas in any order/duplication converge.
//! 3. **Lattice laws** on states reachable through real operations (the
//!    fixtures in unit tests are hand-picked; these are op-generated).

use crdt_lattice::testing::check_all_laws;
use crdt_lattice::{Bottom, Lattice, Max, ReplicaId};
use crdt_types::testing::check_crdt_op;
use crdt_types::{
    Crdt, GCounter, GCounterOp, GMap, GMapOp, GSet, GSetOp, LWWOp, LWWRegister, LexCounter,
    LexCounterOp, PNCounter, PNCounterOp, TwoPSet, TwoPSetOp,
};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Op strategies
// ---------------------------------------------------------------------------

fn replica() -> impl Strategy<Value = ReplicaId> {
    (0u32..4).prop_map(ReplicaId)
}

fn gcounter_op() -> impl Strategy<Value = GCounterOp> {
    prop_oneof![
        replica().prop_map(GCounterOp::Inc),
        (replica(), 1u64..10).prop_map(|(r, n)| GCounterOp::IncBy(r, n)),
    ]
}

fn pncounter_op() -> impl Strategy<Value = PNCounterOp> {
    prop_oneof![
        replica().prop_map(PNCounterOp::Inc),
        replica().prop_map(PNCounterOp::Dec),
        (replica(), 1u64..10).prop_map(|(r, n)| PNCounterOp::IncBy(r, n)),
        (replica(), 1u64..10).prop_map(|(r, n)| PNCounterOp::DecBy(r, n)),
    ]
}

fn gset_op() -> impl Strategy<Value = GSetOp<u16>> {
    (0u16..24).prop_map(GSetOp::Add)
}

fn twopset_op() -> impl Strategy<Value = TwoPSetOp<u16>> {
    prop_oneof![
        (0u16..16).prop_map(TwoPSetOp::Add),
        (0u16..16).prop_map(TwoPSetOp::Remove),
    ]
}

fn gmap_op() -> impl Strategy<Value = GMapOp<u16, Max<u64>>> {
    (0u16..8, 1u64..12).prop_map(|(key, v)| GMapOp::Apply {
        key,
        value: Max::new(v),
    })
}

fn lww_op() -> impl Strategy<Value = LWWOp<u32>> {
    (1u64..16, replica(), 0u32..100).prop_map(|(ts, replica, value)| LWWOp::Write {
        ts,
        replica,
        value,
    })
}

fn lexcounter_op() -> impl Strategy<Value = LexCounterOp> {
    // Single-writer constraint: ownership is enforced by the replica id
    // embedded in the op; we route ops to their owner below.
    (replica(), -10i64..10).prop_map(|(r, n)| LexCounterOp::Add(r, n))
}

// ---------------------------------------------------------------------------
// Generic property drivers
// ---------------------------------------------------------------------------

/// Apply ops sequentially, checking the δ-mutator contract at every step,
/// and return all intermediate states.
fn run_checked<C: Crdt>(start: C, ops: &[C::Op]) -> Vec<C> {
    let mut states = vec![start];
    for op in ops {
        let next = check_crdt_op(states.last().unwrap(), op);
        states.push(next);
    }
    states
}

/// N replicas each apply their own op slice; all deltas are then delivered
/// to everyone in a scrambled, duplicated order. All replicas must converge
/// to the join of everything.
fn scrambled_delivery_converges<C: Crdt>(per_replica_ops: Vec<Vec<C::Op>>, seed_order: u64) {
    let n = per_replica_ops.len();
    let mut replicas: Vec<C> = (0..n).map(|_| C::bottom()).collect();
    let mut deltas: Vec<C> = Vec::new();
    for (i, ops) in per_replica_ops.iter().enumerate() {
        for op in ops {
            deltas.push(replicas[i].apply(op));
        }
    }
    // Deterministic scramble + duplication driven by the seed.
    let mut order: Vec<usize> = (0..deltas.len()).collect();
    let mut s = seed_order.wrapping_add(0x9e37_79b9_7f4a_7c15);
    for i in (1..order.len()).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        order.swap(i, (s as usize) % (i + 1));
    }
    for r in replicas.iter_mut() {
        for &i in &order {
            r.join_assign(deltas[i].clone());
            if i % 3 == 0 {
                // Duplicate delivery.
                r.join_assign(deltas[i].clone());
            }
        }
    }
    for w in replicas.windows(2) {
        assert_eq!(w[0], w[1], "replicas diverged under scrambled delivery");
    }
}

macro_rules! crdt_property_suite {
    ($mod_name:ident, $ty:ty, $op_strat:expr) => {
        mod $mod_name {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(48))]

                #[test]
                fn delta_mutators_optimal(ops in pvec($op_strat, 1..12)) {
                    run_checked(<$ty>::bottom(), &ops);
                }

                #[test]
                fn reachable_states_obey_laws(ops in pvec($op_strat, 1..8)) {
                    let states = run_checked(<$ty>::bottom(), &ops);
                    // Sub-sample to keep the O(n³) law check fast.
                    let samples: Vec<_> = states.iter().step_by(2).cloned().collect();
                    check_all_laws(&samples);
                }

                #[test]
                fn converges_under_scrambled_delivery(
                    ops_a in pvec($op_strat, 0..8),
                    ops_b in pvec($op_strat, 0..8),
                    ops_c in pvec($op_strat, 0..8),
                    seed in any::<u64>(),
                ) {
                    scrambled_delivery_converges::<$ty>(vec![ops_a, ops_b, ops_c], seed);
                }
            }
        }
    };
}

crdt_property_suite!(gcounter_props, GCounter, gcounter_op());
crdt_property_suite!(pncounter_props, PNCounter, pncounter_op());
crdt_property_suite!(gset_props, GSet<u16>, gset_op());
crdt_property_suite!(twopset_props, TwoPSet<u16>, twopset_op());
crdt_property_suite!(gmap_props, GMap<u16, Max<u64>>, gmap_op());
crdt_property_suite!(lww_props, LWWRegister<u32>, lww_op());

// LexCounter needs the single-writer discipline: each replica only applies
// its own ops, so the generic scrambled-delivery driver (which applies all
// ops at one replica) is replaced by an owner-routed variant.
mod lexcounter_props {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn delta_mutators_optimal(ops in pvec(lexcounter_op(), 1..10)) {
            // Route each op through a per-owner replica, checking the
            // contract against that owner's state.
            let mut owners: std::collections::BTreeMap<ReplicaId, LexCounter> =
                Default::default();
            for op in &ops {
                let LexCounterOp::Add(r, _) = *op;
                let state = owners.entry(r).or_insert_with(LexCounter::bottom);
                *state = check_crdt_op(state, op);
            }
        }

        #[test]
        fn owner_routed_convergence(
            ops in pvec(lexcounter_op(), 0..12),
            seed in any::<u64>(),
        ) {
            let mut owners: std::collections::BTreeMap<ReplicaId, LexCounter> =
                Default::default();
            let mut deltas = Vec::new();
            let mut expected_total = 0i64;
            for op in &ops {
                let LexCounterOp::Add(r, n) = *op;
                expected_total += n;
                let state = owners.entry(r).or_insert_with(LexCounter::bottom);
                deltas.push(state.apply(op));
            }
            // Two observers receive the deltas in different orders, with
            // duplicates.
            let mut x = LexCounter::bottom();
            let mut y = LexCounter::bottom();
            for d in &deltas {
                x.join_assign(d.clone());
            }
            let mut order: Vec<usize> = (0..deltas.len()).collect();
            let mut s = seed;
            for i in (1..order.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
                order.swap(i, (s as usize) % (i + 1));
            }
            for &i in &order {
                y.join_assign(deltas[i].clone());
                y.join_assign(deltas[i].clone());
            }
            prop_assert_eq!(&x, &y);
            prop_assert_eq!(x.total(), expected_total);
        }
    }
}

// Cross-type sanity: GCounter value equals total increments regardless of
// how deltas are interleaved.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gcounter_value_counts_all_ops(ops in pvec(gcounter_op(), 0..20)) {
        // One replica per id, each applying its own ops (counters are
        // per-replica structures; two replicas must not mutate the same
        // entry concurrently).
        let mut owners: std::collections::BTreeMap<ReplicaId, GCounter> = Default::default();
        let mut expected = 0u64;
        for op in &ops {
            let (r, n) = match *op {
                GCounterOp::Inc(r) => (r, 1),
                GCounterOp::IncBy(r, n) => (r, n),
            };
            expected += n;
            let c = owners.entry(r).or_insert_with(GCounter::bottom);
            let _ = c.apply(op);
        }
        let mut merged = GCounter::bottom();
        for c in owners.values() {
            merged.join_assign(c.clone());
        }
        prop_assert_eq!(merged.value(), expected);
    }

    #[test]
    fn gset_union_of_histories(a in pvec(0u16..64, 0..24), b in pvec(0u16..64, 0..24)) {
        let mut x = GSet::new();
        let mut y = GSet::new();
        for e in &a { let _ = x.add(*e); }
        for e in &b { let _ = y.add(*e); }
        let merged = x.join(y);
        let expect: std::collections::BTreeSet<u16> =
            a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged.len(), expect.len());
        for e in expect {
            prop_assert!(merged.contains(&e));
        }
    }
}

// ---------------------------------------------------------------------------
// Causal CRDTs: ops include removals, so convergence exercises the
// dot-store join's add-wins semantics under arbitrary delivery.
// ---------------------------------------------------------------------------

mod causal_props {
    use super::*;
    use crdt_types::{AWSet, AWSetOp, CCounter, CCounterOp, EWFlag, EWFlagOp};

    fn awset_op() -> impl Strategy<Value = AWSetOp<u8>> {
        prop_oneof![
            4 => (replica(), 0u8..6).prop_map(|(r, e)| AWSetOp::Add(r, e)),
            2 => (0u8..6).prop_map(AWSetOp::Remove),
            1 => Just(AWSetOp::Clear),
        ]
    }

    fn ewflag_op() -> impl Strategy<Value = EWFlagOp> {
        prop_oneof![
            replica().prop_map(EWFlagOp::Enable),
            Just(EWFlagOp::Disable),
        ]
    }

    fn ccounter_op() -> impl Strategy<Value = CCounterOp> {
        prop_oneof![
            4 => (replica(), -5i64..6).prop_map(|(r, n)| CCounterOp::Add(r, n)),
            1 => Just(CCounterOp::Reset),
        ]
    }

    /// Causal mutators mint dots from the *local* context, so the
    /// scrambled-delivery driver must route each op through its owning
    /// replica (two replicas generating the same dot would violate the
    /// uniqueness invariant).
    fn owner_routed_convergence<C, FK>(ops: Vec<C::Op>, owner_of: FK, seed: u64)
    where
        C: Crdt,
        FK: Fn(&C::Op) -> Option<ReplicaId>,
    {
        let mut owners: std::collections::BTreeMap<ReplicaId, C> = Default::default();
        let mut deltas = Vec::new();
        for op in &ops {
            // Ops without an owner (Remove/Clear/Disable/Reset) act on the
            // replica that has seen the most so far (replica 0 by
            // default) — any single replica is fine for dot uniqueness.
            let owner = owner_of(op).unwrap_or(ReplicaId(0));
            let state = owners.entry(owner).or_insert_with(C::bottom);
            deltas.push(state.apply(op));
        }
        // Exchange all deltas between owners first (they diverge
        // otherwise), then scramble-deliver everything to two observers.
        let mut order: Vec<usize> = (0..deltas.len()).collect();
        let mut s = seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (s as usize) % (i + 1));
        }
        let mut x = C::bottom();
        let mut y = C::bottom();
        for &i in &order {
            x.join_assign(deltas[i].clone());
            x.join_assign(deltas[i].clone());
        }
        for d in &deltas {
            y.join_assign(d.clone());
        }
        assert_eq!(x, y, "scrambled/duplicated delivery diverged");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn awset_delta_mutators_optimal(ops in pvec(awset_op(), 1..10)) {
            // Sequential application at one replica: every op must satisfy
            // the δ-mutator contract.
            run_checked(AWSet::<u8>::bottom(), &ops);
        }

        #[test]
        fn awset_reachable_states_obey_laws(ops in pvec(awset_op(), 1..6)) {
            let states = run_checked(AWSet::<u8>::bottom(), &ops);
            let samples: Vec<_> = states.iter().step_by(2).cloned().collect();
            check_all_laws(&samples);
        }

        #[test]
        fn awset_converges_owner_routed(ops in pvec(awset_op(), 0..14), seed in any::<u64>()) {
            owner_routed_convergence::<AWSet<u8>, _>(
                ops,
                |op| match op {
                    AWSetOp::Add(r, _) => Some(*r),
                    _ => None,
                },
                seed,
            );
        }

        #[test]
        fn ewflag_delta_mutators_optimal(ops in pvec(ewflag_op(), 1..10)) {
            run_checked(EWFlag::bottom(), &ops);
        }

        #[test]
        fn ccounter_delta_mutators_optimal(ops in pvec(ccounter_op(), 1..10)) {
            run_checked(CCounter::bottom(), &ops);
        }

        #[test]
        fn ccounter_reachable_states_obey_laws(ops in pvec(ccounter_op(), 1..6)) {
            let states = run_checked(CCounter::bottom(), &ops);
            let samples: Vec<_> = states.iter().step_by(2).cloned().collect();
            check_all_laws(&samples);
        }
    }
}
