//! Property-based testing of the dot-store framework types
//! ([`ORMap`], [`ORSetMap`], [`RWSet`], [`DWFlag`]).
//!
//! Same three property families as `proptest_crdts.rs` — δ-mutator
//! optimality, lattice laws on op-reachable states, convergence under
//! scrambled/duplicated delivery — plus framework-specific properties:
//! the nested decomposition reconstructs the state, and the optimal delta
//! to a random earlier snapshot repairs it exactly.

use crdt_lattice::testing::check_all_laws;
use crdt_lattice::{Bottom, Decompose, Lattice, ReplicaId};
use crdt_types::testing::check_crdt_op;
use crdt_types::{Crdt, DWFlag, DWFlagOp, ORMap, ORMapOp, ORSetMap, ORSetMapOp, RWSet, RWSetOp};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

fn replica() -> impl Strategy<Value = ReplicaId> {
    (0u32..4).prop_map(ReplicaId)
}

fn ormap_op() -> impl Strategy<Value = ORMapOp<u8, u16>> {
    prop_oneof![
        4 => (replica(), 0u8..5, 0u16..50).prop_map(|(r, k, v)| ORMapOp::Put(r, k, v)),
        2 => (0u8..5).prop_map(ORMapOp::Remove),
        1 => Just(ORMapOp::Clear),
    ]
}

fn orsetmap_op() -> impl Strategy<Value = ORSetMapOp<u8, u16>> {
    prop_oneof![
        4 => (replica(), 0u8..4, 0u16..6).prop_map(|(r, k, e)| ORSetMapOp::Add(r, k, e)),
        2 => (0u8..4, 0u16..6).prop_map(|(k, e)| ORSetMapOp::RemoveElem(k, e)),
        1 => (0u8..4).prop_map(ORSetMapOp::RemoveKey),
    ]
}

fn rwset_op() -> impl Strategy<Value = RWSetOp<u8>> {
    prop_oneof![
        (replica(), 0u8..6).prop_map(|(r, e)| RWSetOp::Add(r, e)),
        (replica(), 0u8..6).prop_map(|(r, e)| RWSetOp::Remove(r, e)),
    ]
}

fn dwflag_op() -> impl Strategy<Value = DWFlagOp> {
    prop_oneof![
        replica().prop_map(DWFlagOp::Enable),
        replica().prop_map(DWFlagOp::Disable),
    ]
}

/// Apply ops sequentially at one replica, checking the δ-mutator contract
/// at every step; return all intermediate states.
fn run_checked<C: Crdt>(start: C, ops: &[C::Op]) -> Vec<C> {
    let mut states = vec![start];
    for op in ops {
        let next = check_crdt_op(states.last().unwrap(), op);
        states.push(next);
    }
    states
}

/// Causal mutators mint dots from the local context, so each op is routed
/// through its owning replica; the resulting deltas are then delivered to
/// two observers in different (scrambled + duplicated) orders, which must
/// agree.
fn owner_routed_convergence<C, FK>(ops: Vec<C::Op>, owner_of: FK, seed: u64)
where
    C: Crdt,
    FK: Fn(&C::Op) -> Option<ReplicaId>,
{
    let mut owners: std::collections::BTreeMap<ReplicaId, C> = Default::default();
    let mut deltas = Vec::new();
    for op in &ops {
        let owner = owner_of(op).unwrap_or(ReplicaId(0));
        let state = owners.entry(owner).or_insert_with(C::bottom);
        deltas.push(state.apply(op));
    }
    let mut order: Vec<usize> = (0..deltas.len()).collect();
    let mut s = seed;
    for i in (1..order.len()).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        order.swap(i, (s as usize) % (i + 1));
    }
    let mut x = C::bottom();
    let mut y = C::bottom();
    for &i in &order {
        x.join_assign(deltas[i].clone());
        x.join_assign(deltas[i].clone());
    }
    for d in &deltas {
        y.join_assign(d.clone());
    }
    assert_eq!(x, y, "scrambled/duplicated delivery diverged");
}

/// `Δ(final, snapshot) ⊔ snapshot = final` for every prefix snapshot of an
/// op-generated history (the repair property RR relies on, §III-B).
fn delta_repairs_prefixes<C: Crdt>(ops: &[C::Op]) {
    let mut state = C::bottom();
    let mut snapshots = vec![state.clone()];
    for op in ops {
        let _ = state.apply(op);
        snapshots.push(state.clone());
    }
    let fin = snapshots.last().unwrap().clone();
    for snap in snapshots {
        let d = fin.delta(&snap);
        let repaired = snap.join(d);
        assert_eq!(repaired, fin, "Δ to a prefix snapshot failed to repair");
    }
}

macro_rules! dotstore_property_suite {
    ($mod_name:ident, $ty:ty, $op_strat:expr, $owner:expr) => {
        mod $mod_name {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(40))]

                #[test]
                fn delta_mutators_optimal(ops in pvec($op_strat, 1..10)) {
                    run_checked(<$ty>::bottom(), &ops);
                }

                #[test]
                fn reachable_states_obey_laws(ops in pvec($op_strat, 1..6)) {
                    let states = run_checked(<$ty>::bottom(), &ops);
                    let samples: Vec<_> = states.iter().step_by(2).cloned().collect();
                    check_all_laws(&samples);
                }

                #[test]
                fn converges_owner_routed(ops in pvec($op_strat, 0..14), seed in any::<u64>()) {
                    owner_routed_convergence::<$ty, _>(ops, $owner, seed);
                }

                #[test]
                fn decomposition_reconstructs(ops in pvec($op_strat, 1..10)) {
                    let mut state = <$ty>::bottom();
                    for op in &ops {
                        let _ = state.apply(op);
                    }
                    let rebuilt = state
                        .decompose()
                        .into_iter()
                        .fold(<$ty>::bottom(), |acc, p| acc.join(p));
                    prop_assert_eq!(rebuilt, state);
                }

                #[test]
                fn delta_repairs_any_prefix(ops in pvec($op_strat, 1..10)) {
                    delta_repairs_prefixes::<$ty>(&ops);
                }
            }
        }
    };
}

dotstore_property_suite!(ormap_props, ORMap<u8, u16>, ormap_op(), |op: &ORMapOp<u8, u16>| {
    match op {
        ORMapOp::Put(r, _, _) => Some(*r),
        _ => None,
    }
});

dotstore_property_suite!(
    orsetmap_props,
    ORSetMap<u8, u16>,
    orsetmap_op(),
    |op: &ORSetMapOp<u8, u16>| match op {
        ORSetMapOp::Add(r, _, _) => Some(*r),
        _ => None,
    }
);

dotstore_property_suite!(
    rwset_props,
    RWSet<u8>,
    rwset_op(),
    |op: &RWSetOp<u8>| match op {
        RWSetOp::Add(r, _) | RWSetOp::Remove(r, _) => Some(*r),
    }
);

dotstore_property_suite!(
    dwflag_props,
    DWFlag,
    dwflag_op(),
    |op: &DWFlagOp| match op {
        DWFlagOp::Enable(r) | DWFlagOp::Disable(r) => Some(*r),
    }
);

// ---------------------------------------------------------------------------
// Cross-flavor differential properties
// ---------------------------------------------------------------------------

mod differential {
    use super::*;
    use crdt_types::{AWSet, GSet, GSetOp};
    use std::collections::BTreeSet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// With adds only (no removals anywhere in the history), AWSet,
        /// RWSet and GSet must agree on the visible elements.
        #[test]
        fn add_only_sets_agree(adds in pvec((replica(), 0u8..8), 1..16)) {
            let mut aw = AWSet::bottom();
            let mut rw = RWSet::bottom();
            let mut g = GSet::bottom();
            for (r, e) in &adds {
                let _ = aw.add(*r, *e);
                let _ = rw.add(*r, *e);
                let _ = g.apply(&GSetOp::Add(*e));
            }
            let aw_v: BTreeSet<u8> = aw.value();
            let rw_v: BTreeSet<u8> = rw.value();
            let g_v: BTreeSet<u8> = g.value().into_iter().collect();
            prop_assert_eq!(&aw_v, &rw_v);
            prop_assert_eq!(&aw_v, &g_v);
        }

        /// Sequential histories (single replica, no concurrency): AWSet and
        /// RWSet agree — the flavors only differ on concurrent add/remove.
        #[test]
        fn sequential_sets_agree(ops in pvec((0u8..6, any::<bool>()), 1..20)) {
            let r = ReplicaId(0);
            let mut aw = AWSet::bottom();
            let mut rw = RWSet::bottom();
            for (e, is_add) in &ops {
                if *is_add {
                    let _ = aw.add(r, *e);
                    let _ = rw.add(r, *e);
                } else {
                    let _ = aw.remove(e);
                    let _ = rw.remove(r, *e);
                }
            }
            let aw_v: BTreeSet<u8> = aw.value();
            let rw_v: BTreeSet<u8> = rw.value();
            prop_assert_eq!(aw_v, rw_v);
        }
    }
}
