//! The [`Crdt`] trait: lattice state + typed operations + optimal
//! δ-mutators.
//!
//! The paper (§II) presents each data type as a lattice with *mutators*
//! `m` (full-state updates) and *δ-mutators* `mδ` with
//! `m(x) = x ⊔ mδ(x)`. §III-B shows that the optimal δ-mutator is derived
//! mechanically: `mδ(x) = Δ(m(x), x)`. The [`Crdt`] trait packages that
//! contract: [`Crdt::apply`] performs the mutation *and* returns its
//! optimal delta.
//!
//! Operations are first-class values ([`Crdt::Op`]) so the op-based
//! synchronization baseline (§V-B) can ship and replay them through its
//! causal middleware, and so workload generators can drive every protocol
//! from one description of "what happened".

use core::fmt::Debug;

use crdt_lattice::{Decompose, SizeModel, StateSize};

/// A state-based CRDT: a decomposable lattice driven by typed operations.
pub trait Crdt: Decompose + StateSize {
    /// The operation alphabet of the data type. Ops carry the acting
    /// replica where the semantics need it (e.g. `inc_i`).
    type Op: Clone + Debug;

    /// The query result type (the paper's `value(...)` function).
    type Value;

    /// Apply `op` as a mutation, returning the **optimal delta**
    /// `mδ(x) = Δ(m(x), x)`.
    ///
    /// Contract (checked by [`crate::testing::check_crdt_op`]):
    /// the mutation is an inflation, `delta ⊔ old = new`, and the returned
    /// delta equals `new.delta(&old)`.
    fn apply(&mut self, op: &Self::Op) -> Self;

    /// Query the current value.
    fn value(&self) -> Self::Value;

    /// Wire size of an operation under the byte model — used by the
    /// op-based baseline's transmission accounting.
    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64;

    /// A process-local **mutation epoch** for states that track one (the
    /// flat causal types): any data-changing mutation moves it to a
    /// process-unique value, and equal epochs imply equal data. Callers
    /// use it to key caches of state-derived values (encoded frames,
    /// state hashes) without comparing or re-walking states. `None`
    /// (the default) means the type does not track epochs and derived
    /// values must be recomputed.
    fn mutation_epoch(&self) -> Option<u64> {
        None
    }
}

/// Test helpers for [`Crdt`] implementations.
pub mod testing {
    use super::Crdt;
    use crdt_lattice::testing::check_delta_mutation;

    /// Apply `op` on a clone of `state` and assert the §III-B δ-mutator
    /// contract (inflation, repair, optimality). Returns the mutated state.
    pub fn check_crdt_op<C: Crdt>(state: &C, op: &C::Op) -> C {
        let before = state.clone();
        let mut after = state.clone();
        let delta = after.apply(op);
        check_delta_mutation(&before, &after, &delta);
        after
    }

    /// Drive two replicas with interleaved ops, exchange optimal deltas,
    /// and assert convergence to the same state.
    pub fn check_two_replica_convergence<C: Crdt>(ops_a: &[C::Op], ops_b: &[C::Op], start: C) {
        let mut a = start.clone();
        let mut b = start;
        let mut deltas_a = Vec::new();
        let mut deltas_b = Vec::new();
        for op in ops_a {
            deltas_a.push(a.apply(op));
        }
        for op in ops_b {
            deltas_b.push(b.apply(op));
        }
        for d in deltas_b {
            a.join_assign(d);
        }
        for d in deltas_a {
            b.join_assign(d);
        }
        assert_eq!(a, b, "replicas diverged after exchanging optimal deltas");
    }
}
