//! # crdt-types
//!
//! A catalog of state-based CRDTs with **optimal δ-mutators**, built on the
//! join-decomposition machinery of [`crdt_lattice`] (paper: *"Efficient
//! Synchronization of State-based CRDTs"*, ICDE 2019).
//!
//! Every data type implements [`Crdt`]: a decomposable lattice whose
//! [`Crdt::apply`] performs a typed operation and returns the minimal delta
//! `mδ(x) = Δ(m(x), x)` (§III-B). The catalog covers the paper's running
//! examples and the compositions of Appendix B/C:
//!
//! | Type | Lattice shape | Paper reference |
//! |---|---|---|
//! | [`GCounter`] | `I ↪ ℕ` | Fig. 2a |
//! | [`GSet`] | `P(E)` | Fig. 2b |
//! | [`GMap`] | `K ↪ V` | §V-B micro-benchmarks |
//! | [`PNCounter`] | `I ↪ (ℕ × ℕ)` | Appendix C example |
//! | [`TwoPSet`] | `P(E) × P(E)` | product composition |
//! | [`LWWRegister`] | `(ℕ×I) ⋉ Max⟨V⟩` | lex composition, Appendix B |
//! | [`LexCounter`] | `I ↪ (ℕ ⋉ ℤ)` | Cassandra counters, Appendix B |
//! | [`MVRegister`] | `M(VClock × V)` | maximal-elements composition |
//!
//! Causal (dot-store) CRDTs extend the catalog with removals: the flat
//! implementations in [`causal`] ([`AWSet`], [`EWFlag`], [`CCounter`]) and
//! the generic store algebra in [`dotstores`] ([`ORMap`], [`ORSetMap`],
//! [`RWSet`], [`DWFlag`]).
//!
//! ## Example
//!
//! ```
//! use crdt_lattice::{Lattice, ReplicaId};
//! use crdt_types::{Crdt, GCounter, GCounterOp};
//!
//! let a = ReplicaId(0);
//! let b = ReplicaId(1);
//!
//! let mut x = GCounter::new();
//! let mut y = GCounter::new();
//!
//! // Mutate each replica; keep the optimal deltas.
//! let dx = x.apply(&GCounterOp::IncBy(a, 3));
//! let dy = y.apply(&GCounterOp::Inc(b));
//!
//! // Ship only the deltas — replicas converge.
//! x.join_assign(dy);
//! y.join_assign(dx);
//! assert_eq!(x, y);
//! assert_eq!(x.value(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod causal;
pub mod dotstores;
mod flat;
mod gcounter;
mod gmap;
mod gset;
mod lexcounter;
mod lww;
mod macros;
mod mvregister;
mod pncounter;
mod traits;
mod twopset;
mod wire_ops;

pub use causal::{AWSet, AWSetOp, CCounter, CCounterOp, CausalContext, DotStore, EWFlag, EWFlagOp};
pub use dotstores::{
    Causal, DWFlag, DWFlagOp, DotFun, DotMap, DotSet, ORMap, ORMapOp, ORSetMap, ORSetMapOp, RWSet,
    RWSetOp,
};
pub use gcounter::{GCounter, GCounterOp};
pub use gmap::{GMap, GMapOp};
pub use gset::{GSet, GSetOp};
pub use lexcounter::{LexCounter, LexCounterOp};
pub use lww::{LWWOp, LWWRegister, WriteStamp};
pub use mvregister::{MVOp, MVRegister, Versioned};
pub use pncounter::{PNCounter, PNCounterOp};
pub use traits::{testing, Crdt};
pub use twopset::{TwoPSet, TwoPSetOp};
