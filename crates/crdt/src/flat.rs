//! Flat building blocks for the causal types: compact dot runs and the
//! mutation-epoch frame cache.
//!
//! The causal CRDTs used to keep their state in nested
//! `BTreeMap`/`BTreeSet` structures — every `join` was a walk of
//! pointer-chased tree nodes and every encode rebuilt the wire frame
//! from scratch. This module provides the two primitives the flat
//! representation is built from:
//!
//! * [`DotRuns`] — a causal dot set stored as sorted, coalesced
//!   `(replica, start, len)` runs in one contiguous buffer. Membership
//!   is a binary search, union is a linear two-pointer merge over runs
//!   (with a no-allocation subset fast path), and a run starting at
//!   sequence 1 *is* the vector-clock entry of the wire format — the
//!   clock/cloud split is recomputed from the runs, never stored.
//! * [`StateTag`] — a mutation epoch plus a cached encoded frame.
//!   Every data-changing mutation stamps the owning state with a fresh
//!   epoch drawn from one process-wide counter, which invalidates the
//!   cached [`Bytes`] frame; encoding an unmutated state is then a
//!   memcpy (or, via `encode_frame`, a reference-count bump).
//!
//! Epochs are process-unique per state *version*: two states carrying
//! the same non-zero epoch are clones of the same unmutated value, so
//! any epoch-keyed cache (the frame cache here, the engine's
//! `state_hash` cache) can never alias two different states. Epoch `0`
//! is reserved for freshly constructed bottom values. Epoch values
//! never appear on the wire or in `Debug` output — they are
//! per-process bookkeeping, not replicated data.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crdt_lattice::{Bytes, Dot, ReplicaId};

// ---------------------------------------------------------------------------
// Dot runs
// ---------------------------------------------------------------------------

/// One maximal run of contiguous sequence numbers
/// `start ..= start + len - 1` produced by `replica`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct DotRun {
    /// The replica whose dots these are.
    pub replica: ReplicaId,
    /// First sequence number of the run (≥ 1).
    pub start: u64,
    /// Number of contiguous dots (≥ 1).
    pub len: u64,
}

impl DotRun {
    /// Last sequence number of the run.
    pub fn end(&self) -> u64 {
        self.start + self.len - 1
    }
}

/// A set of dots as sorted, coalesced runs in one contiguous buffer.
///
/// Invariants: runs are sorted by `(replica, start)`, every run has
/// `len ≥ 1` and `start ≥ 1`, and same-replica runs are disjoint with a
/// gap of at least one sequence number between them (adjacent runs are
/// coalesced on insert/union).
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct DotRuns {
    runs: Vec<DotRun>,
}

/// Append `run` to a sorted run list under construction, coalescing it
/// into the previous run when they overlap or are adjacent. `run` must
/// not start before the last appended run.
fn push_coalesced(runs: &mut Vec<DotRun>, run: DotRun) {
    if let Some(last) = runs.last_mut() {
        if last.replica == run.replica && run.start <= last.end().saturating_add(1) {
            let end = last.end().max(run.end());
            last.len = end - last.start + 1;
            return;
        }
    }
    runs.push(run);
}

impl DotRuns {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The runs, sorted by `(replica, start)`.
    pub fn runs(&self) -> &[DotRun] {
        &self.runs
    }

    /// Is `dot` in the set? Sequence `0` is treated as always contained
    /// (dots start at 1; this mirrors the vector-clock convention that
    /// entry 0 means "nothing", so hostile zero dots normalize away).
    pub fn contains(&self, dot: &Dot) -> bool {
        if dot.seq == 0 {
            return true;
        }
        let i = self
            .runs
            .partition_point(|r| (r.replica, r.start) <= (dot.replica, dot.seq));
        i > 0 && {
            let r = &self.runs[i - 1];
            r.replica == dot.replica && dot.seq <= r.end()
        }
    }

    /// Insert one dot, coalescing with neighbors. Returns `true` if the
    /// set grew.
    pub fn insert(&mut self, dot: Dot) -> bool {
        if self.contains(&dot) {
            return false;
        }
        let i = self
            .runs
            .partition_point(|r| (r.replica, r.start) <= (dot.replica, dot.seq));
        let merge_prev = i > 0 && {
            let p = &self.runs[i - 1];
            p.replica == dot.replica && p.end() + 1 == dot.seq
        };
        let merge_next = i < self.runs.len() && {
            let n = &self.runs[i];
            n.replica == dot.replica && dot.seq.checked_add(1) == Some(n.start)
        };
        match (merge_prev, merge_next) {
            (true, true) => {
                let next_len = self.runs[i].len;
                self.runs[i - 1].len += 1 + next_len;
                self.runs.remove(i);
            }
            (true, false) => self.runs[i - 1].len += 1,
            (false, true) => {
                self.runs[i].start = dot.seq;
                self.runs[i].len += 1;
            }
            (false, false) => self.runs.insert(
                i,
                DotRun {
                    replica: dot.replica,
                    start: dot.seq,
                    len: 1,
                },
            ),
        }
        true
    }

    /// Append the prefix run `1 ..= end_seq` for `replica` during decode.
    /// Callers must feed replicas in strictly increasing order (the wire
    /// clock is replica-sorted) and skip `end_seq == 0`.
    // lint: allow(epoch) — context primitive owns no tag; the tagged wrapper bumps on every mutating path
    pub fn push_prefix_run(&mut self, replica: ReplicaId, end_seq: u64) {
        debug_assert!(end_seq >= 1);
        debug_assert!(self.runs.last().is_none_or(|r| r.replica < replica));
        self.runs.push(DotRun {
            replica,
            start: 1,
            len: end_seq,
        });
    }

    /// Append one dot during an in-order rebuild (callers feed dots in
    /// ascending `(replica, seq)` order), coalescing with the last run.
    /// Never inserts mid-buffer.
    // lint: allow(epoch) — context primitive owns no tag; the tagged wrapper bumps on every mutating path
    pub fn push_dot_sorted(&mut self, d: Dot) {
        push_coalesced(
            &mut self.runs,
            DotRun {
                replica: d.replica,
                start: d.seq,
                len: 1,
            },
        );
    }

    /// Total number of dots.
    pub fn len(&self) -> u64 {
        self.runs.iter().map(|r| r.len).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// End of the contiguous prefix `1 ..= n` for `replica` (0 if the
    /// replica's first run does not start at 1).
    pub fn prefix_end(&self, replica: ReplicaId) -> u64 {
        let i = self.runs.partition_point(|r| r.replica < replica);
        match self.runs.get(i) {
            Some(r) if r.replica == replica && r.start == 1 => r.end(),
            _ => 0,
        }
    }

    /// Every dot, in `(replica, seq)` order.
    pub fn dots(&self) -> impl Iterator<Item = Dot> + '_ {
        self.runs
            .iter()
            .flat_map(|r| (r.start..=r.end()).map(move |s| Dot::new(r.replica, s)))
    }

    /// Is every dot of `self` also in `other`? Linear two-pointer scan;
    /// never allocates.
    pub fn subset_of(&self, other: &DotRuns) -> bool {
        let mut j = 0;
        for r in &self.runs {
            while j < other.runs.len() {
                let o = &other.runs[j];
                if o.replica < r.replica || (o.replica == r.replica && o.end() < r.start) {
                    j += 1;
                } else {
                    break;
                }
            }
            // A canonical run is covered iff one run of `other` contains
            // it whole (other's same-replica runs have gaps between them).
            match other.runs.get(j) {
                Some(o) if o.replica == r.replica && o.start <= r.start && r.end() <= o.end() => {}
                _ => return false,
            }
        }
        true
    }

    /// Union `other` into `self`; returns `true` if `self` grew. The
    /// subset fast path is a no-allocation scan, so re-unioning an
    /// already-covered context is free.
    // lint: allow(epoch) — context primitive owns no tag; the tagged wrapper bumps on every mutating path
    pub fn union(&mut self, other: &DotRuns) -> bool {
        if other.subset_of(self) {
            return false;
        }
        let mut merged = Vec::with_capacity(self.runs.len() + other.runs.len());
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let a = self.runs[i];
            let b = other.runs[j];
            if (a.replica, a.start) <= (b.replica, b.start) {
                push_coalesced(&mut merged, a);
                i += 1;
            } else {
                push_coalesced(&mut merged, b);
                j += 1;
            }
        }
        for &r in &self.runs[i..] {
            push_coalesced(&mut merged, r);
        }
        for &r in &other.runs[j..] {
            push_coalesced(&mut merged, r);
        }
        self.runs = merged;
        true
    }
}

// ---------------------------------------------------------------------------
// Mutation epoch + cached wire frame
// ---------------------------------------------------------------------------

/// Process-wide epoch source. Starts at 1: epoch 0 is reserved for
/// freshly constructed bottom states.
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// Draw a fresh, process-unique mutation epoch.
pub(crate) fn fresh_epoch() -> u64 {
    EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// Mutation epoch plus cached encoded frame for one causal state.
///
/// The tag is bookkeeping, not data: the owning state excludes it from
/// `Debug`/`Eq`/`Ord`/`Hash`, and it never touches the wire. `Clone`
/// copies both the epoch and the cached frame (a clone holds the same
/// data, so the frame stays valid; `Bytes` makes it a refcount bump).
pub(crate) struct StateTag {
    epoch: u64,
    frame: Mutex<Option<(u64, Bytes)>>,
}

impl StateTag {
    /// A tag for state that already carries data (deltas, decoded
    /// values, decomposition parts): unique epoch, no cached frame.
    pub fn fresh() -> Self {
        StateTag {
            epoch: fresh_epoch(),
            frame: Mutex::new(None),
        }
    }

    /// The state's current mutation epoch (0 ⇔ untouched bottom).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Record a data-changing mutation: stamp a fresh epoch and drop the
    /// now-stale cached frame. Never allocates.
    pub fn note_mutation(&mut self) {
        self.epoch = fresh_epoch();
        match self.frame.get_mut() {
            Ok(slot) => *slot = None,
            Err(poisoned) => *poisoned.into_inner() = None,
        }
    }

    /// The cached frame, if one was stored at the current epoch.
    pub fn cached(&self) -> Option<Bytes> {
        let guard = self.frame.lock().unwrap_or_else(|p| p.into_inner());
        match &*guard {
            Some((epoch, frame)) if *epoch == self.epoch => Some(frame.clone()),
            _ => None,
        }
    }

    /// Store the encoded frame for the current epoch.
    pub fn store(&self, frame: Bytes) {
        let mut guard = self.frame.lock().unwrap_or_else(|p| p.into_inner());
        *guard = Some((self.epoch, frame));
    }
}

impl Default for StateTag {
    fn default() -> Self {
        StateTag {
            epoch: 0,
            frame: Mutex::new(None),
        }
    }
}

impl Clone for StateTag {
    fn clone(&self) -> Self {
        let frame = self.frame.lock().unwrap_or_else(|p| p.into_inner()).clone();
        StateTag {
            epoch: self.epoch,
            frame: Mutex::new(frame),
        }
    }
}

impl core::fmt::Debug for StateTag {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Deliberately constant: epochs are per-process and must never
        // leak into `Debug`-derived state hashes.
        f.write_str("StateTag(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    fn dots_of(r: &DotRuns) -> Vec<Dot> {
        r.dots().collect()
    }

    #[test]
    fn insert_coalesces_gap_fill() {
        let mut r = DotRuns::new();
        assert!(r.insert(Dot::new(A, 2)));
        assert!(r.insert(Dot::new(A, 4)));
        assert_eq!(r.runs().len(), 2);
        assert!(r.insert(Dot::new(A, 3)), "gap fill");
        assert_eq!(r.runs().len(), 1, "three runs coalesce into one");
        assert_eq!(r.len(), 3);
        assert!(!r.insert(Dot::new(A, 3)), "idempotent");
        assert!(r.contains(&Dot::new(A, 2)));
        assert!(!r.contains(&Dot::new(A, 1)));
        assert!(!r.contains(&Dot::new(A, 5)));
    }

    #[test]
    fn runs_are_per_replica() {
        let mut r = DotRuns::new();
        r.insert(Dot::new(B, 1));
        r.insert(Dot::new(A, 1));
        r.insert(Dot::new(A, 2));
        assert_eq!(r.runs().len(), 2);
        assert_eq!(r.prefix_end(A), 2);
        assert_eq!(r.prefix_end(B), 1);
        assert_eq!(
            dots_of(&r),
            vec![Dot::new(A, 1), Dot::new(A, 2), Dot::new(B, 1)]
        );
        let mut gap = DotRuns::new();
        gap.insert(Dot::new(A, 5));
        assert_eq!(gap.prefix_end(A), 0, "no prefix without seq 1");
    }

    #[test]
    fn zero_seq_dots_normalize_away() {
        let mut r = DotRuns::new();
        assert!(r.contains(&Dot::new(A, 0)));
        assert!(!r.insert(Dot::new(A, 0)));
        assert!(r.is_empty());
    }

    #[test]
    fn union_and_subset() {
        let mut a = DotRuns::new();
        a.insert(Dot::new(A, 1));
        a.insert(Dot::new(A, 2));
        let mut b = DotRuns::new();
        b.insert(Dot::new(A, 2));
        b.insert(Dot::new(A, 3));
        b.insert(Dot::new(B, 7));
        assert!(!a.subset_of(&b));
        assert!(!b.subset_of(&a));
        assert!(a.union(&b));
        assert_eq!(a.runs().len(), 2, "overlapping runs coalesce");
        assert_eq!(a.len(), 4);
        assert!(b.subset_of(&a));
        assert!(
            !a.union(&b),
            "idempotent, and the fast path never allocates"
        );
    }

    #[test]
    fn union_interleaves_replicas() {
        let mut a = DotRuns::new();
        a.insert(Dot::new(B, 1));
        let mut b = DotRuns::new();
        b.insert(Dot::new(A, 1));
        b.insert(Dot::new(B, 2));
        a.union(&b);
        assert_eq!(
            dots_of(&a),
            vec![Dot::new(A, 1), Dot::new(B, 1), Dot::new(B, 2)]
        );
    }

    #[test]
    fn tag_mutation_invalidates_cache() {
        let mut t = StateTag::default();
        assert_eq!(t.epoch(), 0);
        assert!(t.cached().is_none());
        t.store(Bytes::from(vec![1u8, 2]));
        assert_eq!(t.cached().unwrap(), vec![1u8, 2]);
        t.note_mutation();
        assert_ne!(t.epoch(), 0);
        assert!(t.cached().is_none(), "mutation drops the cached frame");
        t.store(Bytes::from(vec![3u8]));
        let clone = t.clone();
        assert_eq!(clone.epoch(), t.epoch());
        assert_eq!(clone.cached().unwrap(), vec![3u8], "clones keep the frame");
    }

    #[test]
    fn epochs_are_process_unique() {
        let a = fresh_epoch();
        let b = fresh_epoch();
        assert!(b > a);
        assert_ne!(StateTag::fresh().epoch(), StateTag::fresh().epoch());
    }
}
