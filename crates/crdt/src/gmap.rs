//! Grow-only map: keys mapped to an arbitrary value lattice.
//!
//! `GMap⟨K, V⟩ = K ↪ V` — the finite-function composition (Appendix B).
//! "Grow-only" refers to the lattice order: entries appear and values
//! inflate, but *application-level* values can still be overwritten when
//! `V` is a register lattice (as in the paper's GMap K% micro-benchmark,
//! where each update bumps a key to a new version, and in Retwis walls and
//! timelines).

use core::fmt::Debug;

use crdt_lattice::{Bottom, MapLattice, SizeModel, Sizeable, StateSize};

use crate::macros::{delegate_decompose, delegate_join, delegate_size};
use crate::Crdt;

/// Operations on a [`GMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GMapOp<K, V> {
    /// Join a value state into the entry at `key`.
    ///
    /// The carried `V` is a lattice state (often an irreducible produced by
    /// the writer), so replaying the op anywhere is a join — commutative,
    /// associative and idempotent, which is what lets the op-based
    /// middleware ship these ops without coordination.
    Apply {
        /// Target key.
        key: K,
        /// State joined into the entry.
        value: V,
    },
}

/// A map CRDT whose values are lattices.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GMap<K: Ord, V>(MapLattice<K, V>);

delegate_join!(GMap<K, V> where [K: Ord + Clone + Debug, V: Bottom]);
delegate_decompose!(GMap<K, V> where [K: Ord + Clone + Debug, V: crdt_lattice::Decompose]);
delegate_size!(GMap<K, V> where [K: Ord + Clone + Debug + Sizeable, V: Bottom + StateSize]);
crate::macros::delegate_wire!(GMap<K, V> where
    [K: Ord + Clone + Debug + crdt_lattice::WireEncode,
     V: crdt_lattice::Lattice + Bottom + crdt_lattice::WireEncode]);

impl<K: Ord + Clone + Debug, V: Bottom> Default for GMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + Debug, V: Bottom> GMap<K, V> {
    /// A fresh, empty map (`⊥`).
    pub fn new() -> Self {
        GMap(MapLattice::new())
    }

    /// Join `value` into the entry at `key`, returning the optimal map
    /// delta (`{key ↦ Δ(entry ⊔ value, entry)}`).
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn apply_to_entry(&mut self, key: K, value: V) -> Self
    where
        V: crdt_lattice::Decompose,
    {
        GMap(self.0.mutate_entry(key, |e| {
            let d = value.delta(e);
            e.join_assign(value);
            d
        }))
    }

    /// Mutate the entry at `key` with a custom δ-mutator (see
    /// [`MapLattice::mutate_entry`]).
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn mutate_entry(&mut self, key: K, f: impl FnOnce(&mut V) -> V) -> Self {
        GMap(self.0.mutate_entry(key, f))
    }

    /// Read the value at `key` (`None` = `⊥`).
    pub fn get(&self, key: &K) -> Option<&V> {
        self.0.get(key)
    }

    /// Number of entries (the paper's measurement unit, Table I).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.0.iter()
    }
}

impl<K: Ord + Clone + Debug, V: Bottom> FromIterator<(K, V)> for GMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        GMap(MapLattice::from_iter(iter))
    }
}

impl<K, V> Crdt for GMap<K, V>
where
    K: Ord + Clone + Debug + Sizeable,
    V: crdt_lattice::Decompose + StateSize,
{
    type Op = GMapOp<K, V>;
    type Value = MapLattice<K, V>;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match op {
            GMapOp::Apply { key, value } => self.apply_to_entry(key.clone(), value.clone()),
        }
    }

    fn value(&self) -> MapLattice<K, V> {
        self.0.clone()
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            GMapOp::Apply { key, value } => key.payload_bytes(model) + value.size_bytes(model),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testing::{check_crdt_op, check_two_replica_convergence};
    use crdt_lattice::testing::check_all_laws;
    use crdt_lattice::{Decompose, Max, SetLattice};

    type VersionMap = GMap<u32, Max<u64>>;

    #[test]
    fn apply_to_entry_versions() {
        // The GMap K% update pattern: bump a key to a new version.
        let mut m = VersionMap::new();
        let d1 = m.apply_to_entry(7, Max::new(1));
        assert_eq!(d1.len(), 1);
        let d2 = m.apply_to_entry(7, Max::new(2));
        assert_eq!(d2.get(&7), Some(&Max::new(2)));
        // Stale write: no delta.
        let d3 = m.apply_to_entry(7, Max::new(1));
        assert!(d3.is_empty());
        assert_eq!(m.get(&7), Some(&Max::new(2)));
    }

    #[test]
    fn set_valued_entries() {
        let mut m: GMap<&str, SetLattice<u32>> = GMap::new();
        let _ = m.apply_to_entry("tags", SetLattice::from_iter([1, 2]));
        let d = m.apply_to_entry("tags", SetLattice::from_iter([2, 3]));
        // Only the new element appears in the delta.
        assert_eq!(d.get(&"tags"), Some(&SetLattice::from_iter([3])));
    }

    #[test]
    fn op_contract() {
        let m = VersionMap::from_iter([(1, Max::new(5))]);
        check_crdt_op(
            &m,
            &GMapOp::Apply {
                key: 1,
                value: Max::new(9),
            },
        );
        check_crdt_op(
            &m,
            &GMapOp::Apply {
                key: 1,
                value: Max::new(2),
            },
        );
        check_crdt_op(
            &m,
            &GMapOp::Apply {
                key: 2,
                value: Max::new(1),
            },
        );
    }

    #[test]
    fn convergence() {
        check_two_replica_convergence::<VersionMap>(
            &[
                GMapOp::Apply {
                    key: 1,
                    value: Max::new(2),
                },
                GMapOp::Apply {
                    key: 2,
                    value: Max::new(1),
                },
            ],
            &[GMapOp::Apply {
                key: 1,
                value: Max::new(3),
            }],
            GMap::new(),
        );
    }

    #[test]
    fn laws_hold_on_samples() {
        let samples: Vec<VersionMap> = vec![
            GMap::new(),
            GMap::from_iter([(1, Max::new(1))]),
            GMap::from_iter([(1, Max::new(2)), (2, Max::new(1))]),
            GMap::from_iter([(3, Max::new(1))]),
        ];
        check_all_laws(&samples);
    }

    #[test]
    fn decomposition_per_entry() {
        let m = VersionMap::from_iter([(1, Max::new(2)), (2, Max::new(1))]);
        assert_eq!(m.irreducible_count(), 2);
        assert_eq!(m.decompose().len(), 2);
    }

    #[test]
    fn size_metrics() {
        use crdt_lattice::StateSize;
        let model = SizeModel::compact();
        let m = VersionMap::from_iter([(1, Max::new(2)), (2, Max::new(1))]);
        assert_eq!(m.count_elements(), 2);
        assert_eq!(m.size_bytes(&model), 2 * (4 + 8));
        let op = GMapOp::Apply {
            key: 1u32,
            value: Max::new(2u64),
        };
        assert_eq!(VersionMap::op_size_bytes(&op, &model), 12);
    }
}
