//! Positive-negative counter (paper, Appendix C worked example).
//!
//! `PNCounter = I ↪ (ℕ × ℕ)`: each replica entry is a product pair
//! tracking increments and decrements separately. The appendix shows its
//! decomposition explicitly: for
//! `p = {A ↦ ⟨2,3⟩, B ↦ ⟨5,5⟩}`,
//! `⇓p = {{A ↦ ⟨2,0⟩}, {A ↦ ⟨0,3⟩}, {B ↦ ⟨5,0⟩}, {B ↦ ⟨0,5⟩}}`.

use crdt_lattice::{MapLattice, Max, Pair, ReplicaId, SizeModel};

use crate::macros::delegate_lattice;
use crate::Crdt;

/// Operations on a [`PNCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PNCounterOp {
    /// Add `1` on behalf of the replica.
    Inc(ReplicaId),
    /// Subtract `1` on behalf of the replica.
    Dec(ReplicaId),
    /// Add `n` on behalf of the replica.
    IncBy(ReplicaId, u64),
    /// Subtract `n` on behalf of the replica.
    DecBy(ReplicaId, u64),
}

type Entry = Pair<Max<u64>, Max<u64>>;

/// A counter supporting increments and decrements.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PNCounter(MapLattice<ReplicaId, Entry>);

delegate_lattice!(PNCounter where []);

crate::macros::delegate_wire!(PNCounter where []);

impl PNCounter {
    /// A fresh counter (`⊥`).
    pub fn new() -> Self {
        PNCounter(MapLattice::new())
    }

    /// The net value: total increments minus total decrements.
    pub fn value_i128(&self) -> i128 {
        let inc: u64 = self.0.values().map(|e| e.0.value()).sum();
        let dec: u64 = self.0.values().map(|e| e.1.value()).sum();
        i128::from(inc) - i128::from(dec)
    }

    /// Number of map entries.
    pub fn entries(&self) -> usize {
        self.0.len()
    }
}

impl Crdt for PNCounter {
    type Op = PNCounterOp;
    type Value = i128;

    fn apply(&mut self, op: &Self::Op) -> Self {
        let (replica, inc, by) = match *op {
            PNCounterOp::Inc(r) => (r, true, 1),
            PNCounterOp::Dec(r) => (r, false, 1),
            PNCounterOp::IncBy(r, n) => (r, true, n),
            PNCounterOp::DecBy(r, n) => (r, false, n),
        };
        PNCounter(self.0.mutate_entry(replica, |e| {
            use crdt_lattice::Lattice;
            let next = if inc {
                Pair(e.0.plus(by), e.1)
            } else {
                Pair(e.0, e.1.plus(by))
            };
            let delta = if inc {
                Pair(next.0, Max::new(0))
            } else {
                Pair(Max::new(0), next.1)
            };
            e.join_assign(next);
            delta
        }))
    }

    fn value(&self) -> i128 {
        self.value_i128()
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            PNCounterOp::Inc(_) | PNCounterOp::Dec(_) => model.id_bytes + 1,
            PNCounterOp::IncBy(_, _) | PNCounterOp::DecBy(_, _) => model.id_bytes + 9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testing::{check_crdt_op, check_two_replica_convergence};
    use crdt_lattice::testing::check_all_laws;
    use crdt_lattice::{Bottom, StateSize};

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    fn applied(ops: &[PNCounterOp]) -> PNCounter {
        let mut c = PNCounter::new();
        for op in ops {
            let _ = c.apply(op);
        }
        c
    }

    #[test]
    fn value_is_net() {
        let c = applied(&[
            PNCounterOp::IncBy(A, 5),
            PNCounterOp::DecBy(A, 2),
            PNCounterOp::Inc(B),
            PNCounterOp::Dec(B),
        ]);
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn can_go_negative() {
        let c = applied(&[PNCounterOp::DecBy(A, 10), PNCounterOp::IncBy(B, 4)]);
        assert_eq!(c.value(), -6);
    }

    #[test]
    fn op_contract() {
        let c = applied(&[PNCounterOp::IncBy(A, 2), PNCounterOp::DecBy(A, 3)]);
        check_crdt_op(&c, &PNCounterOp::Inc(A));
        check_crdt_op(&c, &PNCounterOp::Dec(B));
        check_crdt_op(&c, &PNCounterOp::IncBy(B, 7));
        check_crdt_op(&c, &PNCounterOp::DecBy(A, 1));
    }

    #[test]
    fn appendix_c_decomposition() {
        use crdt_lattice::Decompose;
        // p = {A ↦ ⟨2,3⟩, B ↦ ⟨5,5⟩} has the 4-part decomposition given in
        // Appendix C.
        let p = applied(&[
            PNCounterOp::IncBy(A, 2),
            PNCounterOp::DecBy(A, 3),
            PNCounterOp::IncBy(B, 5),
            PNCounterOp::DecBy(B, 5),
        ]);
        let parts = p.decompose();
        assert_eq!(parts.len(), 4);
        assert_eq!(p.irreducible_count(), 4);
        assert!(parts.iter().all(Decompose::is_irreducible));
    }

    #[test]
    fn convergence() {
        check_two_replica_convergence::<PNCounter>(
            &[PNCounterOp::IncBy(A, 3), PNCounterOp::Dec(A)],
            &[PNCounterOp::DecBy(B, 2)],
            PNCounter::new(),
        );
    }

    #[test]
    fn laws_hold_on_samples() {
        let samples = vec![
            PNCounter::bottom(),
            applied(&[PNCounterOp::Inc(A)]),
            applied(&[PNCounterOp::Dec(A)]),
            applied(&[PNCounterOp::IncBy(A, 2), PNCounterOp::DecBy(B, 3)]),
        ];
        check_all_laws(&samples);
    }

    #[test]
    fn size_metrics() {
        let model = SizeModel::compact();
        let c = applied(&[PNCounterOp::IncBy(A, 2), PNCounterOp::DecBy(A, 3)]);
        // One entry: id + two u64 components.
        assert_eq!(c.size_bytes(&model), 8 + 16);
        assert_eq!(c.count_elements(), 2);
    }
}
