//! Last-writer-wins register: a lexicographic pair of a timestamp chain
//! and a value.
//!
//! `LWWRegister⟨V⟩ = (ℕ × I) ⋉ Max⟨V⟩` — the canonical use of the
//! lexicographic product (Appendix B): the first component is a **chain**
//! (timestamps totally ordered, ties broken by replica id), which is
//! exactly the condition under which `⋉` stays distributive (Table III)
//! and unique irredundant decompositions exist. A strictly newer timestamp
//! replaces the value wholesale; an identical timestamp from the same
//! writer joins (and cannot conflict, as `(ts, replica)` pairs are unique
//! per write).

use core::fmt::Debug;

use crdt_lattice::{Lex, Max, ReplicaId, SizeModel, Sizeable};

use crate::macros::{delegate_decompose, delegate_join, delegate_size};
use crate::Crdt;

/// The write timestamp: `(clock, replica)` — unique and totally ordered.
pub type WriteStamp = Max<(u64, ReplicaId)>;

/// Operations on an [`LWWRegister`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LWWOp<V> {
    /// Write `value` at time `ts` on behalf of `replica`.
    Write {
        /// Logical or physical timestamp of the write.
        ts: u64,
        /// The writing replica (tie-breaker).
        replica: ReplicaId,
        /// The written value.
        value: V,
    },
}

/// A last-writer-wins register.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LWWRegister<V: Ord>(Lex<WriteStamp, Max<V>>);

delegate_join!(LWWRegister<V> where [V: Ord + Clone + Debug + Default]);
delegate_decompose!(LWWRegister<V> where [V: Ord + Clone + Debug + Default]);
delegate_size!(LWWRegister<V> where [V: Ord + Clone + Debug + Default + Sizeable]);

impl<V: Ord + Clone + Debug + Default> LWWRegister<V> {
    /// A fresh register holding `⊥` (i.e. `V::default()` at time zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Write a value, returning the optimal delta.
    ///
    /// Writes with a stale timestamp lose and yield a `⊥` delta — the
    /// lex-pair analogue of `addδ` returning `⊥` for present elements.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn write(&mut self, ts: u64, replica: ReplicaId, value: V) -> Self {
        use crdt_lattice::{Decompose, Lattice};
        let update = LWWRegister(Lex::new(Max::new((ts, replica)), Max::new(value)));
        let delta = update.delta(self);
        self.join_assign(update);
        delta
    }

    /// The current value.
    pub fn get(&self) -> &V {
        self.0.payload().get()
    }

    /// The timestamp of the winning write, if any write happened.
    pub fn stamp(&self) -> Option<(u64, ReplicaId)> {
        use crdt_lattice::Bottom;
        if self.0.version().is_bottom() {
            None
        } else {
            Some(*self.0.version().get())
        }
    }
}

impl<V: Ord + Clone + Debug + Default + Sizeable> Crdt for LWWRegister<V> {
    type Op = LWWOp<V>;
    type Value = V;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match op {
            LWWOp::Write { ts, replica, value } => self.write(*ts, *replica, value.clone()),
        }
    }

    fn value(&self) -> V {
        self.get().clone()
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            LWWOp::Write { value, .. } => 8 + model.id_bytes + value.payload_bytes(model),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testing::{check_crdt_op, check_two_replica_convergence};
    use crdt_lattice::testing::check_all_laws;
    use crdt_lattice::{Bottom, Lattice};

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    #[test]
    fn later_write_wins() {
        let mut r = LWWRegister::new();
        let _ = r.write(1, A, "first".to_string());
        let _ = r.write(2, B, "second".to_string());
        assert_eq!(r.get(), "second");
        // A stale write changes nothing and produces no delta.
        let d = r.write(1, A, "late".to_string());
        assert!(d.is_bottom());
        assert_eq!(r.get(), "second");
    }

    #[test]
    fn replica_id_breaks_ties() {
        let mut x = LWWRegister::new();
        let mut y = LWWRegister::new();
        let dx = x.write(5, B, "from-b".to_string());
        let dy = y.write(5, A, "from-a".to_string());
        x.join_assign(dy);
        y.join_assign(dx);
        assert_eq!(x, y);
        // Higher replica id wins the tie deterministically.
        assert_eq!(x.get(), "from-b");
        assert_eq!(x.stamp(), Some((5, B)));
    }

    #[test]
    fn op_contract() {
        let mut r = LWWRegister::new();
        let _ = r.write(3, A, 10u64);
        check_crdt_op(
            &r,
            &LWWOp::Write {
                ts: 4,
                replica: B,
                value: 20,
            },
        );
        check_crdt_op(
            &r,
            &LWWOp::Write {
                ts: 1,
                replica: B,
                value: 5,
            },
        );
    }

    #[test]
    fn convergence() {
        check_two_replica_convergence::<LWWRegister<u64>>(
            &[LWWOp::Write {
                ts: 1,
                replica: A,
                value: 1,
            }],
            &[
                LWWOp::Write {
                    ts: 2,
                    replica: B,
                    value: 2,
                },
                LWWOp::Write {
                    ts: 3,
                    replica: B,
                    value: 3,
                },
            ],
            LWWRegister::new(),
        );
    }

    #[test]
    fn laws_hold_on_samples() {
        let mut r1 = LWWRegister::new();
        let _ = r1.write(1, A, 5u64);
        let mut r2 = LWWRegister::new();
        let _ = r2.write(2, A, 3u64);
        let mut r3 = LWWRegister::new();
        let _ = r3.write(1, B, 9u64);
        let samples = vec![LWWRegister::bottom(), r1, r2, r3];
        check_all_laws(&samples);
    }

    #[test]
    fn delta_of_newer_write_carries_full_value() {
        use crdt_lattice::StateSize;
        let model = SizeModel::compact();
        let mut r = LWWRegister::new();
        let d = r.write(7, A, "payload".to_string());
        assert_eq!(d.count_elements(), 1);
        // stamp (8 + 8 for (u64, id)) + string payload.
        assert_eq!(d.size_bytes(&model), 16 + 7);
    }
}
