//! Delegation macros for newtype CRDTs.
//!
//! Most CRDTs in the catalog are domain-named newtypes over a lattice
//! composition (`GCounter` over `I ↪ ℕ`, `GSet` over `P(E)`, …). These
//! macros forward the lattice traits to the inner composition so each data
//! type only writes its mutators, queries and op alphabet. Bounds are per
//! trait group because generic wrappers (e.g. `GMap<K, V>`) implement
//! `Lattice` under weaker bounds than `Decompose`/`StateSize`.

/// Implement `Lattice` + `Bottom` for a newtype over an inner lattice.
macro_rules! delegate_join {
    ($name:ident $(< $($gp:ident),+ >)? where [$($bounds:tt)*]) => {
        impl $(<$($gp),+>)? crdt_lattice::Lattice for $name $(<$($gp),+>)?
        where $($bounds)*
        {
            fn join_assign(&mut self, other: Self) -> bool {
                crdt_lattice::Lattice::join_assign(&mut self.0, other.0)
            }

            fn leq(&self, other: &Self) -> bool {
                crdt_lattice::Lattice::leq(&self.0, &other.0)
            }
        }

        impl $(<$($gp),+>)? crdt_lattice::Bottom for $name $(<$($gp),+>)?
        where $($bounds)*
        {
            fn bottom() -> Self {
                $name(crdt_lattice::Bottom::bottom())
            }

            fn is_bottom(&self) -> bool {
                crdt_lattice::Bottom::is_bottom(&self.0)
            }
        }
    };
}

/// Implement `Decompose` for a newtype over an inner decomposable lattice.
macro_rules! delegate_decompose {
    ($name:ident $(< $($gp:ident),+ >)? where [$($bounds:tt)*]) => {
        impl $(<$($gp),+>)? crdt_lattice::Decompose for $name $(<$($gp),+>)?
        where $($bounds)*
        {
            fn for_each_irreducible(&self, f: &mut dyn FnMut(Self)) {
                crdt_lattice::Decompose::for_each_irreducible(&self.0, &mut |inner| {
                    f($name(inner))
                });
            }

            fn irreducible_count(&self) -> u64 {
                crdt_lattice::Decompose::irreducible_count(&self.0)
            }

            fn delta(&self, other: &Self) -> Self {
                $name(crdt_lattice::Decompose::delta(&self.0, &other.0))
            }

            fn is_irreducible(&self) -> bool {
                crdt_lattice::Decompose::is_irreducible(&self.0)
            }
        }
    };
}

/// Implement `StateSize` for a newtype over an inner sized lattice.
macro_rules! delegate_size {
    ($name:ident $(< $($gp:ident),+ >)? where [$($bounds:tt)*]) => {
        impl $(<$($gp),+>)? crdt_lattice::StateSize for $name $(<$($gp),+>)?
        where $($bounds)*
        {
            fn count_elements(&self) -> u64 {
                crdt_lattice::StateSize::count_elements(&self.0)
            }

            fn size_bytes(&self, model: &crdt_lattice::SizeModel) -> u64 {
                crdt_lattice::StateSize::size_bytes(&self.0, model)
            }
        }
    };
}

/// Implement `WireEncode` for a newtype over an inner encodable lattice.
macro_rules! delegate_wire {
    ($name:ident $(< $($gp:ident),+ >)? where [$($bounds:tt)*]) => {
        impl $(<$($gp),+>)? crdt_lattice::WireEncode for $name $(<$($gp),+>)?
        where $($bounds)*
        {
            fn encode(&self, out: &mut Vec<u8>) {
                crdt_lattice::WireEncode::encode(&self.0, out)
            }

            fn decode(input: &mut &[u8]) -> Result<Self, crdt_lattice::CodecError> {
                Ok($name(crdt_lattice::WireEncode::decode(input)?))
            }

            fn encode_frame(&self) -> crdt_lattice::Bytes {
                // Forwarded so an inner cached frame (the flat causal
                // states) survives the newtype instead of being rebuilt
                // through the `to_bytes` default.
                crdt_lattice::WireEncode::encode_frame(&self.0)
            }
        }
    };
}

/// Implement all four lattice traits with one shared bounds list.
macro_rules! delegate_lattice {
    ($name:ident $(< $($gp:ident),+ >)? where [$($bounds:tt)*]) => {
        crate::macros::delegate_join!($name $(<$($gp),+>)? where [$($bounds)*]);
        crate::macros::delegate_decompose!($name $(<$($gp),+>)? where [$($bounds)*]);
        crate::macros::delegate_size!($name $(<$($gp),+>)? where [$($bounds)*]);
    };
}

pub(crate) use {
    delegate_decompose, delegate_join, delegate_lattice, delegate_size, delegate_wire,
};
