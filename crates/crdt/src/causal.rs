//! Causal (dot-store) CRDTs — removals without tombstone *values*.
//!
//! The paper's running examples are grow-only; its conclusion notes the
//! techniques "can be extended to more complex ones". This module carries
//! the extension out for the causal CRDTs of the delta-state literature
//! (Almeida, Shoker, Baquero — the paper's \[13\]/\[14\]): state is a **dot
//! store** (unique event identifiers mapped to payload) paired with a
//! **causal context** (the set of all event identifiers ever observed).
//! The join keeps an entry iff the peer also has it or has *not yet heard
//! of it* — so a dot present in a context but absent from a store acts as
//! a removal, with no per-element tombstone data.
//!
//! The decomposition theory extends cleanly:
//!
//! * join-irreducibles are **live parts** `({d ↦ v}, {d})` and **dead
//!   parts** `(∅, {d})`;
//! * `⇓x` = one live part per store entry + one dead part per
//!   context-only dot — unique and irredundant;
//! * a live part `⊑ y` iff `d ∈ ctx(y)`; a dead part `⊑ y` iff
//!   `d ∈ ctx(y) ∧ d ∉ store(y)` — so the *generic* optimal delta
//!   `Δ(a,b) = ⊔{ p ∈ ⇓a | p ⋢ b }` automatically ships exactly the new
//!   events plus the removals the peer hasn't applied yet.
//!
//! ## Flat representation
//!
//! State is stored *flat*: the causal context is sorted, coalesced
//! `(replica, start, len)` runs in one contiguous buffer
//! ([`crate::flat::DotRuns`]) and the dot store is a dot-sorted
//! `Vec<(Dot, V)>`. Joins and delta application are linear two-pointer
//! merges preceded by a no-allocation change-detection scan, so joining
//! an already-covered delta allocates nothing. Each state also carries a
//! mutation epoch + cached wire frame ([`crate::flat::StateTag`]):
//! encoding an unmutated state returns the cached `Bytes` frame instead
//! of re-walking the state. The wire format is unchanged — the
//! clock/cloud split of the nested representation is recomputed from the
//! runs at encode time (a run starting at sequence 1 *is* a clock
//! entry), byte for byte.
//!
//! Built on this: [`AWSet`] (add-wins set), [`EWFlag`] (enable-wins
//! flag) and [`CCounter`] (a resettable causal counter). All three run
//! unchanged under every synchronization protocol in `crdt-sync`,
//! including BP+RR.

use std::collections::BTreeSet;

use crdt_lattice::{
    Bottom, Bytes, Decompose, Dot, Lattice, ReplicaId, SizeModel, Sizeable, StateSize, VClock,
    WireEncode,
};

use crate::flat::{DotRuns, StateTag};
use crate::Crdt;

// ---------------------------------------------------------------------------
// Causal context
// ---------------------------------------------------------------------------

/// The set of all dots a replica has ever observed, stored compactly as
/// sorted, coalesced `(replica, start, len)` runs in one contiguous
/// buffer. The wire format's vector-clock prefix / dot-cloud split is
/// recomputed from the runs on encode (a run starting at sequence 1 is a
/// clock entry; every other run expands to cloud dots), so the encoding
/// is byte-identical to the nested representation this replaced.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CausalContext {
    runs: DotRuns,
}

impl CausalContext {
    /// The empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// A context holding exactly one dot.
    pub fn singleton(dot: Dot) -> Self {
        let mut c = Self::new();
        c.insert(dot);
        c
    }

    /// Has this dot been observed?
    pub fn contains(&self, dot: &Dot) -> bool {
        self.runs.contains(dot)
    }

    /// Observe a dot (coalescing runs opportunistically).
    pub fn insert(&mut self, dot: Dot) -> bool {
        self.runs.insert(dot)
    }

    /// The next fresh dot for `replica` (used by mutators at the owning
    /// replica, whose own history is always contiguous).
    pub fn next_dot(&mut self, replica: ReplicaId) -> Dot {
        let dot = Dot::new(replica, self.runs.prefix_end(replica) + 1);
        self.insert(dot);
        dot
    }

    /// Number of observed dots.
    pub fn len(&self) -> u64 {
        self.runs.len()
    }

    /// Is the context empty?
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Iterate every observed dot (clock prefixes then cloud dots — the
    /// historical nested-representation order).
    pub fn iter(&self) -> impl Iterator<Item = Dot> + '_ {
        let expand = |r: &crate::flat::DotRun| {
            let replica = r.replica;
            (r.start..=r.end()).map(move |s| Dot::new(replica, s))
        };
        self.runs
            .runs()
            .iter()
            .filter(|r| r.start == 1)
            .flat_map(expand)
            .chain(
                self.runs
                    .runs()
                    .iter()
                    .filter(|r| r.start != 1)
                    .flat_map(expand),
            )
    }

    /// Set inclusion. A linear two-pointer scan over both run lists;
    /// never allocates.
    pub fn subset_of(&self, other: &CausalContext) -> bool {
        self.runs.subset_of(&other.runs)
    }

    /// Union with `other`; returns `true` if this context grew. The
    /// already-covered case is a no-allocation subset scan.
    // lint: allow(epoch) — CausalContext carries no tag; Causal<S> and the engines bump around every union
    pub fn union(&mut self, other: &CausalContext) -> bool {
        self.runs.union(&other.runs)
    }

    /// Wire size: clock entries + cloud dots (same model as the nested
    /// representation: one `(id, seq)` entry per contiguous prefix, one
    /// vector entry per out-of-band dot).
    pub fn size_bytes(&self, model: &SizeModel) -> u64 {
        self.runs
            .runs()
            .iter()
            .map(|r| {
                if r.start == 1 {
                    model.id_bytes + 8
                } else {
                    r.len * model.vector_entry_bytes()
                }
            })
            .sum()
    }
}

// ---------------------------------------------------------------------------
// The causal lattice
// ---------------------------------------------------------------------------

/// Insert `(dot, v)` into a dot-sorted entry vector, replacing any
/// existing entry for the same dot (a dot uniquely determines its value,
/// so replacement only matters for hostile decoded input).
fn insert_entry<V>(store: &mut Vec<(Dot, V)>, dot: Dot, v: V) {
    match store.binary_search_by(|(d, _)| d.cmp(&dot)) {
        Ok(i) => store[i].1 = v,
        Err(i) => store.insert(i, (dot, v)),
    }
}

/// A dot store paired with a causal context: the state shape of every
/// causal CRDT here. `V` is plain payload data (a dot uniquely determines
/// its value for the lifetime of the system).
///
/// Live entries are a dot-sorted `Vec<(Dot, V)>` — iteration order and
/// wire bytes match the `BTreeMap` this replaced. The state carries a
/// mutation epoch and cached encoded frame (excluded from equality,
/// ordering, hashing and `Debug`): any data-changing mutation
/// invalidates the frame, and encoding an unmutated state reuses it.
#[derive(Clone)]
pub struct DotStore<V: Ord> {
    store: Vec<(Dot, V)>,
    ctx: CausalContext,
    tag: StateTag,
}

impl<V: Ord> Default for DotStore<V> {
    fn default() -> Self {
        DotStore {
            store: Vec::new(),
            ctx: CausalContext::default(),
            tag: StateTag::default(),
        }
    }
}

impl<V: Ord + core::fmt::Debug> core::fmt::Debug for DotStore<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // The tag (epoch + frame cache) is process-local bookkeeping:
        // keeping it out of `Debug` keeps `Debug`-derived state hashes
        // equal across converged replicas.
        f.debug_struct("DotStore")
            .field("store", &self.store)
            .field("ctx", &self.ctx)
            .finish()
    }
}

impl<V: Ord> PartialEq for DotStore<V> {
    fn eq(&self, other: &Self) -> bool {
        self.store == other.store && self.ctx == other.ctx
    }
}

impl<V: Ord> Eq for DotStore<V> {}

impl<V: Ord> PartialOrd for DotStore<V> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<V: Ord> Ord for DotStore<V> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (&self.store, &self.ctx).cmp(&(&other.store, &other.ctx))
    }
}

impl<V: Ord + core::hash::Hash> core::hash::Hash for DotStore<V> {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.store.hash(state);
        self.ctx.hash(state);
    }
}

impl<V: Ord> DotStore<V> {
    /// The state's process-local mutation epoch. Any data-changing
    /// mutation bumps it to a process-unique value; clones share their
    /// original's epoch (equal epochs imply equal data). Used to key
    /// external caches (encoded frames, state hashes).
    pub fn mutation_epoch(&self) -> u64 {
        self.tag.epoch()
    }

    /// Dot-sorted lookup of a live dot.
    fn has_dot(&self, d: &Dot) -> bool {
        self.store.binary_search_by(|(sd, _)| sd.cmp(d)).is_ok()
    }
}

impl<V: Ord + Clone + core::fmt::Debug> DotStore<V> {
    /// An empty causal state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live entries, in dot order.
    pub fn entries(&self) -> impl Iterator<Item = (&Dot, &V)> {
        self.store.iter().map(|(d, v)| (d, v))
    }

    /// Number of live entries.
    pub fn live_len(&self) -> usize {
        self.store.len()
    }

    /// The causal context.
    pub fn context(&self) -> &CausalContext {
        &self.ctx
    }

    /// Mutation primitive: add a fresh dot carrying `value` at `replica`,
    /// simultaneously *superseding* the live dots selected by `kill`.
    /// Returns the optimal delta.
    fn mutate(
        &mut self,
        replica: ReplicaId,
        value: Option<V>,
        kill: impl Fn(&Dot, &V) -> bool,
    ) -> Self {
        let mut delta = Self::new();
        let mut changed = false;
        // Cover superseded dots in the delta context (removal news).
        self.store.retain(|(d, v)| {
            if kill(d, v) {
                delta.ctx.insert(*d);
                changed = true;
                false
            } else {
                true
            }
        });
        if let Some(v) = value {
            let dot = self.ctx.next_dot(replica);
            insert_entry(&mut self.store, dot, v.clone());
            insert_entry(&mut delta.store, dot, v);
            delta.ctx.insert(dot);
            changed = true;
        }
        if changed {
            self.tag.note_mutation();
            delta.tag.note_mutation();
        }
        delta
    }
}

impl<V: Ord + Clone + core::fmt::Debug> Lattice for DotStore<V> {
    fn join_assign(&mut self, other: Self) -> bool {
        // Pass 1 — no-allocation change detection. Joining an
        // already-covered delta (the steady state of every sync
        // protocol) ends here without touching the heap.
        let drops = self
            .store
            .iter()
            .any(|(d, _)| !other.has_dot(d) && other.ctx.contains(d));
        let adds = other
            .store
            .iter()
            .any(|(d, _)| !self.has_dot(d) && !self.ctx.contains(d));
        if !drops && !adds && other.ctx.subset_of(&self.ctx) {
            return false;
        }
        // Pass 2 — linear two-pointer merge into one pre-sized buffer.
        let mut merged = Vec::with_capacity(self.store.len() + other.store.len());
        let mut mine = std::mem::take(&mut self.store).into_iter().peekable();
        let mut theirs = other.store.into_iter().peekable();
        loop {
            let take_mine = match (mine.peek(), theirs.peek()) {
                (Some((md, _)), Some((td, _))) => match md.cmp(td) {
                    core::cmp::Ordering::Less => Some(true),
                    core::cmp::Ordering::Greater => Some(false),
                    core::cmp::Ordering::Equal => {
                        // Live on both sides: survives the join.
                        merged.push(mine.next().expect("peeked")); // lint: allow(panic) — peek() just returned Some
                        theirs.next();
                        continue;
                    }
                },
                (Some(_), None) => Some(true),
                (None, Some(_)) => Some(false),
                (None, None) => None,
            };
            match take_mine {
                // Only I hold it live: keep unless the peer saw it die.
                Some(true) => {
                    let (d, v) = mine.next().expect("peeked"); // lint: allow(panic) — peek() just returned Some
                    if !other.ctx.contains(&d) {
                        merged.push((d, v));
                    }
                }
                // Only the peer holds it live: adopt unless I saw it die
                // (checked against my pre-union context).
                Some(false) => {
                    let (d, v) = theirs.next().expect("peeked"); // lint: allow(panic) — peek() just returned Some
                    if !self.ctx.contains(&d) {
                        merged.push((d, v));
                    }
                }
                None => break,
            }
        }
        self.store = merged;
        self.ctx.union(&other.ctx);
        self.tag.note_mutation();
        true
    }

    fn leq(&self, other: &Self) -> bool {
        // a ⊑ b ⇔ a ⊔ b = b: my context is covered, and every dot b holds
        // live is not one I have already removed.
        self.ctx.subset_of(&other.ctx)
            && other
                .store
                .iter()
                .all(|(d, _)| self.has_dot(d) || !self.ctx.contains(d))
    }
}

impl<V: Ord + Clone + core::fmt::Debug> Bottom for DotStore<V> {
    fn bottom() -> Self {
        Self::new()
    }

    fn is_bottom(&self) -> bool {
        self.store.is_empty() && self.ctx.is_empty()
    }
}

impl<V: Ord + Clone + core::fmt::Debug> Decompose for DotStore<V> {
    fn for_each_irreducible(&self, f: &mut dyn FnMut(Self)) {
        // Live parts: ({d ↦ v}, {d}).
        for (d, v) in &self.store {
            let mut part = Self::new();
            part.store.push((*d, v.clone()));
            part.ctx.insert(*d);
            part.tag = StateTag::fresh();
            f(part);
        }
        // Dead parts: (∅, {d}) for context-only dots.
        for d in self.ctx.iter() {
            if !self.has_dot(&d) {
                let mut part = Self::new();
                part.ctx.insert(d);
                part.tag = StateTag::fresh();
                f(part);
            }
        }
    }

    fn irreducible_count(&self) -> u64 {
        // Every observed dot is exactly one part (live or dead).
        self.ctx.len()
    }

    /// Optimal delta, specialized (equivalent to the generic
    /// decomposition fold, without materializing every part):
    /// live parts the peer hasn't heard of, plus dead parts the peer
    /// either hasn't heard of or still believes live.
    fn delta(&self, other: &Self) -> Self {
        let mut d = Self::new();
        for (dot, v) in &self.store {
            if !other.ctx.contains(dot) {
                // Visited in dot order, so plain pushes stay sorted.
                d.store.push((*dot, v.clone()));
                d.ctx.insert(*dot);
            }
        }
        for dot in self.ctx.iter() {
            if !self.has_dot(&dot) && (!other.ctx.contains(&dot) || other.has_dot(&dot)) {
                d.ctx.insert(dot);
            }
        }
        d.tag = StateTag::fresh();
        d
    }

    fn is_irreducible(&self) -> bool {
        self.ctx.len() == 1
    }
}

impl WireEncode for CausalContext {
    fn encode(&self, out: &mut Vec<u8>) {
        // Clock: one `(replica, end)` entry per prefix run, in replica
        // order — exactly the nested representation's `VClock` encoding.
        let runs = self.runs.runs();
        let clock_entries = runs.iter().filter(|r| r.start == 1).count() as u64;
        clock_entries.encode(out);
        for r in runs.iter().filter(|r| r.start == 1) {
            r.replica.encode(out);
            r.end().encode(out);
        }
        // Cloud: every non-prefix dot, in (replica, seq) order — exactly
        // the nested `BTreeSet<Dot>` encoding.
        let cloud_dots: u64 = runs.iter().filter(|r| r.start != 1).map(|r| r.len).sum();
        cloud_dots.encode(out);
        for r in runs.iter().filter(|r| r.start != 1) {
            for s in r.start..=r.end() {
                Dot::new(r.replica, s).encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, crdt_lattice::CodecError> {
        // The clock decodes through `VClock` (which drops zero entries,
        // like the nested representation's map join did), then becomes
        // prefix runs directly — its entries arrive replica-sorted.
        let clock = VClock::decode(input)?;
        let mut runs = DotRuns::new();
        for (r, s) in clock.iter() {
            if s >= 1 {
                runs.push_prefix_run(r, s);
            }
        }
        let mut ctx = CausalContext { runs };
        // Cloud: same hostile-length guard as `BTreeSet<Dot>` — a
        // claimed count can never exceed the remaining input.
        let len = usize::decode(input)?;
        if len > input.len() {
            return Err(crdt_lattice::CodecError::UnexpectedEnd);
        }
        for _ in 0..len {
            ctx.insert(Dot::decode(input)?);
        }
        Ok(ctx)
    }
}

impl<V: Ord + WireEncode> DotStore<V> {
    /// The structural (cache-bypassing) encoding: `BTreeMap<Dot, V>`
    /// shape for the live entries, then the context.
    fn encode_structural(&self, out: &mut Vec<u8>) {
        (self.store.len() as u64).encode(out);
        for (d, v) in &self.store {
            d.encode(out);
            v.encode(out);
        }
        self.ctx.encode(out);
    }
}

impl<V> WireEncode for DotStore<V>
where
    V: Ord + WireEncode,
{
    fn encode(&self, out: &mut Vec<u8>) {
        // Unmutated since the last encode: splice the cached frame in.
        if let Some(frame) = self.tag.cached() {
            out.extend_from_slice(&frame);
            return;
        }
        let start = out.len();
        self.encode_structural(out);
        self.tag.store(Bytes::copy_from_slice(&out[start..]));
    }

    fn decode(input: &mut &[u8]) -> Result<Self, crdt_lattice::CodecError> {
        let len = usize::decode(input)?;
        if len > input.len() {
            return Err(crdt_lattice::CodecError::UnexpectedEnd);
        }
        let mut store: Vec<(Dot, V)> = Vec::with_capacity(len);
        for _ in 0..len {
            let d = Dot::decode(input)?;
            let v = V::decode(input)?;
            // Hostile input may be unsorted or duplicated; normalize like
            // the `BTreeMap` decode this mirrors.
            insert_entry(&mut store, d, v);
        }
        Ok(DotStore {
            store,
            ctx: CausalContext::decode(input)?,
            tag: StateTag::fresh(),
        })
    }

    fn encode_frame(&self) -> Bytes {
        if let Some(frame) = self.tag.cached() {
            return frame;
        }
        let mut out = Vec::new();
        self.encode_structural(&mut out);
        let frame = Bytes::from(out);
        self.tag.store(frame.clone());
        frame
    }
}

impl<V: Ord + Clone + core::fmt::Debug + Sizeable> StateSize for DotStore<V> {
    fn count_elements(&self) -> u64 {
        self.ctx.len()
    }

    fn size_bytes(&self, model: &SizeModel) -> u64 {
        self.store
            .iter()
            .map(|(d, v)| d.size_bytes(model) + v.payload_bytes(model))
            .sum::<u64>()
            + self.ctx.size_bytes(model)
    }
}

// ---------------------------------------------------------------------------
// AWSet
// ---------------------------------------------------------------------------

/// Operations on an [`AWSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AWSetOp<E> {
    /// Add an element at a replica (add-wins over concurrent removes).
    Add(ReplicaId, E),
    /// Remove every visible copy of an element.
    Remove(E),
    /// Remove everything currently visible.
    Clear,
}

/// An add-wins observed-remove set: elements can be added and removed any
/// number of times; concurrent add/remove resolves to *add*.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AWSet<E: Ord>(DotStore<E>);

impl<E: Ord> Default for AWSet<E> {
    fn default() -> Self {
        AWSet(DotStore::default())
    }
}

crate::macros::delegate_join!(AWSet<E> where [E: Ord + Clone + core::fmt::Debug]);
crate::macros::delegate_decompose!(AWSet<E> where [E: Ord + Clone + core::fmt::Debug]);
crate::macros::delegate_size!(AWSet<E> where [E: Ord + Clone + core::fmt::Debug + Sizeable]);
crate::macros::delegate_wire!(AWSet<E> where
    [E: Ord + Clone + core::fmt::Debug + crdt_lattice::WireEncode]);

impl<E: Ord + Clone + core::fmt::Debug> AWSet<E> {
    /// A fresh, empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `e` at `replica`, superseding existing copies (so a later
    /// remove of an *older* copy cannot erase this add). Returns the
    /// optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn add(&mut self, replica: ReplicaId, e: E) -> Self {
        AWSet(self.0.mutate(replica, Some(e.clone()), |_, v| *v == e))
    }

    /// Remove all visible copies of `e`. Returns the optimal delta (pure
    /// context — no tombstone values).
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn remove(&mut self, e: &E) -> Self {
        AWSet(self.0.mutate(ReplicaId(0), None, |_, v| v == e))
    }

    /// Remove everything visible. Returns the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn clear(&mut self) -> Self {
        AWSet(self.0.mutate(ReplicaId(0), None, |_, _| true))
    }

    /// Membership test.
    pub fn contains(&self, e: &E) -> bool {
        self.0.store.iter().any(|(_, v)| v == e)
    }

    /// Distinct visible elements, in order.
    pub fn elements(&self) -> BTreeSet<&E> {
        self.0.store.iter().map(|(_, v)| v).collect()
    }

    /// Number of distinct visible elements.
    pub fn len(&self) -> usize {
        self.elements().len()
    }

    /// Is the set observably empty?
    pub fn is_empty(&self) -> bool {
        self.0.store.is_empty()
    }
}

impl<E: Ord + Clone + core::fmt::Debug + Sizeable> Crdt for AWSet<E> {
    type Op = AWSetOp<E>;
    type Value = BTreeSet<E>;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match op {
            AWSetOp::Add(r, e) => self.add(*r, e.clone()),
            AWSetOp::Remove(e) => self.remove(e),
            AWSetOp::Clear => self.clear(),
        }
    }

    fn value(&self) -> BTreeSet<E> {
        self.0.store.iter().map(|(_, v)| v.clone()).collect()
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            AWSetOp::Add(_, e) => model.id_bytes + e.payload_bytes(model),
            AWSetOp::Remove(e) => e.payload_bytes(model),
            AWSetOp::Clear => 1,
        }
    }

    fn mutation_epoch(&self) -> Option<u64> {
        Some(self.0.mutation_epoch())
    }
}

// ---------------------------------------------------------------------------
// EWFlag
// ---------------------------------------------------------------------------

/// Operations on an [`EWFlag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EWFlagOp {
    /// Set the flag (wins over concurrent disables).
    Enable(ReplicaId),
    /// Clear the flag.
    Disable,
}

/// An enable-wins flag: concurrent enable/disable resolves to *enabled*.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EWFlag(DotStore<()>);

crate::macros::delegate_wire!(EWFlag where []);
crate::macros::delegate_join!(EWFlag where []);
crate::macros::delegate_decompose!(EWFlag where []);
crate::macros::delegate_size!(EWFlag where []);

impl EWFlag {
    /// A fresh, disabled flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable at `replica`, returning the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn enable(&mut self, replica: ReplicaId) -> Self {
        EWFlag(self.0.mutate(replica, Some(()), |_, _| true))
    }

    /// Disable, returning the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn disable(&mut self) -> Self {
        EWFlag(self.0.mutate(ReplicaId(0), None, |_, _| true))
    }

    /// Is the flag set?
    pub fn is_enabled(&self) -> bool {
        !self.0.store.is_empty()
    }
}

impl Crdt for EWFlag {
    type Op = EWFlagOp;
    type Value = bool;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match op {
            EWFlagOp::Enable(r) => self.enable(*r),
            EWFlagOp::Disable => self.disable(),
        }
    }

    fn value(&self) -> bool {
        self.is_enabled()
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            EWFlagOp::Enable(_) => model.id_bytes,
            EWFlagOp::Disable => 1,
        }
    }

    fn mutation_epoch(&self) -> Option<u64> {
        Some(self.0.mutation_epoch())
    }
}

// ---------------------------------------------------------------------------
// CCounter
// ---------------------------------------------------------------------------

/// Operations on a [`CCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CCounterOp {
    /// Add `i64` (possibly negative) to the replica's contribution.
    Add(ReplicaId, i64),
    /// Reset the counter to zero (removes all visible contributions;
    /// concurrent `Add`s win).
    Reset,
}

/// A resettable causal counter: per-replica contributions live in dots,
/// so `Reset` is a pure-context removal and concurrent increments
/// survive it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CCounter(DotStore<i64>);

crate::macros::delegate_wire!(CCounter where []);
crate::macros::delegate_join!(CCounter where []);
crate::macros::delegate_decompose!(CCounter where []);
crate::macros::delegate_size!(CCounter where []);

impl CCounter {
    /// A fresh, zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to `replica`'s contribution (superseding that replica's
    /// previous dot). Returns the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn add(&mut self, replica: ReplicaId, by: i64) -> Self {
        let current: i64 = self
            .0
            .store
            .iter()
            .filter(|(d, _)| d.replica == replica)
            .map(|(_, v)| *v)
            .sum();
        CCounter(
            self.0
                .mutate(replica, Some(current + by), |d, _| d.replica == replica),
        )
    }

    /// Reset to zero, returning the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn reset(&mut self) -> Self {
        CCounter(self.0.mutate(ReplicaId(0), None, |_, _| true))
    }

    /// The counter value: the sum of visible contributions.
    pub fn total(&self) -> i64 {
        self.0.store.iter().map(|(_, v)| *v).sum()
    }
}

impl Crdt for CCounter {
    type Op = CCounterOp;
    type Value = i64;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match op {
            CCounterOp::Add(r, by) => self.add(*r, *by),
            CCounterOp::Reset => self.reset(),
        }
    }

    fn value(&self) -> i64 {
        self.total()
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            CCounterOp::Add(_, _) => model.id_bytes + 8,
            CCounterOp::Reset => 1,
        }
    }

    fn mutation_epoch(&self) -> Option<u64> {
        Some(self.0.mutation_epoch())
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testing::check_crdt_op;
    use crdt_lattice::testing::check_all_laws;

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    // -- causal context ----------------------------------------------------

    #[test]
    fn context_compacts_contiguous_dots() {
        let mut c = CausalContext::new();
        c.insert(Dot::new(A, 2)); // gap: its own run
        c.insert(Dot::new(A, 1)); // fills the gap: runs coalesce
        assert!(c.contains(&Dot::new(A, 1)));
        assert!(c.contains(&Dot::new(A, 2)));
        assert_eq!(c.len(), 2);
        assert_eq!(c.runs.runs().len(), 1, "runs coalesced into one prefix");
        assert_eq!(c.runs.prefix_end(A), 2);
    }

    #[test]
    fn context_union_and_subset() {
        let mut a = CausalContext::new();
        a.insert(Dot::new(A, 1));
        let mut b = a.clone();
        b.insert(Dot::new(B, 3)); // non-contiguous
        assert!(a.subset_of(&b));
        assert!(!b.subset_of(&a));
        assert!(a.union(&b));
        assert!(b.subset_of(&a) && a.subset_of(&b));
        assert!(!a.union(&b), "idempotent");
    }

    #[test]
    fn context_iter_covers_everything() {
        let mut c = CausalContext::new();
        c.insert(Dot::new(A, 1));
        c.insert(Dot::new(A, 2));
        c.insert(Dot::new(B, 5));
        let dots: BTreeSet<Dot> = c.iter().collect();
        assert_eq!(dots.len(), 3);
        assert!(dots.contains(&Dot::new(B, 5)));
    }

    #[test]
    fn context_encode_splits_clock_and_cloud() {
        // The wire format is the nested representation's: a vector clock
        // of contiguous prefixes, then the out-of-band dots as a sorted
        // set. Build the same context both ways and compare bytes.
        let mut c = CausalContext::new();
        c.insert(Dot::new(A, 1));
        c.insert(Dot::new(A, 2));
        c.insert(Dot::new(A, 4)); // cloud: gap at 3
        c.insert(Dot::new(B, 7)); // cloud: no prefix for B
        let mut expected = Vec::new();
        let clock: VClock = [(A, 2u64)].into_iter().collect();
        clock.encode(&mut expected);
        let cloud: BTreeSet<Dot> = [Dot::new(A, 4), Dot::new(B, 7)].into_iter().collect();
        cloud.encode(&mut expected);
        assert_eq!(c.to_bytes(), expected);
        let back = CausalContext::from_bytes(&c.to_bytes()).expect("roundtrip");
        assert_eq!(back, c);
    }

    // -- AWSet semantics ----------------------------------------------------

    #[test]
    fn add_remove_add_again() {
        let mut s = AWSet::new();
        let _ = s.add(A, "x");
        assert!(s.contains(&"x"));
        let _ = s.remove(&"x");
        assert!(!s.contains(&"x"));
        // Unlike 2P-sets, re-adding works.
        let _ = s.add(A, "x");
        assert!(s.contains(&"x"));
    }

    #[test]
    fn concurrent_add_wins_over_remove() {
        let mut a = AWSet::new();
        let mut b = AWSet::new();
        // Shared history: both know "x" added by A.
        let d = a.add(A, "x");
        b.join_assign(d);
        // Concurrently: A removes x, B re-adds x.
        let da = a.remove(&"x");
        let db = b.add(B, "x");
        a.join_assign(db);
        b.join_assign(da);
        assert_eq!(a, b);
        assert!(a.contains(&"x"), "add wins");
    }

    #[test]
    fn remove_needs_no_tombstone_values() {
        use crdt_lattice::StateSize;
        let model = SizeModel::compact();
        let mut s: AWSet<String> = AWSet::new();
        let _ = s.add(A, "a-large-element-payload".repeat(10));
        let d = s.remove(&"a-large-element-payload".repeat(10));
        // The removal delta carries only context (dots), no element data.
        assert_eq!(d.0.store.len(), 0);
        assert!(d.size_bytes(&model) <= 2 * model.vector_entry_bytes());
    }

    #[test]
    fn clear_then_concurrent_add_survives() {
        let mut a = AWSet::new();
        let mut b = AWSet::new();
        let d = a.add(A, 1u32);
        b.join_assign(d);
        let d_clear = a.clear();
        let d_add = b.add(B, 2u32);
        a.join_assign(d_add);
        b.join_assign(d_clear);
        assert_eq!(a, b);
        assert_eq!(a.value(), BTreeSet::from([2]));
    }

    #[test]
    fn duplicated_reordered_deltas_converge() {
        let mut a = AWSet::new();
        let d1 = a.add(A, 1u32);
        let d2 = a.remove(&1);
        let d3 = a.add(A, 2u32);
        for order in [[0, 1, 2], [2, 1, 0], [1, 2, 0]] {
            let deltas = [d1.clone(), d2.clone(), d3.clone()];
            let mut obs = AWSet::new();
            for &i in &order {
                obs.join_assign(deltas[i].clone());
                obs.join_assign(deltas[i].clone()); // duplicate
            }
            assert_eq!(obs, a, "order {order:?}");
        }
    }

    #[test]
    fn awset_op_contract() {
        let mut s = AWSet::new();
        let _ = s.add(A, 1u32);
        let _ = s.add(B, 2u32);
        check_crdt_op(&s, &AWSetOp::Add(A, 3));
        check_crdt_op(&s, &AWSetOp::Add(A, 1)); // re-add superseding
        check_crdt_op(&s, &AWSetOp::Remove(2));
        check_crdt_op(&s, &AWSetOp::Clear);
    }

    #[test]
    fn awset_laws() {
        let mut s1 = AWSet::new();
        let _ = s1.add(A, 1u8);
        let mut s2 = s1.clone();
        let _ = s2.remove(&1);
        let mut s3 = AWSet::new();
        let _ = s3.add(B, 2u8);
        let _ = s3.add(B, 1u8);
        let merged = s2.clone().join(s3.clone());
        let samples = vec![AWSet::bottom(), s1, s2, s3, merged];
        check_all_laws(&samples);
    }

    #[test]
    fn awset_delta_ships_removals_to_stale_peers() {
        use crdt_lattice::Decompose;
        let mut fresh = AWSet::new();
        let d = fresh.add(A, 7u32);
        let mut stale = AWSet::new();
        stale.join_assign(d);
        let _ = fresh.remove(&7);
        // Δ must inform the stale peer of the removal even though the dot
        // is inside fresh's context (dead-part case d ∈ b.store).
        let delta = fresh.delta(&stale);
        assert!(!delta.is_bottom());
        stale.join_assign(delta);
        assert_eq!(stale, fresh);
        assert!(!stale.contains(&7));
    }

    // -- EWFlag --------------------------------------------------------------

    #[test]
    fn flag_enable_wins() {
        let mut a = EWFlag::new();
        let mut b = EWFlag::new();
        let d = a.enable(A);
        b.join_assign(d);
        let da = a.disable();
        let db = b.enable(B);
        a.join_assign(db);
        b.join_assign(da);
        assert_eq!(a, b);
        assert!(a.is_enabled(), "enable wins concurrent disable");
    }

    #[test]
    fn flag_op_contract_and_laws() {
        let mut f = EWFlag::new();
        let _ = f.enable(A);
        check_crdt_op(&f, &EWFlagOp::Enable(B));
        check_crdt_op(&f, &EWFlagOp::Disable);
        let mut off = f.clone();
        let _ = off.disable();
        check_all_laws(&[EWFlag::bottom(), f, off]);
    }

    // -- CCounter -------------------------------------------------------------

    #[test]
    fn ccounter_adds_and_resets() {
        let mut c = CCounter::new();
        let _ = c.add(A, 5);
        let _ = c.add(B, 3);
        let _ = c.add(A, -2);
        assert_eq!(c.total(), 6);
        let _ = c.reset();
        assert_eq!(c.total(), 0);
        let _ = c.add(A, 1);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn concurrent_add_survives_reset() {
        let mut a = CCounter::new();
        let mut b = CCounter::new();
        let d = a.add(A, 10);
        b.join_assign(d);
        let d_reset = a.reset();
        let d_add = b.add(B, 4);
        a.join_assign(d_add);
        b.join_assign(d_reset);
        assert_eq!(a, b);
        assert_eq!(a.total(), 4, "the reset only covers observed dots");
    }

    #[test]
    fn ccounter_compresses_own_contribution() {
        // Repeated adds at one replica keep a single live dot — the
        // compression GCounter gets from `max`, recovered causally.
        let mut c = CCounter::new();
        for _ in 0..10 {
            let _ = c.add(A, 1);
        }
        assert_eq!(c.0.store.len(), 1);
        assert_eq!(c.total(), 10);
    }

    #[test]
    fn ccounter_op_contract_and_laws() {
        let mut c = CCounter::new();
        let _ = c.add(A, 2);
        check_crdt_op(&c, &CCounterOp::Add(B, -7));
        check_crdt_op(&c, &CCounterOp::Add(A, 3));
        check_crdt_op(&c, &CCounterOp::Reset);
        let mut c2 = c.clone();
        let _ = c2.reset();
        check_all_laws(&[CCounter::bottom(), c, c2]);
    }

    // -- decomposition ---------------------------------------------------------

    #[test]
    fn decomposition_has_live_and_dead_parts() {
        use crdt_lattice::Decompose;
        let mut s = AWSet::new();
        let _ = s.add(A, 1u8);
        let _ = s.add(A, 2u8);
        let _ = s.remove(&1);
        // Dots: A1 (dead, superseded? add(1) → A1; add(2) → A2; remove(1)
        // kills A1). Parts: live A2, dead A1.
        let parts = s.decompose();
        assert_eq!(parts.len(), 2);
        assert_eq!(s.irreducible_count(), 2);
        let live = parts.iter().filter(|p| p.0.store.len() == 1).count();
        let dead = parts.iter().filter(|p| p.0.store.is_empty()).count();
        assert_eq!((live, dead), (1, 1));
        assert!(parts.iter().all(Decompose::is_irreducible));
    }

    // -- mutation epochs + cached frames ------------------------------------

    #[test]
    fn epoch_tracks_data_changes_only() {
        let mut s = AWSet::new();
        assert_eq!(s.0.mutation_epoch(), 0, "fresh bottom is epoch 0");
        let d = s.add(A, 1u32);
        let e1 = s.0.mutation_epoch();
        assert_ne!(e1, 0);
        assert_ne!(d.0.mutation_epoch(), 0, "deltas carry their own epoch");
        // Joining an already-covered delta changes nothing: same epoch.
        s.join_assign(d.clone());
        assert_eq!(s.0.mutation_epoch(), e1);
        // A real change bumps it.
        let _ = s.add(B, 2u32);
        assert_ne!(s.0.mutation_epoch(), e1);
        // Clones share the epoch (they hold the same data).
        let c = s.clone();
        assert_eq!(c.0.mutation_epoch(), s.0.mutation_epoch());
    }

    #[test]
    fn cached_frame_matches_structural_encode() {
        let mut s = AWSet::new();
        let _ = s.add(A, 1u32);
        let _ = s.add(B, 2u32);
        let frame = s.encode_frame();
        // Second encode hits the cache; bytes identical either way.
        assert_eq!(frame, s.encode_frame());
        assert_eq!(frame, s.to_bytes());
        let mut structural = Vec::new();
        s.0.encode_structural(&mut structural);
        assert_eq!(frame, structural);
        // Mutation invalidates: the new frame reflects the new state.
        let _ = s.remove(&1);
        let fresh = s.encode_frame();
        assert_ne!(fresh, frame);
        let mut structural = Vec::new();
        s.0.encode_structural(&mut structural);
        assert_eq!(fresh, structural);
    }
}
